//! Edge-case tests for the detection engine: empty snapshots, partial
//! coverage, alarm independence across subjects, and screen corner
//! cases.

use std::collections::BTreeMap;

use gridwatch_detect::{
    AlarmLevel, AlarmPolicy, AlarmTracker, DetectionEngine, EngineConfig, PairScreen, ScoreBoard,
    Snapshot,
};
use gridwatch_timeseries::{
    MachineId, MeasurementId, MeasurementPair, MetricKind, PairSeries, TimeSeries, Timestamp,
};

fn id(machine: u32, tag: u16) -> MeasurementId {
    MeasurementId::new(MachineId::new(machine), MetricKind::Custom(tag))
}

fn linear_pair(a: MeasurementId, b: MeasurementId, scale: f64) -> (MeasurementPair, PairSeries) {
    let pair = MeasurementPair::new(a, b).unwrap();
    let history = PairSeries::from_samples((0..200u64).map(|k| {
        let x = (k % 40) as f64 + 1.0;
        (k * 360, x, scale * x)
    }))
    .unwrap();
    (pair, history)
}

#[test]
fn empty_snapshot_yields_empty_board_and_no_alarms() {
    let (p, h) = linear_pair(id(0, 0), id(0, 1), 2.0);
    let mut engine = DetectionEngine::train([(p, h)], EngineConfig::default()).unwrap();
    let report = engine.step(&Snapshot::new(Timestamp::EPOCH));
    assert!(report.scores.is_empty());
    assert!(report.alarms.is_empty());
    assert_eq!(report.scores.system_score(), None);
}

#[test]
fn alarm_streaks_are_tracked_per_subject() {
    let a = id(0, 0);
    let b = id(1, 0);
    let c = id(2, 0);
    let policy = AlarmPolicy {
        system_threshold: 0.0,
        measurement_threshold: 0.5,
        min_consecutive: 2,
    };
    let mut tracker = AlarmTracker::new();
    // Tick 1: a-b low, a-c high.
    let mut board = ScoreBoard::new(Timestamp::from_secs(0));
    board.record(MeasurementPair::new(a, b).unwrap(), 0.1);
    board.record(MeasurementPair::new(a, c).unwrap(), 0.9);
    assert!(tracker.evaluate(&board, &policy).is_empty());
    // Tick 2: same; a and b have 2-streaks (scores 0.5 avg for a ... )
    let mut board = ScoreBoard::new(Timestamp::from_secs(360));
    board.record(MeasurementPair::new(a, b).unwrap(), 0.1);
    board.record(MeasurementPair::new(a, c).unwrap(), 0.9);
    let alarms = tracker.evaluate(&board, &policy);
    // Q^b = 0.1 (below), Q^a = 0.5 (not below), Q^c = 0.9.
    assert_eq!(alarms.len(), 1);
    assert_eq!(alarms[0].level, AlarmLevel::Measurement(b));
    assert!(tracker.is_active(AlarmLevel::Measurement(b)));
    assert!(!tracker.is_active(AlarmLevel::Measurement(c)));
}

#[test]
fn screen_with_zero_min_samples_keeps_everything() {
    let mut m = BTreeMap::new();
    for k in 0..3u32 {
        m.insert(
            id(k, 0),
            TimeSeries::from_samples((0..5u64).map(|i| (i, (i + u64::from(k)) as f64))).unwrap(),
        );
    }
    let screen = PairScreen {
        min_samples: 0,
        ..PairScreen::default()
    };
    assert_eq!(screen.select(&m).len(), 3);
}

#[test]
fn screen_cv_filter_drops_flat_series() {
    let mut m = BTreeMap::new();
    m.insert(
        id(0, 0),
        TimeSeries::from_samples((0..50u64).map(|i| (i, 100.0 + (i % 2) as f64 * 0.01))).unwrap(),
    );
    m.insert(
        id(1, 0),
        TimeSeries::from_samples((0..50u64).map(|i| (i, (i * i) as f64))).unwrap(),
    );
    m.insert(
        id(2, 0),
        TimeSeries::from_samples((0..50u64).map(|i| (i, (i * 3) as f64 + 1.0))).unwrap(),
    );
    let screen = PairScreen {
        min_cv: 0.05,
        ..PairScreen::default()
    };
    let pairs = screen.select(&m);
    assert_eq!(pairs.len(), 1, "only the two varying series pair up");
    assert!(!pairs[0].contains(id(0, 0)));
}

#[test]
fn engine_exposes_models_and_pairs() {
    let (p1, h1) = linear_pair(id(0, 0), id(0, 1), 2.0);
    let (p2, h2) = linear_pair(id(0, 0), id(1, 0), 3.0);
    let engine = DetectionEngine::train([(p1, h1), (p2, h2)], EngineConfig::default()).unwrap();
    assert_eq!(engine.pairs().count(), 2);
    assert!(engine.model(p1).is_some());
    let ghost = MeasurementPair::new(id(8, 8), id(9, 9)).unwrap();
    assert!(engine.model(ghost).is_none());
    assert!(engine.explain(ghost).is_none());
}

#[test]
fn partial_snapshots_keep_models_independent() {
    let (p1, h1) = linear_pair(id(0, 0), id(0, 1), 2.0);
    let (p2, h2) = linear_pair(id(2, 0), id(2, 1), 3.0);
    let mut engine = DetectionEngine::train([(p1, h1), (p2, h2)], EngineConfig::default()).unwrap();
    // Feed only pair 2's measurements for several steps.
    for k in 0..5u64 {
        let mut snap = Snapshot::new(Timestamp::from_secs(200 * 360 + k * 360));
        let x = (k % 40) as f64 + 1.0;
        snap.insert(id(2, 0), x);
        snap.insert(id(2, 1), 3.0 * x);
        let report = engine.step(&snap);
        assert_eq!(report.scores.len(), 1);
        assert!(report.scores.pair_score(p2).is_some());
        assert!(report.scores.pair_score(p1).is_none());
    }
    // Pair 1 still works when its data returns.
    let mut snap = Snapshot::new(Timestamp::from_secs(300 * 360));
    snap.insert(id(0, 0), 10.0);
    snap.insert(id(0, 1), 20.0);
    let report = engine.step(&snap);
    assert!(report.scores.pair_score(p1).is_some());
}

#[test]
fn training_outcome_reports_skip_reasons() {
    let (p1, h1) = linear_pair(id(0, 0), id(0, 1), 2.0);
    let flat_pair = MeasurementPair::new(id(5, 0), id(5, 1)).unwrap();
    let flat = PairSeries::from_samples((0..60u64).map(|k| (k, 1.0, 1.0))).unwrap();
    let engine =
        DetectionEngine::train([(p1, h1), (flat_pair, flat)], EngineConfig::default()).unwrap();
    let outcome = engine.training_outcome();
    assert_eq!(outcome.trained, 1);
    assert_eq!(outcome.skipped.len(), 1);
    let (skipped_pair, reason) = &outcome.skipped[0];
    assert_eq!(*skipped_pair, flat_pair);
    assert!(format!("{reason}").contains("grid"));
}
