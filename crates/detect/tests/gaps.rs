//! Tests for data-gap handling: the engine must not score the first
//! sample after a monitoring outage as a transition from the stale
//! pre-outage point.

use gridwatch_detect::{DetectionEngine, EngineConfig, Snapshot};
use gridwatch_timeseries::{
    MachineId, MeasurementId, MeasurementPair, MetricKind, PairSeries, Timestamp,
};

fn ids() -> (MeasurementId, MeasurementId) {
    (
        MeasurementId::new(MachineId::new(0), MetricKind::Custom(0)),
        MeasurementId::new(MachineId::new(0), MetricKind::Custom(1)),
    )
}

fn engine(max_gap_secs: Option<u64>) -> DetectionEngine {
    let (a, b) = ids();
    let pair = MeasurementPair::new(a, b).unwrap();
    let history = PairSeries::from_samples((0..300u64).map(|k| {
        let x = (k % 60) as f64;
        (k * 360, x, 2.0 * x)
    }))
    .unwrap();
    DetectionEngine::train(
        [(pair, history)],
        EngineConfig {
            max_gap_secs,
            ..EngineConfig::default()
        },
    )
    .unwrap()
}

fn snap(secs: u64, x: f64, y: f64) -> Snapshot {
    let (a, b) = ids();
    let mut s = Snapshot::new(Timestamp::from_secs(secs));
    s.insert(a, x);
    s.insert(b, y);
    s
}

#[test]
fn gap_resets_trajectories_so_first_sample_after_outage_is_unscored() {
    let mut engine = engine(Some(720)); // two sampling intervals
    let base = 300 * 360;
    // Normal cadence: scored.
    let r = engine.step(&snap(base, 10.0, 20.0));
    assert_eq!(r.scores.len(), 1);
    // Six-hour outage, then data resumes far from the last point: with
    // gap handling the step produces no score (no transition context).
    let r = engine.step(&snap(base + 6 * 3600, 55.0, 110.0));
    assert!(r.scores.is_empty(), "post-outage sample must not be scored");
    // The next sample transitions from the post-outage point: scored.
    let r = engine.step(&snap(base + 6 * 3600 + 360, 56.0, 112.0));
    assert_eq!(r.scores.len(), 1);
}

#[test]
fn without_gap_handling_the_stale_transition_is_scored() {
    let mut engine = engine(None);
    let base = 300 * 360;
    engine.step(&snap(base, 10.0, 20.0));
    let r = engine.step(&snap(base + 6 * 3600, 55.0, 110.0));
    assert_eq!(
        r.scores.len(),
        1,
        "with gap handling off, the stale transition is (mis)scored"
    );
}

#[test]
fn gaps_within_tolerance_do_not_reset() {
    let mut engine = engine(Some(720));
    let base = 300 * 360;
    engine.step(&snap(base, 10.0, 20.0));
    // One missed sample (720 s) is within the allowed gap.
    let r = engine.step(&snap(base + 720, 12.0, 24.0));
    assert_eq!(r.scores.len(), 1);
}

#[test]
fn manual_reset_behaves_like_a_gap() {
    let mut engine = engine(None);
    let base = 300 * 360;
    engine.step(&snap(base, 10.0, 20.0));
    engine.reset_trajectories();
    let r = engine.step(&snap(base + 360, 11.0, 22.0));
    assert!(r.scores.is_empty());
}
