//! Property-based tests for the detection layer: the three-level
//! aggregation is consistent, alarms respect their thresholds and
//! debounce, and the pair screen never invents measurements.

use std::collections::BTreeMap;

use gridwatch_detect::{AlarmPolicy, AlarmTracker, Localizer, PairScreen, ScoreBoard};
use gridwatch_timeseries::{
    MachineId, MeasurementId, MeasurementPair, MetricKind, TimeSeries, Timestamp,
};
use proptest::prelude::*;

fn id(machine: u32, tag: u16) -> MeasurementId {
    MeasurementId::new(MachineId::new(machine), MetricKind::Custom(tag))
}

/// A random score board over up to 6 measurements.
fn arb_board() -> impl Strategy<Value = ScoreBoard> {
    prop::collection::vec(
        ((0u32..3, 0u16..2), (0u32..3, 0u16..2), 0.0f64..=1.0),
        1..20,
    )
    .prop_map(|entries| {
        let mut board = ScoreBoard::new(Timestamp::EPOCH);
        for ((m1, t1), (m2, t2), score) in entries {
            if let Some(pair) = MeasurementPair::new(id(m1, t1), id(m2, t2)) {
                board.record(pair, score);
            }
        }
        board
    })
}

proptest! {
    #[test]
    fn system_score_is_mean_of_measurement_scores(board in arb_board()) {
        let per_measurement = board.measurement_scores();
        match board.system_score() {
            Some(q) => {
                let mean = per_measurement.values().sum::<f64>() / per_measurement.len() as f64;
                prop_assert!((q - mean).abs() < 1e-12);
                prop_assert!((0.0..=1.0 + 1e-12).contains(&q));
            }
            None => prop_assert!(per_measurement.is_empty()),
        }
    }

    #[test]
    fn measurement_scores_are_bounded_by_their_pairs(board in arb_board()) {
        for (m, q) in board.measurement_scores() {
            let pair_scores: Vec<f64> = board
                .pair_scores()
                .filter(|(p, _)| p.contains(m))
                .map(|(_, s)| s)
                .collect();
            let lo = pair_scores.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = pair_scores.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(q >= lo - 1e-12 && q <= hi + 1e-12);
        }
    }

    #[test]
    fn machine_scores_average_their_measurements(board in arb_board()) {
        let measurement = board.measurement_scores();
        for (machine, q) in board.machine_scores() {
            let members: Vec<f64> = measurement
                .iter()
                .filter(|(m, _)| m.machine() == machine)
                .map(|(_, &s)| s)
                .collect();
            prop_assert!(!members.is_empty());
            let mean = members.iter().sum::<f64>() / members.len() as f64;
            prop_assert!((q - mean).abs() < 1e-12);
        }
    }

    #[test]
    fn localizer_ranks_ascending(board in arb_board()) {
        let ranked = Localizer::rank_measurements(&board);
        for w in ranked.windows(2) {
            prop_assert!(w[0].score <= w[1].score + 1e-12);
        }
        let machines = Localizer::rank_machines(&board);
        for w in machines.windows(2) {
            prop_assert!(w[0].score <= w[1].score + 1e-12);
        }
        if let Some(prime) = Localizer::prime_suspect(&board) {
            prop_assert_eq!(prime.machine, machines[0].machine);
        }
    }

    #[test]
    fn alarms_fire_only_below_threshold_and_after_debounce(
        scores in prop::collection::vec(0.0f64..=1.0, 1..40),
        threshold in 0.0f64..=1.0,
        consecutive in 1u32..4,
    ) {
        let policy = AlarmPolicy {
            system_threshold: threshold,
            measurement_threshold: 0.0,
            min_consecutive: consecutive,
        };
        let mut tracker = AlarmTracker::new();
        let mut streak = 0u32;
        for (k, &q) in scores.iter().enumerate() {
            let mut board = ScoreBoard::new(Timestamp::from_secs(k as u64));
            board.record(MeasurementPair::new(id(0, 0), id(1, 0)).unwrap(), q);
            let alarms = tracker.evaluate(&board, &policy);
            if q < threshold {
                streak += 1;
            } else {
                streak = 0;
            }
            let expect_alarm = streak == consecutive;
            let got_system_alarm = alarms
                .iter()
                .any(|a| a.level == gridwatch_detect::AlarmLevel::System);
            prop_assert_eq!(
                got_system_alarm,
                expect_alarm,
                "step {} score {} streak {}",
                k,
                q,
                streak
            );
        }
    }

    #[test]
    fn screen_output_pairs_come_from_input_measurements(
        lens in prop::collection::vec(2usize..40, 1..6),
        min_samples in 0usize..30,
    ) {
        let mut series = BTreeMap::new();
        for (k, &len) in lens.iter().enumerate() {
            let ts = TimeSeries::from_samples(
                (0..len as u64).map(|i| (i, (i * (k as u64 + 1)) as f64)),
            )
            .unwrap();
            series.insert(id(k as u32, 0), ts);
        }
        let screen = PairScreen {
            min_samples,
            ..PairScreen::default()
        };
        let pairs = screen.select(&series);
        for p in &pairs {
            prop_assert!(series.contains_key(&p.first()));
            prop_assert!(series.contains_key(&p.second()));
            prop_assert!(series[&p.first()].len() >= min_samples);
            prop_assert!(series[&p.second()].len() >= min_samples);
        }
        // No duplicates.
        let mut seen = std::collections::BTreeSet::new();
        for p in &pairs {
            prop_assert!(seen.insert(*p));
        }
    }
}
