use std::fmt;

use serde::{Deserialize, Serialize};

/// A half-open interval `[lower, upper)` on one dimension of the value
/// space.
///
/// The paper defines each grid cell as the intersection of one interval
/// from each dimension, with `v^a = [l^a, u^a)` (Section 3). A data point
/// belongs to the cell whose intervals contain it on both dimensions.
///
/// # Example
///
/// ```
/// use gridwatch_grid::Interval;
///
/// let iv = Interval::new(1.0, 2.0);
/// assert!(iv.contains(1.0));
/// assert!(!iv.contains(2.0)); // half-open
/// assert_eq!(iv.width(), 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Interval {
    lower: f64,
    upper: f64,
}

impl Interval {
    /// Creates the interval `[lower, upper)`.
    ///
    /// # Panics
    ///
    /// Panics if the bounds are non-finite or `lower >= upper`.
    pub fn new(lower: f64, upper: f64) -> Self {
        assert!(
            lower.is_finite() && upper.is_finite(),
            "interval bounds must be finite"
        );
        assert!(
            lower < upper,
            "interval must be non-empty: [{lower}, {upper})"
        );
        Interval { lower, upper }
    }

    /// The inclusive lower bound.
    pub fn lower(self) -> f64 {
        self.lower
    }

    /// The exclusive upper bound.
    pub fn upper(self) -> f64 {
        self.upper
    }

    /// The interval's width.
    pub fn width(self) -> f64 {
        self.upper - self.lower
    }

    /// The interval's midpoint.
    pub fn midpoint(self) -> f64 {
        self.lower + self.width() / 2.0
    }

    /// Whether `value` lies in `[lower, upper)`.
    pub fn contains(self, value: f64) -> bool {
        self.lower <= value && value < self.upper
    }

    /// Whether this interval shares a boundary point with `other`
    /// (`self.upper == other.lower` or vice versa).
    ///
    /// Adjacency is bit-exact by construction: partitions tile the value
    /// space by reusing the same `f64` as one interval's upper bound and
    /// the next one's lower bound, so a tolerance would declare merely
    /// nearby intervals adjacent.
    #[allow(clippy::float_cmp)]
    pub fn is_adjacent_to(self, other: Interval) -> bool {
        self.upper == other.lower || other.upper == self.lower
    }

    /// The smallest interval covering both `self` and `other`.
    pub fn hull(self, other: Interval) -> Interval {
        Interval {
            lower: self.lower.min(other.lower),
            upper: self.upper.max(other.upper),
        }
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:.6}, {:.6})", self.lower, self.upper)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn half_open_membership() {
        let iv = Interval::new(-1.0, 1.0);
        assert!(iv.contains(-1.0));
        assert!(iv.contains(0.0));
        assert!(iv.contains(0.999_999));
        assert!(!iv.contains(1.0));
        assert!(!iv.contains(-1.000_001));
    }

    #[test]
    fn geometry() {
        let iv = Interval::new(2.0, 6.0);
        assert_eq!(iv.width(), 4.0);
        assert_eq!(iv.midpoint(), 4.0);
    }

    #[test]
    fn adjacency_and_hull() {
        let a = Interval::new(0.0, 1.0);
        let b = Interval::new(1.0, 2.0);
        let c = Interval::new(3.0, 4.0);
        assert!(a.is_adjacent_to(b));
        assert!(b.is_adjacent_to(a));
        assert!(!a.is_adjacent_to(c));
        let h = a.hull(c);
        assert_eq!(h.lower(), 0.0);
        assert_eq!(h.upper(), 4.0);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_interval_rejected() {
        Interval::new(1.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_bounds_rejected() {
        Interval::new(0.0, f64::INFINITY);
    }
}
