use std::fmt;

use gridwatch_timeseries::Point2;
use serde::{Deserialize, Serialize};

use crate::{DimensionPartition, Interval};

/// Identifier of one grid cell, as a flat index in row-major order
/// (`row * columns + column`, where columns index the x dimension and rows
/// the y dimension).
///
/// The paper numbers cells `c_1 … c_s`; a [`CellId`] is the zero-based
/// equivalent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CellId(pub usize);

impl CellId {
    /// The flat index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for CellId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Cells are 1-based in the paper's notation.
        write!(f, "c{}", self.0 + 1)
    }
}

/// A cell's two-dimensional location: column along x, row along y.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Location {
    /// Index into the x-dimension partition.
    pub col: usize,
    /// Index into the y-dimension partition.
    pub row: usize,
}

/// Controls online grid extension (Section 4.1, "Update").
///
/// When an observation falls outside the grid but within
/// `lambda · r_avg` of the boundary on every violated dimension, the grid
/// is extended to contain it; otherwise the observation is an outlier and
/// the grid is left unchanged. `lambda` is the paper's `λ^a`, "the maximum
/// number of intervals to be added".
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GrowthPolicy {
    /// Maximum number of average-width intervals the boundary may move per
    /// extension. `0.0` disables growth entirely.
    pub lambda: f64,
}

impl Default for GrowthPolicy {
    fn default() -> Self {
        GrowthPolicy { lambda: 2.0 }
    }
}

impl GrowthPolicy {
    /// A policy that never extends the grid (pure offline mode).
    pub const FROZEN: GrowthPolicy = GrowthPolicy { lambda: 0.0 };
}

/// The outcome of offering a point to [`GridStructure::locate_or_extend`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Extension {
    /// The point was already inside the grid.
    Contained(CellId),
    /// The grid was extended to contain the point. Existing cell ids are
    /// remapped: a cell formerly at `(col, row)` is now at
    /// `(col + prepended_cols, row + prepended_rows)` in a grid with the
    /// new column count.
    Extended {
        /// The cell now containing the point.
        cell: CellId,
        /// Columns added below the old x lower bound.
        prepended_cols: usize,
        /// Columns added above the old x upper bound.
        appended_cols: usize,
        /// Rows added below the old y lower bound.
        prepended_rows: usize,
        /// Rows added above the old y upper bound.
        appended_rows: usize,
    },
    /// The point was too far outside the boundary; the grid is unchanged.
    Outlier,
}

/// The grid structure `G = {c_1, …, c_s}`: the cross product of two
/// dimension partitions.
///
/// # Example
///
/// ```
/// use gridwatch_grid::{DimensionPartition, GridStructure};
/// use gridwatch_timeseries::Point2;
///
/// let grid = GridStructure::new(
///     DimensionPartition::equal_width(0.0, 3.0, 3),
///     DimensionPartition::equal_width(0.0, 3.0, 3),
/// );
/// assert_eq!(grid.cell_count(), 9);
/// // Centre cell of the 3×3 grid is c5 (flat index 4).
/// let c = grid.locate(Point2::new(1.5, 1.5)).unwrap();
/// assert_eq!(c.index(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridStructure {
    x: DimensionPartition,
    y: DimensionPartition,
}

impl GridStructure {
    /// Creates a grid from two dimension partitions.
    pub fn new(x: DimensionPartition, y: DimensionPartition) -> Self {
        GridStructure { x, y }
    }

    /// Convenience constructor: a uniform `cols × rows` grid over the
    /// given ranges.
    ///
    /// # Panics
    ///
    /// Panics if either count is zero or a range is empty.
    pub fn uniform(x_range: (f64, f64), y_range: (f64, f64), cols: usize, rows: usize) -> Self {
        GridStructure {
            x: DimensionPartition::equal_width(x_range.0, x_range.1, cols),
            y: DimensionPartition::equal_width(y_range.0, y_range.1, rows),
        }
    }

    /// The x-dimension partition.
    pub fn x_partition(&self) -> &DimensionPartition {
        &self.x
    }

    /// The y-dimension partition.
    pub fn y_partition(&self) -> &DimensionPartition {
        &self.y
    }

    /// Number of columns (x intervals).
    pub fn columns(&self) -> usize {
        self.x.len()
    }

    /// Number of rows (y intervals).
    pub fn rows(&self) -> usize {
        self.y.len()
    }

    /// Total number of cells `s = s_1 × s_2`.
    pub fn cell_count(&self) -> usize {
        self.columns() * self.rows()
    }

    /// Converts a location to its flat cell id.
    ///
    /// # Panics
    ///
    /// Panics if the location is out of range.
    pub fn cell_at(&self, loc: Location) -> CellId {
        assert!(loc.col < self.columns() && loc.row < self.rows());
        CellId(loc.row * self.columns() + loc.col)
    }

    /// Converts a flat cell id back to its location.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn location_of(&self, cell: CellId) -> Location {
        assert!(cell.0 < self.cell_count(), "cell id out of range");
        Location {
            col: cell.0 % self.columns(),
            row: cell.0 / self.columns(),
        }
    }

    /// The `(x, y)` interval bounds of a cell.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn cell_bounds(&self, cell: CellId) -> (Interval, Interval) {
        let loc = self.location_of(cell);
        (self.x.intervals()[loc.col], self.y.intervals()[loc.row])
    }

    /// The cell containing a point, or `None` if outside the grid.
    pub fn locate(&self, p: Point2) -> Option<CellId> {
        let col = self.x.locate(p.x)?;
        let row = self.y.locate(p.y)?;
        Some(self.cell_at(Location { col, row }))
    }

    /// Per-axis offset `(dcol, drow)` between two cells.
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range.
    pub fn offset(&self, a: CellId, b: CellId) -> (i64, i64) {
        let la = self.location_of(a);
        let lb = self.location_of(b);
        (lb.col as i64 - la.col as i64, lb.row as i64 - la.row as i64)
    }

    /// Locates `p`, extending the grid if `p` lies within the growth
    /// policy's reach of the boundary.
    ///
    /// Implements the paper's update rule: on dimension `a`, a point
    /// beyond the bound is accepted when it is within
    /// `λ · r_avg^a` of it ("we first judge if x ≤ u + λ·r_avg"); then
    /// intervals are appended until the point is contained. Cells are
    /// never deleted.
    pub fn locate_or_extend(&mut self, p: Point2, policy: GrowthPolicy) -> Extension {
        if let Some(cell) = self.locate(p) {
            return Extension::Contained(cell);
        }
        if !p.is_finite() {
            return Extension::Outlier;
        }
        // Check reach on each dimension before mutating anything.
        let reach_x = policy.lambda * self.x.average_width();
        let reach_y = policy.lambda * self.y.average_width();
        let x_ok = p.x >= self.x.lower() - reach_x && p.x < self.x.upper() + reach_x;
        let y_ok = p.y >= self.y.lower() - reach_y && p.y < self.y.upper() + reach_y;
        if !(x_ok && y_ok) {
            return Extension::Outlier;
        }
        let (pre_c, app_c) = self.x.extend_to(p.x);
        let (pre_r, app_r) = self.y.extend_to(p.y);
        crate::invariants::check_grid(self);
        let cell = self.locate(p).expect("point is contained after extension");
        Extension::Extended {
            cell,
            prepended_cols: pre_c,
            appended_cols: app_c,
            prepended_rows: pre_r,
            appended_rows: app_r,
        }
    }

    /// Iterates over all cell ids in flat order.
    pub fn cells(&self) -> impl ExactSizeIterator<Item = CellId> {
        (0..self.cell_count()).map(CellId)
    }
}

impl fmt::Display for GridStructure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "grid {}x{} over [{}, {}) x [{}, {})",
            self.columns(),
            self.rows(),
            self.x.lower(),
            self.x.upper(),
            self.y.lower(),
            self.y.upper()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid3x3() -> GridStructure {
        GridStructure::uniform((0.0, 3.0), (0.0, 3.0), 3, 3)
    }

    #[test]
    fn flat_index_roundtrip() {
        let g = grid3x3();
        for cell in g.cells() {
            let loc = g.location_of(cell);
            assert_eq!(g.cell_at(loc), cell);
        }
        assert_eq!(g.cells().len(), 9);
    }

    #[test]
    fn paper_cell_numbering() {
        // Figure 3 lays out c1..c9 row-major; the centre is c5.
        let g = grid3x3();
        let c = g.locate(Point2::new(1.5, 1.5)).unwrap();
        assert_eq!(c.to_string(), "c5");
        let corner = g.locate(Point2::new(0.1, 0.1)).unwrap();
        assert_eq!(corner.to_string(), "c1");
    }

    #[test]
    fn locate_boundaries() {
        let g = grid3x3();
        assert!(g.locate(Point2::new(0.0, 0.0)).is_some());
        assert!(g.locate(Point2::new(3.0, 1.0)).is_none()); // upper bound exclusive
        assert!(g.locate(Point2::new(-0.001, 1.0)).is_none());
        assert!(g.locate(Point2::new(2.999, 2.999)).is_some());
    }

    #[test]
    fn offsets_are_antisymmetric() {
        let g = grid3x3();
        let a = g.locate(Point2::new(0.5, 0.5)).unwrap();
        let b = g.locate(Point2::new(2.5, 1.5)).unwrap();
        assert_eq!(g.offset(a, b), (2, 1));
        assert_eq!(g.offset(b, a), (-2, -1));
        assert_eq!(g.offset(a, a), (0, 0));
    }

    #[test]
    fn extension_within_reach_grows_grid() {
        let mut g = grid3x3(); // r_avg = 1 on both dims
        let policy = GrowthPolicy { lambda: 2.0 };
        // 4.5 is 1.5 beyond the upper bound 3.0: within 2 * r_avg.
        let ext = g.locate_or_extend(Point2::new(4.5, 1.5), policy);
        match ext {
            Extension::Extended {
                cell,
                prepended_cols,
                appended_cols,
                prepended_rows,
                appended_rows,
            } => {
                assert_eq!(prepended_cols, 0);
                assert_eq!(appended_cols, 2);
                assert_eq!(prepended_rows, 0);
                assert_eq!(appended_rows, 0);
                assert_eq!(g.columns(), 5);
                assert_eq!(g.rows(), 3);
                assert_eq!(g.locate(Point2::new(4.5, 1.5)), Some(cell));
            }
            other => panic!("expected extension, got {other:?}"),
        }
    }

    #[test]
    fn extension_beyond_reach_is_outlier() {
        let mut g = grid3x3();
        let before = g.clone();
        let ext = g.locate_or_extend(Point2::new(10.0, 1.5), GrowthPolicy { lambda: 2.0 });
        assert_eq!(ext, Extension::Outlier);
        assert_eq!(g, before, "outliers must not modify the grid");
    }

    #[test]
    fn frozen_policy_never_extends() {
        let mut g = grid3x3();
        let ext = g.locate_or_extend(Point2::new(3.0001, 1.0), GrowthPolicy::FROZEN);
        assert_eq!(ext, Extension::Outlier);
        assert_eq!(g.columns(), 3);
    }

    #[test]
    fn extension_below_lower_bound_prepends() {
        let mut g = grid3x3();
        let ext = g.locate_or_extend(Point2::new(-0.5, -0.5), GrowthPolicy { lambda: 1.0 });
        match ext {
            Extension::Extended {
                prepended_cols,
                prepended_rows,
                appended_cols,
                appended_rows,
                cell,
            } => {
                assert_eq!((prepended_cols, prepended_rows), (1, 1));
                assert_eq!((appended_cols, appended_rows), (0, 0));
                assert_eq!(g.locate(Point2::new(-0.5, -0.5)), Some(cell));
                assert_eq!(cell.index(), 0, "new bottom-left cell is c1");
            }
            other => panic!("expected extension, got {other:?}"),
        }
        // Old cells shifted by one column and one row.
        let old_origin = g.locate(Point2::new(0.5, 0.5)).unwrap();
        assert_eq!(g.location_of(old_origin), Location { col: 1, row: 1 });
    }

    #[test]
    fn contained_point_reports_contained() {
        let mut g = grid3x3();
        let ext = g.locate_or_extend(Point2::new(1.0, 1.0), GrowthPolicy::default());
        assert!(matches!(ext, Extension::Contained(_)));
    }

    #[test]
    fn non_finite_point_is_outlier() {
        let mut g = grid3x3();
        let ext = g.locate_or_extend(Point2::new(f64::NAN, 1.0), GrowthPolicy::default());
        assert_eq!(ext, Extension::Outlier);
    }

    #[test]
    fn display_mentions_shape() {
        let g = grid3x3();
        assert!(g.to_string().contains("3x3"));
    }

    #[test]
    fn serde_roundtrip() {
        let g = grid3x3();
        let json = serde_json::to_string(&g).unwrap();
        let back: GridStructure = serde_json::from_str(&json).unwrap();
        assert_eq!(g, back);
    }
}
