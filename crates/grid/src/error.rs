use std::error::Error;
use std::fmt;

/// Errors produced while building or extending a grid structure.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum GridError {
    /// The history data set was empty; a grid cannot be initialized.
    EmptyHistory,
    /// A dimension's data had no spread (all values equal), so no
    /// non-degenerate interval partition exists.
    DegenerateDimension {
        /// Which dimension (0 = x, 1 = y) collapsed.
        dimension: usize,
        /// The single value observed.
        value: f64,
    },
    /// A configuration value was out of range.
    InvalidConfig {
        /// Description of the offending parameter.
        reason: String,
    },
}

impl fmt::Display for GridError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GridError::EmptyHistory => write!(f, "cannot build a grid from empty history data"),
            GridError::DegenerateDimension { dimension, value } => write!(
                f,
                "dimension {dimension} has no spread (all samples equal {value})"
            ),
            GridError::InvalidConfig { reason } => {
                write!(f, "invalid grid configuration: {reason}")
            }
        }
    }
}

impl Error for GridError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(GridError::EmptyHistory.to_string().contains("empty"));
        let e = GridError::DegenerateDimension {
            dimension: 1,
            value: 3.5,
        };
        assert!(e.to_string().contains("dimension 1"));
        let e = GridError::InvalidConfig {
            reason: "unit count must be positive".into(),
        };
        assert!(e.to_string().contains("unit count"));
    }

    #[test]
    fn is_send_sync_error() {
        fn check<T: Error + Send + Sync + 'static>() {}
        check::<GridError>();
    }
}
