//! Adaptive two-dimensional grid discretization for `gridwatch`.
//!
//! The ICDCS 2009 paper partitions the two-dimensional value space of a
//! measurement pair into non-overlapping rectangular cells (Section 4.1):
//!
//! 1. **Initialization** — each dimension is divided into fine equal-width
//!    *units*; adjacent units are merged into *intervals* when their data
//!    counts are similar or both sparse (the density-adaptive strategy of
//!    the MAFIA subspace-clustering algorithm). Near-uniform dimensions
//!    fall back to plain equal-width intervals. The grid is the cross
//!    product of the two dimensions' intervals.
//! 2. **Online extension** — when a new point lands slightly outside the
//!    grid (within `λ · r_avg` of the boundary, where `r_avg` is the
//!    dimension's average interval width), the boundary gradually extends
//!    by appending intervals; points further out are outliers and leave
//!    the grid unchanged. Cells are never deleted, keeping the grid
//!    rectangular for fast indexing.
//!
//! The crate also defines the [`DecayKernel`] used by `gridwatch-core` for
//! the spatial-closeness prior and likelihood: transitions to nearby cells
//! are more probable, with probability decaying in the cell distance.
//!
//! # Example
//!
//! ```
//! use gridwatch_grid::{GridBuilder, GridConfig};
//! use gridwatch_timeseries::Point2;
//!
//! let points: Vec<Point2> = (0..500)
//!     .map(|k| {
//!         let x = (k % 100) as f64;
//!         Point2::new(x, x * 2.0)
//!     })
//!     .collect();
//! let grid = GridBuilder::new(GridConfig::default()).build(&points)?;
//! assert!(grid.cell_count() > 1);
//! let cell = grid.locate(gridwatch_timeseries::Point2::new(50.0, 100.0)).unwrap();
//! assert!(grid.cell_bounds(cell).0.contains(50.0));
//! # Ok::<(), gridwatch_grid::GridError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod builder;
mod distance;
mod error;
pub mod float;
mod interval;
pub mod invariants;
mod partition;
pub mod rows;
mod structure;

pub use builder::{GridBuilder, GridConfig};
pub use distance::DecayKernel;
pub use error::GridError;
pub use interval::Interval;
pub use partition::DimensionPartition;
pub use rows::{QuantizedRow, RowArena, RowFormat, RowSlot, SparseRow};
pub use structure::{CellId, Extension, GridStructure, GrowthPolicy, Location};
