//! Runtime invariant checks for grid structures.
//!
//! The paper's grid (Section 4.1) is only meaningful if the cells tile
//! the value space: every dimension partition must be a non-empty run of
//! finite, non-degenerate, contiguous half-open intervals, so that no two
//! cells overlap and every in-bounds point lands in exactly one cell.
//! The type system cannot see this, so this module provides
//!
//! * pure verifiers ([`verify_partition`], [`verify_grid`]) that return a
//!   description of the first violated invariant — reusable by
//!   `gridwatch-audit` for offline checkpoint validation; and
//! * assertion wrappers ([`check_partition`], [`check_grid`]) invoked at
//!   mutation sites, active under `debug_assertions` or the crate's
//!   `validate` feature and free otherwise.

use crate::{DimensionPartition, GridStructure};

/// Whether the assertion wrappers are active in this build: true under
/// `debug_assertions` or with the `validate` feature enabled.
pub const fn enabled() -> bool {
    cfg!(any(debug_assertions, feature = "validate"))
}

/// Verifies that a dimension partition tiles an interval of the real
/// line: non-empty, every bound finite, every interval non-degenerate,
/// and adjacent intervals sharing their boundary exactly.
///
/// Returns a description of the first violated invariant.
// Exact equality *is* the invariant here: extension copies the previous
// bound bit-for-bit, so any gap or overlap — however small — is a defect,
// not rounding noise.
#[allow(clippy::float_cmp)]
pub fn verify_partition(partition: &DimensionPartition) -> Result<(), String> {
    let intervals = partition.intervals();
    if intervals.is_empty() {
        return Err("partition has no intervals".to_owned());
    }
    for (k, iv) in intervals.iter().enumerate() {
        if !iv.lower().is_finite() || !iv.upper().is_finite() {
            return Err(format!("interval {k} has a non-finite bound: {iv}"));
        }
        if iv.lower() >= iv.upper() {
            return Err(format!("interval {k} is empty or inverted: {iv}"));
        }
    }
    for (k, w) in intervals.windows(2).enumerate() {
        if w[0].upper() != w[1].lower() {
            return Err(format!(
                "intervals {k} and {} do not tile the dimension: {} then {}",
                k + 1,
                w[0],
                w[1]
            ));
        }
    }
    Ok(())
}

/// Verifies both dimension partitions of a grid, so that the cross
/// product is a tiling of the plane by non-overlapping cells.
pub fn verify_grid(grid: &GridStructure) -> Result<(), String> {
    if let Err(why) = verify_partition(grid.x_partition()) {
        return Err(format!("x dimension: {why}"));
    }
    if let Err(why) = verify_partition(grid.y_partition()) {
        return Err(format!("y dimension: {why}"));
    }
    Ok(())
}

/// Asserts [`verify_partition`] when checks are [`enabled`].
pub fn check_partition(partition: &DimensionPartition) {
    if enabled() {
        let checked = verify_partition(partition);
        assert!(checked.is_ok(), "grid invariant violated: {checked:?}");
    }
}

/// Asserts [`verify_grid`] when checks are [`enabled`].
pub fn check_grid(grid: &GridStructure) {
    if enabled() {
        let checked = verify_grid(grid);
        assert!(checked.is_ok(), "grid invariant violated: {checked:?}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn well_formed_partition_passes() {
        let p = DimensionPartition::equal_width(0.0, 10.0, 7);
        assert!(verify_partition(&p).is_ok());
        check_partition(&p);
    }

    #[test]
    fn extension_preserves_the_tiling() {
        let mut p = DimensionPartition::equal_width(0.0, 4.0, 2);
        p.extend_to(11.0);
        p.extend_to(-7.0);
        assert!(verify_partition(&p).is_ok());
    }

    #[test]
    fn gap_is_reported() {
        // Construct the gap through serde, since `DimensionPartition::new`
        // asserts contiguity — this is exactly the checkpoint-tampering
        // path the verifier exists for.
        let json = r#"{
            "intervals": [
                {"lower": 0.0, "upper": 1.0},
                {"lower": 1.5, "upper": 2.0}
            ],
            "initial_avg_width": 1.0
        }"#;
        let p: DimensionPartition = serde_json::from_str(json).unwrap();
        let err = verify_partition(&p).unwrap_err();
        assert!(err.contains("do not tile"), "{err}");
    }

    #[test]
    fn non_finite_bound_is_reported() {
        // serde_json round-trips non-finite floats as `null`, which
        // deserializes back to NaN — precisely the tampered-checkpoint
        // shape the verifier must reject.
        let json = r#"{
            "intervals": [{"lower": 0.0, "upper": null}],
            "initial_avg_width": 1.0
        }"#;
        let p: DimensionPartition = serde_json::from_str(json).unwrap();
        let err = verify_partition(&p).unwrap_err();
        assert!(err.contains("non-finite"), "{err}");

        let json = r#"{
            "intervals": [{"lower": 0.0, "upper": 1e999}],
            "initial_avg_width": 1.0
        }"#;
        let p: DimensionPartition = serde_json::from_str(json).unwrap();
        let err = verify_partition(&p).unwrap_err();
        assert!(err.contains("non-finite"), "{err}");
    }

    #[test]
    fn empty_interval_is_reported() {
        let json = r#"{
            "intervals": [{"lower": 2.0, "upper": 2.0}],
            "initial_avg_width": 1.0
        }"#;
        let p: DimensionPartition = serde_json::from_str(json).unwrap();
        let err = verify_partition(&p).unwrap_err();
        assert!(err.contains("empty or inverted"), "{err}");
    }
}
