//! Epsilon-based floating-point comparison helpers shared across the
//! workspace.
//!
//! Fitness scores, transition probabilities and grid statistics are `f64`
//! values produced by long chains of arithmetic; comparing them with a
//! naked `==` is a correctness trap (and a `gridwatch-audit` lint
//! violation). This module is the one vetted place where tolerance is
//! made explicit, so every crate compares floats the same way.
//!
//! The helpers use a hybrid absolute/relative tolerance: values near zero
//! are compared absolutely, larger magnitudes relatively, both against
//! [`EPSILON`].

/// Default comparison tolerance.
///
/// Scores and probabilities in this workspace live in `[0, 1]` and are
/// computed from at most a few thousand accumulation steps, so `1e-9`
/// comfortably absorbs rounding while still catching real drift (a
/// mis-normalized transition row is off by orders of magnitude more).
pub const EPSILON: f64 = 1e-9;

/// Worst-case probability error of the u16 fixed-point row quantization
/// in [`crate::rows`] (pinned; compact-row tests compare against it).
///
/// For a row of `s` cells with peak probability `m ≤ 1`, each level is
/// `q_j = p_j/m · 65535 + e_j` with `|e_j| ≤ 0.5`, so the recovered
/// probability `q_j / Σq` differs from `p_j` by at most
/// `(0.5 + s/2) / (65535 − s/2)` — about `8e-3` even at `s = 1000`,
/// and far smaller on the peaked posteriors the model produces. `1e-2`
/// covers every grid this workspace builds with margin.
pub const ROW_QUANT_EPSILON: f64 = 1e-2;

/// Whether `a` and `b` are equal within [`EPSILON`] (hybrid
/// absolute/relative tolerance).
///
/// # Example
///
/// ```
/// use gridwatch_grid::float::approx_eq;
///
/// assert!(approx_eq(0.1 + 0.2, 0.3));
/// assert!(!approx_eq(0.3, 0.3 + 1e-6));
/// ```
// The blessed site for exact comparison: the fast path below covers
// identical values (including infinities) before the tolerance check.
#[allow(clippy::float_cmp)]
pub fn approx_eq(a: f64, b: f64) -> bool {
    if a == b {
        return true;
    }
    let scale = a.abs().max(b.abs()).max(1.0);
    (a - b).abs() <= EPSILON * scale
}

/// Whether `x` is zero within [`EPSILON`] (absolute tolerance).
pub fn approx_zero(x: f64) -> bool {
    x.abs() <= EPSILON
}

/// Whether `x` is one within [`EPSILON`].
pub fn approx_one(x: f64) -> bool {
    approx_eq(x, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn near_values_compare_equal() {
        assert!(approx_eq(0.1 + 0.2, 0.3));
        assert!(approx_eq(1e12, 1e12 * (1.0 + 1e-12)));
        assert!(approx_eq(f64::INFINITY, f64::INFINITY));
    }

    #[test]
    fn distinct_values_compare_unequal() {
        assert!(!approx_eq(0.0, 1e-6));
        assert!(!approx_eq(1.0, 1.0 + 1e-6));
        assert!(!approx_eq(f64::NAN, f64::NAN));
    }

    #[test]
    fn zero_and_one_helpers() {
        assert!(approx_zero(0.0));
        assert!(approx_zero(-1e-12));
        assert!(!approx_zero(1e-6));
        assert!(approx_one(1.0 - 1e-12));
        assert!(!approx_one(0.999));
    }
}
