use gridwatch_timeseries::stats::Histogram;
use gridwatch_timeseries::Point2;
use serde::{Deserialize, Serialize};

use crate::{DimensionPartition, GridError, GridStructure, Interval};

/// Configuration for the adaptive grid construction (Section 4.1 of the
/// paper).
///
/// The construction divides each dimension into `units_per_dimension` fine
/// equal-width units, counts the history points per unit, and merges
/// adjacent units into intervals when their counts are similar (relative
/// difference at most `merge_similarity`) or both sparse (below
/// `density_threshold_factor` times the average unit density). Dense areas
/// therefore end up represented by more cells. If a dimension's unit
/// counts are near-uniform (coefficient of variation below
/// `uniform_cv_threshold`), the procedure is skipped and the dimension is
/// split into `uniform_intervals` equal-width intervals, exactly as the
/// paper prescribes for equal-distributed data.
///
/// # Example
///
/// ```
/// use gridwatch_grid::GridConfig;
///
/// let config = GridConfig::builder()
///     .units_per_dimension(80)
///     .merge_similarity(0.25)
///     .max_intervals(20)
///     .build()?;
/// assert_eq!(config.units_per_dimension, 80);
/// # Ok::<(), gridwatch_grid::GridError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GridConfig {
    /// Number of fine units each dimension is initially divided into
    /// (the unit length `z^a` is the dimension's range divided by this).
    pub units_per_dimension: usize,
    /// Maximum relative difference between adjacent unit counts for them
    /// to be merged into one interval.
    pub merge_similarity: f64,
    /// Units whose count is below this fraction of the average unit count
    /// are "sparse"; adjacent sparse units merge unconditionally.
    pub density_threshold_factor: f64,
    /// If the coefficient of variation of unit counts is below this, the
    /// dimension is considered equal-distributed and split uniformly.
    pub uniform_cv_threshold: f64,
    /// Interval count used for the uniform fallback.
    pub uniform_intervals: usize,
    /// Hard cap on intervals per dimension; if adaptive merging produces
    /// more, the merge tolerance is relaxed by re-bucketing to this many
    /// equal-count intervals.
    pub max_intervals: usize,
    /// Lower bound on intervals per dimension.
    pub min_intervals: usize,
}

impl Default for GridConfig {
    fn default() -> Self {
        GridConfig {
            units_per_dimension: 60,
            merge_similarity: 0.30,
            density_threshold_factor: 0.25,
            uniform_cv_threshold: 0.15,
            uniform_intervals: 10,
            max_intervals: 32,
            min_intervals: 2,
        }
    }
}

impl GridConfig {
    /// Starts building a configuration from the defaults.
    pub fn builder() -> GridConfigBuilder {
        GridConfigBuilder {
            config: GridConfig::default(),
        }
    }

    /// Validates parameter ranges.
    ///
    /// # Errors
    ///
    /// Returns [`GridError::InvalidConfig`] when any parameter is out of
    /// range.
    pub fn validate(&self) -> Result<(), GridError> {
        let fail = |reason: &str| {
            Err(GridError::InvalidConfig {
                reason: reason.to_string(),
            })
        };
        if self.units_per_dimension < 2 {
            return fail("units_per_dimension must be at least 2");
        }
        if !(0.0..=1.0).contains(&self.merge_similarity) {
            return fail("merge_similarity must be in [0, 1]");
        }
        if !(0.0..=1.0).contains(&self.density_threshold_factor) {
            return fail("density_threshold_factor must be in [0, 1]");
        }
        if self.uniform_cv_threshold < 0.0 {
            return fail("uniform_cv_threshold must be non-negative");
        }
        if self.min_intervals == 0 {
            return fail("min_intervals must be positive");
        }
        if self.uniform_intervals < self.min_intervals {
            return fail("uniform_intervals must be at least min_intervals");
        }
        if self.max_intervals < self.min_intervals {
            return fail("max_intervals must be at least min_intervals");
        }
        if self.max_intervals > self.units_per_dimension {
            return fail("max_intervals cannot exceed units_per_dimension");
        }
        Ok(())
    }
}

/// Builder for [`GridConfig`]; see [`GridConfig::builder`].
#[derive(Debug, Clone)]
pub struct GridConfigBuilder {
    config: GridConfig,
}

impl GridConfigBuilder {
    /// Sets the number of fine units per dimension.
    pub fn units_per_dimension(mut self, units: usize) -> Self {
        self.config.units_per_dimension = units;
        self
    }

    /// Sets the merge similarity tolerance.
    pub fn merge_similarity(mut self, s: f64) -> Self {
        self.config.merge_similarity = s;
        self
    }

    /// Sets the sparse-density threshold factor.
    pub fn density_threshold_factor(mut self, f: f64) -> Self {
        self.config.density_threshold_factor = f;
        self
    }

    /// Sets the uniform-fallback CV threshold.
    pub fn uniform_cv_threshold(mut self, cv: f64) -> Self {
        self.config.uniform_cv_threshold = cv;
        self
    }

    /// Sets the uniform-fallback interval count.
    pub fn uniform_intervals(mut self, n: usize) -> Self {
        self.config.uniform_intervals = n;
        self
    }

    /// Sets the per-dimension interval cap.
    pub fn max_intervals(mut self, n: usize) -> Self {
        self.config.max_intervals = n;
        self
    }

    /// Sets the per-dimension interval floor.
    pub fn min_intervals(mut self, n: usize) -> Self {
        self.config.min_intervals = n;
        self
    }

    /// Validates and produces the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`GridError::InvalidConfig`] when any parameter is out of
    /// range.
    pub fn build(self) -> Result<GridConfig, GridError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

/// Builds [`GridStructure`]s from history data snapshots.
///
/// # Example
///
/// ```
/// use gridwatch_grid::{GridBuilder, GridConfig};
/// use gridwatch_timeseries::Point2;
///
/// // Bimodal data: dense near 0 and near 100.
/// let pts: Vec<Point2> = (0..200)
///     .map(|k| {
///         let base = if k % 2 == 0 { 0.0 } else { 100.0 };
///         Point2::new(base + (k % 10) as f64, base + (k % 7) as f64)
///     })
///     .collect();
/// let grid = GridBuilder::new(GridConfig::default()).build(&pts)?;
/// assert!(grid.locate(pts[0]).is_some());
/// # Ok::<(), gridwatch_grid::GridError>(())
/// ```
#[derive(Debug, Clone)]
pub struct GridBuilder {
    config: GridConfig,
}

impl GridBuilder {
    /// Creates a builder with the given configuration.
    pub fn new(config: GridConfig) -> Self {
        GridBuilder { config }
    }

    /// The builder's configuration.
    pub fn config(&self) -> &GridConfig {
        &self.config
    }

    /// Builds a grid from history points.
    ///
    /// # Errors
    ///
    /// * [`GridError::EmptyHistory`] if `points` is empty.
    /// * [`GridError::DegenerateDimension`] if either coordinate has zero
    ///   spread.
    /// * [`GridError::InvalidConfig`] if the configuration is invalid.
    pub fn build(&self, points: &[Point2]) -> Result<GridStructure, GridError> {
        self.config.validate()?;
        if points.is_empty() {
            return Err(GridError::EmptyHistory);
        }
        let xs: Vec<f64> = points.iter().map(|p| p.x).collect();
        let ys: Vec<f64> = points.iter().map(|p| p.y).collect();
        let px = self.build_dimension(&xs, 0)?;
        let py = self.build_dimension(&ys, 1)?;
        Ok(GridStructure::new(px, py))
    }

    /// Discretizes one dimension adaptively; see [`GridConfig`] for the
    /// algorithm.
    fn build_dimension(
        &self,
        values: &[f64],
        dimension: usize,
    ) -> Result<DimensionPartition, GridError> {
        let cfg = &self.config;
        let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        // Exact equality of the fold min and max means every sample is
        // the very same value — the one case a grid cannot be built for.
        #[allow(clippy::float_cmp)]
        if lo == hi {
            return Err(GridError::DegenerateDimension {
                dimension,
                value: lo,
            });
        }
        // Pad the upper bound so the maximum sample is contained in the
        // half-open range.
        let span = hi - lo;
        let hi = hi + span * 1e-9 + f64::EPSILON;

        let mut hist = Histogram::new(lo, hi, cfg.units_per_dimension);
        for &v in values {
            hist.add(v);
        }

        if unit_count_cv(hist.counts()) < cfg.uniform_cv_threshold {
            // Equal-distributed data: "we ignore the above procedure and
            // simply divide the dimension into equal-sized intervals".
            return Ok(DimensionPartition::equal_width(
                lo,
                hi,
                cfg.uniform_intervals,
            ));
        }

        let groups = merge_units(
            hist.counts(),
            cfg.merge_similarity,
            cfg.density_threshold_factor,
        );

        let intervals = if groups.len() > cfg.max_intervals {
            // Too fine: fall back to equal-frequency bucketing at the cap,
            // which still adapts to density but respects the budget.
            equal_frequency_bounds(values, lo, hi, cfg.max_intervals)
        } else if groups.len() < cfg.min_intervals {
            return Ok(DimensionPartition::equal_width(lo, hi, cfg.min_intervals));
        } else {
            // Convert unit-index groups to intervals.
            let w = hist.bin_width();
            groups
                .iter()
                .map(|&(start, end)| {
                    let a = lo + start as f64 * w;
                    let b = if end == cfg.units_per_dimension - 1 {
                        hi
                    } else {
                        lo + (end + 1) as f64 * w
                    };
                    Interval::new(a, b)
                })
                .collect()
        };
        Ok(DimensionPartition::new(intervals))
    }
}

/// Coefficient of variation of unit counts (0 for perfectly uniform).
fn unit_count_cv(counts: &[u64]) -> f64 {
    let n = counts.len() as f64;
    let mean = counts.iter().sum::<u64>() as f64 / n;
    if crate::float::approx_zero(mean) {
        return 0.0;
    }
    let var = counts
        .iter()
        .map(|&c| (c as f64 - mean).powi(2))
        .sum::<f64>()
        / n;
    var.sqrt() / mean
}

/// Greedy MAFIA-style merge: scan adjacent units, grouping while the next
/// unit's count is within `similarity` relative difference of the current
/// group's running average, or both are below the sparse threshold.
/// Returns inclusive `(start_unit, end_unit)` ranges.
fn merge_units(counts: &[u64], similarity: f64, density_factor: f64) -> Vec<(usize, usize)> {
    let avg = counts.iter().sum::<u64>() as f64 / counts.len() as f64;
    let sparse = avg * density_factor;
    let mut groups: Vec<(usize, usize)> = Vec::new();
    let mut start = 0usize;
    let mut group_sum = counts[0] as f64;
    for (i, &c) in counts.iter().enumerate().skip(1) {
        let group_len = (i - start) as f64;
        let group_avg = group_sum / group_len;
        let c = c as f64;
        let both_sparse = group_avg <= sparse && c <= sparse;
        let denom = group_avg.max(c).max(1.0);
        let similar = (group_avg - c).abs() / denom <= similarity;
        if both_sparse || similar {
            group_sum += c;
        } else {
            groups.push((start, i - 1));
            start = i;
            group_sum = c;
        }
    }
    groups.push((start, counts.len() - 1));
    groups
}

/// Equal-frequency interval boundaries: `k` intervals over `[lo, hi)` with
/// roughly equal point counts.
fn equal_frequency_bounds(values: &[f64], lo: f64, hi: f64, k: usize) -> Vec<Interval> {
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
    let mut bounds = vec![lo];
    for q in 1..k {
        let idx = q * sorted.len() / k;
        let v = sorted[idx.min(sorted.len() - 1)];
        let last = *bounds.last().expect("non-empty");
        if v > last && v < hi {
            bounds.push(v);
        }
    }
    bounds.push(hi);
    bounds
        .windows(2)
        .map(|w| Interval::new(w[0], w[1]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        GridConfig::default().validate().unwrap();
    }

    #[test]
    fn builder_rejects_bad_parameters() {
        assert!(GridConfig::builder()
            .units_per_dimension(1)
            .build()
            .is_err());
        assert!(GridConfig::builder().merge_similarity(1.5).build().is_err());
        assert!(GridConfig::builder().min_intervals(0).build().is_err());
        assert!(GridConfig::builder()
            .max_intervals(100)
            .units_per_dimension(50)
            .build()
            .is_err());
    }

    #[test]
    fn empty_history_rejected() {
        let err = GridBuilder::new(GridConfig::default())
            .build(&[])
            .unwrap_err();
        assert_eq!(err, GridError::EmptyHistory);
    }

    #[test]
    fn degenerate_dimension_rejected() {
        let pts: Vec<Point2> = (0..10).map(|k| Point2::new(5.0, k as f64)).collect();
        let err = GridBuilder::new(GridConfig::default())
            .build(&pts)
            .unwrap_err();
        assert!(matches!(
            err,
            GridError::DegenerateDimension { dimension: 0, .. }
        ));
    }

    #[test]
    fn uniform_data_uses_equal_width() {
        // Uniform grid of points -> CV of unit counts ~ 0.
        let pts: Vec<Point2> = (0..6000)
            .map(|k| Point2::new((k % 600) as f64 / 6.0, (k % 6000) as f64 / 60.0))
            .collect();
        let cfg = GridConfig::default();
        let grid = GridBuilder::new(cfg).build(&pts).unwrap();
        // Equal-width fallback yields exactly uniform_intervals per dim.
        assert_eq!(grid.x_partition().len(), cfg.uniform_intervals);
        let widths: Vec<f64> = grid
            .x_partition()
            .intervals()
            .iter()
            .map(|iv| iv.width())
            .collect();
        let (w0, wl) = (widths[0], widths[widths.len() - 1]);
        assert!((w0 - wl).abs() / w0 < 1e-6);
    }

    #[test]
    fn dense_regions_get_more_intervals() {
        // 90% of points in [0, 10), 10% spread over [10, 100).
        let mut pts = Vec::new();
        for k in 0..900 {
            let v = (k % 100) as f64 / 10.0;
            pts.push(Point2::new(v, v));
        }
        for k in 0..100 {
            let v = 10.0 + (k as f64) * 0.9;
            pts.push(Point2::new(v, v));
        }
        let grid = GridBuilder::new(GridConfig::default()).build(&pts).unwrap();
        let p = grid.x_partition();
        // Count intervals fully inside the dense region vs the sparse one.
        let dense = p.intervals().iter().filter(|iv| iv.upper() <= 10.5).count();
        let sparse = p.intervals().iter().filter(|iv| iv.lower() >= 10.5).count();
        assert!(
            dense >= sparse,
            "dense region should get at least as many intervals: dense={dense} sparse={sparse}"
        );
        // All points must be locatable.
        for p in &pts {
            assert!(grid.locate(*p).is_some(), "point {p:?} not locatable");
        }
    }

    #[test]
    fn max_intervals_cap_respected() {
        // Highly multi-modal data that would produce many groups.
        let mut pts = Vec::new();
        for mode in 0..50 {
            for k in 0..20 {
                let v = mode as f64 * 10.0 + (k as f64) * 0.01;
                pts.push(Point2::new(v, -v));
            }
        }
        let cfg = GridConfig::builder().max_intervals(8).build().unwrap();
        let grid = GridBuilder::new(cfg).build(&pts).unwrap();
        assert!(grid.x_partition().len() <= 8);
        assert!(grid.y_partition().len() <= 8);
        for p in &pts {
            assert!(grid.locate(*p).is_some());
        }
    }

    #[test]
    fn merge_units_groups_similar_counts() {
        let counts = [100, 98, 103, 5, 4, 6, 200, 198];
        let groups = merge_units(&counts, 0.3, 0.25);
        assert_eq!(groups, vec![(0, 2), (3, 5), (6, 7)]);
    }

    #[test]
    fn merge_units_single_group_when_all_similar() {
        let counts = [10, 10, 10, 10];
        let groups = merge_units(&counts, 0.3, 0.25);
        assert_eq!(groups, vec![(0, 3)]);
    }

    #[test]
    fn all_history_points_are_contained() {
        let pts: Vec<Point2> = (0..1000)
            .map(|k| {
                let t = k as f64 / 1000.0 * std::f64::consts::TAU;
                Point2::new(t.sin() * 50.0 + 100.0, t.cos() * 20.0 + 40.0)
            })
            .collect();
        let grid = GridBuilder::new(GridConfig::default()).build(&pts).unwrap();
        for p in &pts {
            assert!(grid.locate(*p).is_some(), "point {p:?} escaped the grid");
        }
    }
}
