use serde::{Deserialize, Serialize};

use crate::Interval;

/// An ordered, contiguous partition of one dimension into half-open
/// intervals.
///
/// Invariants (enforced at construction and under extension):
/// * at least one interval;
/// * intervals are contiguous: `intervals[k].upper == intervals[k+1].lower`.
///
/// The partition supports the paper's online boundary extension: when data
/// drift slightly past the bounds, new intervals of the average historical
/// width are appended (Section 4.1, "Update").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DimensionPartition {
    intervals: Vec<Interval>,
    /// Average interval width at initialization (`r_avg` in the paper);
    /// newly appended intervals use this width, so one noisy online batch
    /// cannot degrade the partition's resolution.
    initial_avg_width: f64,
}

impl DimensionPartition {
    /// The most intervals one [`DimensionPartition::extend_to`] call may
    /// add on each side. Growth-policy reach (`λ · r_avg`) needs at most
    /// `⌈λ⌉ + 1` intervals, so any λ below this cap is unaffected.
    pub const MAX_EXTENSION_INTERVALS: usize = 65_536;

    /// Creates a partition from contiguous intervals.
    ///
    /// # Panics
    ///
    /// Panics if `intervals` is empty or not contiguous in order.
    // Exact equality is the contiguity invariant: adjacent intervals must
    // share their boundary bit-for-bit, or `locate` could miss or
    // double-count a point.
    #[allow(clippy::float_cmp)]
    pub fn new(intervals: Vec<Interval>) -> Self {
        assert!(
            !intervals.is_empty(),
            "partition needs at least one interval"
        );
        for w in intervals.windows(2) {
            assert!(
                w[0].upper() == w[1].lower(),
                "partition intervals must be contiguous: {} then {}",
                w[0],
                w[1]
            );
        }
        let avg = (intervals[intervals.len() - 1].upper() - intervals[0].lower())
            / intervals.len() as f64;
        DimensionPartition {
            intervals,
            initial_avg_width: avg,
        }
    }

    /// Creates `count` equal-width intervals over `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `count == 0` or `lo >= hi`.
    pub fn equal_width(lo: f64, hi: f64, count: usize) -> Self {
        assert!(count > 0, "partition needs at least one interval");
        assert!(lo < hi, "partition range must be non-empty");
        let w = (hi - lo) / count as f64;
        let intervals = (0..count)
            .map(|k| {
                let lower = lo + k as f64 * w;
                // Use the exact upper bound for the last interval to avoid
                // floating-point gaps.
                let upper = if k == count - 1 {
                    hi
                } else {
                    lo + (k + 1) as f64 * w
                };
                Interval::new(lower, upper)
            })
            .collect();
        DimensionPartition::new(intervals)
    }

    /// Number of intervals.
    pub fn len(&self) -> usize {
        self.intervals.len()
    }

    /// Whether the partition is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.intervals.is_empty()
    }

    /// The intervals, in increasing order.
    pub fn intervals(&self) -> &[Interval] {
        &self.intervals
    }

    /// The partition's inclusive lower bound.
    pub fn lower(&self) -> f64 {
        self.intervals[0].lower()
    }

    /// The partition's exclusive upper bound.
    pub fn upper(&self) -> f64 {
        // Non-empty by construction, so direct indexing cannot fail.
        self.intervals[self.intervals.len() - 1].upper()
    }

    /// The average interval width *at initialization* (`r_avg`).
    pub fn average_width(&self) -> f64 {
        self.initial_avg_width
    }

    /// The index of the interval containing `value`, or `None` if out of
    /// bounds.
    pub fn locate(&self, value: f64) -> Option<usize> {
        if !(value >= self.lower() && value < self.upper()) {
            return None;
        }
        // Binary search over lower bounds: the containing interval is the
        // last one whose lower bound is <= value.
        let idx = self
            .intervals
            .partition_point(|iv| iv.lower() <= value)
            .saturating_sub(1);
        debug_assert!(self.intervals[idx].contains(value));
        Some(idx)
    }

    /// Extends the partition so that `value` becomes contained, appending
    /// intervals of width [`DimensionPartition::average_width`] below or
    /// above as needed. Returns the number of intervals prepended and
    /// appended: `(below, above)`.
    ///
    /// The caller decides *whether* extension is allowed (the `λ · r_avg`
    /// proximity rule lives in [`crate::GrowthPolicy`]); this method only
    /// performs it.
    ///
    /// Non-finite values, and finite values more than
    /// [`DimensionPartition::MAX_EXTENSION_INTERVALS`] average widths
    /// beyond a bound, leave the partition unchanged and return
    /// `(0, 0)`: `±inf` would otherwise append intervals forever, `NaN`
    /// would silently no-op by comparison luck, and a huge finite
    /// outlier (say `1e300`) would allocate an interval per average
    /// width between the bound and the value. The `λ · r_avg` reach rule
    /// keeps every policy-gated caller far below the cap.
    pub fn extend_to(&mut self, value: f64) -> (usize, usize) {
        if !value.is_finite() {
            return (0, 0);
        }
        let w = self.initial_avg_width;
        let cap = Self::MAX_EXTENSION_INTERVALS as f64 * w;
        if value < self.lower() - cap || value >= self.upper() + cap {
            return (0, 0);
        }
        let mut below = 0;
        while value < self.lower() {
            let lo = self.lower();
            self.intervals.insert(0, Interval::new(lo - w, lo));
            below += 1;
        }
        let mut above = 0;
        while value >= self.upper() {
            let hi = self.upper();
            self.intervals.push(Interval::new(hi, hi + w));
            above += 1;
        }
        crate::invariants::check_partition(self);
        (below, above)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_width_partition() {
        let p = DimensionPartition::equal_width(0.0, 10.0, 5);
        assert_eq!(p.len(), 5);
        assert_eq!(p.lower(), 0.0);
        assert_eq!(p.upper(), 10.0);
        assert_eq!(p.average_width(), 2.0);
        assert_eq!(p.locate(0.0), Some(0));
        assert_eq!(p.locate(9.999), Some(4));
        assert_eq!(p.locate(10.0), None);
        assert_eq!(p.locate(-0.1), None);
    }

    #[test]
    fn locate_respects_uneven_intervals() {
        let p = DimensionPartition::new(vec![
            Interval::new(0.0, 1.0),
            Interval::new(1.0, 5.0),
            Interval::new(5.0, 6.0),
        ]);
        assert_eq!(p.locate(0.5), Some(0));
        assert_eq!(p.locate(1.0), Some(1));
        assert_eq!(p.locate(4.999), Some(1));
        assert_eq!(p.locate(5.0), Some(2));
        assert_eq!(p.average_width(), 2.0);
    }

    #[test]
    fn extend_above_and_below() {
        let mut p = DimensionPartition::equal_width(0.0, 4.0, 2); // r_avg = 2
        let (below, above) = p.extend_to(7.5);
        assert_eq!((below, above), (0, 2)); // 4..6, 6..8
        assert_eq!(p.upper(), 8.0);
        assert_eq!(p.locate(7.5), Some(3));

        let (below, above) = p.extend_to(-3.0);
        assert_eq!((below, above), (2, 0)); // -2..0, -4..-2
        assert_eq!(p.lower(), -4.0);
        assert_eq!(p.locate(-3.0), Some(0));
        // All intervals still contiguous.
        for w in p.intervals().windows(2) {
            assert_eq!(w[0].upper(), w[1].lower());
        }
    }

    #[test]
    fn extend_to_contained_value_is_noop() {
        let mut p = DimensionPartition::equal_width(0.0, 4.0, 2);
        let before = p.clone();
        assert_eq!(p.extend_to(1.0), (0, 0));
        assert_eq!(p, before);
    }

    #[test]
    #[should_panic(expected = "contiguous")]
    fn gaps_rejected() {
        DimensionPartition::new(vec![Interval::new(0.0, 1.0), Interval::new(2.0, 3.0)]);
    }

    #[test]
    fn non_finite_values_leave_the_partition_unchanged() {
        // Regression: `extend_to(inf)` looped forever (the bound can
        // never catch up with an infinite value) and `extend_to(-inf)`
        // additionally allocated an interval per iteration.
        let mut p = DimensionPartition::equal_width(0.0, 4.0, 2);
        let before = p.clone();
        for v in [f64::INFINITY, f64::NEG_INFINITY, f64::NAN] {
            assert_eq!(p.extend_to(v), (0, 0), "value {v}");
            assert_eq!(p, before, "value {v} must not modify the partition");
        }
    }

    #[test]
    fn huge_values_are_refused_instead_of_allocating_unboundedly() {
        // 1e300 is ~5e299 average widths beyond the bound; extending to
        // it would need that many intervals.
        let mut p = DimensionPartition::equal_width(0.0, 4.0, 2);
        let before = p.clone();
        assert_eq!(p.extend_to(1e300), (0, 0));
        assert_eq!(p.extend_to(-1e300), (0, 0));
        assert_eq!(p, before);
        // Values inside the cap still extend normally.
        let (below, above) = p.extend_to(20.0);
        assert_eq!((below, above), (0, 9));
        assert!(p.locate(20.0).is_some());
    }

    #[test]
    fn average_width_is_fixed_at_initialization() {
        let mut p = DimensionPartition::equal_width(0.0, 4.0, 4); // r_avg = 1
        p.extend_to(10.0);
        assert_eq!(p.average_width(), 1.0);
    }
}
