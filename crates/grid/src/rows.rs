//! Compact probability-row representations for the transition matrix.
//!
//! A materialized probability row is `cell_count` `f64`s — 8 bytes per
//! cell. At million-measurement scale the row caches dominate a shard's
//! RSS, so this module provides two compact encodings plus an arena that
//! stores fixed-width quantized rows contiguously:
//!
//! * [`QuantizedRow`] — linear u16 fixed-point: `q_j = round(p_j / p_max
//!   · 65535)`, 2 bytes per cell (4× smaller than dense). The row keeps
//!   one `f64` (`denom = Σ q_j`) so probabilities are recovered as
//!   `q_j / denom` — a single exact division, deterministic across
//!   save/restore.
//! * [`SparseRow`] — only the non-zero quantized entries, sorted by cell
//!   index. Peaked posteriors (the common case after training: mass
//!   concentrates near the observed destinations) quantize most tail
//!   cells to zero, so the sparse form is smaller still.
//!
//! # Scoring contract
//!
//! Quantization is monotone (`p_a ≥ p_b ⇒ q_a ≥ q_b`), so the
//! competition rank computed on the `u16`s equals the rank computed on
//! the *dequantized* row `p'_j = q_j / denom`, and scoring a compact row
//! is **bit-identical** to scoring its materialization
//! ([`QuantizedRow::materialize`]) with the dense scorer. Against the
//! original `f64` row the recovered probabilities differ by at most
//! [`crate::float::ROW_QUANT_EPSILON`]; near-ties closer than one
//! quantization step may collapse into exact ties (which competition
//! ranking already handles).

use serde::{Deserialize, Serialize};

use crate::float::ROW_QUANT_EPSILON;

/// The quantization scale: the largest entry of every quantized row maps
/// to this value, so the full `u16` range is always used.
pub const QUANT_SCALE: u16 = u16::MAX;

/// How a transition matrix stores its materialized probability rows.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum RowFormat {
    /// Full `f64` per cell — the exact posterior, 8 bytes/cell.
    #[default]
    Dense,
    /// Linear u16 fixed-point ([`QuantizedRow`]), 2 bytes/cell,
    /// arena-backed.
    Quantized,
    /// Non-zero quantized entries only ([`SparseRow`]), 6 bytes/entry.
    Sparse,
}

impl RowFormat {
    /// The flag-friendly name (`dense`, `quantized`, `sparse`).
    pub fn name(self) -> &'static str {
        match self {
            RowFormat::Dense => "dense",
            RowFormat::Quantized => "quantized",
            RowFormat::Sparse => "sparse",
        }
    }
}

impl std::fmt::Display for RowFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for RowFormat {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "dense" => Ok(RowFormat::Dense),
            "quantized" | "quant" => Ok(RowFormat::Quantized),
            "sparse" => Ok(RowFormat::Sparse),
            other => Err(format!(
                "unknown row format {other:?} (expected dense, quantized, or sparse)"
            )),
        }
    }
}

/// Quantizes one dense probability row into `(q, denom)`.
///
/// `q_j = round(p_j / p_max · 65535)`; `denom = Σ q_j` as `f64`. The
/// maximum entry always quantizes to [`QUANT_SCALE`] exactly, and the
/// mapping is monotone, so ranks survive quantization.
///
/// # Panics
///
/// Panics if the row is empty or contains a negative or non-finite
/// probability (a corrupted posterior; normalized rows are in `[0, 1]`).
pub fn quantize_row(row: &[f64]) -> (Vec<u16>, f64) {
    assert!(!row.is_empty(), "cannot quantize an empty row");
    let mut max = 0.0f64;
    for &p in row {
        assert!(
            p.is_finite() && p >= 0.0,
            "probability rows must be finite and non-negative, got {p}"
        );
        if p > max {
            max = p;
        }
    }
    assert!(max > 0.0, "probability row has no mass");
    let scale = f64::from(QUANT_SCALE) / max;
    let mut denom = 0.0f64;
    let q: Vec<u16> = row
        .iter()
        .map(|&p| {
            // `p / max <= 1`, so the product is within u16 range and the
            // cast cannot truncate.
            let v = (p * scale).round() as u16;
            denom += f64::from(v);
            v
        })
        .collect();
    (q, denom)
}

/// A probability row stored as linear u16 fixed-point.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedRow {
    q: Vec<u16>,
    denom: f64,
}

impl QuantizedRow {
    /// Quantizes a dense row; see [`quantize_row`].
    pub fn from_dense(row: &[f64]) -> Self {
        let (q, denom) = quantize_row(row);
        QuantizedRow { q, denom }
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.q.len()
    }

    /// Whether the row has no cells (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.q.is_empty()
    }

    /// The quantized entries.
    pub fn levels(&self) -> &[u16] {
        &self.q
    }

    /// The normalization denominator `Σ q_j`.
    pub fn denom(&self) -> f64 {
        self.denom
    }

    /// The recovered probability of cell `j`: `q_j / denom`.
    pub fn probability(&self, j: usize) -> f64 {
        f64::from(self.q[j]) / self.denom
    }

    /// The dequantized dense row — the canonical `f64` row this compact
    /// row represents. Scoring the compact row is bit-identical to
    /// scoring this materialization.
    pub fn materialize(&self) -> Vec<f64> {
        materialize_levels(&self.q, self.denom)
    }

    /// Approximate heap footprint in bytes.
    pub fn bytes(&self) -> usize {
        self.q.len() * 2 + std::mem::size_of::<f64>()
    }
}

/// Dequantizes `(levels, denom)` into the canonical dense row.
pub fn materialize_levels(levels: &[u16], denom: f64) -> Vec<f64> {
    levels.iter().map(|&v| f64::from(v) / denom).collect()
}

/// A probability row stored as its non-zero quantized entries.
///
/// Entries are `(cell_index, level)` pairs sorted by cell index with
/// every level positive; absent cells dequantize to exactly `0.0` and
/// share the worst competition rank.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseRow {
    entries: Vec<(u32, u16)>,
    len: usize,
    denom: f64,
}

impl SparseRow {
    /// Quantizes a dense row and keeps only the non-zero entries.
    ///
    /// # Panics
    ///
    /// Panics on rows longer than `u32::MAX` cells (far beyond any real
    /// grid) or on invalid probabilities (see [`quantize_row`]).
    pub fn from_dense(row: &[f64]) -> Self {
        assert!(u32::try_from(row.len()).is_ok(), "row too long for u32");
        let (q, denom) = quantize_row(row);
        let entries = q
            .iter()
            .enumerate()
            .filter(|&(_, &v)| v > 0)
            .map(|(j, &v)| (j as u32, v))
            .collect();
        SparseRow {
            entries,
            len: row.len(),
            denom,
        }
    }

    /// Number of cells in the full row.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the full row has no cells (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The stored non-zero entries, sorted by cell index.
    pub fn entries(&self) -> &[(u32, u16)] {
        &self.entries
    }

    /// The normalization denominator `Σ q_j`.
    pub fn denom(&self) -> f64 {
        self.denom
    }

    /// The quantized level of cell `j` (0 when absent).
    pub fn level(&self, j: usize) -> u16 {
        let j = j as u32;
        match self.entries.binary_search_by_key(&j, |&(c, _)| c) {
            Ok(k) => self.entries[k].1,
            Err(_) => 0,
        }
    }

    /// The recovered probability of cell `j`.
    pub fn probability(&self, j: usize) -> f64 {
        f64::from(self.level(j)) / self.denom
    }

    /// The dequantized dense row (absent cells are exactly `0.0`,
    /// matching `0 / denom`).
    pub fn materialize(&self) -> Vec<f64> {
        let mut row = vec![0.0; self.len];
        for &(j, v) in &self.entries {
            row[j as usize] = f64::from(v) / self.denom;
        }
        row
    }

    /// Approximate heap footprint in bytes.
    pub fn bytes(&self) -> usize {
        self.entries.len() * std::mem::size_of::<(u32, u16)>() + std::mem::size_of::<f64>() * 2
    }
}

/// A handle into a [`RowArena`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RowSlot(u32);

/// A slab of fixed-width quantized rows stored contiguously.
///
/// Each transition matrix caches its materialized quantized rows here
/// instead of in per-row `Vec`s, so a shard's row cache is a handful of
/// large allocations rather than thousands of small ones. The width is
/// the grid's cell count; growing the grid resets the arena (rows are a
/// cache over the observation counts and recompute on demand).
#[derive(Debug, Clone, Default)]
pub struct RowArena {
    width: usize,
    slab: Vec<u16>,
    free: Vec<u32>,
}

impl RowArena {
    /// An empty arena with no width; the first [`RowArena::reset`] sets
    /// the row width.
    pub fn new() -> Self {
        RowArena::default()
    }

    /// Drops every row and fixes the row width for subsequent
    /// allocations.
    pub fn reset(&mut self, width: usize) {
        self.width = width;
        self.slab.clear();
        self.free.clear();
    }

    /// The fixed row width (0 before the first reset).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of live rows.
    pub fn live_rows(&self) -> usize {
        if self.width == 0 {
            return 0;
        }
        self.slab.len() / self.width - self.free.len()
    }

    /// The slab's allocated footprint in bytes (live and free slots).
    pub fn bytes(&self) -> usize {
        self.slab.capacity() * 2
    }

    /// Bytes holding live rows only — the payload the quantized format
    /// shrinks 4x against dense `f64` rows (free slots and bookkeeping
    /// excluded).
    pub fn live_bytes(&self) -> usize {
        self.live_rows() * self.width * 2
    }

    /// Stores one row, reusing a freed slot when available.
    ///
    /// # Panics
    ///
    /// Panics if `levels` does not match the arena width.
    pub fn alloc(&mut self, levels: &[u16]) -> RowSlot {
        assert_eq!(
            levels.len(),
            self.width,
            "arena width is {}, row has {} cells",
            self.width,
            levels.len()
        );
        if let Some(slot) = self.free.pop() {
            let start = slot as usize * self.width;
            self.slab[start..start + self.width].copy_from_slice(levels);
            return RowSlot(slot);
        }
        let slot = (self.slab.len() / self.width.max(1)) as u32;
        // Exact growth: the slab is the dominant RSS term at scale, so
        // one row's worth at a time beats Vec's doubling slack (row
        // counts are bounded by the grid's cell count, so the O(rows)
        // reallocations stay trivial).
        self.slab.reserve_exact(self.width);
        self.slab.extend_from_slice(levels);
        RowSlot(slot)
    }

    /// Releases one row's slot for reuse. The slot must have come from
    /// [`RowArena::alloc`] on this arena since the last reset and must
    /// not be freed twice (callers keep at most one slot per source
    /// cell, so this is enforced structurally).
    pub fn free(&mut self, slot: RowSlot) {
        debug_assert!(
            !self.free.contains(&slot.0),
            "row slot {} freed twice",
            slot.0
        );
        self.free.push(slot.0);
    }

    /// The row stored at `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range (stale after a reset).
    pub fn get(&self, slot: RowSlot) -> &[u16] {
        let start = slot.0 as usize * self.width;
        &self.slab[start..start + self.width]
    }
}

/// Verifies the internal consistency of a quantized row: non-empty,
/// maximum level exactly [`QUANT_SCALE`], and `denom` equal to the sum
/// of levels. Returns a description of the first violated invariant.
pub fn verify_quantized_levels(levels: &[u16], denom: f64) -> Result<(), String> {
    if levels.is_empty() {
        return Err("quantized row has no cells".to_owned());
    }
    let max = levels.iter().copied().max().unwrap_or(0);
    if max != QUANT_SCALE {
        return Err(format!(
            "quantized row peak is {max}, expected {QUANT_SCALE}"
        ));
    }
    let sum: f64 = levels.iter().map(|&v| f64::from(v)).sum();
    if sum.to_bits() != denom.to_bits() {
        return Err(format!("denominator {denom} != level sum {sum}"));
    }
    Ok(())
}

/// Verifies a sparse row: entries sorted by strictly increasing cell
/// index, all indices in range, all levels positive, peak level exactly
/// [`QUANT_SCALE`], and `denom` equal to the level sum.
pub fn verify_sparse_row(row: &SparseRow) -> Result<(), String> {
    if row.len == 0 {
        return Err("sparse row has zero cells".to_owned());
    }
    let mut prev: Option<u32> = None;
    let mut max = 0u16;
    let mut sum = 0.0f64;
    for &(j, v) in &row.entries {
        if (j as usize) >= row.len {
            return Err(format!("entry cell {j} out of range for {} cells", row.len));
        }
        if v == 0 {
            return Err(format!("entry cell {j} stores a zero level"));
        }
        if let Some(p) = prev {
            if j <= p {
                return Err(format!("entries out of order: cell {j} after {p}"));
            }
        }
        prev = Some(j);
        max = max.max(v);
        sum += f64::from(v);
    }
    if max != QUANT_SCALE {
        return Err(format!("sparse row peak is {max}, expected {QUANT_SCALE}"));
    }
    if sum.to_bits() != row.denom.to_bits() {
        return Err(format!("denominator {} != level sum {sum}", row.denom));
    }
    Ok(())
}

/// Verifies that a compact row's recovered probabilities stay within
/// [`ROW_QUANT_EPSILON`] of the original dense row it was quantized
/// from.
pub fn verify_quantization_error(original: &[f64], recovered: &[f64]) -> Result<(), String> {
    if original.len() != recovered.len() {
        return Err(format!(
            "row lengths differ: {} vs {}",
            original.len(),
            recovered.len()
        ));
    }
    for (j, (&p, &r)) in original.iter().zip(recovered).enumerate() {
        if (p - r).abs() > ROW_QUANT_EPSILON {
            return Err(format!(
                "cell {j}: recovered {r} is {} from original {p} (limit {ROW_QUANT_EPSILON})",
                (p - r).abs()
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn normalized(raw: &[f64]) -> Vec<f64> {
        let sum: f64 = raw.iter().sum();
        raw.iter().map(|&v| v / sum).collect()
    }

    #[test]
    fn quantization_is_monotone_and_peaks_at_scale() {
        let row = normalized(&[0.5, 3.0, 1.0, 0.0, 3.0, 0.25]);
        let (q, denom) = quantize_row(&row);
        assert_eq!(q.iter().copied().max(), Some(QUANT_SCALE));
        assert!(denom > 0.0);
        for i in 0..row.len() {
            for j in 0..row.len() {
                if row[i] > row[j] {
                    assert!(q[i] >= q[j], "monotonicity broken at ({i}, {j})");
                }
            }
        }
        verify_quantized_levels(&q, denom).unwrap();
    }

    #[test]
    fn recovered_probabilities_are_close_and_normalized() {
        let row = normalized(&[0.01, 0.2, 0.79, 1.3, 0.0002, 2.0]);
        let qr = QuantizedRow::from_dense(&row);
        let back = qr.materialize();
        verify_quantization_error(&row, &back).unwrap();
        let sum: f64 = back.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "materialized row sums to {sum}");
    }

    #[test]
    fn sparse_row_drops_only_zero_levels() {
        // A strongly peaked row: tail cells quantize to zero.
        let mut raw = vec![1e-9; 64];
        raw[10] = 1.0;
        raw[11] = 0.5;
        let row = normalized(&raw);
        let sr = SparseRow::from_dense(&row);
        assert!(sr.entries().len() < row.len());
        verify_sparse_row(&sr).unwrap();
        let qr = QuantizedRow::from_dense(&row);
        // Sparse and quantized materializations are bit-identical.
        let (a, b) = (sr.materialize(), qr.materialize());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        assert_eq!(sr.probability(10).to_bits(), qr.probability(10).to_bits());
        assert_eq!(sr.level(0), 0);
        assert_eq!(sr.probability(0), 0.0);
    }

    #[test]
    fn arena_allocates_frees_and_reuses_slots() {
        let mut arena = RowArena::new();
        arena.reset(4);
        let a = arena.alloc(&[1, 2, 3, QUANT_SCALE]);
        let b = arena.alloc(&[QUANT_SCALE, 0, 0, 0]);
        assert_eq!(arena.get(a), &[1, 2, 3, QUANT_SCALE]);
        assert_eq!(arena.get(b), &[QUANT_SCALE, 0, 0, 0]);
        assert_eq!(arena.live_rows(), 2);
        arena.free(a);
        assert_eq!(arena.live_rows(), 1);
        let c = arena.alloc(&[9, 9, 9, QUANT_SCALE]);
        assert_eq!(c, a, "freed slot is reused");
        assert_eq!(arena.get(c), &[9, 9, 9, QUANT_SCALE]);
        assert_eq!(arena.live_rows(), 2);
        arena.reset(2);
        assert_eq!(arena.live_rows(), 0);
        let d = arena.alloc(&[7, QUANT_SCALE]);
        assert_eq!(arena.get(d), &[7, QUANT_SCALE]);
    }

    #[test]
    #[should_panic(expected = "arena width")]
    fn arena_rejects_mismatched_width() {
        let mut arena = RowArena::new();
        arena.reset(3);
        arena.alloc(&[1, 2]);
    }

    #[test]
    fn row_format_parses_and_displays() {
        for f in [RowFormat::Dense, RowFormat::Quantized, RowFormat::Sparse] {
            assert_eq!(f.name().parse::<RowFormat>().unwrap(), f);
            assert_eq!(f.to_string(), f.name());
        }
        assert_eq!("quant".parse::<RowFormat>().unwrap(), RowFormat::Quantized);
        assert!("bogus".parse::<RowFormat>().is_err());
        assert_eq!(RowFormat::default(), RowFormat::Dense);
    }

    #[test]
    fn row_format_serde_defaults_to_dense() {
        #[derive(serde::Deserialize)]
        struct Holder {
            #[serde(default)]
            format: RowFormat,
        }
        let h: Holder = serde_json::from_str("{}").unwrap();
        assert_eq!(h.format, RowFormat::Dense);
        let h: Holder = serde_json::from_str(r#"{"format":"Sparse"}"#).unwrap();
        assert_eq!(h.format, RowFormat::Sparse);
    }

    #[test]
    fn verify_quantized_levels_rejects_corruption() {
        let row = normalized(&[1.0, 2.0, 3.0]);
        let (q, denom) = quantize_row(&row);
        assert!(verify_quantized_levels(&q, denom + 1.0)
            .unwrap_err()
            .contains("denominator"));
        let mut capped = q.clone();
        for v in &mut capped {
            *v /= 2;
        }
        assert!(verify_quantized_levels(&capped, denom)
            .unwrap_err()
            .contains("peak"));
        assert!(verify_quantized_levels(&[], 0.0).is_err());
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn quantize_rejects_nan() {
        quantize_row(&[0.5, f64::NAN]);
    }
}
