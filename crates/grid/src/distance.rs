use serde::{Deserialize, Serialize};

/// The spatial-closeness decay kernel: how fast transition probability
/// decays with the distance between grid cells.
///
/// The paper defines the prior as `P(c_i → c_j) ∝ P(c_i → c_i) /
/// w^{d(c_i, c_j)}` and reuses the same exponential-decay shape for the
/// likelihood of Eq. (2). The printed example matrix (Figure 5) pins down
/// the exact kernel: for per-axis cell offsets `(dx, dy)` the decay weight
/// is the *arithmetic mean of per-axis decays*, `(w^dx + w^dy) / 2` —
/// every entry of the paper's 9×9 matrix matches this formula with
/// `w = 2`. That variant is [`DecayKernel::MeanAxis`], the default.
///
/// The other variants use a scalar cell distance `d` in `w^d`, offered for
/// ablation studies.
///
/// # Example
///
/// ```
/// use gridwatch_grid::DecayKernel;
///
/// let k = DecayKernel::default(); // MeanAxis
/// assert_eq!(k.weight(2.0, 0, 0), 1.0);
/// assert_eq!(k.weight(2.0, 1, 0), 1.5);  // (2^1 + 2^0)/2
/// assert_eq!(k.weight(2.0, 1, 1), 2.0);
/// assert_eq!(k.weight(2.0, 2, 2), 4.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
#[non_exhaustive]
pub enum DecayKernel {
    /// Weight `(w^|dx| + w^|dy|) / 2` — the kernel implied by the paper's
    /// printed prior matrix.
    #[default]
    MeanAxis,
    /// Weight `w^max(|dx|, |dy|)` (Chebyshev distance).
    Chebyshev,
    /// Weight `w^(|dx| + |dy|)` (Manhattan distance).
    Manhattan,
    /// Weight `w^sqrt(dx² + dy²)` (Euclidean distance).
    Euclidean,
}

impl DecayKernel {
    /// The decay weight between two cells offset by `(dx, dy)` rows and
    /// columns, for decay rate `w`.
    ///
    /// The weight is `1` at zero offset and grows with the offset; the
    /// prior transition probability is proportional to its reciprocal.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `w <= 1` (the decay would not decay).
    pub fn weight(self, w: f64, dx: i64, dy: i64) -> f64 {
        debug_assert!(w > 1.0, "decay rate must exceed 1, got {w}");
        let dx = dx.unsigned_abs() as f64;
        let dy = dy.unsigned_abs() as f64;
        match self {
            DecayKernel::MeanAxis => (w.powf(dx) + w.powf(dy)) / 2.0,
            DecayKernel::Chebyshev => w.powf(dx.max(dy)),
            DecayKernel::Manhattan => w.powf(dx + dy),
            DecayKernel::Euclidean => w.powf((dx * dx + dy * dy).sqrt()),
        }
    }

    /// Natural log of [`DecayKernel::weight`], used for the additive
    /// log-space updates of Eq. (1) ("we take log over all the
    /// probabilities, and the updates can be performed using additive
    /// operations").
    pub fn log_weight(self, w: f64, dx: i64, dy: i64) -> f64 {
        self.weight(w, dx, dy).ln()
    }

    /// All kernel variants, for ablation sweeps.
    pub const ALL: [DecayKernel; 4] = [
        DecayKernel::MeanAxis,
        DecayKernel::Chebyshev,
        DecayKernel::Manhattan,
        DecayKernel::Euclidean,
    ];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_axis_matches_figure5_ratios() {
        // Figure 5's row c1 (corner cell of a 3x3 grid): the probability
        // ratios P(c1→c1)/P(c1→cj) are exactly these weights with w = 2.
        let k = DecayKernel::MeanAxis;
        let cases = [
            ((0, 0), 1.0), // c1 itself
            ((0, 1), 1.5), // c2
            ((0, 2), 2.5), // c3
            ((1, 0), 1.5), // c4
            ((1, 1), 2.0), // c5
            ((1, 2), 3.0), // c6
            ((2, 0), 2.5), // c7
            ((2, 1), 3.0), // c8
            ((2, 2), 4.0), // c9
        ];
        for ((dx, dy), want) in cases {
            assert_eq!(k.weight(2.0, dx, dy), want, "offset ({dx},{dy})");
        }
    }

    #[test]
    fn kernels_are_symmetric_in_sign_and_axis_order_where_expected() {
        for k in DecayKernel::ALL {
            for (dx, dy) in [(0, 0), (1, 2), (3, 1)] {
                let w = k.weight(2.0, dx, dy);
                assert_eq!(w, k.weight(2.0, -dx, dy));
                assert_eq!(w, k.weight(2.0, dx, -dy));
                assert_eq!(w, k.weight(2.0, dy, dx));
            }
        }
    }

    #[test]
    fn weight_is_one_at_origin_and_increases() {
        for k in DecayKernel::ALL {
            assert_eq!(k.weight(2.0, 0, 0), 1.0);
            let mut prev = 1.0;
            for d in 1..6 {
                let w = k.weight(2.0, d, d);
                assert!(w > prev, "{k:?} at offset {d}");
                prev = w;
            }
        }
    }

    #[test]
    fn scalar_kernels_match_their_metric() {
        assert_eq!(DecayKernel::Chebyshev.weight(3.0, 2, 1), 9.0);
        assert_eq!(DecayKernel::Manhattan.weight(3.0, 2, 1), 27.0);
        let e = DecayKernel::Euclidean.weight(2.0, 3, 4);
        assert!((e - 32.0).abs() < 1e-12); // 2^5
    }

    #[test]
    fn log_weight_consistency() {
        for k in DecayKernel::ALL {
            let lw = k.log_weight(2.0, 2, 1);
            assert!((lw - k.weight(2.0, 2, 1).ln()).abs() < 1e-15);
        }
    }
}
