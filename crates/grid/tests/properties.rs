//! Property-based tests for grid invariants: every history point is
//! locatable, partitions stay contiguous under extension, kernels are
//! well-behaved, and extension remaps are consistent.

use gridwatch_grid::{
    DecayKernel, DimensionPartition, Extension, GridBuilder, GridConfig, GridStructure,
    GrowthPolicy,
};
use gridwatch_timeseries::Point2;
use proptest::prelude::*;

fn arb_points() -> impl Strategy<Value = Vec<Point2>> {
    prop::collection::vec((-1e4f64..1e4, -1e4f64..1e4), 2..300).prop_map(|v| {
        v.into_iter()
            .map(|(x, y)| Point2::new(x, y))
            .collect::<Vec<_>>()
    })
}

proptest! {
    #[test]
    fn every_history_point_is_locatable(points in arb_points()) {
        let builder = GridBuilder::new(GridConfig::default());
        match builder.build(&points) {
            Ok(grid) => {
                for p in &points {
                    prop_assert!(grid.locate(*p).is_some(), "history point {p:?} escaped");
                }
            }
            Err(_) => {
                // Only acceptable failure: a degenerate dimension.
                let xs_equal = points.windows(2).all(|w| w[0].x == w[1].x);
                let ys_equal = points.windows(2).all(|w| w[0].y == w[1].y);
                prop_assert!(xs_equal || ys_equal);
            }
        }
    }

    #[test]
    fn partition_locate_agrees_with_contains(
        lo in -1e3f64..0.0,
        width in 0.1f64..1e3,
        count in 1usize..30,
        probes in prop::collection::vec(-2e3f64..2e3, 1..50),
    ) {
        let p = DimensionPartition::equal_width(lo, lo + width, count);
        for v in probes {
            match p.locate(v) {
                Some(i) => prop_assert!(p.intervals()[i].contains(v)),
                None => prop_assert!(v < p.lower() || v >= p.upper()),
            }
        }
    }

    #[test]
    fn extension_keeps_partition_contiguous(
        count in 1usize..10,
        targets in prop::collection::vec(-500f64..500.0, 1..20),
    ) {
        let mut p = DimensionPartition::equal_width(0.0, 10.0, count);
        for t in targets {
            p.extend_to(t);
            prop_assert!(p.locate(t).is_some());
            for w in p.intervals().windows(2) {
                prop_assert_eq!(w[0].upper(), w[1].lower());
            }
        }
    }

    #[test]
    fn grid_extension_remap_is_consistent(
        px in -20f64..20.0,
        py in -20f64..20.0,
        lambda in 0.5f64..50.0,
    ) {
        let mut g = GridStructure::uniform((0.0, 3.0), (0.0, 3.0), 3, 3);
        let old_cols = g.columns();
        let old_rows = g.rows();
        // Track where a fixed reference point lives before extension.
        let ref_point = Point2::new(1.5, 1.5);
        let old_loc = g.location_of(g.locate(ref_point).unwrap());
        match g.locate_or_extend(Point2::new(px, py), GrowthPolicy { lambda }) {
            Extension::Contained(c) => {
                prop_assert_eq!(g.locate(Point2::new(px, py)), Some(c));
                prop_assert_eq!(g.columns(), old_cols);
            }
            Extension::Extended { cell, prepended_cols, prepended_rows, appended_cols, appended_rows } => {
                prop_assert_eq!(g.locate(Point2::new(px, py)), Some(cell));
                prop_assert_eq!(g.columns(), old_cols + prepended_cols + appended_cols);
                prop_assert_eq!(g.rows(), old_rows + prepended_rows + appended_rows);
                // Reference point shifted by exactly the prepend counts.
                let new_loc = g.location_of(g.locate(ref_point).unwrap());
                prop_assert_eq!(new_loc.col, old_loc.col + prepended_cols);
                prop_assert_eq!(new_loc.row, old_loc.row + prepended_rows);
            }
            Extension::Outlier => {
                prop_assert_eq!(g.columns(), old_cols);
                prop_assert_eq!(g.rows(), old_rows);
                // The point really is out of reach on some dimension.
                let rx = lambda * g.x_partition().average_width();
                let ry = lambda * g.y_partition().average_width();
                let x_ok = px >= -rx && px < 3.0 + rx;
                let y_ok = py >= -ry && py < 3.0 + ry;
                prop_assert!(!(x_ok && y_ok));
            }
        }
    }

    #[test]
    fn kernel_weights_positive_and_monotone_in_each_axis(
        w in 1.01f64..8.0,
        dx in 0i64..12,
        dy in 0i64..12,
    ) {
        for k in DecayKernel::ALL {
            let base = k.weight(w, dx, dy);
            prop_assert!(base >= 1.0);
            // All kernels are (at least weakly) monotone per axis;
            // Chebyshev is flat while the other axis dominates.
            prop_assert!(k.weight(w, dx + 1, dy) >= base);
            prop_assert!(k.weight(w, dx, dy + 1) >= base);
        }
        // MeanAxis and Manhattan are strictly monotone per axis.
        for k in [DecayKernel::MeanAxis, DecayKernel::Manhattan] {
            let base = k.weight(w, dx, dy);
            prop_assert!(k.weight(w, dx + 1, dy) > base);
            prop_assert!(k.weight(w, dx, dy + 1) > base);
        }
    }

    #[test]
    fn flat_ids_are_a_bijection(cols in 1usize..20, rows in 1usize..20) {
        let g = GridStructure::uniform((0.0, 1.0), (0.0, 1.0), cols, rows);
        let mut seen = vec![false; g.cell_count()];
        for cell in g.cells() {
            let loc = g.location_of(cell);
            prop_assert!(loc.col < cols && loc.row < rows);
            prop_assert_eq!(g.cell_at(loc), cell);
            prop_assert!(!seen[cell.index()]);
            seen[cell.index()] = true;
        }
        prop_assert!(seen.iter().all(|&s| s));
    }
}
