//! gridwatch-serve: sharded concurrent online detection service.
//!
//! Partitions the measurement pairs of a trained
//! [`gridwatch_detect::DetectionEngine`] across worker shards, fans
//! snapshots out over bounded channels with configurable backpressure,
//! merges per-shard partial scores into exact three-level aggregates, and
//! checkpoints per-shard engine state atomically for crash recovery.
//!
//! The [`net`] module puts a TCP ingestion tier in front of the engine:
//! framed snapshot decoding ([`wire`]), per-source sequencing
//! ([`sequence`]), and a listener with backpressure at the socket
//! boundary ([`NetServer`]).

pub mod checkpoint;
pub mod engine;
pub mod ingest;
pub mod net;
pub mod router;
pub mod sequence;
pub mod stats;
pub mod wire;

pub use checkpoint::{CheckpointError, CheckpointManifest, Checkpointer};
pub use engine::{ServeConfig, ShardedEngine, StatsProbe};
pub use ingest::{BackpressurePolicy, IngestReport};
pub use net::{NetConfig, NetServer};
pub use router::ShardRouter;
pub use sequence::{Admission, SourceTable};
pub use stats::{ConnStats, NetStats, ServeStats, ShardStats};
pub use wire::{
    encode_csv, encode_json, DecodeError, EncodeError, FrameDecoder, WireFrame, WireProtocol,
};
