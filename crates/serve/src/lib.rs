//! gridwatch-serve: sharded concurrent online detection service.
//!
//! Partitions the measurement pairs of a trained
//! [`gridwatch_detect::DetectionEngine`] across worker shards, fans
//! snapshots out over bounded channels with configurable backpressure,
//! merges per-shard partial scores into exact three-level aggregates, and
//! checkpoints per-shard engine state atomically for crash recovery.

pub mod checkpoint;
pub mod engine;
pub mod ingest;
pub mod router;
pub mod stats;

pub use checkpoint::{CheckpointError, CheckpointManifest, Checkpointer};
pub use engine::{ServeConfig, ShardedEngine};
pub use ingest::{BackpressurePolicy, IngestReport};
pub use router::ShardRouter;
pub use stats::{ServeStats, ShardStats};
