//! gridwatch-serve: sharded concurrent online detection service.
//!
//! Partitions the measurement pairs of a trained
//! [`gridwatch_detect::DetectionEngine`] across worker shards, fans
//! snapshots out over bounded channels with configurable backpressure,
//! merges per-shard partial scores into exact three-level aggregates, and
//! checkpoints per-shard engine state atomically for crash recovery.
//!
//! The [`net`] module puts a TCP ingestion tier in front of the engine:
//! framed snapshot decoding ([`wire`]), per-source sequencing
//! ([`sequence`]), and a listener with backpressure at the socket
//! boundary ([`NetServer`]).
//!
//! The [`remote`] and [`coordinator`] modules extend the sharding
//! across processes: `gridwatch shard-worker` serves one shard's
//! models over TCP, and a [`Coordinator`] fans snapshots out and
//! merges the returned partial boards into the same in-order report
//! stream, with epoch fencing and checkpoint-transfer migration when a
//! worker dies.

pub mod checkpoint;
pub mod coordinator;
pub mod engine;
pub mod history;
pub mod ingest;
pub mod net;
pub mod remote;
pub mod router;
pub mod sequence;
pub mod stats;
pub mod wire;

pub use checkpoint::{
    write_atomic, CheckpointError, CheckpointManifest, Checkpointer, RemoteShard,
};
pub use coordinator::{
    Coordinator, CoordinatorMetricsProbe, FabricConfig, FabricStats, COORDINATOR_SOURCE,
};
pub use engine::{ServeConfig, ShardedEngine, StatsProbe};
pub use history::{score_rows, HistoryDepth, HistorySink};
pub use ingest::{BackpressurePolicy, IngestReport, SamplingConfig};
pub use net::{NetConfig, NetMetricsProbe, NetServer};
pub use remote::{
    decode_downstream, decode_response, encode_control, encode_response, read_frame, write_frame,
    BoardFrame, Downstream, FabricControl, FabricError, FabricResponse, ShardWorker,
    WorkerController, WorkerMetricsProbe, WorkerSummary, FABRIC_FRAME_LIMIT,
};
pub use router::ShardRouter;
pub use sequence::{Admission, SourceTable, MAX_COUNTED_GAP};
pub use stats::{burn_sample_from, ConnStats, NetStats, ServeStats, ShardStats};
pub use wire::{
    encode_csv, encode_json, DecodeError, EncodeError, FrameDecoder, WireFrame, WireProtocol,
};
