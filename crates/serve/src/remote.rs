//! Remote shard workers: the worker half of the multi-node shard
//! fabric.
//!
//! A [`ShardWorker`] is a small TCP server that owns one coordinator-
//! assigned slice of pair models. The coordinator dials it, ships the
//! slice's state in a `Hello`, then streams snapshots using the **same
//! length-prefixed JSON wire encoding** the ingestion listener accepts
//! ([`crate::wire::encode_json`]); the worker scores each snapshot with
//! [`DetectionEngine::step_scores`] and streams the partial
//! [`ScoreBoard`] back as a [`BoardFrame`]. Shipping partial boards
//! instead of raw samples keeps the upstream link small: a board is one
//! `f64` per owned pair, independent of snapshot width.
//!
//! Frame format, both directions: a 4-byte big-endian length prefix
//! followed by a JSON payload (the same framing as the JSON wire
//! protocol, with a larger limit — `Hello` and `State` frames carry
//! full model state). Downstream (coordinator → worker) a payload is
//! either a snapshot frame or a control envelope
//! `{"control": ...}` ([`FabricControl`]); upstream every payload is a
//! [`FabricResponse`].
//!
//! The worker is deliberately stateless about placement: it learns its
//! shard index, fabric epoch, and model slice from each session's
//! `Hello`, so the same process can serve as the migration successor
//! for any shard — the coordinator replays the journal since the
//! shipped state's cut and the worker reproduces the exact boards the
//! failed predecessor would have sent.
//!
//! Sessions are serial: one coordinator at a time, and a session ends
//! at EOF (coordinator gone — wait for it to come back), on `Shutdown`
//! (exit the process), or on a protocol error (drop the connection,
//! keep listening).

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use gridwatch_sync::{classes, OrderedMutex};
use serde::{Deserialize, Serialize};

use gridwatch_detect::{AlarmTracker, DetectionEngine, EngineConfig, EngineSnapshot, ScoreBoard};
use gridwatch_obs::{Exposition, PipelineObs, SpanSlice, Stage};

use crate::checkpoint::CheckpointError;
use crate::wire::{self, WireFrame};

/// Upper bound on one fabric frame. Larger than the wire protocol's
/// auto-detect limit because `Hello`/`State` frames carry a full shard's
/// model state.
pub const FABRIC_FRAME_LIMIT: usize = 1 << 26;

/// The canonical byte prefix of a control envelope (our own encoder
/// emits fields in declaration order with no whitespace).
const CONTROL_PREFIX: &[u8] = b"{\"control\":";

/// Coordinator → worker control messages.
//
// `Hello` dwarfs the other variants, but boxing the snapshot is not an
// option: the vendored serde has no `Box<T>` impls, and controls are
// built once per session, not per snapshot.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FabricControl {
    /// Session handshake: adopt this shard slice.
    Hello {
        /// The shard index this worker now serves.
        shard: usize,
        /// Total shard count in the fabric (for diagnostics).
        shards: usize,
        /// The fabric epoch of this assignment; every board the worker
        /// sends back is stamped with it, so boards from a superseded
        /// assignment can be fenced off.
        epoch: u64,
        /// Span-trace propagation: when true the worker enables its
        /// pipeline tracer for the session, so coordinator-side tracing
        /// extends across the wire. Defaulted so a Hello from an older
        /// coordinator (no such field) still parses.
        #[serde(default)]
        trace: bool,
        /// Exemplar-trace propagation: when true the worker times each
        /// snapshot's ingest/decode/score slices and ships them in
        /// [`BoardFrame::spans`], extending the coordinator's causal
        /// traces across the wire. Defaulted like `trace`.
        #[serde(default)]
        exemplar: bool,
        /// The shard's engine state to resume from.
        state: EngineSnapshot,
    },
    /// Checkpoint marker: reply with a `State` response carrying the
    /// current engine snapshot. Queued frames are processed first, so
    /// the state reflects exactly the snapshots sent before the marker.
    Checkpoint {
        /// Checkpoint id, echoed in the `State` reply.
        id: u64,
    },
    /// Stop serving: the worker exits its run loop.
    Shutdown,
}

/// The envelope distinguishing control payloads from snapshot frames on
/// the downstream connection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct ControlEnvelope {
    control: FabricControl,
}

/// One partial score board from a remote shard (the fabric's wire
/// extension: shipped upstream instead of raw samples).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BoardFrame {
    /// The shard that produced the board.
    pub shard: usize,
    /// The fabric epoch of the worker's current assignment.
    pub epoch: u64,
    /// The snapshot sequence number the board scores.
    pub seq: u64,
    /// Wall-clock nanoseconds the worker spent scoring this snapshot;
    /// the coordinator folds it into its Score stage distribution.
    /// Defaulted so boards from older workers (no such field) parse.
    #[serde(default)]
    pub score_ns: u64,
    /// Worker-side span slices for this snapshot (ingest/decode/score),
    /// present only when the session's `Hello` asked for exemplars.
    /// Start offsets are relative to the worker's own clock epoch —
    /// slice durations and ordering are meaningful across the wire,
    /// absolute starts are not. Defaulted so old boards parse.
    #[serde(default)]
    pub spans: Vec<SpanSlice>,
    /// The partial board (one score per pair owned by the shard).
    pub board: ScoreBoard,
}

/// Worker → coordinator messages.
///
/// `State` dwarfs the other variants, but it cannot be boxed: the
/// vendored serde derives have no `Box<T>` impls. One `State` exists
/// per shard per checkpoint, so the oversized variant never amplifies.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FabricResponse {
    /// Handshake acknowledgement.
    HelloAck {
        /// The adopted shard index (echo).
        shard: usize,
        /// The adopted epoch (echo).
        epoch: u64,
        /// Pair models in the adopted slice.
        pairs: usize,
    },
    /// One scored snapshot.
    Board(BoardFrame),
    /// Checkpoint reply: the shard's full engine state.
    State {
        /// The shard index (echo).
        shard: usize,
        /// The assignment epoch (echo).
        epoch: u64,
        /// The checkpoint id this state answers.
        id: u64,
        /// The shard's engine state at the marker.
        state: EngineSnapshot,
    },
}

/// Why a fabric operation failed.
#[derive(Debug)]
pub enum FabricError {
    /// A socket operation failed.
    Io {
        /// What the fabric was doing.
        context: String,
        /// The underlying error.
        source: io::Error,
    },
    /// The peer violated the fabric protocol.
    Protocol(String),
    /// The operation needs every shard live, but some are dead.
    Degraded {
        /// The dead shard indices.
        dead: Vec<usize>,
    },
    /// Writing or reading checkpoint state failed.
    Checkpoint(CheckpointError),
}

impl std::fmt::Display for FabricError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FabricError::Io { context, source } => write!(f, "fabric io ({context}): {source}"),
            FabricError::Protocol(why) => write!(f, "fabric protocol violation: {why}"),
            FabricError::Degraded { dead } => {
                write!(f, "fabric is degraded: shards {dead:?} have no live worker")
            }
            FabricError::Checkpoint(e) => write!(f, "fabric checkpoint: {e}"),
        }
    }
}

impl std::error::Error for FabricError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FabricError::Io { source, .. } => Some(source),
            FabricError::Checkpoint(e) => Some(e),
            _ => None,
        }
    }
}

pub(crate) fn io_ctx(context: &str) -> impl FnOnce(io::Error) -> FabricError + '_ {
    move |source| FabricError::Io {
        context: context.to_string(),
        source,
    }
}

/// Writes one length-prefixed fabric frame.
pub fn write_frame(stream: &mut TcpStream, payload: &[u8]) -> io::Result<()> {
    if payload.len() > FABRIC_FRAME_LIMIT {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!(
                "fabric frame of {} bytes exceeds the {FABRIC_FRAME_LIMIT} byte limit",
                payload.len()
            ),
        ));
    }
    stream.write_all(&(payload.len() as u32).to_be_bytes())?;
    stream.write_all(payload)
}

/// Reads one length-prefixed fabric frame; `None` on clean EOF between
/// frames. EOF inside a frame is an error (a torn frame must not look
/// like a graceful close).
pub fn read_frame(stream: &mut TcpStream) -> io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    let mut filled = 0usize;
    while filled < len_buf.len() {
        match stream.read(&mut len_buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed inside a fabric length prefix",
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > FABRIC_FRAME_LIMIT {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("fabric frame of {len} bytes exceeds the {FABRIC_FRAME_LIMIT} byte limit"),
        ));
    }
    let mut payload = vec![0u8; len];
    stream.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Encodes a control message as a downstream control envelope.
pub fn encode_control(control: &FabricControl) -> Result<Vec<u8>, FabricError> {
    serde_json::to_vec(&ControlEnvelope {
        control: control.clone(),
    })
    .map_err(|e| FabricError::Protocol(format!("encode control: {e}")))
}

/// Encodes an upstream (worker → coordinator) response payload.
pub fn encode_response(response: &FabricResponse) -> Result<Vec<u8>, FabricError> {
    serde_json::to_vec(response).map_err(|e| FabricError::Protocol(format!("encode response: {e}")))
}

/// Decodes an upstream (worker → coordinator) response payload.
pub fn decode_response(payload: &[u8]) -> Result<FabricResponse, FabricError> {
    serde_json::from_slice(payload)
        .map_err(|e| FabricError::Protocol(format!("undecodable fabric response: {e}")))
}

/// What a downstream (coordinator → worker) payload turned out to be.
//
// Same situation as `FabricControl` above: `Control(Hello)` dwarfs the
// snapshot variant, but controls arrive once per session, not per
// snapshot, so boxing buys nothing on the hot path.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum Downstream {
    /// A snapshot frame in the standard JSON wire encoding.
    Snapshot(WireFrame),
    /// A fabric control message.
    Control(FabricControl),
}

/// Decodes a downstream payload as either a snapshot frame or a
/// control envelope.
pub fn decode_downstream(payload: &[u8]) -> Result<Downstream, FabricError> {
    if payload.starts_with(CONTROL_PREFIX) {
        let envelope: ControlEnvelope = serde_json::from_slice(payload)
            .map_err(|e| FabricError::Protocol(format!("undecodable fabric control: {e}")))?;
        return Ok(Downstream::Control(envelope.control));
    }
    match wire::decode_json_payload(payload) {
        Ok(frame) => Ok(Downstream::Snapshot(frame)),
        // A control frame from an encoder with different key order.
        Err(snap_err) => match serde_json::from_slice::<ControlEnvelope>(payload) {
            Ok(envelope) => Ok(Downstream::Control(envelope.control)),
            Err(_) => Err(FabricError::Protocol(format!(
                "undecodable fabric frame: {snap_err}"
            ))),
        },
    }
}

/// Lifetime counters of one worker process.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct WorkerSummary {
    /// Coordinator sessions served.
    pub sessions: u64,
    /// Snapshot frames scored.
    pub snapshots: u64,
    /// Board frames sent upstream.
    pub boards: u64,
    /// Checkpoint markers answered with a `State`.
    pub checkpoints: u64,
    /// Sessions dropped for protocol violations.
    pub protocol_errors: u64,
}

/// How one coordinator session ended.
enum SessionEnd {
    /// The coordinator closed the connection; await the next session.
    Eof,
    /// The coordinator sent `Shutdown`; stop the worker.
    Shutdown,
}

/// A remote shard worker process: binds a port, serves coordinator
/// sessions serially, exits on `Shutdown`.
#[derive(Debug)]
pub struct ShardWorker {
    listener: TcpListener,
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    session: Arc<OrderedMutex<Option<TcpStream>>>,
    summary: Arc<OrderedMutex<WorkerSummary>>,
    obs: PipelineObs,
}

/// A detachable handle rendering a live worker's counters and stage
/// distributions as Prometheus text exposition, for `--metrics` scrapes
/// while [`ShardWorker::run`] owns the thread.
#[derive(Debug, Clone)]
pub struct WorkerMetricsProbe {
    summary: Arc<OrderedMutex<WorkerSummary>>,
    obs: PipelineObs,
}

impl WorkerMetricsProbe {
    /// The worker's lifetime counters so far.
    pub fn summary(&self) -> WorkerSummary {
        *self.summary.lock()
    }

    /// Renders the worker's counters and any recorded stage timings.
    pub fn to_prometheus(&self) -> String {
        let s = self.summary();
        let mut expo = Exposition::new();
        expo.header(
            "gridwatch_worker_sessions_total",
            "counter",
            "Coordinator sessions served",
        );
        expo.sample("gridwatch_worker_sessions_total", &[], s.sessions);
        expo.header(
            "gridwatch_worker_snapshots_total",
            "counter",
            "Snapshot frames scored",
        );
        expo.sample("gridwatch_worker_snapshots_total", &[], s.snapshots);
        expo.header(
            "gridwatch_worker_boards_total",
            "counter",
            "Board frames sent upstream",
        );
        expo.sample("gridwatch_worker_boards_total", &[], s.boards);
        expo.header(
            "gridwatch_worker_checkpoints_total",
            "counter",
            "Checkpoint markers answered",
        );
        expo.sample("gridwatch_worker_checkpoints_total", &[], s.checkpoints);
        expo.header(
            "gridwatch_worker_protocol_errors_total",
            "counter",
            "Sessions dropped for protocol violations",
        );
        expo.sample(
            "gridwatch_worker_protocol_errors_total",
            &[],
            s.protocol_errors,
        );
        crate::stats::render_stage_spans(&mut expo, &self.obs.tracer);
        expo.finish()
    }
}

/// A test/ops handle that can hard-kill a running [`ShardWorker`] from
/// another thread, simulating a process kill: the accept loop stops and
/// any live session is severed mid-stream.
#[derive(Debug, Clone)]
pub struct WorkerController {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    session: Arc<OrderedMutex<Option<TcpStream>>>,
}

impl WorkerController {
    /// Stops the worker as abruptly as a process kill: no `Shutdown`
    /// handshake, the session socket is severed where it stands.
    pub fn kill(&self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(stream) = self.session.lock().take() {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
        // Unblock a worker parked in accept().
        let _ = TcpStream::connect(self.addr);
    }
}

impl ShardWorker {
    /// Binds the worker's listening socket (port 0 picks a free port).
    pub fn bind(addr: impl ToSocketAddrs) -> io::Result<ShardWorker> {
        ShardWorker::bind_with_obs(addr, PipelineObs::default())
    }

    /// [`ShardWorker::bind`] with an explicit observability context.
    /// The tracer also late-enables when a session's `Hello` carries
    /// `trace: true`.
    pub fn bind_with_obs(addr: impl ToSocketAddrs, obs: PipelineObs) -> io::Result<ShardWorker> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        Ok(ShardWorker {
            listener,
            local_addr,
            stop: Arc::new(AtomicBool::new(false)),
            session: Arc::new(OrderedMutex::new(classes::WORKER_SESSION, None)),
            summary: Arc::new(OrderedMutex::new(
                classes::WORKER_SUMMARY,
                WorkerSummary::default(),
            )),
            obs,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// This worker's observability context.
    pub fn obs(&self) -> &PipelineObs {
        &self.obs
    }

    /// A handle that renders live metrics while `run` owns the thread.
    pub fn metrics_probe(&self) -> WorkerMetricsProbe {
        WorkerMetricsProbe {
            summary: Arc::clone(&self.summary),
            obs: self.obs.clone(),
        }
    }

    /// A kill handle for tests and supervisors.
    pub fn controller(&self) -> WorkerController {
        WorkerController {
            addr: self.local_addr,
            stop: Arc::clone(&self.stop),
            session: Arc::clone(&self.session),
        }
    }

    /// Serves coordinator sessions until a `Shutdown` control arrives
    /// or the controller kills the worker. A session ending in EOF or a
    /// protocol error does not stop the worker — the coordinator may
    /// reconnect (crash-resume, shard migration).
    pub fn run(&self) -> Result<WorkerSummary, FabricError> {
        loop {
            if self.stop.load(Ordering::SeqCst) {
                return Ok(*self.summary.lock());
            }
            let stream = match self.listener.accept() {
                Ok((stream, _)) => stream,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    if self.stop.load(Ordering::SeqCst) {
                        return Ok(*self.summary.lock());
                    }
                    return Err(FabricError::Io {
                        context: "accept".to_string(),
                        source: e,
                    });
                }
            };
            if self.stop.load(Ordering::SeqCst) {
                return Ok(*self.summary.lock());
            }
            let session_id = {
                let mut summary = self.summary.lock();
                summary.sessions += 1;
                summary.sessions
            };
            self.obs.recorder.record(
                "session-open",
                format_args!("coordinator session {session_id} accepted"),
            );
            *self.session.lock() = stream.try_clone().ok();
            let end = session_loop(stream, &self.summary, &self.obs);
            *self.session.lock() = None;
            match end {
                Ok(SessionEnd::Shutdown) => {
                    self.obs
                        .recorder
                        .record("shutdown", format_args!("coordinator sent Shutdown"));
                    return Ok(*self.summary.lock());
                }
                Ok(SessionEnd::Eof) => {
                    self.obs.recorder.record(
                        "session-end",
                        format_args!("session {session_id} closed at EOF"),
                    );
                }
                Err(_) if self.stop.load(Ordering::SeqCst) => return Ok(*self.summary.lock()),
                Err(FabricError::Protocol(why)) => {
                    self.summary.lock().protocol_errors += 1;
                    self.obs
                        .recorder
                        .record("protocol-error", format_args!("{why}"));
                    gridwatch_obs::error!(
                        "fabric",
                        "gridwatch shard-worker: dropping session: {why}"
                    );
                }
                Err(e) => {
                    self.obs
                        .recorder
                        .record("session-error", format_args!("{e}"));
                    gridwatch_obs::error!("fabric", "gridwatch shard-worker: session ended: {e}");
                }
            }
        }
    }
}

/// One coordinator session: handshake, then score snapshots and answer
/// checkpoint markers until EOF or `Shutdown`.
fn session_loop(
    mut stream: TcpStream,
    summary: &OrderedMutex<WorkerSummary>,
    obs: &PipelineObs,
) -> Result<SessionEnd, FabricError> {
    let tracer = obs.tracer.clone();
    // Handshake: the first frame must be a Hello (or a Shutdown aimed
    // at an idle worker).
    let Some(payload) = read_frame(&mut stream).map_err(io_ctx("handshake read"))? else {
        return Ok(SessionEnd::Eof);
    };
    let (shard, epoch, ship_spans, mut engine) = match decode_downstream(&payload)? {
        Downstream::Control(FabricControl::Hello {
            shard,
            shards: _,
            epoch,
            trace,
            exemplar,
            state,
        }) => {
            // Span context propagates across the wire as a Hello
            // extension: a tracing coordinator turns on the worker's
            // tracer for the whole process (enable is sticky).
            if trace {
                tracer.enable();
            }
            // The shard scores serially; the fabric's parallelism is
            // the worker processes themselves (mirrors ShardedEngine).
            let engine = DetectionEngine::from_snapshot(EngineSnapshot {
                config: EngineConfig {
                    parallel: false,
                    ..state.config
                },
                models: state.models,
                tracker: AlarmTracker::new(),
                candidates: state.candidates,
            });
            let ack = encode_response(&FabricResponse::HelloAck {
                shard,
                epoch,
                pairs: engine.model_count(),
            })?;
            write_frame(&mut stream, &ack).map_err(io_ctx("handshake ack"))?;
            (shard, epoch, exemplar, engine)
        }
        Downstream::Control(FabricControl::Shutdown) => return Ok(SessionEnd::Shutdown),
        Downstream::Control(_) => {
            return Err(FabricError::Protocol(
                "expected Hello as the first fabric frame".to_string(),
            ))
        }
        Downstream::Snapshot(_) => {
            return Err(FabricError::Protocol(
                "snapshot frame before Hello handshake".to_string(),
            ))
        }
    };

    let worker_name = format!("worker-{shard}");
    loop {
        // Slice timings use the exemplar clock even when this worker
        // retains nothing itself: the slices ship upstream where the
        // coordinator's exemplar layer decides what to keep.
        let read_start = if ship_spans { obs.exemplar.now_ns() } else { 0 };
        let read = {
            let _ingest = tracer.span(Stage::Ingest);
            read_frame(&mut stream).map_err(io_ctx("session read"))?
        };
        let read_ns = if ship_spans {
            obs.exemplar.now_ns().saturating_sub(read_start)
        } else {
            0
        };
        let Some(payload) = read else {
            return Ok(SessionEnd::Eof);
        };
        let decode_start = if ship_spans { obs.exemplar.now_ns() } else { 0 };
        let decoded = {
            let _decode = tracer.span(Stage::Decode);
            decode_downstream(&payload)?
        };
        let decode_ns = if ship_spans {
            obs.exemplar.now_ns().saturating_sub(decode_start)
        } else {
            0
        };
        match decoded {
            Downstream::Snapshot(frame) => {
                summary.lock().snapshots += 1;
                // Timed unconditionally: score_ns rides the board frame
                // upstream so the coordinator's Score distribution
                // reflects remote work even when this worker's own
                // tracer is off.
                let scored = Instant::now();
                let board = engine.step_scores(&frame.snapshot);
                let score_ns = scored.elapsed().as_nanos() as u64;
                tracer.record_ns(Stage::Score, score_ns);
                let spans = if ship_spans {
                    let score_end = obs.exemplar.now_ns();
                    vec![
                        SpanSlice::new(Stage::Ingest, read_start, read_ns, &worker_name),
                        SpanSlice::new(Stage::Decode, decode_start, decode_ns, &worker_name),
                        SpanSlice::sharded(
                            Stage::Score,
                            score_end.saturating_sub(score_ns),
                            score_ns,
                            shard as u64,
                            &worker_name,
                        ),
                    ]
                } else {
                    Vec::new()
                };
                let response = encode_response(&FabricResponse::Board(BoardFrame {
                    shard,
                    epoch,
                    seq: frame.seq,
                    score_ns,
                    spans,
                    board,
                }))?;
                write_frame(&mut stream, &response).map_err(io_ctx("board write"))?;
                summary.lock().boards += 1;
            }
            Downstream::Control(FabricControl::Checkpoint { id }) => {
                summary.lock().checkpoints += 1;
                obs.recorder.record(
                    "checkpoint",
                    format_args!("state reply for checkpoint {id} (shard {shard} epoch {epoch})"),
                );
                let response = encode_response(&FabricResponse::State {
                    shard,
                    epoch,
                    id,
                    state: engine.snapshot(),
                })?;
                write_frame(&mut stream, &response).map_err(io_ctx("state write"))?;
            }
            Downstream::Control(FabricControl::Shutdown) => return Ok(SessionEnd::Shutdown),
            Downstream::Control(FabricControl::Hello { .. }) => {
                return Err(FabricError::Protocol(
                    "unexpected mid-session Hello".to_string(),
                ))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridwatch_timeseries::Timestamp;

    #[test]
    fn frames_roundtrip_over_a_socket_pair() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (mut server, _) = listener.accept().unwrap();

        write_frame(&mut client, b"hello").unwrap();
        write_frame(&mut client, b"").unwrap();
        assert_eq!(read_frame(&mut server).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut server).unwrap().unwrap(), b"");

        drop(client);
        assert!(read_frame(&mut server).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn torn_frame_is_an_error_not_an_eof() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (mut server, _) = listener.accept().unwrap();
        // Announce 100 bytes, deliver 3, die.
        client.write_all(&100u32.to_be_bytes()).unwrap();
        client.write_all(b"abc").unwrap();
        drop(client);
        assert!(read_frame(&mut server).is_err());
    }

    #[test]
    fn oversized_frames_rejected_both_ways() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (mut server, _) = listener.accept().unwrap();
        client
            .write_all(&(FABRIC_FRAME_LIMIT as u32 + 1).to_be_bytes())
            .unwrap();
        assert!(read_frame(&mut server).is_err());

        let huge = vec![0u8; FABRIC_FRAME_LIMIT + 1];
        assert!(write_frame(&mut client, &huge).is_err());
    }

    #[test]
    fn control_envelopes_roundtrip_and_dispatch() {
        let control = FabricControl::Checkpoint { id: 9 };
        let bytes = encode_control(&control).unwrap();
        assert!(bytes.starts_with(CONTROL_PREFIX));
        match decode_downstream(&bytes).unwrap() {
            Downstream::Control(c) => assert_eq!(c, control),
            Downstream::Snapshot(_) => panic!("control decoded as snapshot"),
        }

        // A snapshot frame payload dispatches to Snapshot.
        let mut snap = gridwatch_detect::Snapshot::new(Timestamp::from_secs(360));
        snap.insert(
            gridwatch_timeseries::MeasurementId::new(
                gridwatch_timeseries::MachineId::new(0),
                gridwatch_timeseries::MetricKind::Custom(0),
            ),
            1.5,
        );
        let framed = wire::encode_json(&WireFrame {
            source: "coordinator".to_string(),
            seq: 3,
            snapshot: snap.clone(),
        })
        .unwrap();
        // encode_json includes the 4-byte prefix; strip it for payload
        // dispatch.
        match decode_downstream(&framed[4..]).unwrap() {
            Downstream::Snapshot(frame) => {
                assert_eq!(frame.seq, 3);
                assert_eq!(frame.snapshot, snap);
            }
            Downstream::Control(_) => panic!("snapshot decoded as control"),
        }

        assert!(decode_downstream(b"garbage").is_err());
    }

    #[test]
    fn responses_roundtrip() {
        let board = BoardFrame {
            shard: 2,
            epoch: 7,
            seq: 41,
            score_ns: 1_250,
            spans: vec![SpanSlice::sharded(Stage::Score, 10, 1_250, 2, "worker-2")],
            board: ScoreBoard::new(Timestamp::from_secs(360)),
        };
        for response in [
            FabricResponse::HelloAck {
                shard: 1,
                epoch: 5,
                pairs: 10,
            },
            FabricResponse::Board(board),
        ] {
            let bytes = encode_response(&response).unwrap();
            assert_eq!(decode_response(&bytes).unwrap(), response);
        }
        assert!(decode_response(b"{}").is_err());
    }

    #[test]
    fn pre_obs_wire_frames_still_parse() {
        // A Board from a worker predating `score_ns` defaults to 0.
        let old_board = format!(
            "{{\"Board\":{{\"shard\":2,\"epoch\":7,\"seq\":41,\"board\":{}}}}}",
            serde_json::to_string(&ScoreBoard::new(Timestamp::from_secs(360))).unwrap()
        );
        match decode_response(old_board.as_bytes()).unwrap() {
            FabricResponse::Board(frame) => {
                assert_eq!(frame.seq, 41);
                assert_eq!(frame.score_ns, 0);
                assert!(frame.spans.is_empty(), "missing spans default to none");
            }
            other => panic!("expected Board, got {other:?}"),
        }

        // A Hello from a coordinator predating `trace` defaults to off.
        let state = EngineSnapshot {
            config: EngineConfig::default(),
            models: Vec::new(),
            tracker: AlarmTracker::new(),
            candidates: Vec::new(),
        };
        let old_hello = format!(
            "{{\"control\":{{\"Hello\":{{\"shard\":1,\"shards\":2,\"epoch\":3,\"state\":{}}}}}}}",
            serde_json::to_string(&state).unwrap()
        );
        match decode_downstream(old_hello.as_bytes()).unwrap() {
            Downstream::Control(FabricControl::Hello {
                shard,
                trace,
                exemplar,
                ..
            }) => {
                assert_eq!(shard, 1);
                assert!(!trace, "missing trace field must default to false");
                assert!(!exemplar, "missing exemplar field must default to false");
            }
            other => panic!("expected Hello, got {other:?}"),
        }
    }

    #[test]
    fn worker_metrics_probe_renders_parseable_exposition() {
        let worker = ShardWorker::bind("127.0.0.1:0").unwrap();
        let probe = worker.metrics_probe();
        let text = probe.to_prometheus();
        let metrics = gridwatch_obs::parse_exposition(&text).unwrap();
        let sessions = metrics
            .iter()
            .find(|m| m.name == "gridwatch_worker_sessions_total")
            .expect("sessions counter rendered");
        assert_eq!(sessions.value, 0.0);
        // The disabled tracer contributes no stage series.
        assert!(!text.contains("gridwatch_stage_ns"));
    }
}
