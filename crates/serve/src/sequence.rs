//! Per-source frame sequencing: duplicate suppression, bounded
//! reordering, and replay-idempotent resume.
//!
//! Every agent stamps its frames with a monotonically increasing
//! sequence number starting at 0. The [`SourceTable`] tracks, per
//! source, the next expected number: duplicates (from
//! reconnect-with-replay) are absorbed, frames that arrive early are
//! held in a bounded reorder buffer until the gap fills, and the
//! per-source progress map is persisted inside the checkpoint manifest
//! so a restarted listener keeps deduplicating across the crash —
//! replaying an entire stream after recovery never double-applies a
//! snapshot.

use std::collections::BTreeMap;

use gridwatch_detect::Snapshot;

/// What happened to one admitted frame.
#[derive(Debug, PartialEq)]
pub enum Admission {
    /// The frame (and possibly buffered successors it unblocked) is
    /// ready to apply, in sequence order.
    Ready(Vec<Snapshot>),
    /// The frame arrived ahead of a gap and is buffered.
    Buffered,
    /// The frame was already applied or already buffered; dropped.
    Duplicate,
    /// Buffering the frame overflowed the reorder window, so the gap
    /// was abandoned: `skipped` sequence numbers are given up as lost
    /// and the oldest buffered run is released.
    GapAbandoned {
        /// Sequence numbers skipped over (lost frames), saturated at
        /// [`MAX_COUNTED_GAP`] so a skewed client jumping to an absurd
        /// sequence number cannot inflate loss accounting.
        skipped: u64,
        /// The frames released by jumping the gap, in order.
        released: Vec<Snapshot>,
    },
}

/// Ceiling on the `skipped` count a single abandoned gap reports.
///
/// The jump itself is unbounded — `next` always moves to the oldest
/// buffered frame, whatever its number — but the *counted* loss is
/// capped. A client with a skewed clock (or a corrupted counter) that
/// leaps from sequence 10 to 10^15 has lost at most its reorder window
/// of real frames, not a quadrillion; feeding the raw difference into
/// loss metrics would swamp them with a number that measures the skew,
/// not the loss.
pub const MAX_COUNTED_GAP: u64 = 65_536;

/// Sequencing state for one source.
#[derive(Debug, Default)]
struct SourceState {
    /// The next sequence number this source is expected to send.
    next: u64,
    /// Early frames, keyed by sequence number.
    pending: BTreeMap<u64, Snapshot>,
}

impl SourceState {
    /// Pops the contiguous run starting at `self.next` out of `pending`.
    fn drain_ready(&mut self, out: &mut Vec<Snapshot>) {
        while let Some(snap) = self.pending.remove(&self.next) {
            out.push(snap);
            self.next += 1;
        }
    }
}

/// Sequencing state across all sources.
#[derive(Debug)]
pub struct SourceTable {
    reorder_capacity: usize,
    sources: BTreeMap<String, SourceState>,
}

impl SourceTable {
    /// A table buffering at most `reorder_capacity` early frames per
    /// source before it abandons a gap.
    ///
    /// # Panics
    ///
    /// Panics when `reorder_capacity` is zero.
    pub fn new(reorder_capacity: usize) -> Self {
        assert!(reorder_capacity > 0, "reorder capacity must be positive");
        SourceTable {
            reorder_capacity,
            sources: BTreeMap::new(),
        }
    }

    /// A table resumed from persisted progress (see
    /// [`SourceTable::progress`]): each source continues at its saved
    /// next-expected sequence number, so replayed frames below it are
    /// reported as [`Admission::Duplicate`].
    pub fn resume(reorder_capacity: usize, progress: BTreeMap<String, u64>) -> Self {
        let mut table = SourceTable::new(reorder_capacity);
        table.sources = progress
            .into_iter()
            .map(|(source, next)| {
                (
                    source,
                    SourceState {
                        next,
                        pending: BTreeMap::new(),
                    },
                )
            })
            .collect();
        table
    }

    /// Admits one frame from `source` with the source's own sequence
    /// number, returning what to do with it.
    pub fn admit(&mut self, source: &str, seq: u64, snapshot: Snapshot) -> Admission {
        let state = self.sources.entry(source.to_string()).or_default();
        if seq < state.next || state.pending.contains_key(&seq) {
            return Admission::Duplicate;
        }
        if seq == state.next {
            state.next += 1;
            let mut ready = vec![snapshot];
            state.drain_ready(&mut ready);
            return Admission::Ready(ready);
        }
        state.pending.insert(seq, snapshot);
        if state.pending.len() <= self.reorder_capacity {
            return Admission::Buffered;
        }
        // The window is full and the gap never filled: the missing
        // frames are lost (evicted at a lossy boundary, or a client
        // skipped numbers). Jump to the oldest buffered frame so the
        // source can never wedge the stream.
        let Some(&oldest) = state.pending.keys().next() else {
            // Unreachable — the frame was just inserted above — but a
            // sequencing hiccup must never take down a listener thread.
            return Admission::Buffered;
        };
        let skipped = (oldest - state.next).min(MAX_COUNTED_GAP);
        state.next = oldest;
        let mut released = Vec::new();
        state.drain_ready(&mut released);
        debug_assert!(state.pending.len() <= self.reorder_capacity);
        Admission::GapAbandoned { skipped, released }
    }

    /// Invariant check: no source's reorder buffer exceeds the
    /// configured window. Active under `debug_assertions` or the crate's
    /// `validate` feature; a no-op otherwise.
    pub fn check_window_bound(&self) {
        #[cfg(any(debug_assertions, feature = "validate"))]
        for (source, state) in &self.sources {
            assert!(
                state.pending.len() <= self.reorder_capacity,
                "sequencing invariant violated: source {source} buffers {} frames \
                 but the reorder window holds {}",
                state.pending.len(),
                self.reorder_capacity
            );
        }
    }

    /// Per-source progress: the next expected sequence number of every
    /// source (pending reorder buffers are *not* part of progress — an
    /// unapplied frame must be re-sent after a crash).
    pub fn progress(&self) -> BTreeMap<String, u64> {
        self.sources
            .iter()
            .map(|(source, state)| (source.clone(), state.next))
            .collect()
    }

    /// Number of sources seen.
    pub fn len(&self) -> usize {
        self.sources.len()
    }

    /// Whether no source has been seen yet.
    pub fn is_empty(&self) -> bool {
        self.sources.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridwatch_timeseries::Timestamp;

    fn snap(k: u64) -> Snapshot {
        Snapshot::new(Timestamp::from_secs(k * 360))
    }

    fn ready_times(admission: Admission) -> Vec<u64> {
        match admission {
            Admission::Ready(snaps) => snaps.iter().map(|s| s.at().as_secs() / 360).collect(),
            other => panic!("expected Ready, got {other:?}"),
        }
    }

    #[test]
    fn in_order_frames_flow_straight_through() {
        let mut table = SourceTable::new(4);
        for k in 0..5 {
            assert_eq!(ready_times(table.admit("a", k, snap(k))), vec![k]);
        }
        assert_eq!(table.progress()["a"], 5);
    }

    #[test]
    fn out_of_order_frames_are_released_in_order() {
        let mut table = SourceTable::new(4);
        assert_eq!(table.admit("a", 1, snap(1)), Admission::Buffered);
        assert_eq!(table.admit("a", 2, snap(2)), Admission::Buffered);
        assert_eq!(ready_times(table.admit("a", 0, snap(0))), vec![0, 1, 2]);
    }

    #[test]
    fn duplicates_are_absorbed_applied_or_buffered() {
        let mut table = SourceTable::new(4);
        table.admit("a", 0, snap(0));
        assert_eq!(table.admit("a", 0, snap(0)), Admission::Duplicate);
        assert_eq!(table.admit("a", 2, snap(2)), Admission::Buffered);
        assert_eq!(table.admit("a", 2, snap(2)), Admission::Duplicate);
    }

    #[test]
    fn sources_sequence_independently() {
        let mut table = SourceTable::new(4);
        assert_eq!(ready_times(table.admit("a", 0, snap(0))), vec![0]);
        assert_eq!(table.admit("b", 1, snap(1)), Admission::Buffered);
        assert_eq!(ready_times(table.admit("a", 1, snap(1))), vec![1]);
    }

    #[test]
    fn overflowing_the_window_abandons_the_gap() {
        let mut table = SourceTable::new(2);
        // seq 0 never arrives; 2, 3 fill the window, 4 overflows it.
        assert_eq!(table.admit("a", 2, snap(2)), Admission::Buffered);
        assert_eq!(table.admit("a", 3, snap(3)), Admission::Buffered);
        match table.admit("a", 4, snap(4)) {
            Admission::GapAbandoned { skipped, released } => {
                assert_eq!(skipped, 2, "seqs 0 and 1 were given up");
                assert_eq!(released.len(), 3);
            }
            other => panic!("expected GapAbandoned, got {other:?}"),
        }
        // The late originals are now duplicates, not regressions.
        assert_eq!(table.admit("a", 0, snap(0)), Admission::Duplicate);
        assert_eq!(ready_times(table.admit("a", 5, snap(5))), vec![5]);
    }

    #[test]
    fn absurd_sequence_jump_saturates_the_counted_gap() {
        let mut table = SourceTable::new(2);
        table.admit("a", 0, snap(0));
        // A skewed client leaps forward by ~10^15: the stream recovers
        // (next follows the jump) but the reported loss saturates.
        let far = 1 << 50;
        assert_eq!(table.admit("a", far, snap(1)), Admission::Buffered);
        assert_eq!(table.admit("a", far + 1, snap(2)), Admission::Buffered);
        match table.admit("a", far + 2, snap(3)) {
            Admission::GapAbandoned { skipped, released } => {
                assert_eq!(skipped, MAX_COUNTED_GAP, "counted loss is capped");
                assert_eq!(released.len(), 3);
            }
            other => panic!("expected GapAbandoned, got {other:?}"),
        }
        // Progress really did jump: the stream continues after the leap.
        assert_eq!(table.progress()["a"], far + 3);
        assert_eq!(ready_times(table.admit("a", far + 3, snap(4))), vec![4]);
    }

    #[test]
    fn modest_gaps_still_report_their_exact_size() {
        let mut table = SourceTable::new(1);
        assert_eq!(table.admit("a", 7, snap(7)), Admission::Buffered);
        match table.admit("a", 9, snap(9)) {
            Admission::GapAbandoned { skipped, .. } => {
                assert_eq!(skipped, 7, "real gaps below the cap are exact");
            }
            other => panic!("expected GapAbandoned, got {other:?}"),
        }
    }

    #[test]
    fn resume_deduplicates_replayed_history() {
        let mut table = SourceTable::new(4);
        for k in 0..10 {
            table.admit("a", k, snap(k));
        }
        let progress = table.progress();

        let mut resumed = SourceTable::resume(4, progress);
        for k in 0..10 {
            assert_eq!(resumed.admit("a", k, snap(k)), Admission::Duplicate);
        }
        assert_eq!(ready_times(resumed.admit("a", 10, snap(10))), vec![10]);
        assert!(!resumed.is_empty());
        assert_eq!(resumed.len(), 1);
    }
}
