//! Atomic checkpointing of a sharded engine's state.
//!
//! Layout of a checkpoint directory:
//!
//! ```text
//! <dir>/shard-0.json     per-shard EngineSnapshot (models only)
//! <dir>/shard-1.json
//! ...
//! <dir>/manifest.json    CheckpointManifest — written last
//! ```
//!
//! Every file is written to a `.tmp` sibling and atomically renamed into
//! place, and the manifest is written only after every shard file landed,
//! so a crash mid-checkpoint leaves either the previous complete
//! checkpoint (old manifest) or no manifest at all — never a torn one.

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use gridwatch_detect::{AlarmTracker, EngineConfig, EngineSnapshot};

/// Name of the manifest file inside a checkpoint directory.
pub const MANIFEST_FILE: &str = "manifest.json";

/// The checkpoint directory's table of contents, written last.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CheckpointManifest {
    /// Layout version, for forward compatibility.
    pub version: u32,
    /// Number of shards that wrote files.
    pub shards: usize,
    /// The ingest sequence number the checkpoint cuts at: every accepted
    /// snapshot with `seq < cut_seq` is reflected, none after.
    pub cut_seq: u64,
    /// The engine configuration (single source of truth on recovery).
    pub config: EngineConfig,
    /// The merged-board alarm tracker's debounce state at the cut.
    pub tracker: AlarmTracker,
    /// Shard file names, in shard order.
    pub shard_files: Vec<String>,
    /// Per-source next-expected frame sequence numbers at the cut
    /// (empty for local replays; absent in pre-network manifests).
    /// Living inside the manifest makes resume atomic: a crash can
    /// never persist source progress without the matching model state.
    #[serde(default)]
    pub sources: BTreeMap<String, u64>,
    /// The fabric epoch the coordinator was on when it cut this
    /// checkpoint (0 for single-process checkpoints). A resumed
    /// coordinator restarts above this, so boards from workers of any
    /// pre-crash epoch are fenced off.
    #[serde(default)]
    pub fabric_epoch: u64,
    /// Remote shard ownership at the cut: which worker owned each shard
    /// and under which epoch (empty for single-process checkpoints).
    #[serde(default)]
    pub remote: Vec<RemoteShard>,
    /// Sketch-tracked candidate pairs (no materialized model) persisted
    /// across all shard files at the cut. 0 for sketchless engines and
    /// for pre-sketch manifests (field default).
    #[serde(default)]
    pub candidate_pairs: usize,
    /// Lifetime sketch promotions at the cut (0 pre-sketch).
    #[serde(default)]
    pub sketch_promotions: u64,
    /// Lifetime sketch demotions at the cut (0 pre-sketch).
    #[serde(default)]
    pub sketch_demotions: u64,
}

/// One remote shard's ownership record inside a coordinator manifest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RemoteShard {
    /// The shard index this record assigns.
    #[serde(default)]
    pub shard: usize,
    /// The fabric epoch the owning worker was admitted under (>= 1;
    /// epoch 0 is reserved for "never owned remotely").
    #[serde(default)]
    pub epoch: u64,
    /// The worker's address, as the coordinator dialed it.
    #[serde(default)]
    pub source: String,
}

/// Why a checkpoint or recovery failed.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem failure, with the path involved.
    Io {
        /// The file or directory being accessed.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
    /// The directory's contents don't form a valid checkpoint.
    Corrupt(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io { path, source } => {
                write!(f, "checkpoint io error at {}: {source}", path.display())
            }
            CheckpointError::Corrupt(why) => write!(f, "corrupt checkpoint: {why}"),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io { source, .. } => Some(source),
            CheckpointError::Corrupt(_) => None,
        }
    }
}

fn io_err(path: &Path, source: std::io::Error) -> CheckpointError {
    CheckpointError::Io {
        path: path.to_path_buf(),
        source,
    }
}

/// Counts completed directory syncs, so tests can assert the durability
/// path actually ran (a silently skipped fsync looks identical to a
/// successful one from the filesystem's point of view).
#[cfg(test)]
pub(crate) static DIR_SYNCS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Fsyncs a directory so a rename into it survives power loss. On
/// Linux, `rename` only becomes durable once the directory's own inode
/// hits disk; syncing just the data file leaves the new directory entry
/// in the page cache.
pub(crate) fn sync_dir(dir: &Path) -> Result<(), CheckpointError> {
    let dir = if dir.as_os_str().is_empty() {
        Path::new(".")
    } else {
        dir
    };
    let handle = fs::File::open(dir).map_err(|e| io_err(dir, e))?;
    handle.sync_all().map_err(|e| io_err(dir, e))?;
    #[cfg(test)]
    DIR_SYNCS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    Ok(())
}

/// Writes `content` to `path` via a temp-file + atomic rename, then
/// syncs the parent directory so the rename itself is durable.
///
/// Public so the CLI commands route their periodic stats dumps through
/// the same torn-write-proof path as checkpoint files.
pub fn write_atomic(path: &Path, content: &str) -> Result<(), CheckpointError> {
    let tmp = path.with_extension("json.tmp");
    {
        let mut file = fs::File::create(&tmp).map_err(|e| io_err(&tmp, e))?;
        file.write_all(content.as_bytes())
            .map_err(|e| io_err(&tmp, e))?;
        file.sync_all().map_err(|e| io_err(&tmp, e))?;
    }
    fs::rename(&tmp, path).map_err(|e| io_err(path, e))?;
    sync_dir(path.parent().unwrap_or(Path::new(".")))
}

/// Reads and writes checkpoint directories.
#[derive(Debug, Clone)]
pub struct Checkpointer {
    dir: PathBuf,
}

impl Checkpointer {
    /// A checkpointer rooted at `dir` (created on first write).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Checkpointer { dir: dir.into() }
    }

    /// The checkpoint directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The conventional file name for one shard's snapshot.
    pub fn shard_file_name(shard: usize) -> String {
        format!("shard-{shard}.json")
    }

    /// Ensures the directory exists.
    pub fn prepare(&self) -> Result<(), CheckpointError> {
        fs::create_dir_all(&self.dir).map_err(|e| io_err(&self.dir, e))
    }

    /// Atomically writes one shard's engine snapshot; returns the file
    /// name recorded in the manifest.
    pub fn write_shard(
        &self,
        shard: usize,
        snapshot: &EngineSnapshot,
    ) -> Result<String, CheckpointError> {
        let name = Self::shard_file_name(shard);
        let json = serde_json::to_string(snapshot)
            .map_err(|e| CheckpointError::Corrupt(format!("shard {shard} serialize: {e}")))?;
        write_atomic(&self.dir.join(&name), &json)?;
        Ok(name)
    }

    /// Atomically writes the manifest, completing the checkpoint.
    pub fn write_manifest(&self, manifest: &CheckpointManifest) -> Result<(), CheckpointError> {
        let json = serde_json::to_string_pretty(manifest)
            .map_err(|e| CheckpointError::Corrupt(format!("manifest serialize: {e}")))?;
        write_atomic(&self.dir.join(MANIFEST_FILE), &json)
    }

    /// Reads the manifest of a completed checkpoint.
    pub fn read_manifest(&self) -> Result<CheckpointManifest, CheckpointError> {
        let path = self.dir.join(MANIFEST_FILE);
        let json = fs::read_to_string(&path).map_err(|e| io_err(&path, e))?;
        serde_json::from_str(&json)
            .map_err(|e| CheckpointError::Corrupt(format!("manifest parse: {e}")))
    }

    /// Recovers the full engine state from a completed checkpoint:
    /// reads every shard file named by the manifest and reassembles one
    /// [`EngineSnapshot`] with the manifest's config and alarm tracker.
    ///
    /// The result is shard-count agnostic — it can be re-sharded onto
    /// any number of shards (or run unsharded).
    ///
    /// # Errors
    ///
    /// Fails when the manifest is missing or unreadable, a shard file is
    /// missing or unparsable, or two shard files claim the same pair.
    pub fn recover(&self) -> Result<(EngineSnapshot, CheckpointManifest), CheckpointError> {
        let manifest = self.read_manifest()?;
        if manifest.shard_files.len() != manifest.shards {
            return Err(CheckpointError::Corrupt(format!(
                "manifest names {} files for {} shards",
                manifest.shard_files.len(),
                manifest.shards
            )));
        }
        let mut models = BTreeMap::new();
        let mut candidates = std::collections::BTreeSet::new();
        for (shard, name) in manifest.shard_files.iter().enumerate() {
            let path = self.dir.join(name);
            let json = fs::read_to_string(&path).map_err(|e| io_err(&path, e))?;
            let snapshot: EngineSnapshot = serde_json::from_str(&json)
                .map_err(|e| CheckpointError::Corrupt(format!("shard file {name}: {e}")))?;
            for (pair, model) in snapshot.models {
                if models.insert(pair, model).is_some() {
                    return Err(CheckpointError::Corrupt(format!(
                        "pair {pair} appears in more than one shard file (shard {shard})"
                    )));
                }
            }
            candidates.extend(snapshot.candidates);
        }
        // A pair promoted after its shard file was written could appear
        // both as a model and a stale candidate; the model wins.
        candidates.retain(|pair| !models.contains_key(pair));
        let combined = EngineSnapshot {
            config: manifest.config,
            models: models.into_iter().collect(),
            tracker: manifest.tracker.clone(),
            candidates: candidates.into_iter().collect(),
        };
        Ok((combined, manifest))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridwatch_detect::DetectionEngine;
    use gridwatch_timeseries::{MachineId, MeasurementId, MeasurementPair, MetricKind, PairSeries};

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("gridwatch-ckpt-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn trained_snapshot() -> EngineSnapshot {
        let mk = |m: u32, t: u16| MeasurementId::new(MachineId::new(m), MetricKind::Custom(t));
        let ids = [mk(0, 0), mk(0, 1), mk(1, 0)];
        let mut pairs = Vec::new();
        for i in 0..3 {
            for j in (i + 1)..3 {
                let pair = MeasurementPair::new(ids[i], ids[j]).unwrap();
                let history = PairSeries::from_samples((0..300u64).map(|k| {
                    let x = (k % 40) as f64;
                    (k * 360, (i as f64 + 1.0) * x, (j as f64 + 2.0) * x)
                }))
                .unwrap();
                pairs.push((pair, history));
            }
        }
        DetectionEngine::train(pairs, EngineConfig::default())
            .unwrap()
            .snapshot()
    }

    #[test]
    fn shard_files_plus_manifest_recover_the_union() {
        let dir = scratch_dir("roundtrip");
        let ckpt = Checkpointer::new(&dir);
        ckpt.prepare().unwrap();

        let full = trained_snapshot();
        // Split the three models 2 + 1 by hand.
        let left = EngineSnapshot {
            config: full.config,
            models: full.models[..2].to_vec(),
            tracker: AlarmTracker::new(),
            candidates: Vec::new(),
        };
        let right = EngineSnapshot {
            config: full.config,
            models: full.models[2..].to_vec(),
            tracker: AlarmTracker::new(),
            candidates: Vec::new(),
        };
        let files = vec![
            ckpt.write_shard(0, &left).unwrap(),
            ckpt.write_shard(1, &right).unwrap(),
        ];
        ckpt.write_manifest(&CheckpointManifest {
            version: 1,
            shards: 2,
            cut_seq: 42,
            config: full.config,
            tracker: full.tracker.clone(),
            shard_files: files,
            sources: BTreeMap::from([("agent-1".to_string(), 7)]),
            fabric_epoch: 0,
            remote: Vec::new(),
            candidate_pairs: 0,
            sketch_promotions: 0,
            sketch_demotions: 0,
        })
        .unwrap();

        let (recovered, manifest) = ckpt.recover().unwrap();
        assert_eq!(manifest.cut_seq, 42);
        assert_eq!(recovered, full);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn write_atomic_syncs_the_parent_directory() {
        use std::sync::atomic::Ordering;
        let dir = scratch_dir("dirsync");
        fs::create_dir_all(&dir).unwrap();
        let before = DIR_SYNCS.load(Ordering::Relaxed);
        write_atomic(&dir.join("file.json"), "{}").unwrap();
        let after = DIR_SYNCS.load(Ordering::Relaxed);
        assert!(
            after > before,
            "write_atomic must fsync the parent directory after the rename"
        );
        assert_eq!(fs::read_to_string(dir.join("file.json")).unwrap(), "{}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn relative_paths_fall_back_to_the_current_directory_for_sync() {
        // A bare file name has an empty parent; the sync must target
        // `.` instead of failing to open "".
        use std::sync::atomic::Ordering;
        let before = DIR_SYNCS.load(Ordering::Relaxed);
        sync_dir(Path::new("")).unwrap();
        assert!(DIR_SYNCS.load(Ordering::Relaxed) > before);
    }

    #[test]
    fn remote_manifest_fields_roundtrip_and_default() {
        let full = trained_snapshot();
        let manifest = CheckpointManifest {
            version: 1,
            shards: 2,
            cut_seq: 5,
            config: full.config,
            tracker: AlarmTracker::new(),
            shard_files: vec!["shard-0.json".into(), "shard-1.json".into()],
            sources: BTreeMap::new(),
            fabric_epoch: 3,
            remote: vec![
                RemoteShard {
                    shard: 0,
                    epoch: 1,
                    source: "127.0.0.1:7001".into(),
                },
                RemoteShard {
                    shard: 1,
                    epoch: 3,
                    source: "127.0.0.1:7002".into(),
                },
            ],
            candidate_pairs: 4,
            sketch_promotions: 2,
            sketch_demotions: 1,
        };
        let json = serde_json::to_string(&manifest).unwrap();
        let back: CheckpointManifest = serde_json::from_str(&json).unwrap();
        assert_eq!(back, manifest);

        // Pre-fabric manifests (no such keys) still parse, defaulted.
        let stripped = serde_json::to_string(&CheckpointManifest {
            fabric_epoch: 0,
            remote: Vec::new(),
            ..manifest.clone()
        })
        .unwrap();
        let legacy = stripped
            .replace(",\"fabric_epoch\":0", "")
            .replace(",\"remote\":[]", "")
            .replace(",\"candidate_pairs\":4", "")
            .replace(",\"sketch_promotions\":2", "")
            .replace(",\"sketch_demotions\":1", "");
        assert_ne!(legacy, stripped);
        let back: CheckpointManifest = serde_json::from_str(&legacy).unwrap();
        assert_eq!(back.fabric_epoch, 0);
        assert!(back.remote.is_empty());
        assert_eq!(back.candidate_pairs, 0);
        assert_eq!(back.sketch_promotions, 0);
        assert_eq!(back.sketch_demotions, 0);
    }

    #[test]
    fn missing_manifest_is_an_io_error() {
        let dir = scratch_dir("missing");
        let err = Checkpointer::new(&dir).recover().unwrap_err();
        assert!(matches!(err, CheckpointError::Io { .. }), "{err}");
    }

    #[test]
    fn torn_checkpoint_without_shard_file_is_detected() {
        let dir = scratch_dir("torn");
        let ckpt = Checkpointer::new(&dir);
        ckpt.prepare().unwrap();
        let full = trained_snapshot();
        ckpt.write_manifest(&CheckpointManifest {
            version: 1,
            shards: 1,
            cut_seq: 0,
            config: full.config,
            tracker: AlarmTracker::new(),
            shard_files: vec!["shard-0.json".into()],
            sources: BTreeMap::new(),
            fabric_epoch: 0,
            remote: Vec::new(),
            candidate_pairs: 0,
            sketch_promotions: 0,
            sketch_demotions: 0,
        })
        .unwrap();
        // Manifest names a shard file that was never written.
        let err = ckpt.recover().unwrap_err();
        assert!(matches!(err, CheckpointError::Io { .. }), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn duplicate_pairs_across_shards_are_corrupt() {
        let dir = scratch_dir("dup");
        let ckpt = Checkpointer::new(&dir);
        ckpt.prepare().unwrap();
        let full = trained_snapshot();
        let half = EngineSnapshot {
            config: full.config,
            models: full.models[..1].to_vec(),
            tracker: AlarmTracker::new(),
            candidates: Vec::new(),
        };
        let files = vec![
            ckpt.write_shard(0, &half).unwrap(),
            ckpt.write_shard(1, &half).unwrap(),
        ];
        ckpt.write_manifest(&CheckpointManifest {
            version: 1,
            shards: 2,
            cut_seq: 0,
            config: full.config,
            tracker: AlarmTracker::new(),
            shard_files: files,
            sources: BTreeMap::new(),
            fabric_epoch: 0,
            remote: Vec::new(),
            candidate_pairs: 0,
            sketch_promotions: 0,
            sketch_demotions: 0,
        })
        .unwrap();
        let err = ckpt.recover().unwrap_err();
        assert!(matches!(err, CheckpointError::Corrupt(_)), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }
}
