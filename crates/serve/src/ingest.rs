//! Ingestion-side backpressure policy and accounting.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

/// What the ingestion front does when a shard queue is full.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum BackpressurePolicy {
    /// Block the submitter until every shard has room. Lossless: the
    /// sharded engine stays bit-identical to an unsharded one.
    #[default]
    Block,
    /// Evict the oldest queued snapshot of the full shard to make room.
    /// Lossy per shard: shards can skip different instants under
    /// pressure; the merged boards reflect only the pairs whose shard
    /// scored that instant, and every eviction is counted per shard.
    DropOldest,
    /// Refuse the new snapshot outright when any shard queue is full.
    /// Lossy but consistent: a rejected snapshot reaches no shard, so
    /// all shards always see the same (sub)stream.
    Reject,
}

impl fmt::Display for BackpressurePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackpressurePolicy::Block => write!(f, "block"),
            BackpressurePolicy::DropOldest => write!(f, "drop-oldest"),
            BackpressurePolicy::Reject => write!(f, "reject"),
        }
    }
}

/// Error parsing a [`BackpressurePolicy`] from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePolicyError {
    offered: String,
}

impl fmt::Display for ParsePolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown backpressure policy {:?} (expected block, drop-oldest, or reject)",
            self.offered
        )
    }
}

impl std::error::Error for ParsePolicyError {}

impl FromStr for BackpressurePolicy {
    type Err = ParsePolicyError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "block" => Ok(BackpressurePolicy::Block),
            "drop-oldest" | "drop_oldest" => Ok(BackpressurePolicy::DropOldest),
            "reject" => Ok(BackpressurePolicy::Reject),
            other => Err(ParsePolicyError {
                offered: other.to_string(),
            }),
        }
    }
}

/// Overload-aware adaptive sampling at the ingestion front.
///
/// When the deepest shard queue crosses the watermark, the front
/// degrades *deliberately*: it keeps every `stride`-th snapshot and
/// sheds the rest — a stratified subsample of the stream, evenly
/// spread in time — instead of letting the backpressure policy drop
/// whichever instants happen to be oldest. Every shed snapshot is
/// counted ([`crate::ServeStats::sampled_out`]) and the achieved
/// coverage is reported ([`crate::ServeStats::coverage_fraction`]),
/// so the quality loss is explicit rather than silent.
///
/// Below the watermark the sampler is inert and the report stream is
/// bit-identical to an unsampled engine's.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SamplingConfig {
    /// Queue-depth watermark as a percentage of `queue_capacity`
    /// (clamped to 100). Sampling engages while the *deepest* shard
    /// queue is at or above this fill level.
    pub watermark_pct: u8,
    /// Keep one snapshot in `stride` while sampling (2 = halve the
    /// rate). Values below 2 disable shedding.
    pub stride: u32,
}

impl Default for SamplingConfig {
    fn default() -> Self {
        SamplingConfig {
            watermark_pct: 75,
            stride: 2,
        }
    }
}

impl SamplingConfig {
    /// The queue depth at which sampling engages, for a given shard
    /// queue capacity. At least 1, so an empty queue never samples.
    pub fn watermark(&self, queue_capacity: usize) -> usize {
        let pct = usize::from(self.watermark_pct.min(100));
        (queue_capacity * pct / 100).max(1)
    }
}

/// What happened to one submitted snapshot at the ingestion front.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestReport {
    /// The sequence number assigned to the snapshot, or `None` when it
    /// was rejected or sampled out.
    pub seq: Option<u64>,
    /// Queued snapshots evicted (summed over shards) to make room for
    /// this one under [`BackpressurePolicy::DropOldest`].
    pub evicted: u64,
    /// Whether the snapshot was shed by overload sampling (see
    /// [`SamplingConfig`]) before reaching any queue.
    pub sampled_out: bool,
}

impl IngestReport {
    /// Whether the snapshot was accepted into at least the queues.
    pub fn accepted(&self) -> bool {
        self.seq.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_parses_its_display_form() {
        for policy in [
            BackpressurePolicy::Block,
            BackpressurePolicy::DropOldest,
            BackpressurePolicy::Reject,
        ] {
            assert_eq!(
                policy.to_string().parse::<BackpressurePolicy>().unwrap(),
                policy
            );
        }
        assert_eq!(
            "drop_oldest".parse::<BackpressurePolicy>().unwrap(),
            BackpressurePolicy::DropOldest
        );
        let err = "flood".parse::<BackpressurePolicy>().unwrap_err();
        assert!(err.to_string().contains("flood"));
    }

    #[test]
    fn default_policy_is_lossless() {
        assert_eq!(BackpressurePolicy::default(), BackpressurePolicy::Block);
    }

    #[test]
    fn sampling_watermark_scales_with_capacity_and_never_hits_zero() {
        let sampling = SamplingConfig::default();
        assert_eq!(sampling.watermark(64), 48); // 75% of 64
        assert_eq!(sampling.watermark(1), 1); // floor
        let full = SamplingConfig {
            watermark_pct: 200, // clamped to 100
            stride: 2,
        };
        assert_eq!(full.watermark(10), 10);
    }
}
