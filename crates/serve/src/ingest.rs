//! Ingestion-side backpressure policy and accounting.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

/// What the ingestion front does when a shard queue is full.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum BackpressurePolicy {
    /// Block the submitter until every shard has room. Lossless: the
    /// sharded engine stays bit-identical to an unsharded one.
    #[default]
    Block,
    /// Evict the oldest queued snapshot of the full shard to make room.
    /// Lossy per shard: shards can skip different instants under
    /// pressure; the merged boards reflect only the pairs whose shard
    /// scored that instant, and every eviction is counted per shard.
    DropOldest,
    /// Refuse the new snapshot outright when any shard queue is full.
    /// Lossy but consistent: a rejected snapshot reaches no shard, so
    /// all shards always see the same (sub)stream.
    Reject,
}

impl fmt::Display for BackpressurePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackpressurePolicy::Block => write!(f, "block"),
            BackpressurePolicy::DropOldest => write!(f, "drop-oldest"),
            BackpressurePolicy::Reject => write!(f, "reject"),
        }
    }
}

/// Error parsing a [`BackpressurePolicy`] from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePolicyError {
    offered: String,
}

impl fmt::Display for ParsePolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown backpressure policy {:?} (expected block, drop-oldest, or reject)",
            self.offered
        )
    }
}

impl std::error::Error for ParsePolicyError {}

impl FromStr for BackpressurePolicy {
    type Err = ParsePolicyError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "block" => Ok(BackpressurePolicy::Block),
            "drop-oldest" | "drop_oldest" => Ok(BackpressurePolicy::DropOldest),
            "reject" => Ok(BackpressurePolicy::Reject),
            other => Err(ParsePolicyError {
                offered: other.to_string(),
            }),
        }
    }
}

/// What happened to one submitted snapshot at the ingestion front.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestReport {
    /// The sequence number assigned to the snapshot, or `None` when it
    /// was rejected.
    pub seq: Option<u64>,
    /// Queued snapshots evicted (summed over shards) to make room for
    /// this one under [`BackpressurePolicy::DropOldest`].
    pub evicted: u64,
}

impl IngestReport {
    /// Whether the snapshot was accepted into at least the queues.
    pub fn accepted(&self) -> bool {
        self.seq.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_parses_its_display_form() {
        for policy in [
            BackpressurePolicy::Block,
            BackpressurePolicy::DropOldest,
            BackpressurePolicy::Reject,
        ] {
            assert_eq!(
                policy.to_string().parse::<BackpressurePolicy>().unwrap(),
                policy
            );
        }
        assert_eq!(
            "drop_oldest".parse::<BackpressurePolicy>().unwrap(),
            BackpressurePolicy::DropOldest
        );
        let err = "flood".parse::<BackpressurePolicy>().unwrap_err();
        assert!(err.to_string().contains("flood"));
    }

    #[test]
    fn default_policy_is_lossless() {
        assert_eq!(BackpressurePolicy::default(), BackpressurePolicy::Block);
    }
}
