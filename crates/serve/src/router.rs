//! Deterministic pair-to-shard routing.

use gridwatch_core::TransitionModel;
use gridwatch_timeseries::MeasurementPair;

/// Routes measurement pairs to shards by hashing the pair's canonical
/// display form (FNV-1a), so the assignment is a pure function of the
/// pair and the shard count — stable across processes and restarts.
///
/// Routing only runs at startup (models are partitioned once and stay
/// pinned to their shard); snapshots themselves are broadcast to every
/// shard, since each shard must see every instant to keep its pair
/// trajectories and gap-reset behaviour identical to an unsharded engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRouter {
    shards: usize,
}

impl ShardRouter {
    /// A router over `shards` shards.
    ///
    /// # Panics
    ///
    /// Panics when `shards` is zero.
    pub fn new(shards: usize) -> Self {
        assert!(shards > 0, "shard count must be positive");
        ShardRouter { shards }
    }

    /// The shard count.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard that owns this pair.
    pub fn route(&self, pair: MeasurementPair) -> usize {
        (fnv1a(&pair.to_string()) % self.shards as u64) as usize
    }

    /// Splits a model list into per-shard lists, preserving canonical
    /// pair order inside each shard.
    pub fn partition(
        &self,
        models: Vec<(MeasurementPair, TransitionModel)>,
    ) -> Vec<Vec<(MeasurementPair, TransitionModel)>> {
        let mut shards: Vec<Vec<(MeasurementPair, TransitionModel)>> =
            (0..self.shards).map(|_| Vec::new()).collect();
        for (pair, model) in models {
            shards[self.route(pair)].push((pair, model));
        }
        shards
    }

    /// Splits a bare pair list (sketch candidates without models) into
    /// per-shard lists with the same routing as [`ShardRouter::partition`],
    /// so a pair promoted on its shard lands exactly where its model
    /// would have been routed at startup.
    pub fn partition_pairs(&self, pairs: Vec<MeasurementPair>) -> Vec<Vec<MeasurementPair>> {
        let mut shards: Vec<Vec<MeasurementPair>> = (0..self.shards).map(|_| Vec::new()).collect();
        for pair in pairs {
            shards[self.route(pair)].push(pair);
        }
        shards
    }
}

fn fnv1a(text: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in text.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridwatch_timeseries::{MachineId, MeasurementId, MetricKind};

    fn pair(m1: u32, t1: u16, m2: u32, t2: u16) -> MeasurementPair {
        MeasurementPair::new(
            MeasurementId::new(MachineId::new(m1), MetricKind::Custom(t1)),
            MeasurementId::new(MachineId::new(m2), MetricKind::Custom(t2)),
        )
        .unwrap()
    }

    #[test]
    fn routing_is_deterministic_and_in_range() {
        let router = ShardRouter::new(4);
        for m in 0..8 {
            for t in 0..8 {
                let p = pair(m, t, m + 1, t);
                let shard = router.route(p);
                assert!(shard < 4);
                assert_eq!(shard, router.route(p), "route must be stable");
            }
        }
    }

    #[test]
    fn single_shard_takes_everything() {
        let router = ShardRouter::new(1);
        assert_eq!(router.route(pair(0, 0, 1, 0)), 0);
        assert_eq!(router.route(pair(7, 3, 9, 5)), 0);
    }

    #[test]
    fn routing_spreads_across_shards() {
        let router = ShardRouter::new(4);
        let mut seen = [false; 4];
        for m in 0..16 {
            for t in 0..16 {
                seen[router.route(pair(m, t, m + 1, t))] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "256 pairs must hit all 4 shards");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_shards_rejected() {
        ShardRouter::new(0);
    }

    #[test]
    fn candidate_partition_agrees_with_model_routing() {
        let router = ShardRouter::new(3);
        let pairs: Vec<MeasurementPair> = (0..12).map(|m| pair(m, 0, m + 1, 1)).collect();
        let parts = router.partition_pairs(pairs.clone());
        assert_eq!(parts.len(), 3);
        assert_eq!(parts.iter().map(Vec::len).sum::<usize>(), pairs.len());
        for (shard, part) in parts.iter().enumerate() {
            for &p in part {
                assert_eq!(router.route(p), shard);
            }
        }
    }
}
