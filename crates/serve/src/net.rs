//! TCP snapshot ingestion in front of the sharded engine.
//!
//! # Architecture
//!
//! ```text
//!  clients ──► [accept thread] ─spawns─► [conn thread]*    (one per socket)
//!                                            │ WireFrame
//!                                            ▼
//!                              bounded frame channel (BackpressurePolicy)
//!                                            │
//!                                            ▼
//!                                      [ingest thread]
//!                                  SourceTable ➜ ShardedEngine
//!                                  periodic checkpoints + stats flush
//! ```
//!
//! Each connection runs its own [`FrameDecoder`] state machine, so
//! truncated frames, interleaved partial writes, garbage bytes, and
//! oversized claims are contained to that connection: the decoder turns
//! them into typed [`DecodeError`]s, the connection is closed and
//! counted, and every other client keeps streaming. Decoded frames cross
//! one bounded channel where the configured [`BackpressurePolicy`]
//! applies at the socket boundary — `block` never loses a frame (the
//! client's TCP window absorbs the stall), `reject` refuses frames while
//! the channel is full, `drop-oldest` evicts the oldest queued frame.
//!
//! The ingest thread owns the engine. It runs admitted frames through a
//! [`SourceTable`] — duplicates from reconnect-with-replay are absorbed,
//! out-of-order frames are re-ordered within a bounded window, and a
//! window overflow abandons the gap rather than wedging the stream — so
//! under the lossless policy the engine sees exactly the sequence the
//! sources sent, and the merged [`StepReport`] stream is bit-identical
//! to an offline replay of the same snapshots.
//!
//! Shutdown is graceful by construction: the accept loop is woken and
//! stopped first, every open socket is shut down (unblocking reads),
//! connection threads drain what they already buffered, and only when
//! every frame sender is gone does the ingest thread take its final
//! checkpoint (with per-source progress inside the manifest) and stop
//! the engine.

use std::collections::BTreeMap;
use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::{self, Receiver, Sender, TrySendError};
// `OrderedMutex` wraps `parking_lot::Mutex`, which does not poison: a
// panicking stats writer cannot force every other thread to unwrap a
// poisoned lock, which keeps the accept/ingest paths free of
// `unwrap()/expect()`. Under the `validate` feature it also checks
// lock-class ranks at runtime (see `gridwatch-sync`).
use gridwatch_sync::{classes, OrderedMutex};

use gridwatch_detect::{EngineSnapshot, StepReport};
use gridwatch_obs::{PipelineObs, Stage};

use crate::checkpoint::write_atomic;
use crate::engine::{ServeConfig, ShardedEngine, StatsProbe};
use crate::ingest::BackpressurePolicy;
use crate::sequence::{Admission, SourceTable};
use crate::stats::{ConnStats, NetStats, ServeStats};
use crate::wire::{FrameDecoder, WireFrame, WireProtocol};

/// Configuration of the TCP ingestion tier (the engine's own knobs live
/// in [`ServeConfig`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetConfig {
    /// Accepted encoding; [`WireProtocol::Auto`] detects per connection.
    pub protocol: WireProtocol,
    /// Read deadline per `read` call; a connection that stays silent (or
    /// dribbles nothing) past it is closed and counted as a timeout.
    /// `Duration::ZERO` disables the deadline.
    pub read_timeout: Duration,
    /// Largest accepted frame (JSON payload or CSV line) in bytes.
    pub max_frame_bytes: usize,
    /// Bounded capacity of the socket-boundary frame channel.
    pub ingest_capacity: usize,
    /// Early frames buffered per source before a sequence gap is
    /// abandoned.
    pub reorder_capacity: usize,
    /// Where to checkpoint; `None` disables checkpointing.
    pub checkpoint_dir: Option<PathBuf>,
    /// Applied snapshots between periodic checkpoints; `0` checkpoints
    /// only at shutdown.
    pub checkpoint_every: u64,
    /// Where to flush a [`ServeStats`] JSON dump at every checkpoint and
    /// at shutdown; `None` disables the dump.
    pub stats_path: Option<PathBuf>,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            protocol: WireProtocol::Auto,
            read_timeout: Duration::from_secs(30),
            max_frame_bytes: 1 << 20,
            ingest_capacity: 256,
            reorder_capacity: 64,
            checkpoint_dir: None,
            checkpoint_every: 0,
            stats_path: None,
        }
    }
}

/// What happened to one frame at the socket boundary.
#[derive(Debug, PartialEq, Eq)]
enum Delivery {
    /// The frame entered the channel without losses.
    Delivered,
    /// The channel was full under [`BackpressurePolicy::Reject`]; the
    /// frame was discarded.
    Rejected,
    /// The frame entered after evicting this many older queued frames
    /// under [`BackpressurePolicy::DropOldest`].
    DeliveredEvicting(u64),
    /// The ingest side of the channel is gone (shutdown already
    /// stopped it, or it died); the connection should stop reading.
    IngestGone,
}

/// Applies the backpressure policy to one frame at the channel mouth.
///
/// `stealer` is a receiver clone of the same channel, used only by
/// `DropOldest` to evict the head. A steal can lose the race against the
/// ingest thread draining the same frame — the retry just finds room.
///
/// A disconnected channel is reported as [`Delivery::IngestGone`], never
/// a panic: a connection thread racing shutdown must wind down quietly
/// instead of taking the listener's stats with it.
fn deliver(
    policy: BackpressurePolicy,
    tx: &Sender<WireFrame>,
    stealer: &Receiver<WireFrame>,
    frame: WireFrame,
) -> Delivery {
    match policy {
        BackpressurePolicy::Block => match tx.send(frame) {
            Ok(()) => Delivery::Delivered,
            Err(_) => Delivery::IngestGone,
        },
        BackpressurePolicy::Reject => match tx.try_send(frame) {
            Ok(()) => Delivery::Delivered,
            Err(TrySendError::Full(_)) => Delivery::Rejected,
            Err(TrySendError::Disconnected(_)) => Delivery::IngestGone,
        },
        BackpressurePolicy::DropOldest => {
            let mut evicted = 0;
            let mut frame = frame;
            loop {
                match tx.try_send(frame) {
                    Ok(()) => return Delivery::DeliveredEvicting(evicted),
                    Err(TrySendError::Full(back)) => {
                        frame = back;
                        if stealer.try_recv().is_ok() {
                            evicted += 1;
                        }
                    }
                    Err(TrySendError::Disconnected(_)) => return Delivery::IngestGone,
                }
            }
        }
    }
}

/// Listener-wide wire counters plus the per-connection table, shared
/// between the accept, connection, and ingest threads.
#[derive(Debug, Default)]
struct NetAccumulator {
    accepted: u64,
    closed: u64,
    frames: u64,
    decode_errors: u64,
    timeouts: u64,
    deadline_failures: u64,
    rejected: u64,
    dropped: u64,
    duplicates: u64,
    out_of_order: u64,
    gap_skips: u64,
    checkpoint_failures: u64,
    connections: Vec<ConnStats>,
}

impl NetAccumulator {
    fn snapshot(&self) -> NetStats {
        NetStats {
            accepted: self.accepted,
            closed: self.closed,
            frames: self.frames,
            decode_errors: self.decode_errors,
            timeouts: self.timeouts,
            deadline_failures: self.deadline_failures,
            rejected: self.rejected,
            dropped: self.dropped,
            duplicates: self.duplicates,
            out_of_order: self.out_of_order,
            gap_skips: self.gap_skips,
            checkpoint_failures: self.checkpoint_failures,
            connections: self.connections.clone(),
        }
    }
}

type Shared<T> = Arc<OrderedMutex<T>>;

/// Socket clones + join handles of live connection threads, kept so
/// shutdown can unblock and join every one of them.
#[derive(Default)]
struct ConnRegistry {
    entries: Vec<(TcpStream, JoinHandle<()>)>,
}

/// A TCP listener feeding a [`ShardedEngine`].
///
/// Built with [`NetServer::bind`]; reports stream out through
/// [`NetServer::try_recv_report`] / [`NetServer::recv_report_timeout`];
/// torn down with [`NetServer::shutdown`], which drains in-flight frames
/// and takes a final checkpoint before stopping the engine.
pub struct NetServer {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    ingest: Option<JoinHandle<(Vec<StepReport>, ServeStats)>>,
    conns: Shared<ConnRegistry>,
    frame_tx: Option<Sender<WireFrame>>,
    reports_rx: Receiver<StepReport>,
    probe: StatsProbe,
    net: Shared<NetAccumulator>,
}

impl std::fmt::Debug for NetServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "NetServer({})", self.local_addr)
    }
}

impl NetServer {
    /// Binds `addr`, starts the engine from a trained snapshot, and
    /// begins accepting connections. `sources` seeds the per-source
    /// sequencing table — pass a recovered manifest's
    /// [`crate::CheckpointManifest::sources`] so a resumed listener
    /// absorbs replayed frames as duplicates.
    ///
    /// # Errors
    ///
    /// Fails when the address cannot be parsed or bound (busy port,
    /// missing interface), or when a worker thread cannot spawn.
    ///
    /// # Panics
    ///
    /// Panics when `net.ingest_capacity`, `net.reorder_capacity`, or
    /// `net.max_frame_bytes` is zero.
    pub fn bind(
        addr: impl ToSocketAddrs,
        snapshot: EngineSnapshot,
        serve: ServeConfig,
        net: NetConfig,
        sources: BTreeMap<String, u64>,
    ) -> io::Result<NetServer> {
        NetServer::bind_with_obs(addr, snapshot, serve, net, sources, PipelineObs::disabled())
    }

    /// [`NetServer::bind`] with explicit observability handles: the
    /// tracer additionally times the `ingest → decode → sequence`
    /// wire-side stages, and the flight recorder captures connection
    /// lifecycle and fault events.
    ///
    /// # Errors
    ///
    /// Same as [`NetServer::bind`].
    ///
    /// # Panics
    ///
    /// Same as [`NetServer::bind`].
    pub fn bind_with_obs(
        addr: impl ToSocketAddrs,
        snapshot: EngineSnapshot,
        serve: ServeConfig,
        net: NetConfig,
        sources: BTreeMap<String, u64>,
        obs: PipelineObs,
    ) -> io::Result<NetServer> {
        assert!(net.ingest_capacity > 0, "ingest capacity must be positive");
        assert!(net.max_frame_bytes > 0, "frame limit must be positive");
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;

        let engine = ShardedEngine::start_with_obs(snapshot, serve, obs.clone());
        let probe = engine.stats_probe();
        let reports_rx = engine.reports_receiver();
        let table = SourceTable::resume(net.reorder_capacity, sources);

        let (frame_tx, frame_rx) = channel::bounded::<WireFrame>(net.ingest_capacity);
        // Receiver clone for the `DropOldest` steal path; receivers do
        // not keep the channel alive, so this never blocks shutdown.
        let frame_stealer = frame_rx.clone();
        let stop = Arc::new(AtomicBool::new(false));
        let conns: Shared<ConnRegistry> = Arc::new(OrderedMutex::new(
            classes::NET_CONNS,
            ConnRegistry::default(),
        ));
        let net_acc: Shared<NetAccumulator> = Arc::new(OrderedMutex::new(
            classes::NET_ACCUMULATOR,
            NetAccumulator::default(),
        ));

        let ingest = {
            let net_acc = Arc::clone(&net_acc);
            let cfg = net.clone();
            let obs = obs.clone();
            std::thread::Builder::new()
                .name("gw-net-ingest".to_string())
                .spawn(move || ingest_loop(engine, table, frame_rx, net_acc, cfg, obs))?
        };

        let accept = {
            let stop = Arc::clone(&stop);
            let conns = Arc::clone(&conns);
            let net_acc = Arc::clone(&net_acc);
            let tx = frame_tx.clone();
            let policy = serve.backpressure;
            let cfg = net.clone();
            let obs = obs.clone();
            let spawned = std::thread::Builder::new()
                .name("gw-net-accept".to_string())
                .spawn(move || {
                    accept_loop(
                        listener,
                        stop,
                        conns,
                        net_acc,
                        tx,
                        frame_stealer,
                        policy,
                        cfg,
                        obs,
                    )
                });
            match spawned {
                Ok(handle) => handle,
                Err(e) => {
                    // The ingest thread already owns the engine; drop the
                    // last sender so it drains, checkpoints, and stops the
                    // engine before we report the spawn failure.
                    drop(frame_tx);
                    let _ = ingest.join();
                    return Err(e);
                }
            }
        };

        Ok(NetServer {
            local_addr,
            stop,
            accept: Some(accept),
            ingest: Some(ingest),
            conns,
            frame_tx: Some(frame_tx),
            reports_rx,
            probe,
            net: net_acc,
        })
    }

    /// The bound address (with the OS-assigned port when bound to `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A merged report, if one is ready.
    pub fn try_recv_report(&self) -> Option<StepReport> {
        self.reports_rx.try_recv().ok()
    }

    /// Waits up to `timeout` for the next merged report.
    pub fn recv_report_timeout(&self, timeout: Duration) -> Option<StepReport> {
        self.reports_rx.recv_timeout(timeout).ok()
    }

    /// Current serving statistics, wire-path counters included.
    pub fn stats(&self) -> ServeStats {
        let mut stats = self.probe.stats();
        stats.net = self.net.lock().snapshot();
        stats
    }

    /// The listener's observability handles (shared with its threads).
    pub fn obs(&self) -> &PipelineObs {
        self.probe.obs()
    }

    /// A detachable handle serving live scrapes of this listener:
    /// engine counters, wire counters, and stage spans as Prometheus
    /// exposition text.
    pub fn metrics_probe(&self) -> NetMetricsProbe {
        NetMetricsProbe {
            probe: self.probe.clone(),
            net: Arc::clone(&self.net),
        }
    }

    /// Stops the listener gracefully: stops accepting, unblocks and
    /// joins every connection (frames already buffered are decoded and
    /// delivered), lets the ingest thread drain the channel, take its
    /// final checkpoint, and stop the engine. Returns the reports not
    /// yet consumed plus final statistics.
    pub fn shutdown(mut self) -> (Vec<StepReport>, ServeStats) {
        self.stop.store(true, Ordering::SeqCst);
        // The accept loop sits in a blocking accept; a throwaway
        // connection to ourselves wakes it so it can observe the flag.
        drop(TcpStream::connect(self.local_addr));
        if let Some(accept) = self.accept.take() {
            if accept.join().is_err() {
                gridwatch_obs::error!(
                    "net",
                    "gridwatch-serve: accept thread panicked; continuing shutdown"
                );
            }
        }
        // Unblock every connection read, then join the handlers; each
        // drains its decoder before exiting, so buffered frames are not
        // lost.
        let entries = std::mem::take(&mut self.conns.lock().entries);
        for (stream, _) in &entries {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
        for (_, handle) in entries {
            if handle.join().is_err() {
                gridwatch_obs::error!(
                    "net",
                    "gridwatch-serve: connection thread panicked; continuing shutdown"
                );
            }
        }
        // Ours is the last frame sender: dropping it lets the ingest
        // thread finish draining, checkpoint, and stop the engine.
        drop(self.frame_tx.take());
        let (mut reports, mut stats) = match self.ingest.take().map(JoinHandle::join) {
            Some(Ok(drained)) => drained,
            // A dead ingest thread (or a double shutdown, which the
            // consuming receiver makes impossible) still yields the
            // engine-side stats the probe has been accumulating.
            Some(Err(_)) | None => {
                gridwatch_obs::error!(
                    "net",
                    "gridwatch-serve: ingest thread panicked; reporting partial stats"
                );
                (Vec::new(), self.probe.stats())
            }
        };
        // Anything the engine left on the report channel that the
        // caller did not consume yet.
        while let Ok(report) = self.reports_rx.try_recv() {
            reports.push(report);
        }
        stats.net = self.net.lock().snapshot();
        (reports, stats)
    }
}

/// A read-only scrape handle over a running [`NetServer`]: live engine
/// counters plus wire counters, renderable as Prometheus exposition
/// text. Detachable — holding one never blocks shutdown.
#[derive(Clone)]
pub struct NetMetricsProbe {
    probe: StatsProbe,
    net: Shared<NetAccumulator>,
}

impl std::fmt::Debug for NetMetricsProbe {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "NetMetricsProbe")
    }
}

impl NetMetricsProbe {
    /// Current serving statistics, wire-path counters included.
    pub fn stats(&self) -> ServeStats {
        let mut stats = self.probe.stats();
        stats.net = self.net.lock().snapshot();
        stats
    }

    /// The current stats plus stage spans as Prometheus exposition
    /// text — what a `GET /metrics` scrape of this listener returns.
    pub fn to_prometheus(&self) -> String {
        self.stats().to_prometheus(&self.probe.obs().tracer)
    }

    /// The listener's observability handles (shared, not a copy).
    pub fn obs(&self) -> &PipelineObs {
        self.probe.obs()
    }

    /// The structural half of the `/healthz` document (see
    /// [`StatsProbe::health_report`]).
    pub fn health_report(&self) -> gridwatch_obs::HealthReport {
        self.probe.health_report()
    }
}

/// Accepts connections until the stop flag is raised, spawning one
/// handler thread per socket.
#[allow(clippy::too_many_arguments)]
fn accept_loop(
    listener: TcpListener,
    stop: Arc<AtomicBool>,
    conns: Shared<ConnRegistry>,
    net_acc: Shared<NetAccumulator>,
    tx: Sender<WireFrame>,
    stealer: Receiver<WireFrame>,
    policy: BackpressurePolicy,
    cfg: NetConfig,
    obs: PipelineObs,
) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) if stop.load(Ordering::SeqCst) => break,
            // Transient accept failure (e.g. the peer reset before we
            // got to it); keep listening.
            Err(_) => continue,
        };
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let peer = stream
            .peer_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| "unknown".to_string());
        let conn_id = {
            let mut acc = net_acc.lock();
            acc.accepted += 1;
            let conn_id = acc.connections.len();
            acc.connections.push(ConnStats {
                conn: conn_id as u64,
                peer: peer.clone(),
                protocol: "unknown".to_string(),
                open: true,
                ..ConnStats::default()
            });
            conn_id
        };
        obs.recorder
            .record("conn-open", format_args!("conn {conn_id} peer {peer}"));
        let reader = match stream.try_clone() {
            Ok(clone) => clone,
            Err(_) => {
                let mut acc = net_acc.lock();
                acc.closed += 1;
                acc.connections[conn_id].open = false;
                continue;
            }
        };
        let spawned = {
            let net_acc = Arc::clone(&net_acc);
            let tx = tx.clone();
            let stealer = stealer.clone();
            let cfg = cfg.clone();
            let obs = obs.clone();
            std::thread::Builder::new()
                .name(format!("gw-net-conn-{conn_id}"))
                .spawn(move || conn_loop(conn_id, reader, net_acc, tx, stealer, policy, cfg, obs))
        };
        let handle = match spawned {
            Ok(handle) => handle,
            Err(e) => {
                // Out of threads is a load condition, not a listener
                // defect: refuse this connection and keep accepting.
                gridwatch_obs::error!(
                    "net",
                    "gridwatch-serve: cannot spawn connection thread: {e}"
                );
                let _ = stream.shutdown(std::net::Shutdown::Both);
                let mut acc = net_acc.lock();
                acc.closed += 1;
                acc.connections[conn_id].open = false;
                continue;
            }
        };
        conns.lock().entries.push((stream, handle));
    }
}

/// One connection: read bytes, decode frames, deliver with backpressure,
/// account every outcome.
#[allow(clippy::too_many_arguments)]
fn conn_loop(
    conn: usize,
    mut stream: TcpStream,
    net_acc: Shared<NetAccumulator>,
    tx: Sender<WireFrame>,
    stealer: Receiver<WireFrame>,
    policy: BackpressurePolicy,
    cfg: NetConfig,
    obs: PipelineObs,
) {
    if cfg.read_timeout > Duration::ZERO {
        if let Err(e) = stream.set_read_timeout(Some(cfg.read_timeout)) {
            // A connection without a read deadline can hold its slot
            // forever (slow-loris with no timeout to trip); refuse to
            // serve it unprotected rather than ignoring the failure.
            gridwatch_obs::error!(
                "net",
                "gridwatch-serve: cannot arm read deadline on conn {conn}: {e}"
            );
            obs.recorder
                .record("deadline-failure", format_args!("conn {conn}: {e}"));
            let _ = stream.shutdown(std::net::Shutdown::Both);
            let mut acc = net_acc.lock();
            acc.deadline_failures += 1;
            acc.closed += 1;
            acc.connections[conn].open = false;
            return;
        }
    }
    let mut decoder = FrameDecoder::new(cfg.protocol, cfg.max_frame_bytes);
    let mut buf = [0u8; 8 * 1024];
    let mut named_protocol = false;
    'read: loop {
        // The Ingest span covers the blocking read: time-to-bytes as
        // seen from the server, socket wait included.
        let ingest = obs.tracer.span(Stage::Ingest);
        let read = stream.read(&mut buf);
        drop(ingest);
        match read {
            Ok(0) => {
                // Clean EOF — unless it truncated a frame mid-flight.
                if decoder.eof_error().is_some() {
                    obs.recorder.record(
                        "decode-error",
                        format_args!("conn {conn}: truncated at EOF"),
                    );
                    let mut acc = net_acc.lock();
                    acc.decode_errors += 1;
                    acc.connections[conn].decode_errors += 1;
                }
                break 'read;
            }
            Ok(n) => {
                decoder.push(&buf[..n]);
                loop {
                    // Span each `next_frame` slice separately so the
                    // Decode distribution never absorbs the blocking
                    // `deliver` below.
                    let decode = obs.tracer.span(Stage::Decode);
                    let next = decoder.next_frame();
                    drop(decode);
                    match next {
                        Ok(Some(frame)) => {
                            if !named_protocol {
                                if let Some(name) = decoder.protocol_name() {
                                    net_acc.lock().connections[conn].protocol = name.to_string();
                                    named_protocol = true;
                                }
                            }
                            let outcome = deliver(policy, &tx, &stealer, frame);
                            let mut acc = net_acc.lock();
                            match outcome {
                                Delivery::Delivered => {
                                    acc.frames += 1;
                                    acc.connections[conn].frames += 1;
                                }
                                Delivery::Rejected => {
                                    acc.rejected += 1;
                                    acc.connections[conn].rejected += 1;
                                }
                                Delivery::DeliveredEvicting(evicted) => {
                                    acc.frames += 1;
                                    acc.connections[conn].frames += 1;
                                    acc.dropped += evicted;
                                    acc.connections[conn].dropped += evicted;
                                }
                                Delivery::IngestGone => {
                                    // Shutdown race: the ingest thread is
                                    // gone, so stop reading this socket.
                                    drop(acc);
                                    break 'read;
                                }
                            }
                        }
                        Ok(None) => break,
                        Err(e) => {
                            // The stream is unsynchronized; close it.
                            gridwatch_obs::warn!(
                                "net",
                                "gridwatch-serve: decode error on conn {conn}: {e}"
                            );
                            obs.recorder
                                .record("decode-error", format_args!("conn {conn}: {e}"));
                            let mut acc = net_acc.lock();
                            acc.decode_errors += 1;
                            acc.connections[conn].decode_errors += 1;
                            break 'read;
                        }
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                // Slow-loris or idle client: past the read deadline.
                obs.recorder
                    .record("timeout", format_args!("conn {conn} hit the read deadline"));
                let mut acc = net_acc.lock();
                acc.timeouts += 1;
                acc.connections[conn].timeouts += 1;
                break 'read;
            }
            Err(_) => break 'read,
        }
    }
    let _ = stream.shutdown(std::net::Shutdown::Both);
    obs.recorder
        .record("conn-close", format_args!("conn {conn}"));
    let mut acc = net_acc.lock();
    acc.closed += 1;
    acc.connections[conn].open = false;
}

/// The ingest thread: sequences frames per source, feeds the engine,
/// checkpoints periodically and at shutdown, and flushes stats dumps.
fn ingest_loop(
    mut engine: ShardedEngine,
    mut table: SourceTable,
    frame_rx: Receiver<WireFrame>,
    net_acc: Shared<NetAccumulator>,
    cfg: NetConfig,
    obs: PipelineObs,
) -> (Vec<StepReport>, ServeStats) {
    let mut since_checkpoint = 0u64;
    while let Ok(frame) = frame_rx.recv() {
        let source = frame.source.clone();
        let traced = obs.exemplar.is_enabled();
        let seq_start = if traced { obs.exemplar.now_ns() } else { 0 };
        let sequence = obs.tracer.span(Stage::Sequence);
        let admission = table.admit(&frame.source, frame.seq, frame.snapshot);
        drop(sequence);
        let seq_ns = if traced {
            obs.exemplar.now_ns().saturating_sub(seq_start)
        } else {
            0
        };
        let ready = match admission {
            Admission::Ready(snaps) => snaps,
            Admission::Buffered => {
                net_acc.lock().out_of_order += 1;
                continue;
            }
            Admission::Duplicate => {
                net_acc.lock().duplicates += 1;
                continue;
            }
            Admission::GapAbandoned { skipped, released } => {
                gridwatch_obs::warn!(
                    "net",
                    "gridwatch-serve: abandoned {skipped} frame(s) from source {source}"
                );
                obs.recorder.record(
                    "gap-skip",
                    format_args!("source {source}: {skipped} seq(s) abandoned"),
                );
                net_acc.lock().gap_skips += skipped;
                released
            }
        };
        table.check_window_bound();
        for snap in ready {
            if traced {
                // The Sequence slice is shared by every snapshot this
                // admission released (one reorder resolution can free a
                // whole buffered run).
                let slice =
                    gridwatch_obs::SpanSlice::new(Stage::Sequence, seq_start, seq_ns, "ingest");
                engine.submit_traced(snap, &source, std::slice::from_ref(&slice));
            } else {
                engine.submit(snap);
            }
            since_checkpoint += 1;
        }
        if cfg.checkpoint_every > 0 && since_checkpoint >= cfg.checkpoint_every {
            since_checkpoint = 0;
            run_checkpoint(&mut engine, &table, &net_acc, &cfg, &obs);
        }
    }
    // Every sender is gone: the stream is drained. Take the final cut.
    run_checkpoint(&mut engine, &table, &net_acc, &cfg, &obs);
    engine.shutdown()
}

/// One periodic (or final) checkpoint plus the stats-file flush. Both
/// are best-effort: a failure is counted, and the stream keeps flowing.
fn run_checkpoint(
    engine: &mut ShardedEngine,
    table: &SourceTable,
    net_acc: &Shared<NetAccumulator>,
    cfg: &NetConfig,
    obs: &PipelineObs,
) {
    if let Some(dir) = &cfg.checkpoint_dir {
        if let Err(e) = engine.checkpoint_with_sources(dir, table.progress()) {
            gridwatch_obs::error!("net", "gridwatch-serve: checkpoint failed: {e}");
            obs.recorder
                .record("checkpoint-failure", format_args!("{e}"));
            net_acc.lock().checkpoint_failures += 1;
        }
    }
    if let Some(path) = &cfg.stats_path {
        let mut stats = engine.stats();
        stats.net = net_acc.lock().snapshot();
        let _ = write_atomic(path, &stats.to_json());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use gridwatch_detect::Snapshot;
    use gridwatch_timeseries::Timestamp;

    fn frame(seq: u64) -> WireFrame {
        WireFrame {
            source: "t".to_string(),
            seq,
            snapshot: Snapshot::new(Timestamp::from_secs(seq * 360)),
        }
    }

    #[test]
    fn block_policy_delivers_everything() {
        let (tx, rx) = channel::bounded(4);
        for k in 0..4 {
            assert_eq!(
                deliver(BackpressurePolicy::Block, &tx, &rx, frame(k)),
                Delivery::Delivered
            );
        }
        assert_eq!(rx.len(), 4);
    }

    #[test]
    fn reject_policy_refuses_when_full() {
        let (tx, rx) = channel::bounded(2);
        assert_eq!(
            deliver(BackpressurePolicy::Reject, &tx, &rx, frame(0)),
            Delivery::Delivered
        );
        assert_eq!(
            deliver(BackpressurePolicy::Reject, &tx, &rx, frame(1)),
            Delivery::Delivered
        );
        assert_eq!(
            deliver(BackpressurePolicy::Reject, &tx, &rx, frame(2)),
            Delivery::Rejected
        );
        // The queued frames are untouched.
        assert_eq!(rx.recv().unwrap().seq, 0);
        assert_eq!(rx.recv().unwrap().seq, 1);
    }

    #[test]
    fn drop_oldest_policy_evicts_the_head() {
        let (tx, rx) = channel::bounded(2);
        deliver(BackpressurePolicy::Block, &tx, &rx, frame(0));
        deliver(BackpressurePolicy::Block, &tx, &rx, frame(1));
        assert_eq!(
            deliver(BackpressurePolicy::DropOldest, &tx, &rx, frame(2)),
            Delivery::DeliveredEvicting(1)
        );
        assert_eq!(rx.recv().unwrap().seq, 1);
        assert_eq!(rx.recv().unwrap().seq, 2);
    }
}
