//! The sharded concurrent detection engine.
//!
//! # Architecture
//!
//! ```text
//!  submit(&mut)        bounded queues          merged, in seq order
//!  ───────────►  ┌──► [shard worker 0] ──┐
//!   Snapshot     ├──► [shard worker 1] ──┼──► [aggregator] ──► reports
//!  (broadcast)   └──► [shard worker k] ──┘     │
//!                                              └─► alarms, stats, manifest
//! ```
//!
//! Pair models are partitioned once at startup ([`ShardRouter`]); every
//! snapshot is broadcast to every shard because each shard must see every
//! instant to keep its pair trajectories (and gap-reset behaviour)
//! identical to an unsharded [`DetectionEngine`]. Each worker scores its
//! slice with [`DetectionEngine::step_scores`]; the aggregator merges the
//! disjoint partial [`ScoreBoard`]s ([`ScoreBoard::merge`] is exact — the
//! three-level aggregation is a pure function of the pair-score map) and
//! runs the single [`AlarmTracker`] over the merged board, so under the
//! lossless [`BackpressurePolicy::Block`] policy the stream of
//! [`StepReport`]s is bit-identical to `DetectionEngine::step`.
//!
//! # Ordering and correctness notes
//!
//! * `submit(&mut self)` makes the ingestion front single-producer, so
//!   sequence numbers are assigned in submission order and queue lengths
//!   can only shrink underneath it.
//! * Every accepted sequence number receives exactly one reply per shard
//!   (a scored board, or a `Dropped` tombstone when the ingestion front
//!   evicts it under [`BackpressurePolicy::DropOldest`]). The aggregator
//!   finalizes sequence numbers strictly in order, releasing a report as
//!   soon as the lowest outstanding one is fully replied.
//! * A checkpoint is a barrier: the caller announces the cut to the
//!   aggregator, pushes a marker through every shard queue, and blocks
//!   until the aggregator has merged every pre-cut step and written the
//!   manifest. Channel FIFO order guarantees every pre-cut reply is
//!   consumed before the last marker reply, so the manifest's tracker
//!   state is exactly the post-cut state.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{self, Receiver, Sender, TrySendError};

use gridwatch_detect::{
    AlarmTracker, DetectionEngine, EngineConfig, EngineSnapshot, ScoreBoard, Snapshot, StepReport,
};
use gridwatch_obs::{PipelineObs, SpanSlice, Stage};
use gridwatch_sync::{classes, OrderedMutex};

use crate::checkpoint::{CheckpointError, CheckpointManifest, Checkpointer};
use crate::ingest::{BackpressurePolicy, IngestReport, SamplingConfig};
use crate::router::ShardRouter;
use crate::stats::{ServeStats, StatsAccumulator};

/// Configuration of the serving layer (the detection semantics live in
/// the wrapped engine's [`EngineConfig`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Number of shard worker threads the pair models are split across.
    pub shards: usize,
    /// Bounded capacity of each shard's snapshot queue.
    pub queue_capacity: usize,
    /// What the ingestion front does when a queue is full.
    pub backpressure: BackpressurePolicy,
    /// Overload-aware adaptive sampling: when set and the deepest
    /// shard queue crosses the watermark, the ingestion front sheds a
    /// stratified subsample of incoming snapshots with explicit
    /// coverage accounting, instead of letting the backpressure policy
    /// lose arbitrary instants. `None` disables sampling.
    pub sampling: Option<SamplingConfig>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            shards: 1,
            queue_capacity: 64,
            backpressure: BackpressurePolicy::Block,
            sampling: None,
        }
    }
}

/// Work sent to a shard worker.
enum ShardMsg {
    /// Score this snapshot against the shard's pair models.
    Snapshot { seq: u64, snap: Arc<Snapshot> },
    /// Checkpoint barrier marker: persist the shard's state now.
    Checkpoint { id: u64, dir: PathBuf },
}

/// Everything the aggregator consumes (worker replies and ingestion-side
/// control messages share one channel so their relative order is the
/// order they were pushed).
enum ShardReply {
    /// One shard's partial board for one sequence number.
    Scores {
        shard: usize,
        seq: u64,
        board: ScoreBoard,
        elapsed_ns: u64,
        /// Pair-model rebuilds the shard's drift layer fired while
        /// scoring this snapshot (0 when the drift layer is off).
        rebuilds: u64,
        /// Sketch-layer promotions that materialized a model while
        /// scoring this snapshot (0 when the sketch layer is off).
        promotions: u64,
        /// Sketch-layer demotions that retired a model.
        demotions: u64,
        /// The shard's current sketch gauges (tracked pairs,
        /// materialized models, sketch bytes) after this step.
        gauges: ShardGauges,
    },
    /// The ingestion front evicted this sequence number from this
    /// shard's queue; the shard will never score it.
    Dropped { shard: usize, seq: u64 },
    /// A checkpoint was requested, cutting at `cut_seq`.
    CheckpointBegin {
        id: u64,
        cut_seq: u64,
        dir: PathBuf,
        sources: BTreeMap<String, u64>,
        ack: Sender<Result<CheckpointManifest, CheckpointError>>,
    },
    /// One shard finished writing its checkpoint file.
    CheckpointFile {
        shard: usize,
        id: u64,
        result: Result<String, CheckpointError>,
        /// Sketch candidates persisted inside the shard's file (0 on
        /// error or with the sketch layer off); summed into
        /// [`CheckpointManifest::candidate_pairs`].
        candidates: usize,
    },
}

/// A shard's point-in-time sketch gauges, piggybacked on every scores
/// reply so the stats snapshot stays current without extra round-trips.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct ShardGauges {
    /// Pairs under sketch tracking (candidates + materialized); equals
    /// the model count when the sketch layer is off.
    pub(crate) tracked_pairs: usize,
    /// Pair models currently materialized.
    pub(crate) materialized: usize,
    /// Approximate heap bytes held by the shard's measurement sketches.
    pub(crate) sketch_bytes: usize,
}

/// Aggregator bookkeeping for one in-flight sequence number.
#[derive(Default)]
struct PendingStep {
    board: Option<ScoreBoard>,
    replies: usize,
}

/// Aggregator bookkeeping for one in-flight checkpoint.
struct CheckpointOp {
    id: u64,
    cut_seq: u64,
    dir: PathBuf,
    sources: BTreeMap<String, u64>,
    ack: Sender<Result<CheckpointManifest, CheckpointError>>,
    files: Vec<Option<String>>,
    received: usize,
    error: Option<CheckpointError>,
    /// Sketch candidates persisted across all shard files so far.
    candidates: usize,
}

/// A running sharded detection engine. Built with
/// [`ShardedEngine::start`], fed with [`ShardedEngine::submit`], torn
/// down with [`ShardedEngine::shutdown`] (which drains and returns every
/// remaining report).
///
/// Dropping the engine without calling `shutdown` is safe — the worker
/// and aggregator threads notice their channels disconnecting and exit —
/// but any unread reports are lost.
pub struct ShardedEngine {
    config: ServeConfig,
    shard_senders: Vec<Sender<ShardMsg>>,
    /// Receiver clones of the shard queues, used only by `DropOldest`
    /// to steal the oldest queued snapshot.
    shard_stealers: Vec<Receiver<ShardMsg>>,
    reply_sender: Sender<ShardReply>,
    reports_rx: Receiver<StepReport>,
    stats: Arc<OrderedMutex<StatsAccumulator>>,
    obs: PipelineObs,
    next_seq: u64,
    next_ckpt_id: u64,
    /// Monotone submit counter driving the sampling stride (counts
    /// only submits made while sampling is engaged, so coverage is
    /// exactly 1-in-`stride` during each overload episode).
    sample_tick: u64,
    workers: Vec<JoinHandle<()>>,
    aggregator: JoinHandle<()>,
}

impl std::fmt::Debug for ShardMsg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardMsg::Snapshot { seq, .. } => write!(f, "Snapshot(seq {seq})"),
            ShardMsg::Checkpoint { id, .. } => write!(f, "Checkpoint(id {id})"),
        }
    }
}

impl std::fmt::Debug for ShardReply {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardReply::Scores { shard, seq, .. } => {
                write!(f, "Scores(shard {shard}, seq {seq})")
            }
            ShardReply::Dropped { shard, seq } => write!(f, "Dropped(shard {shard}, seq {seq})"),
            ShardReply::CheckpointBegin { id, cut_seq, .. } => {
                write!(f, "CheckpointBegin(id {id}, cut {cut_seq})")
            }
            ShardReply::CheckpointFile { shard, id, .. } => {
                write!(f, "CheckpointFile(shard {shard}, id {id})")
            }
        }
    }
}

impl ShardedEngine {
    /// Starts workers and aggregator from a trained engine's persisted
    /// state (see [`DetectionEngine::snapshot`]): pair models are
    /// partitioned across `config.shards` shards by [`ShardRouter`], and
    /// the snapshot's alarm tracker seeds the aggregator so alarm
    /// debouncing continues where the source engine left off.
    ///
    /// # Panics
    ///
    /// Panics when `config.shards` or `config.queue_capacity` is zero,
    /// or when a thread cannot be spawned.
    pub fn start(snapshot: EngineSnapshot, config: ServeConfig) -> Self {
        ShardedEngine::start_with_obs(snapshot, config, PipelineObs::disabled())
    }

    /// [`ShardedEngine::start`] with explicit observability handles:
    /// the tracer times the `route → score → merge → report` stages
    /// (when enabled) and the flight recorder captures checkpoint and
    /// alarm events regardless.
    ///
    /// # Panics
    ///
    /// Same as [`ShardedEngine::start`].
    pub fn start_with_obs(snapshot: EngineSnapshot, config: ServeConfig, obs: PipelineObs) -> Self {
        assert!(config.queue_capacity > 0, "queue capacity must be positive");
        let engine_config = snapshot.config;
        let router = ShardRouter::new(config.shards);
        let partitions = router.partition(snapshot.models);
        // Sketch candidates ride the same routing as models, so a pair
        // promoted on its shard sits exactly where its model would have
        // been placed at startup.
        let candidate_partitions = router.partition_pairs(snapshot.candidates);

        let stats = Arc::new(OrderedMutex::new(
            classes::ENGINE_STATS,
            StatsAccumulator::new(config.shards),
        ));
        {
            let mut acc = stats.lock();
            for (k, part) in partitions.iter().enumerate() {
                acc.per_shard[k].pairs = part.len();
                acc.per_shard[k].materialized = part.len();
                acc.per_shard[k].tracked_pairs = part.len() + candidate_partitions[k].len();
            }
        }

        let (reply_tx, reply_rx) = channel::unbounded::<ShardReply>();
        let (reports_tx, reports_rx) = channel::unbounded::<StepReport>();

        // Shards are the parallelism; each sub-engine scores serially.
        let shard_config = EngineConfig {
            parallel: false,
            ..engine_config
        };
        let mut shard_senders = Vec::with_capacity(config.shards);
        let mut shard_stealers = Vec::with_capacity(config.shards);
        let mut workers = Vec::with_capacity(config.shards);
        for (k, (part, candidates)) in partitions.into_iter().zip(candidate_partitions).enumerate()
        {
            let (tx, rx) = channel::bounded::<ShardMsg>(config.queue_capacity);
            shard_stealers.push(rx.clone());
            shard_senders.push(tx);
            let reply = reply_tx.clone();
            let mut engine = DetectionEngine::from_snapshot(EngineSnapshot {
                config: shard_config,
                models: part,
                tracker: AlarmTracker::new(),
                candidates,
            });
            // Shard engines share the flight recorder so drift-layer
            // rebuild events land in the same ring as alarms and
            // checkpoints (and flow to the history store from there).
            engine.attach_recorder(obs.recorder.clone());
            workers.push(
                std::thread::Builder::new()
                    .name(format!("gw-shard-{k}"))
                    .spawn(move || worker_loop(k, engine, rx, reply))
                    .expect("spawn shard worker"),
            );
        }

        let agg_stats = Arc::clone(&stats);
        let agg_obs = obs.clone();
        let tracker = snapshot.tracker;
        let shards = config.shards;
        let aggregator = std::thread::Builder::new()
            .name("gw-aggregate".to_string())
            .spawn(move || {
                aggregator_loop(
                    shards,
                    engine_config,
                    tracker,
                    reply_rx,
                    reports_tx,
                    agg_stats,
                    agg_obs,
                )
            })
            .expect("spawn aggregator");

        ShardedEngine {
            config,
            shard_senders,
            shard_stealers,
            reply_sender: reply_tx,
            reports_rx,
            stats,
            obs,
            next_seq: 0,
            next_ckpt_id: 0,
            sample_tick: 0,
            workers,
            aggregator,
        }
    }

    /// The serving configuration.
    pub fn config(&self) -> ServeConfig {
        self.config
    }

    /// The number of shard workers.
    pub fn shards(&self) -> usize {
        self.config.shards
    }

    /// Submits one snapshot to every shard, applying the configured
    /// backpressure policy, and reports what happened to it.
    ///
    /// Takes `&mut self` deliberately: a single-producer ingestion front
    /// is what makes sequence numbering, the `Reject` pre-check, and the
    /// `DropOldest` steal loop race-free.
    pub fn submit(&mut self, snapshot: Snapshot) -> IngestReport {
        self.submit_traced(snapshot, "local", &[])
    }

    /// [`ShardedEngine::submit`] with trace-context attribution: the
    /// snapshot's exemplar trace (when capture is enabled) is opened
    /// under `source`, seeded with `wire_spans` collected upstream
    /// (ingest/decode/sequence slices from a network listener or a
    /// fabric worker), and completed by the aggregator as the snapshot
    /// crosses score → merge → report. Front stages missing from
    /// `wire_spans` are synthesized as zero-duration slices so every
    /// retained trace covers all seven stages.
    pub fn submit_traced(
        &mut self,
        snapshot: Snapshot,
        source: &str,
        wire_spans: &[SpanSlice],
    ) -> IngestReport {
        // Clone the handles so the span's borrow does not pin `self`.
        let tracer = self.obs.tracer.clone();
        let exemplar = self.obs.exemplar.clone();
        let traced = exemplar.is_enabled();
        let at_secs = snapshot.at().as_secs();
        let route_start = if traced { exemplar.now_ns() } else { 0 };
        let report = self.submit_inner(snapshot, &tracer);
        if traced {
            if let Some(seq) = report.seq {
                exemplar.open(seq, source, at_secs);
                for stage in [Stage::Ingest, Stage::Decode, Stage::Sequence] {
                    if !wire_spans.iter().any(|s| s.stage == stage.name()) {
                        exemplar.record(seq, SpanSlice::new(stage, route_start, 0, source));
                    }
                }
                exemplar.record_slices(seq, wire_spans);
                let dur = exemplar.now_ns().saturating_sub(route_start);
                exemplar.record(
                    seq,
                    SpanSlice::new(Stage::Route, route_start, dur, "ingest"),
                );
            }
        }
        report
    }

    fn submit_inner(&mut self, snapshot: Snapshot, tracer: &gridwatch_obs::Tracer) -> IngestReport {
        let _route = tracer.span(Stage::Route);
        // Sample every queue's depth up front: the distribution feeds
        // capacity planning, and `Reject` reuses the same reading for
        // its admission check.
        let depths: Vec<usize> = self.shard_senders.iter().map(|tx| tx.len()).collect();
        // Overload sampling runs before any backpressure policy: a shed
        // snapshot reaches no queue at all, so every shard sees the
        // same (stratified) substream and merged boards stay complete.
        if let Some(sampling) = self.config.sampling {
            let deepest = depths.iter().copied().max().unwrap_or(0);
            if sampling.stride >= 2 && deepest >= sampling.watermark(self.config.queue_capacity) {
                let tick = self.sample_tick;
                self.sample_tick += 1;
                if !tick.is_multiple_of(u64::from(sampling.stride)) {
                    let mut acc = self.stats.lock();
                    for (k, &depth) in depths.iter().enumerate() {
                        acc.per_shard[k].observe_queue_depth(depth);
                    }
                    acc.sampled_out += 1;
                    return IngestReport {
                        seq: None,
                        evicted: 0,
                        sampled_out: true,
                    };
                }
            }
        }
        match self.config.backpressure {
            BackpressurePolicy::Block => {
                let seq = self.broadcast_blocking(snapshot, &depths);
                IngestReport {
                    seq: Some(seq),
                    evicted: 0,
                    sampled_out: false,
                }
            }
            BackpressurePolicy::Reject => {
                // Single producer: if every queue has room now, the
                // blocking sends below cannot actually block.
                let cap = self.config.queue_capacity;
                if depths.iter().any(|&depth| depth >= cap) {
                    let mut acc = self.stats.lock();
                    for (k, &depth) in depths.iter().enumerate() {
                        acc.per_shard[k].observe_queue_depth(depth);
                    }
                    acc.rejected += 1;
                    return IngestReport {
                        seq: None,
                        evicted: 0,
                        sampled_out: false,
                    };
                }
                let seq = self.broadcast_blocking(snapshot, &depths);
                IngestReport {
                    seq: Some(seq),
                    evicted: 0,
                    sampled_out: false,
                }
            }
            BackpressurePolicy::DropOldest => {
                let seq = self.next_seq;
                self.next_seq += 1;
                let snap = Arc::new(snapshot);
                let mut evicted_total = 0u64;
                for (k, tx) in self.shard_senders.iter().enumerate() {
                    let evicted = push_evicting(
                        tx,
                        &self.shard_stealers[k],
                        ShardMsg::Snapshot {
                            seq,
                            snap: Arc::clone(&snap),
                        },
                    );
                    if !evicted.is_empty() {
                        let mut acc = self.stats.lock();
                        acc.per_shard[k].evicted += evicted.len() as u64;
                        drop(acc);
                        evicted_total += evicted.len() as u64;
                        for old_seq in evicted {
                            self.reply_sender
                                .send(ShardReply::Dropped {
                                    shard: k,
                                    seq: old_seq,
                                })
                                .expect("aggregator disconnected");
                        }
                    }
                }
                let mut acc = self.stats.lock();
                for (k, &depth) in depths.iter().enumerate() {
                    acc.per_shard[k].observe_queue_depth(depth);
                }
                acc.submitted += 1;
                IngestReport {
                    seq: Some(seq),
                    evicted: evicted_total,
                    sampled_out: false,
                }
            }
        }
    }

    /// Assigns a sequence number and broadcasts to every shard,
    /// blocking on full queues. Each send tries the non-blocking path
    /// first so the (rare) blocked case can be timed: the wait is what
    /// the backpressure-wait distribution measures.
    fn broadcast_blocking(&mut self, snapshot: Snapshot, depths: &[usize]) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        let snap = Arc::new(snapshot);
        let mut waits: Vec<(usize, u64)> = Vec::new();
        for (k, tx) in self.shard_senders.iter().enumerate() {
            let msg = ShardMsg::Snapshot {
                seq,
                snap: Arc::clone(&snap),
            };
            match tx.try_send(msg) {
                Ok(()) => {}
                Err(TrySendError::Full(back)) => {
                    let blocked = Instant::now();
                    tx.send(back).expect("shard worker disconnected");
                    waits.push((k, blocked.elapsed().as_nanos() as u64));
                }
                Err(TrySendError::Disconnected(_)) => panic!("shard worker disconnected"),
            }
        }
        let mut acc = self.stats.lock();
        for (k, &depth) in depths.iter().enumerate() {
            acc.per_shard[k].observe_queue_depth(depth);
        }
        for (k, wait_ns) in waits {
            acc.per_shard[k].observe_backpressure_wait(wait_ns);
        }
        acc.submitted += 1;
        seq
    }

    /// Takes a consistent checkpoint of the whole engine into `dir`,
    /// blocking until every shard has persisted its state and the
    /// aggregator has written the manifest. Everything submitted before
    /// this call is reflected; nothing after.
    ///
    /// # Errors
    ///
    /// Fails when the directory cannot be created or any shard file or
    /// the manifest cannot be written; a failed checkpoint never writes
    /// a manifest, so the previous complete checkpoint (if any) stays
    /// recoverable.
    pub fn checkpoint(
        &mut self,
        dir: impl AsRef<Path>,
    ) -> Result<CheckpointManifest, CheckpointError> {
        self.checkpoint_with_sources(dir, BTreeMap::new())
    }

    /// [`ShardedEngine::checkpoint`], additionally recording per-source
    /// frame-sequencing progress in the manifest so a network listener's
    /// resume is atomic with the model state (see
    /// [`CheckpointManifest::sources`]).
    ///
    /// # Errors
    ///
    /// Same as [`ShardedEngine::checkpoint`].
    pub fn checkpoint_with_sources(
        &mut self,
        dir: impl AsRef<Path>,
        sources: BTreeMap<String, u64>,
    ) -> Result<CheckpointManifest, CheckpointError> {
        let dir = dir.as_ref().to_path_buf();
        Checkpointer::new(&dir).prepare()?;
        let id = self.next_ckpt_id;
        self.next_ckpt_id += 1;
        let (ack_tx, ack_rx) = channel::bounded(1);
        // Announce the cut to the aggregator first, then push a marker
        // through every shard queue. FIFO order per channel guarantees
        // the aggregator sees all pre-cut replies before the last
        // marker's reply.
        self.reply_sender
            .send(ShardReply::CheckpointBegin {
                id,
                cut_seq: self.next_seq,
                dir: dir.clone(),
                sources,
                ack: ack_tx,
            })
            .expect("aggregator disconnected");
        for tx in &self.shard_senders {
            tx.send(ShardMsg::Checkpoint {
                id,
                dir: dir.clone(),
            })
            .expect("shard worker disconnected");
        }
        ack_rx.recv().expect("aggregator dropped checkpoint ack")
    }

    /// A merged report, if one is ready.
    pub fn try_recv_report(&self) -> Option<StepReport> {
        self.reports_rx.try_recv().ok()
    }

    /// Waits up to `timeout` for the next merged report.
    pub fn recv_report_timeout(&self, timeout: Duration) -> Option<StepReport> {
        self.reports_rx.recv_timeout(timeout).ok()
    }

    /// A receiver clone of the merged-report channel, so the network
    /// listener can hand out reports while its ingest thread owns the
    /// engine. Each report is delivered to exactly one receiver.
    pub(crate) fn reports_receiver(&self) -> Receiver<StepReport> {
        self.reports_rx.clone()
    }

    /// Current serving statistics (counters plus live queue depths).
    pub fn stats(&self) -> ServeStats {
        let depths: Vec<usize> = self.shard_senders.iter().map(|tx| tx.len()).collect();
        self.stats.lock().snapshot(&depths)
    }

    /// A shareable handle that reads [`ServeStats`] while another thread
    /// owns the engine (the network listener's ingest thread holds the
    /// `&mut` ingestion front; stats requests come from elsewhere).
    ///
    /// The probe holds receiver clones of the shard queues for live
    /// depths — receivers do not keep workers alive, so an outstanding
    /// probe never blocks [`ShardedEngine::shutdown`].
    pub fn stats_probe(&self) -> StatsProbe {
        StatsProbe {
            stats: Arc::clone(&self.stats),
            queues: self.shard_stealers.clone(),
            obs: self.obs.clone(),
            queue_capacity: self.config.queue_capacity,
        }
    }

    /// The engine's observability handles (shared with its threads).
    pub fn obs(&self) -> &PipelineObs {
        &self.obs
    }

    /// Stops the engine: lets every shard drain its queue, joins all
    /// threads, and returns the remaining unread reports plus final
    /// statistics.
    pub fn shutdown(self) -> (Vec<StepReport>, ServeStats) {
        let ShardedEngine {
            shard_senders,
            shard_stealers,
            reply_sender,
            reports_rx,
            stats,
            workers,
            aggregator,
            config,
            ..
        } = self;
        // Disconnect the shard queues; workers drain what is left and
        // exit, dropping their reply senders.
        drop(shard_stealers);
        drop(shard_senders);
        for worker in workers {
            worker.join().expect("shard worker panicked");
        }
        // Now ours is the last reply sender: dropping it stops the
        // aggregator once it has merged everything.
        drop(reply_sender);
        aggregator.join().expect("aggregator panicked");
        let mut reports = Vec::new();
        while let Ok(report) = reports_rx.try_recv() {
            reports.push(report);
        }
        let stats = stats.lock().snapshot(&vec![0; config.shards]);
        (reports, stats)
    }
}

/// A read-only view of a running engine's statistics, detachable from
/// the engine's owner thread (see [`ShardedEngine::stats_probe`]).
#[derive(Clone)]
pub struct StatsProbe {
    stats: Arc<OrderedMutex<StatsAccumulator>>,
    queues: Vec<Receiver<ShardMsg>>,
    obs: PipelineObs,
    queue_capacity: usize,
}

impl StatsProbe {
    /// Current serving statistics (counters plus live queue depths).
    pub fn stats(&self) -> ServeStats {
        let depths: Vec<usize> = self.queues.iter().map(|rx| rx.len()).collect();
        let mut stats = self.stats.lock().snapshot(&depths);
        stats.flight_dropped = self.obs.recorder.dropped();
        stats
    }

    /// The structural half of the health document: per-shard queue
    /// occupancy and liveness, sampler coverage, and the alarm total.
    /// Callers layer on deployment state (checkpoint age, WAL lag,
    /// alarm/shed deltas) before serving it from `/healthz`.
    pub fn health_report(&self) -> gridwatch_obs::HealthReport {
        let stats = self.stats();
        let mut report = gridwatch_obs::HealthReport {
            coverage_ppm: (stats.coverage_fraction * 1_000_000.0) as u64,
            alarms: stats.alarms,
            ..Default::default()
        };
        for shard in &stats.shards {
            let live = self.queue_capacity == 0 || shard.queue_depth < self.queue_capacity;
            report.shards.push(gridwatch_obs::ShardHealth {
                shard: shard.shard as u64,
                live,
                queue_depth: shard.queue_depth as u64,
                queue_capacity: self.queue_capacity as u64,
            });
            if !live {
                report.degrade(format!("shard {} queue at capacity", shard.shard));
            }
        }
        report
    }

    /// The engine's observability handles (shared, not a copy).
    pub fn obs(&self) -> &PipelineObs {
        &self.obs
    }

    /// The current stats plus stage spans as Prometheus exposition
    /// text — what a `GET /metrics` scrape of this engine returns.
    pub fn to_prometheus(&self) -> String {
        self.stats().to_prometheus(&self.obs.tracer)
    }
}

impl std::fmt::Debug for StatsProbe {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "StatsProbe({} shards)", self.queues.len())
    }
}

/// Pushes `msg` into a full-or-not shard queue, evicting the oldest
/// queued snapshots until it fits; returns the evicted sequence numbers.
///
/// Only called from the single-producer ingestion front, so the loop
/// terminates: nobody else refills the queue between a steal and the
/// retry. A steal can lose the race against the worker draining the same
/// message — that is fine, the retry just finds room.
fn push_evicting(
    tx: &Sender<ShardMsg>,
    stealer: &Receiver<ShardMsg>,
    mut msg: ShardMsg,
) -> Vec<u64> {
    let mut evicted = Vec::new();
    loop {
        match tx.try_send(msg) {
            Ok(()) => return evicted,
            Err(TrySendError::Full(back)) => {
                msg = back;
                match stealer.try_recv() {
                    Ok(ShardMsg::Snapshot { seq, .. }) => evicted.push(seq),
                    // Checkpoint markers are fully consumed before
                    // `checkpoint` returns and submits resume, so the
                    // steal can never see one.
                    Ok(ShardMsg::Checkpoint { .. }) => {
                        unreachable!("checkpoint marker in queue during submit")
                    }
                    // The worker drained the queue first; retry.
                    Err(_) => {}
                }
            }
            Err(TrySendError::Disconnected(_)) => panic!("shard worker disconnected"),
        }
    }
}

/// One shard worker: scores snapshots against its slice of the pair
/// models, persists its state on checkpoint markers.
fn worker_loop(
    shard: usize,
    mut engine: DetectionEngine,
    rx: Receiver<ShardMsg>,
    reply: Sender<ShardReply>,
) {
    while let Ok(msg) = rx.recv() {
        match msg {
            ShardMsg::Snapshot { seq, snap } => {
                let start = Instant::now();
                let board = engine.step_scores(&snap);
                let elapsed_ns = start.elapsed().as_nanos() as u64;
                // Drain drift-layer rebuilds and sketch-layer lifecycle
                // events fired by this step; the events themselves
                // already reached the flight recorder inside
                // step_scores, so only the counts travel here.
                let rebuilds = engine.take_rebuild_events().len() as u64;
                let lifecycle = engine.take_lifecycle_events();
                let promotions = lifecycle
                    .iter()
                    .filter(|e| e.kind == gridwatch_detect::LifecycleKind::Promote && e.succeeded)
                    .count() as u64;
                let demotions = lifecycle
                    .iter()
                    .filter(|e| e.kind == gridwatch_detect::LifecycleKind::Demote)
                    .count() as u64;
                let gauges = ShardGauges {
                    tracked_pairs: engine.tracked_pair_count(),
                    materialized: engine.model_count(),
                    sketch_bytes: engine.sketch_bytes(),
                };
                if reply
                    .send(ShardReply::Scores {
                        shard,
                        seq,
                        board,
                        elapsed_ns,
                        rebuilds,
                        promotions,
                        demotions,
                        gauges,
                    })
                    .is_err()
                {
                    break;
                }
            }
            ShardMsg::Checkpoint { id, dir } => {
                let snapshot = engine.snapshot();
                let candidates = snapshot.candidates.len();
                let result = Checkpointer::new(dir).write_shard(shard, &snapshot);
                if reply
                    .send(ShardReply::CheckpointFile {
                        shard,
                        id,
                        result,
                        candidates,
                    })
                    .is_err()
                {
                    break;
                }
            }
        }
    }
}

/// The aggregator: merges partial boards in sequence order, runs the
/// single alarm tracker over each merged board, emits reports, and
/// completes checkpoints by writing the manifest.
fn aggregator_loop(
    shards: usize,
    engine_config: EngineConfig,
    mut tracker: AlarmTracker,
    reply_rx: Receiver<ShardReply>,
    reports_tx: Sender<StepReport>,
    stats: Arc<OrderedMutex<StatsAccumulator>>,
    obs: PipelineObs,
) {
    let mut pending: BTreeMap<u64, PendingStep> = BTreeMap::new();
    let mut checkpoint: Option<CheckpointOp> = None;
    while let Ok(msg) = reply_rx.recv() {
        match msg {
            ShardReply::Scores {
                shard,
                seq,
                board,
                elapsed_ns,
                rebuilds,
                promotions,
                demotions,
                gauges,
            } => {
                // The worker measured its `step_scores` wall time; the
                // aggregator owns the roll-ups, so both the per-shard
                // histogram and the Score stage are fed here.
                obs.tracer.record_ns(Stage::Score, elapsed_ns);
                if obs.exemplar.is_enabled() {
                    // The worker has no exemplar handle; attribute its
                    // measured wall time here, anchored to the receive
                    // instant (start ≈ now − elapsed on this timeline).
                    let end = obs.exemplar.now_ns();
                    obs.exemplar.record(
                        seq,
                        SpanSlice::sharded(
                            Stage::Score,
                            end.saturating_sub(elapsed_ns),
                            elapsed_ns,
                            shard as u64,
                            &format!("shard-{shard}"),
                        ),
                    );
                }
                {
                    let mut acc = stats.lock();
                    acc.per_shard[shard].observe_latency(elapsed_ns);
                    acc.rebuilds += rebuilds;
                    acc.promotions += promotions;
                    acc.demotions += demotions;
                    acc.per_shard[shard].tracked_pairs = gauges.tracked_pairs;
                    acc.per_shard[shard].materialized = gauges.materialized;
                    acc.per_shard[shard].sketch_bytes = gauges.sketch_bytes;
                }
                let merge = obs.tracer.span(Stage::Merge);
                let merge_start = if obs.exemplar.is_enabled() {
                    obs.exemplar.now_ns()
                } else {
                    0
                };
                let entry = pending.entry(seq).or_default();
                entry.replies += 1;
                match &mut entry.board {
                    Some(merged) => merged.merge(board),
                    slot @ None => *slot = Some(board),
                }
                drop(merge);
                if obs.exemplar.is_enabled() {
                    let dur = obs.exemplar.now_ns().saturating_sub(merge_start);
                    obs.exemplar.record(
                        seq,
                        SpanSlice::new(Stage::Merge, merge_start, dur, "aggregator"),
                    );
                }
            }
            ShardReply::Dropped { seq, .. } => {
                pending.entry(seq).or_default().replies += 1;
            }
            ShardReply::CheckpointBegin {
                id,
                cut_seq,
                dir,
                sources,
                ack,
            } => {
                checkpoint = Some(CheckpointOp {
                    id,
                    cut_seq,
                    dir,
                    sources,
                    ack,
                    files: vec![None; shards],
                    received: 0,
                    error: None,
                    candidates: 0,
                });
            }
            ShardReply::CheckpointFile {
                shard,
                id,
                result,
                candidates,
            } => {
                let op = checkpoint.as_mut().expect("checkpoint file without begin");
                debug_assert_eq!(op.id, id, "interleaved checkpoints are impossible");
                op.received += 1;
                op.candidates += candidates;
                match result {
                    Ok(name) => op.files[shard] = Some(name),
                    Err(e) => {
                        if op.error.is_none() {
                            op.error = Some(e);
                        }
                    }
                }
            }
        }

        // Finalize fully-replied sequence numbers strictly in order.
        while pending
            .first_key_value()
            .is_some_and(|(_, entry)| entry.replies >= shards)
        {
            let (seq, entry) = pending.pop_first().expect("checked non-empty");
            let report = obs.tracer.span(Stage::Report);
            let traced = obs.exemplar.is_enabled();
            let report_start = if traced { obs.exemplar.now_ns() } else { 0 };
            let mut alarmed = false;
            let mut acc = stats.lock();
            match entry.board {
                Some(board) => {
                    let alarms = tracker.evaluate(&board, &engine_config.alarm);
                    acc.reports += 1;
                    acc.alarms += alarms.len() as u64;
                    drop(acc);
                    alarmed = !alarms.is_empty();
                    if alarmed {
                        obs.recorder.record(
                            "alarm",
                            format_args!(
                                "{} alarm event(s) at t={} (seq {seq})",
                                alarms.len(),
                                board.at()
                            ),
                        );
                    }
                    let _ = reports_tx.send(StepReport {
                        scores: board,
                        alarms,
                    });
                }
                // Every shard evicted this instant: nothing to report.
                None => {
                    acc.empty_steps += 1;
                    drop(acc);
                    obs.recorder
                        .record("empty-step", format_args!("seq {seq} fully evicted"));
                }
            }
            drop(report);
            if traced {
                let dur = obs.exemplar.now_ns().saturating_sub(report_start);
                obs.exemplar.record(
                    seq,
                    SpanSlice::new(Stage::Report, report_start, dur, "aggregator"),
                );
                obs.exemplar.finalize(seq, alarmed);
            }
        }

        // Complete the checkpoint once every shard has written its file.
        if checkpoint.as_ref().is_some_and(|op| op.received == shards) {
            let op = checkpoint.take().expect("checked some");
            debug_assert!(
                pending.range(..op.cut_seq).next().is_none(),
                "all pre-cut steps finalize before the last marker reply"
            );
            let outcome = match op.error {
                Some(e) => Err(e),
                None => {
                    let (sketch_promotions, sketch_demotions) = {
                        let acc = stats.lock();
                        (acc.promotions, acc.demotions)
                    };
                    let manifest = CheckpointManifest {
                        version: 1,
                        shards,
                        cut_seq: op.cut_seq,
                        config: engine_config,
                        tracker: tracker.clone(),
                        shard_files: op
                            .files
                            .into_iter()
                            .map(|f| f.expect("no error recorded, so every file landed"))
                            .collect(),
                        sources: op.sources,
                        fabric_epoch: 0,
                        remote: Vec::new(),
                        candidate_pairs: op.candidates,
                        sketch_promotions,
                        sketch_demotions,
                    };
                    Checkpointer::new(&op.dir)
                        .write_manifest(&manifest)
                        .map(|()| manifest)
                }
            };
            match &outcome {
                Ok(manifest) => {
                    stats.lock().checkpoints += 1;
                    obs.recorder.record(
                        "checkpoint",
                        format_args!("id {} cut_seq {}", op.id, manifest.cut_seq),
                    );
                }
                Err(e) => obs
                    .recorder
                    .record("checkpoint-error", format_args!("id {}: {e}", op.id)),
            }
            let _ = op.ack.send(outcome);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridwatch_detect::AlarmPolicy;
    use gridwatch_timeseries::{
        MachineId, MeasurementId, MeasurementPair, MetricKind, PairSeries, Timestamp,
    };

    fn id(machine: u32, tag: u16) -> MeasurementId {
        MeasurementId::new(MachineId::new(machine), MetricKind::Custom(tag))
    }

    const MEASUREMENTS: usize = 6;

    fn ids() -> Vec<MeasurementId> {
        (0..MEASUREMENTS as u32)
            .map(|m| id(m / 2, (m % 2) as u16))
            .collect()
    }

    fn value(m: usize, k: u64) -> f64 {
        let load = (k % 48) as f64;
        (m as f64 + 1.0) * load + 5.0 * m as f64
    }

    /// Trains all 15 pairs over 6 linearly-coupled measurements.
    fn trained() -> EngineSnapshot {
        let ids = ids();
        let config = EngineConfig {
            alarm: AlarmPolicy {
                system_threshold: 0.7,
                measurement_threshold: 0.4,
                min_consecutive: 2,
            },
            ..EngineConfig::default()
        };
        let mut pairs = Vec::new();
        for i in 0..MEASUREMENTS {
            for j in (i + 1)..MEASUREMENTS {
                let pair = MeasurementPair::new(ids[i], ids[j]).unwrap();
                let history = PairSeries::from_samples(
                    (0..400u64).map(|k| (k * 360, value(i, k), value(j, k))),
                )
                .unwrap();
                pairs.push((pair, history));
            }
        }
        DetectionEngine::train(pairs, config).unwrap().snapshot()
    }

    /// A trace that runs healthy, then breaks measurement 5 for a
    /// stretch (long enough to trip the 2-consecutive alarm debounce),
    /// then recovers.
    fn trace(steps: u64) -> Vec<Snapshot> {
        let ids = ids();
        (0..steps)
            .map(|k| {
                let mut snap = Snapshot::new(Timestamp::from_secs((400 + k) * 360));
                for (m, &mid) in ids.iter().enumerate() {
                    let v = if m == MEASUREMENTS - 1 && (8..16).contains(&k) {
                        -200.0
                    } else {
                        value(m, k)
                    };
                    snap.insert(mid, v);
                }
                snap
            })
            .collect()
    }

    fn reference_reports(snapshot: EngineSnapshot, trace: &[Snapshot]) -> Vec<StepReport> {
        let mut engine = DetectionEngine::from_snapshot(snapshot);
        trace.iter().map(|s| engine.step(s)).collect()
    }

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("gridwatch-serve-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn block_policy_is_bitwise_identical_to_unsharded() {
        let snapshot = trained();
        let trace = trace(24);
        let want = reference_reports(snapshot.clone(), &trace);
        assert!(
            want.iter().any(|r| !r.alarms.is_empty()),
            "trace must exercise alarms for the comparison to mean anything"
        );
        for shards in [1, 2, 4] {
            let mut engine = ShardedEngine::start(
                snapshot.clone(),
                ServeConfig {
                    shards,
                    queue_capacity: 4,
                    backpressure: BackpressurePolicy::Block,
                    sampling: None,
                },
            );
            for snap in &trace {
                let report = engine.submit(snap.clone());
                assert!(report.accepted());
                assert_eq!(report.evicted, 0);
            }
            let (reports, stats) = engine.shutdown();
            assert_eq!(reports, want, "{shards} shards");
            assert_eq!(stats.submitted, trace.len() as u64);
            assert_eq!(stats.reports, trace.len() as u64);
            assert_eq!(stats.rejected, 0);
            assert_eq!(stats.total_evicted(), 0);
        }
    }

    #[test]
    fn reports_can_be_consumed_while_streaming() {
        let snapshot = trained();
        let trace = trace(12);
        let want = reference_reports(snapshot.clone(), &trace);
        let mut engine = ShardedEngine::start(
            snapshot,
            ServeConfig {
                shards: 2,
                queue_capacity: 4,
                backpressure: BackpressurePolicy::Block,
                sampling: None,
            },
        );
        let mut streamed = Vec::new();
        for snap in &trace {
            engine.submit(snap.clone());
            while let Some(report) = engine.try_recv_report() {
                streamed.push(report);
            }
        }
        while streamed.len() < trace.len() {
            streamed.push(
                engine
                    .recv_report_timeout(Duration::from_secs(5))
                    .expect("report within timeout"),
            );
        }
        let (rest, _) = engine.shutdown();
        assert!(rest.is_empty());
        assert_eq!(streamed, want);
    }

    #[test]
    fn checkpoint_matches_unsharded_engine_state() {
        let snapshot = trained();
        let trace = trace(20);
        let mut reference = DetectionEngine::from_snapshot(snapshot.clone());
        let mut engine = ShardedEngine::start(
            snapshot,
            ServeConfig {
                shards: 3,
                queue_capacity: 8,
                backpressure: BackpressurePolicy::Block,
                sampling: None,
            },
        );
        for snap in &trace {
            reference.step(snap);
            engine.submit(snap.clone());
        }
        let dir = scratch_dir("ckpt-exact");
        let manifest = engine.checkpoint(&dir).unwrap();
        assert_eq!(manifest.cut_seq, trace.len() as u64);
        assert_eq!(manifest.shards, 3);

        let (recovered, _) = Checkpointer::new(&dir).recover().unwrap();
        assert_eq!(recovered, reference.snapshot());

        let (_, stats) = engine.shutdown();
        assert_eq!(stats.checkpoints, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn serving_continues_after_checkpoint() {
        let snapshot = trained();
        let trace = trace(24);
        let want = reference_reports(snapshot.clone(), &trace);
        let mut engine = ShardedEngine::start(
            snapshot,
            ServeConfig {
                shards: 2,
                queue_capacity: 4,
                backpressure: BackpressurePolicy::Block,
                sampling: None,
            },
        );
        let dir = scratch_dir("ckpt-continue");
        for (k, snap) in trace.iter().enumerate() {
            if k == 10 {
                engine.checkpoint(&dir).unwrap();
            }
            engine.submit(snap.clone());
        }
        let (reports, _) = engine.shutdown();
        assert_eq!(reports, want, "a checkpoint must not perturb the stream");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn drop_oldest_accounts_for_every_snapshot() {
        let snapshot = trained();
        let trace = trace(60);
        let mut engine = ShardedEngine::start(
            snapshot,
            ServeConfig {
                shards: 2,
                queue_capacity: 1,
                backpressure: BackpressurePolicy::DropOldest,
                sampling: None,
            },
        );
        let mut evicted = 0;
        for snap in &trace {
            let report = engine.submit(snap.clone());
            assert!(report.accepted(), "drop-oldest never refuses new data");
            evicted += report.evicted;
        }
        let (reports, stats) = engine.shutdown();
        assert_eq!(stats.submitted, trace.len() as u64);
        assert_eq!(stats.total_evicted(), evicted);
        // Every accepted seq is finalized exactly once: as a report or
        // as an all-shards-dropped empty step.
        assert_eq!(
            stats.reports + stats.empty_steps,
            trace.len() as u64,
            "stats: {}",
            stats.to_json()
        );
        assert_eq!(reports.len() as u64, stats.reports);
        // The final snapshot has nothing submitted after it, so it can
        // never be evicted: the last report is always its full board.
        let last = reports.last().expect("at least the final report");
        assert_eq!(last.scores.at(), trace.last().unwrap().at());
    }

    #[test]
    fn overload_sampling_sheds_with_explicit_coverage_accounting() {
        let snapshot = trained();
        let pair_count = snapshot.models.len();
        // A 1-deep queue with a watermark at 100% engages the sampler
        // whenever the worker has not yet drained the previous
        // snapshot, which a tight submit loop guarantees plenty of.
        let mut engine = ShardedEngine::start(
            snapshot,
            ServeConfig {
                shards: 1,
                queue_capacity: 1,
                backpressure: BackpressurePolicy::Block,
                sampling: Some(SamplingConfig {
                    watermark_pct: 100,
                    stride: 2,
                }),
            },
        );
        let offered = 400u64;
        let mut shed = 0u64;
        for k in 0..offered {
            let snap = trace(1).pop().unwrap();
            let _ = k;
            let report = engine.submit(snap);
            if report.sampled_out {
                assert!(report.seq.is_none(), "a shed snapshot gets no seq");
                assert_eq!(report.evicted, 0);
                shed += 1;
            }
        }
        let (reports, stats) = engine.shutdown();
        assert_eq!(stats.sampled_out, shed);
        assert!(stats.sampled_out > 0, "flood must engage the sampler");
        assert_eq!(stats.submitted + stats.sampled_out, offered);
        // Quality accounting: coverage is exactly the admitted share.
        let want = stats.submitted as f64 / offered as f64;
        assert!(
            (stats.coverage_fraction - want).abs() < 1e-12,
            "coverage {} vs {}",
            stats.coverage_fraction,
            want
        );
        // A shed snapshot reaches no queue: every admitted instant is
        // scored by every shard, so all boards stay complete.
        assert_eq!(reports.len() as u64, stats.submitted);
        assert_eq!(stats.empty_steps, 0);
        for report in &reports {
            assert_eq!(report.scores.len(), pair_count);
        }
    }

    #[test]
    fn sampling_below_watermark_never_sheds() {
        let snapshot = trained();
        let trace = trace(24);
        let want = reference_reports(snapshot.clone(), &trace);
        // Capacity far above the trace length: the watermark is
        // unreachable, so the report stream is bit-identical to an
        // unsampled engine's and coverage stays 1.0.
        let mut engine = ShardedEngine::start(
            snapshot,
            ServeConfig {
                shards: 2,
                queue_capacity: 1024,
                backpressure: BackpressurePolicy::Block,
                sampling: Some(SamplingConfig::default()),
            },
        );
        for snap in &trace {
            let report = engine.submit(snap.clone());
            assert!(!report.sampled_out);
        }
        let (reports, stats) = engine.shutdown();
        assert_eq!(reports, want);
        assert_eq!(stats.sampled_out, 0);
        assert!((stats.coverage_fraction - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reject_keeps_accepted_stream_consistent() {
        let snapshot = trained();
        let trace = trace(60);
        let mut engine = ShardedEngine::start(
            snapshot.clone(),
            ServeConfig {
                shards: 2,
                queue_capacity: 1,
                backpressure: BackpressurePolicy::Reject,
                sampling: None,
            },
        );
        let pair_count = snapshot.models.len();
        let mut accepted = 0u64;
        for snap in &trace {
            if engine.submit(snap.clone()).accepted() {
                accepted += 1;
            }
        }
        let (reports, stats) = engine.shutdown();
        assert_eq!(stats.submitted, accepted);
        assert_eq!(stats.submitted + stats.rejected, trace.len() as u64);
        // A rejected snapshot reaches no shard, so every report is a
        // complete board over all pairs.
        assert_eq!(reports.len() as u64, accepted);
        assert_eq!(stats.empty_steps, 0);
        for report in &reports {
            assert_eq!(report.scores.len(), pair_count);
        }
    }

    #[test]
    fn stats_expose_shard_work() {
        let snapshot = trained();
        let trace = trace(10);
        let mut engine = ShardedEngine::start(
            snapshot,
            ServeConfig {
                shards: 4,
                queue_capacity: 8,
                backpressure: BackpressurePolicy::Block,
                sampling: None,
            },
        );
        for snap in &trace {
            engine.submit(snap.clone());
        }
        let (_, stats) = engine.shutdown();
        assert_eq!(stats.shards.len(), 4);
        assert_eq!(stats.shards.iter().map(|s| s.pairs).sum::<usize>(), 15);
        for shard in &stats.shards {
            assert_eq!(shard.processed, trace.len() as u64);
            assert_eq!(shard.latency.count, shard.processed);
            assert!(shard.latency.min <= shard.latency.mean());
            assert!(shard.latency.mean() <= shard.latency.max);
            assert!(shard.latency.p50() <= shard.latency.p999());
            // Queue depth is sampled once per submit, per shard.
            assert_eq!(shard.queue_depths.count, stats.submitted);
        }
        let json = stats.to_json();
        assert!(json.contains("\"processed\""), "{json}");
    }

    #[test]
    fn enabled_tracer_times_every_stage_it_owns() {
        let snapshot = trained();
        let trace = trace(10);
        let obs = gridwatch_obs::PipelineObs::enabled();
        let mut engine = ShardedEngine::start_with_obs(
            snapshot,
            ServeConfig {
                shards: 2,
                queue_capacity: 4,
                backpressure: BackpressurePolicy::Block,
                sampling: None,
            },
            obs.clone(),
        );
        for snap in &trace {
            engine.submit(snap.clone());
        }
        let probe = engine.stats_probe();
        let (_, stats) = engine.shutdown();
        let n = trace.len() as u64;
        assert_eq!(obs.tracer.stage(Stage::Route).count, n);
        // One Score sample per (shard, snapshot) reply.
        assert_eq!(obs.tracer.stage(Stage::Score).count, 2 * n);
        assert_eq!(obs.tracer.stage(Stage::Merge).count, 2 * n);
        assert_eq!(obs.tracer.stage(Stage::Report).count, n);
        // Alarms landed in the flight recorder (the trace trips them).
        assert!(stats.alarms > 0);
        assert!(
            obs.recorder.snapshot().iter().any(|e| e.kind == "alarm"),
            "{:?}",
            obs.recorder.snapshot()
        );
        // The probe renders a parseable scrape including stage spans.
        let text = probe.to_prometheus();
        assert!(
            text.contains("gridwatch_stage_ns_count{stage=\"route\"}"),
            "{text}"
        );
        assert!(gridwatch_obs::parse_exposition(&text).is_some());
    }

    #[test]
    fn exemplar_capture_retains_alarmed_traces_with_all_seven_stages() {
        let snapshot = trained();
        let trace = trace(24);
        let obs = gridwatch_obs::PipelineObs {
            exemplar: gridwatch_obs::ExemplarTracer::enabled(gridwatch_obs::ExemplarConfig {
                ring_capacity: 64,
                ..Default::default()
            }),
            ..Default::default()
        };
        let want = reference_reports(snapshot.clone(), &trace);
        let alarmed_seqs: Vec<u64> = want
            .iter()
            .enumerate()
            .filter(|(_, r)| !r.alarms.is_empty())
            .map(|(k, _)| k as u64)
            .collect();
        assert!(!alarmed_seqs.is_empty(), "trace must trip alarms");

        let mut engine = ShardedEngine::start_with_obs(
            snapshot,
            ServeConfig {
                shards: 2,
                queue_capacity: 4,
                backpressure: BackpressurePolicy::Block,
                sampling: None,
            },
            obs.clone(),
        );
        for snap in &trace {
            engine.submit(snap.clone());
        }
        let (reports, _) = engine.shutdown();
        assert_eq!(reports, want, "exemplar capture must not perturb reports");

        // Tail sampling: exactly the alarmed snapshots are retained.
        let (_, exemplars) = obs.exemplar.snapshot_indexed();
        let got_seqs: Vec<u64> = exemplars.iter().map(|t| t.seq).collect();
        assert_eq!(got_seqs, alarmed_seqs);
        for trace in &exemplars {
            assert!(trace.alarmed);
            assert_eq!(trace.source, "local");
            // Every retained trace covers all seven pipeline stages.
            for stage in Stage::ALL {
                assert!(
                    trace.spans.iter().any(|s| s.stage == stage.name()),
                    "seq {} missing {} in {:?}",
                    trace.seq,
                    stage.name(),
                    trace.spans
                );
            }
            // Score slices carry shard attribution (one per shard).
            let scored: Vec<_> = trace.spans.iter().filter(|s| s.stage == "score").collect();
            assert_eq!(scored.len(), 2);
            assert!(scored.iter().all(|s| s.shard.is_some()));
        }
        // The exemplar layer never touches the aggregate tracer.
        for (_, hist) in obs.tracer.snapshot() {
            assert_eq!(hist.count, 0);
        }
    }

    #[test]
    fn disabled_tracer_records_nothing_but_counters_still_flow() {
        let snapshot = trained();
        let trace = trace(6);
        let mut engine = ShardedEngine::start(
            snapshot,
            ServeConfig {
                shards: 2,
                queue_capacity: 4,
                backpressure: BackpressurePolicy::Block,
                sampling: None,
            },
        );
        for snap in &trace {
            engine.submit(snap.clone());
        }
        let obs = engine.obs().clone();
        let (_, stats) = engine.shutdown();
        for (_, hist) in obs.tracer.snapshot() {
            assert_eq!(hist.count, 0);
        }
        // Per-shard latency histograms fill regardless of tracing.
        assert_eq!(stats.shards[0].latency.count, trace.len() as u64);
    }

    #[test]
    fn recovered_checkpoint_can_be_resharded() {
        let snapshot = trained();
        let trace = trace(24);
        let (head, tail) = trace.split_at(12);

        // Stream the head on 4 shards, checkpoint, tear down.
        let mut first = ShardedEngine::start(
            snapshot.clone(),
            ServeConfig {
                shards: 4,
                queue_capacity: 8,
                backpressure: BackpressurePolicy::Block,
                sampling: None,
            },
        );
        for snap in head {
            first.submit(snap.clone());
        }
        let dir = scratch_dir("reshard");
        first.checkpoint(&dir).unwrap();
        first.shutdown();

        // Recover onto 2 shards and stream the tail.
        let (recovered, manifest) = Checkpointer::new(&dir).recover().unwrap();
        assert_eq!(manifest.cut_seq, head.len() as u64);
        let mut second = ShardedEngine::start(
            recovered,
            ServeConfig {
                shards: 2,
                queue_capacity: 8,
                backpressure: BackpressurePolicy::Block,
                sampling: None,
            },
        );
        for snap in tail {
            second.submit(snap.clone());
        }
        let (got, _) = second.shutdown();

        // Must match an uninterrupted unsharded run over the whole trace.
        let want = reference_reports(snapshot, &trace);
        assert_eq!(got, want[head.len()..]);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
