//! The snapshot wire protocol: framing and codecs for network ingestion.
//!
//! Two encodings carry the same logical frame — a `(source, seq,
//! snapshot)` triple:
//!
//! * **Length-prefixed JSON**: a 4-byte big-endian payload length
//!   followed by that many bytes of JSON
//!   (`{"source":..,"seq":..,"at_secs":..,"values":[[machine,metric,value],..]}`).
//! * **Newline-delimited CSV**: one line per snapshot,
//!   `source,seq,at_secs[,machine,metric,value]...`, `nc`-friendly.
//!
//! A connection speaks exactly one encoding. Under
//! [`WireProtocol::Auto`] the listener detects it from the first byte:
//! `0x00` means a length prefix (every JSON frame shorter than 16 MiB
//! starts with a zero byte), anything else starts a CSV line (sources
//! are printable and never begin with NUL). Auto-detection therefore
//! requires the *first* JSON frame of a connection to be under 16 MiB;
//! pin the protocol explicitly to go larger.
//!
//! [`FrameDecoder`] is an incremental per-connection state machine: feed
//! it whatever byte chunks the socket yields ([`FrameDecoder::push`])
//! and pop complete frames ([`FrameDecoder::next_frame`]). It never
//! panics on hostile input — truncated prefixes, interleaved partial
//! writes, garbage bytes, and oversized claims all surface as typed
//! [`DecodeError`]s or as patient `Ok(None)` waits for more bytes.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use gridwatch_detect::Snapshot;
use gridwatch_timeseries::{MachineId, MeasurementId, MetricKind, Timestamp};

/// Frames larger than this cannot be auto-detected as JSON (their length
/// prefix would not start with a zero byte).
pub const AUTO_DETECT_FRAME_LIMIT: usize = 1 << 24;

/// Which encoding a listener accepts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum WireProtocol {
    /// Detect per connection from the first byte.
    #[default]
    Auto,
    /// Length-prefixed JSON frames only.
    Json,
    /// Newline-delimited CSV lines only.
    Csv,
}

impl fmt::Display for WireProtocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireProtocol::Auto => write!(f, "auto"),
            WireProtocol::Json => write!(f, "json"),
            WireProtocol::Csv => write!(f, "csv"),
        }
    }
}

/// Error parsing a [`WireProtocol`] from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseProtocolError {
    offered: String,
}

impl fmt::Display for ParseProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown wire protocol {:?} (expected auto, json, or csv)",
            self.offered
        )
    }
}

impl std::error::Error for ParseProtocolError {}

impl FromStr for WireProtocol {
    type Err = ParseProtocolError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "auto" => Ok(WireProtocol::Auto),
            "json" => Ok(WireProtocol::Json),
            "csv" => Ok(WireProtocol::Csv),
            other => Err(ParseProtocolError {
                offered: other.to_string(),
            }),
        }
    }
}

/// One decoded wire message: a snapshot stamped with its origin and the
/// origin's own sequence number (used for duplicate suppression and
/// reordering, see [`crate::SourceTable`]).
#[derive(Debug, Clone, PartialEq)]
pub struct WireFrame {
    /// Stable identity of the sending agent; sequencing state survives
    /// reconnects because it is keyed by this, not by the connection.
    pub source: String,
    /// The source's frame counter, starting at 0 and incremented per
    /// snapshot.
    pub seq: u64,
    /// The measurements.
    pub snapshot: Snapshot,
}

/// Why a frame could not be encoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncodeError {
    /// The source name is empty or contains a delimiter/control byte.
    BadSource(String),
    /// The snapshot could not be serialized. Frames hold plain data, so
    /// this indicates a serializer defect rather than bad input — but a
    /// listener must report it, not panic on it.
    Payload(String),
    /// The encoded payload exceeds the wire format's frame limit.
    Oversized {
        /// Encoded payload size in bytes.
        len: usize,
        /// The wire format's limit in bytes.
        max: usize,
    },
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::BadSource(s) => write!(
                f,
                "source {s:?} must be non-empty printable text without commas"
            ),
            EncodeError::Payload(why) => write!(f, "frame payload failed to serialize: {why}"),
            EncodeError::Oversized { len, max } => {
                write!(
                    f,
                    "frame payload of {len} bytes exceeds the {max}-byte limit"
                )
            }
        }
    }
}

impl std::error::Error for EncodeError {}

/// Why bytes could not be decoded into a frame.
#[derive(Debug)]
pub enum DecodeError {
    /// A JSON length prefix (or an unterminated CSV line) exceeds the
    /// configured frame limit.
    Oversized {
        /// Claimed (or buffered) byte count.
        len: usize,
        /// The configured limit.
        max: usize,
    },
    /// The connection ended mid-frame.
    Truncated {
        /// Bytes left undecodable in the buffer.
        buffered: usize,
    },
    /// A frame payload or CSV line was not valid UTF-8.
    BadUtf8,
    /// A JSON payload did not parse into a frame.
    BadJson(String),
    /// A CSV line did not parse into a frame.
    BadCsv(String),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Oversized { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte limit")
            }
            DecodeError::Truncated { buffered } => {
                write!(f, "connection ended mid-frame ({buffered} bytes pending)")
            }
            DecodeError::BadUtf8 => write!(f, "frame is not valid UTF-8"),
            DecodeError::BadJson(why) => write!(f, "bad JSON frame: {why}"),
            DecodeError::BadCsv(why) => write!(f, "bad CSV line: {why}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// The JSON payload layout. Measurement identifiers travel in their
/// display forms (`machine-003`, `CpuUtilization`) so frames stay
/// readable and survive schema-ignorant relays.
#[derive(Serialize, Deserialize)]
struct JsonFrame {
    source: String,
    seq: u64,
    at_secs: u64,
    values: Vec<(String, String, f64)>,
}

fn source_is_valid(source: &str) -> bool {
    !source.is_empty()
        && source
            .chars()
            .all(|c| !c.is_control() && c != ',' && c != '\u{0}')
}

fn check_source(source: &str) -> Result<(), EncodeError> {
    if source_is_valid(source) {
        Ok(())
    } else {
        Err(EncodeError::BadSource(source.to_string()))
    }
}

/// Encodes a frame as a length-prefixed JSON message.
///
/// # Errors
///
/// Fails when the source name is invalid, the payload cannot be
/// serialized, or the payload exceeds [`AUTO_DETECT_FRAME_LIMIT`] (real
/// snapshots are orders of magnitude smaller); see [`EncodeError`].
pub fn encode_json(frame: &WireFrame) -> Result<Vec<u8>, EncodeError> {
    check_source(&frame.source)?;
    let payload = serde_json::to_vec(&JsonFrame {
        source: frame.source.clone(),
        seq: frame.seq,
        at_secs: frame.snapshot.at().as_secs(),
        values: frame
            .snapshot
            .iter()
            .map(|(id, v)| (id.machine().to_string(), id.metric().to_string(), v))
            .collect(),
    })
    .map_err(|e| EncodeError::Payload(e.to_string()))?;
    if payload.len() >= AUTO_DETECT_FRAME_LIMIT {
        return Err(EncodeError::Oversized {
            len: payload.len(),
            max: AUTO_DETECT_FRAME_LIMIT,
        });
    }
    let mut out = Vec::with_capacity(4 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(&payload);
    Ok(out)
}

/// Encodes a frame as one newline-terminated CSV line.
///
/// Values print in Rust's shortest round-trip form, so decode is
/// bit-exact.
///
/// # Errors
///
/// Fails when the source name is invalid (see [`EncodeError`]).
pub fn encode_csv(frame: &WireFrame) -> Result<String, EncodeError> {
    check_source(&frame.source)?;
    let mut line = format!(
        "{},{},{}",
        frame.source,
        frame.seq,
        frame.snapshot.at().as_secs()
    );
    for (id, v) in frame.snapshot.iter() {
        use std::fmt::Write;
        // `fmt::Write` to a String is infallible.
        let _ = write!(line, ",{},{},{v}", id.machine(), id.metric());
    }
    line.push('\n');
    Ok(line)
}

fn parse_measurement(machine: &str, metric: &str) -> Result<MeasurementId, String> {
    let machine: MachineId = machine.trim().parse().map_err(|e| format!("{e}"))?;
    let metric: MetricKind = metric.trim().parse().map_err(|e| format!("{e}"))?;
    Ok(MeasurementId::new(machine, metric))
}

pub(crate) fn decode_json_payload(payload: &[u8]) -> Result<WireFrame, DecodeError> {
    let parsed: JsonFrame =
        serde_json::from_slice(payload).map_err(|e| DecodeError::BadJson(e.to_string()))?;
    if !source_is_valid(&parsed.source) {
        return Err(DecodeError::BadJson(format!(
            "invalid source {:?}",
            parsed.source
        )));
    }
    let mut snapshot = Snapshot::new(Timestamp::from_secs(parsed.at_secs));
    for (machine, metric, value) in &parsed.values {
        let id = parse_measurement(machine, metric).map_err(DecodeError::BadJson)?;
        snapshot.insert(id, *value);
    }
    Ok(WireFrame {
        source: parsed.source,
        seq: parsed.seq,
        snapshot,
    })
}

fn decode_csv_line(line: &str) -> Result<WireFrame, DecodeError> {
    let line = line.strip_suffix('\r').unwrap_or(line);
    let bad = |why: String| DecodeError::BadCsv(why);
    let fields: Vec<&str> = line.split(',').collect();
    if fields.len() < 3 {
        return Err(bad(format!(
            "expected source,seq,at_secs[,machine,metric,value]..., found {} fields",
            fields.len()
        )));
    }
    let source = fields[0].trim();
    if !source_is_valid(source) {
        return Err(bad(format!("invalid source {source:?}")));
    }
    let seq: u64 = fields[1]
        .trim()
        .parse()
        .map_err(|e| bad(format!("bad seq: {e}")))?;
    let at_secs: u64 = fields[2]
        .trim()
        .parse()
        .map_err(|e| bad(format!("bad at_secs: {e}")))?;
    let rest = &fields[3..];
    if !rest.len().is_multiple_of(3) {
        return Err(bad(format!(
            "trailing fields must come in machine,metric,value triplets, found {}",
            rest.len()
        )));
    }
    let mut snapshot = Snapshot::new(Timestamp::from_secs(at_secs));
    for triplet in rest.chunks_exact(3) {
        let id = parse_measurement(triplet[0], triplet[1]).map_err(bad)?;
        let value: f64 = triplet[2]
            .trim()
            .parse()
            .map_err(|e| bad(format!("bad value: {e}")))?;
        snapshot.insert(id, value);
    }
    Ok(WireFrame {
        source: source.to_string(),
        seq,
        snapshot,
    })
}

/// The per-connection encoding, once known.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Detected {
    Json,
    Csv,
}

/// Incremental frame decoder: one per connection.
///
/// Push raw socket bytes in any chunking; pop frames until `Ok(None)`.
/// After any `Err`, the connection's byte stream is unsynchronized and
/// should be closed — the decoder makes no attempt to resync.
#[derive(Debug)]
pub struct FrameDecoder {
    detected: Option<Detected>,
    max_frame: usize,
    buf: Vec<u8>,
}

impl FrameDecoder {
    /// A decoder accepting frames (or lines) up to `max_frame` bytes.
    ///
    /// # Panics
    ///
    /// Panics when `max_frame` is zero.
    pub fn new(protocol: WireProtocol, max_frame: usize) -> Self {
        assert!(max_frame > 0, "frame limit must be positive");
        FrameDecoder {
            detected: match protocol {
                WireProtocol::Auto => None,
                WireProtocol::Json => Some(Detected::Json),
                WireProtocol::Csv => Some(Detected::Csv),
            },
            max_frame,
            buf: Vec::new(),
        }
    }

    /// Appends raw bytes from the socket.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet decoded.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Whether a partial frame is pending (an EOF now would truncate it).
    pub fn has_partial(&self) -> bool {
        !self.buf.is_empty()
    }

    /// The encoding this connection speaks, once known.
    pub fn protocol_name(&self) -> Option<&'static str> {
        self.detected.map(|d| match d {
            Detected::Json => "json",
            Detected::Csv => "csv",
        })
    }

    /// The [`DecodeError`] for an EOF at the current state, if the EOF
    /// would abandon a partial frame.
    pub fn eof_error(&self) -> Option<DecodeError> {
        self.has_partial().then_some(DecodeError::Truncated {
            buffered: self.buf.len(),
        })
    }

    /// Decodes the next complete frame, or reports that more bytes are
    /// needed (`Ok(None)`).
    ///
    /// # Errors
    ///
    /// Any [`DecodeError`]; the stream is unsynchronized afterwards.
    pub fn next_frame(&mut self) -> Result<Option<WireFrame>, DecodeError> {
        let Some(&first) = self.buf.first() else {
            return Ok(None);
        };
        // A JSON frame under 16 MiB always leads with a zero length
        // byte; CSV sources are printable and never start with NUL.
        let detected = *self.detected.get_or_insert(if first == 0 {
            Detected::Json
        } else {
            Detected::Csv
        });
        match detected {
            Detected::Json => self.next_json_frame(),
            Detected::Csv => self.next_csv_frame(),
        }
    }

    fn next_json_frame(&mut self) -> Result<Option<WireFrame>, DecodeError> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_be_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]]) as usize;
        if len > self.max_frame {
            return Err(DecodeError::Oversized {
                len,
                max: self.max_frame,
            });
        }
        if len == 0 {
            return Err(DecodeError::BadJson("empty frame payload".to_string()));
        }
        if self.buf.len() < 4 + len {
            return Ok(None);
        }
        let frame = decode_json_payload(&self.buf[4..4 + len])?;
        self.buf.drain(..4 + len);
        Ok(Some(frame))
    }

    fn next_csv_frame(&mut self) -> Result<Option<WireFrame>, DecodeError> {
        let Some(newline) = self.buf.iter().position(|&b| b == b'\n') else {
            // A line that never ends is a slow-loris or garbage stream.
            if self.buf.len() > self.max_frame {
                return Err(DecodeError::Oversized {
                    len: self.buf.len(),
                    max: self.max_frame,
                });
            }
            return Ok(None);
        };
        if newline > self.max_frame {
            return Err(DecodeError::Oversized {
                len: newline,
                max: self.max_frame,
            });
        }
        let line = std::str::from_utf8(&self.buf[..newline])
            .map_err(|_| DecodeError::BadUtf8)?
            .to_string();
        self.buf.drain(..=newline);
        if line.trim().is_empty() {
            // Blank lines are keep-alive noise, not frames.
            return self.next_frame();
        }
        decode_csv_line(&line).map(Some)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridwatch_timeseries::{MachineId, MetricKind};

    fn sample_frame(seq: u64) -> WireFrame {
        let mut snapshot = Snapshot::new(Timestamp::from_secs(5400));
        snapshot.insert(
            MeasurementId::new(MachineId::new(0), MetricKind::CpuUtilization),
            13.25,
        );
        snapshot.insert(
            MeasurementId::new(MachineId::new(1), MetricKind::Custom(7)),
            -0.875,
        );
        WireFrame {
            source: "agent-1".to_string(),
            seq,
            snapshot,
        }
    }

    #[test]
    fn json_roundtrip_is_exact() {
        let frame = sample_frame(3);
        let bytes = encode_json(&frame).unwrap();
        assert_eq!(bytes[0], 0, "length prefix starts with the detect byte");
        let mut dec = FrameDecoder::new(WireProtocol::Auto, 1 << 20);
        dec.push(&bytes);
        let back = dec.next_frame().unwrap().unwrap();
        assert_eq!(back, frame);
        assert_eq!(dec.protocol_name(), Some("json"));
        assert!(!dec.has_partial());
    }

    #[test]
    fn csv_roundtrip_is_exact() {
        let frame = sample_frame(9);
        let line = encode_csv(&frame).unwrap();
        assert!(line.ends_with('\n'));
        let mut dec = FrameDecoder::new(WireProtocol::Auto, 1 << 20);
        dec.push(line.as_bytes());
        let back = dec.next_frame().unwrap().unwrap();
        assert_eq!(back, frame);
        assert_eq!(dec.protocol_name(), Some("csv"));
    }

    #[test]
    fn byte_at_a_time_chunking_decodes_identically() {
        let frames = [sample_frame(0), sample_frame(1), sample_frame(2)];
        let mut stream = Vec::new();
        for f in &frames {
            stream.extend_from_slice(&encode_json(f).unwrap());
        }
        let mut dec = FrameDecoder::new(WireProtocol::Auto, 1 << 20);
        let mut got = Vec::new();
        for &b in &stream {
            dec.push(&[b]);
            while let Some(f) = dec.next_frame().unwrap() {
                got.push(f);
            }
        }
        assert_eq!(got, frames);
    }

    #[test]
    fn oversized_prefix_is_rejected_before_buffering() {
        let mut dec = FrameDecoder::new(WireProtocol::Json, 256);
        dec.push(&u32::to_be_bytes(300));
        let err = dec.next_frame().unwrap_err();
        assert!(matches!(err, DecodeError::Oversized { len: 300, max: 256 }));
    }

    #[test]
    fn endless_csv_line_is_oversized() {
        let mut dec = FrameDecoder::new(WireProtocol::Csv, 16);
        dec.push(b"aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa");
        let err = dec.next_frame().unwrap_err();
        assert!(matches!(err, DecodeError::Oversized { .. }));
    }

    #[test]
    fn garbage_is_a_typed_error_not_a_panic() {
        for garbage in [
            &b"\x00\x00\x00\x04junk"[..],
            b"not,a,frame\n",
            b"a,b,c\n",
            b"x,1,2,machine-0,Bogus,1.0\n",
            b"x,1,2,machine-0,CpuUtilization\n",
            b"\xff\xfe\xfd\n",
        ] {
            let mut dec = FrameDecoder::new(WireProtocol::Auto, 1 << 20);
            dec.push(garbage);
            assert!(dec.next_frame().is_err(), "{garbage:?} must be rejected");
        }
    }

    #[test]
    fn blank_lines_are_skipped() {
        let frame = sample_frame(0);
        let mut dec = FrameDecoder::new(WireProtocol::Csv, 1 << 20);
        dec.push(b"\r\n\n");
        dec.push(encode_csv(&frame).unwrap().as_bytes());
        assert_eq!(dec.next_frame().unwrap().unwrap(), frame);
    }

    #[test]
    fn eof_mid_frame_reports_truncation() {
        let frame = sample_frame(0);
        let bytes = encode_json(&frame).unwrap();
        let mut dec = FrameDecoder::new(WireProtocol::Auto, 1 << 20);
        dec.push(&bytes[..bytes.len() - 3]);
        assert!(dec.next_frame().unwrap().is_none());
        assert!(matches!(
            dec.eof_error(),
            Some(DecodeError::Truncated { .. })
        ));
    }

    #[test]
    fn invalid_sources_cannot_be_encoded() {
        let mut frame = sample_frame(0);
        for bad in ["", "a,b", "tab\there", "nul\0"] {
            frame.source = bad.to_string();
            assert!(encode_json(&frame).is_err(), "{bad:?}");
            assert!(encode_csv(&frame).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn protocol_parses_its_display_form() {
        for p in [WireProtocol::Auto, WireProtocol::Json, WireProtocol::Csv] {
            assert_eq!(p.to_string().parse::<WireProtocol>().unwrap(), p);
        }
        assert!("tcp".parse::<WireProtocol>().is_err());
    }
}
