//! The coordinator half of the multi-node shard fabric.
//!
//! A [`Coordinator`] owns the full trained model set, partitions it
//! across remote [`ShardWorker`](crate::remote::ShardWorker) processes
//! with the same [`ShardRouter`] placement the in-process
//! `ShardedEngine` uses, fans every submitted snapshot out to all live
//! workers, and merges the partial [`BoardFrame`]s that stream back
//! into in-order [`StepReport`]s — **bit-identical** to what a
//! single-process `ShardedEngine` (or an unsharded engine) would emit,
//! because each worker scores with the same deterministic
//! `step_scores` over the same model slice and alarms are evaluated on
//! the merged board by one tracker, exactly as the in-process
//! aggregator does.
//!
//! # Epoch fencing
//!
//! Every worker attachment gets a fresh *fabric epoch* from one
//! monotonic counter, so an (shard, epoch) pair is globally unique
//! across the fabric's lifetime. Workers stamp every board with their
//! assigned epoch; the merge thread drops any board whose epoch is not
//! the shard's current one (or whose shard is not live). After a
//! migration, a partitioned-but-alive predecessor can keep sending
//! boards forever — they are all fenced, never merged, so a stale
//! worker cannot corrupt the report stream.
//!
//! # Migration
//!
//! The coordinator keeps a journal of submitted snapshots since the
//! last checkpoint cut, and a per-shard state cache (the shard's
//! `EngineSnapshot` as of that cut, refreshed on every checkpoint).
//! When a worker dies, [`Coordinator::attach_worker`] hands a
//! successor the cached state plus a journal replay; determinism of
//! `step_scores` means the successor regenerates byte-identical boards
//! for any steps the predecessor had already answered, and the merge
//! thread's per-(seq, shard) dedup absorbs the overlap.

use std::collections::{BTreeMap, VecDeque};
use std::net::{Shutdown, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use crossbeam::channel::{self, Receiver, Sender};
use gridwatch_sync::{classes, OrderedMutex};
use serde::{Deserialize, Serialize};

use gridwatch_detect::{
    AlarmTracker, EngineConfig, EngineSnapshot, ScoreBoard, Snapshot, StepReport,
};
use gridwatch_obs::{Exposition, PipelineObs, SpanSlice, Stage};

use crate::checkpoint::{CheckpointManifest, Checkpointer, RemoteShard};
use crate::remote::{
    decode_response, encode_control, io_ctx, read_frame, write_frame, BoardFrame, FabricControl,
    FabricError, FabricResponse,
};
use crate::router::ShardRouter;
use crate::wire::{encode_json, WireFrame};

/// The `source` name stamped on snapshot frames the coordinator sends
/// to its workers.
pub const COORDINATOR_SOURCE: &str = "coordinator";

/// Tuning knobs for a [`Coordinator`].
#[derive(Debug, Clone)]
pub struct FabricConfig {
    /// Capacity of the internal merge and report channels.
    pub channel_capacity: usize,
    /// The first snapshot sequence number (a resumed coordinator
    /// starts at the recovered manifest's `cut_seq`).
    pub start_seq: u64,
    /// Fabric epochs are allocated strictly above this base (a resumed
    /// coordinator passes the manifest's `fabric_epoch` so stale
    /// pre-crash assignments can never collide with new ones).
    pub epoch_base: u64,
    /// How long [`Coordinator::checkpoint`] waits for worker states.
    pub checkpoint_timeout: Duration,
}

impl Default for FabricConfig {
    fn default() -> Self {
        FabricConfig {
            channel_capacity: 1024,
            start_seq: 0,
            epoch_base: 0,
            checkpoint_timeout: Duration::from_secs(30),
        }
    }
}

/// Lifetime counters of one coordinator.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FabricStats {
    /// Shards in the fabric.
    pub shards: usize,
    /// Snapshots submitted for scoring.
    pub submitted: u64,
    /// Step reports emitted.
    pub reports: u64,
    /// Alarm events raised across all reports.
    pub alarms: u64,
    /// Boards fenced off for carrying a superseded epoch or arriving
    /// from a shard declared dead.
    pub stale_boards: u64,
    /// Boards dropped because the (seq, shard) slot was already filled.
    pub duplicate_boards: u64,
    /// Boards dropped for scoring a step already emitted (migration
    /// replay overlap).
    pub replayed_boards: u64,
    /// Boards dropped as malformed (bad shard index, mismatched
    /// instant, overlapping pairs).
    pub bad_boards: u64,
    /// Worker connections lost (write failure, EOF, or declared dead).
    pub disconnects: u64,
    /// Successful worker re-attachments.
    pub migrations: u64,
    /// Checkpoints completed.
    pub checkpoints: u64,
}

/// Per-shard assignment published to the merge thread: which epoch is
/// current and whether the shard has a live worker.
#[derive(Debug)]
struct ShardSlot {
    epoch: u64,
    live: bool,
    addr: String,
}

type Slots = Arc<Vec<OrderedMutex<ShardSlot>>>;

/// One entry of the per-shard state cache: the shard's engine state as
/// of snapshot sequence `cut` (exclusive).
#[derive(Debug, Clone)]
struct StateEntry {
    cut: u64,
    state: EngineSnapshot,
}

/// Messages from reader threads (and the front, for checkpoints) into
/// the merge thread.
enum CoordMsg {
    Board(BoardFrame),
    State {
        shard: usize,
        epoch: u64,
        id: u64,
        state: Box<EngineSnapshot>,
    },
    Disconnected {
        shard: usize,
        epoch: u64,
    },
    CheckpointBegin {
        id: u64,
        cut_seq: u64,
        dir: PathBuf,
        fabric_epoch: u64,
        remote: Vec<RemoteShard>,
        ack: Sender<Result<(), FabricError>>,
    },
}

/// One step awaiting boards from every shard.
struct PendingStep {
    board: Option<ScoreBoard>,
    replied: Vec<bool>,
}

/// An in-flight checkpoint inside the merge thread.
struct CheckpointOp {
    id: u64,
    cut_seq: u64,
    checkpointer: Checkpointer,
    fabric_epoch: u64,
    remote: Vec<RemoteShard>,
    ack: Sender<Result<(), FabricError>>,
    files: Vec<Option<String>>,
    received: usize,
    error: Option<FabricError>,
    /// Sketch candidates persisted across the shard states received so
    /// far, summed into [`CheckpointManifest::candidate_pairs`].
    candidates: usize,
}

/// The coordinator of a multi-node shard fabric. Single-threaded front
/// API: `submit` snapshots, `recv` reports, `checkpoint`, and migrate
/// dead shards with `attach_worker`; readers and the merge run on
/// internal threads.
#[derive(Debug)]
pub struct Coordinator {
    shards: usize,
    fabric: FabricConfig,
    slots: Slots,
    /// Write halves of the current worker connections (front-owned).
    streams: Vec<Option<TcpStream>>,
    /// Write halves of superseded connections, kept open so a
    /// partitioned predecessor's reader keeps draining (and fencing)
    /// its boards; severed at shutdown to unblock those readers.
    zombies: Vec<TcpStream>,
    readers: Vec<JoinHandle<()>>,
    merge: Option<JoinHandle<()>>,
    merge_tx: Option<Sender<CoordMsg>>,
    reports_rx: Receiver<StepReport>,
    report_buffer: VecDeque<StepReport>,
    state_cache: Arc<OrderedMutex<Vec<StateEntry>>>,
    stats: Arc<OrderedMutex<FabricStats>>,
    closing: Arc<std::sync::atomic::AtomicBool>,
    journal: VecDeque<(u64, Snapshot)>,
    next_seq: u64,
    epoch_counter: u64,
    checkpoint_counter: u64,
    obs: PipelineObs,
}

/// A detachable handle rendering a live coordinator's counters and
/// stage distributions as Prometheus text exposition, for `--metrics`
/// scrapes while the front thread drives the fabric.
#[derive(Debug, Clone)]
pub struct CoordinatorMetricsProbe {
    stats: Arc<OrderedMutex<FabricStats>>,
    slots: Slots,
    obs: PipelineObs,
}

impl CoordinatorMetricsProbe {
    /// A copy of the fabric's lifetime counters.
    pub fn stats(&self) -> FabricStats {
        *self.stats.lock()
    }

    /// The structural half of the `/healthz` document: per-shard
    /// fabric-session liveness and the alarm total. Time-dependent
    /// fields (checkpoint age, WAL lag, alarm deltas) are layered on
    /// by the caller, which owns the clocks.
    pub fn health_report(&self) -> gridwatch_obs::HealthReport {
        let stats = self.stats();
        let mut report = gridwatch_obs::HealthReport {
            alarms: stats.alarms,
            ..Default::default()
        };
        for (shard, slot) in self.slots.iter().enumerate() {
            let live = slot.lock().live;
            report.shards.push(gridwatch_obs::ShardHealth {
                shard: shard as u64,
                live,
                queue_depth: 0,
                queue_capacity: 0,
            });
            if !live {
                report.degrade(format!("shard {shard} has no live worker"));
            }
        }
        report
    }

    /// The scrape-time burn sample: malformed boards map onto the
    /// decode-error budget, fenced boards (stale epoch, duplicate
    /// slot, migration replay) onto the sequence-error budget.
    pub fn burn_sample(&self) -> gridwatch_obs::BurnSample {
        let s = self.stats();
        gridwatch_obs::BurnSample {
            decode_errors: s.bad_boards,
            sequence_errors: s.stale_boards + s.duplicate_boards + s.replayed_boards,
            submitted: s.submitted,
            sampled_out: 0,
            stages: self
                .obs
                .tracer
                .snapshot()
                .into_iter()
                .map(|(_, h)| h)
                .collect(),
        }
    }

    /// Renders the fabric counters and any recorded stage timings.
    pub fn to_prometheus(&self) -> String {
        let s = self.stats();
        let mut expo = Exposition::new();
        expo.header("gridwatch_fabric_shards", "gauge", "Shards in the fabric");
        expo.sample("gridwatch_fabric_shards", &[], s.shards as u64);
        let counters: [(&str, &str, u64); 10] = [
            (
                "gridwatch_fabric_submitted_total",
                "Snapshots submitted for scoring",
                s.submitted,
            ),
            (
                "gridwatch_fabric_reports_total",
                "Step reports emitted",
                s.reports,
            ),
            (
                "gridwatch_fabric_alarms_total",
                "Alarm events raised",
                s.alarms,
            ),
            (
                "gridwatch_fabric_stale_boards_total",
                "Boards fenced for a superseded epoch or dead shard",
                s.stale_boards,
            ),
            (
                "gridwatch_fabric_duplicate_boards_total",
                "Boards dropped as duplicates",
                s.duplicate_boards,
            ),
            (
                "gridwatch_fabric_replayed_boards_total",
                "Boards dropped as migration replay overlap",
                s.replayed_boards,
            ),
            (
                "gridwatch_fabric_bad_boards_total",
                "Boards dropped as malformed",
                s.bad_boards,
            ),
            (
                "gridwatch_fabric_disconnects_total",
                "Worker connections lost",
                s.disconnects,
            ),
            (
                "gridwatch_fabric_migrations_total",
                "Successful worker re-attachments",
                s.migrations,
            ),
            (
                "gridwatch_fabric_checkpoints_total",
                "Checkpoints completed",
                s.checkpoints,
            ),
        ];
        for (name, help, value) in counters {
            expo.header(name, "counter", help);
            expo.sample(name, &[], value);
        }
        crate::stats::render_stage_spans(&mut expo, &self.obs.tracer);
        expo.finish()
    }
}

impl Coordinator {
    /// Partitions `snapshot`'s models across `workers` (one shard per
    /// address, placed by [`ShardRouter`]), performs the Hello
    /// handshake with each, and starts the merge pipeline.
    pub fn connect(
        snapshot: EngineSnapshot,
        workers: &[String],
        fabric: FabricConfig,
    ) -> Result<Coordinator, FabricError> {
        Coordinator::connect_with_obs(snapshot, workers, fabric, PipelineObs::default())
    }

    /// [`Coordinator::connect`] with an explicit observability context.
    /// When the tracer is enabled, every worker Hello carries
    /// `trace: true` so the workers' tracers light up too.
    pub fn connect_with_obs(
        snapshot: EngineSnapshot,
        workers: &[String],
        fabric: FabricConfig,
        obs: PipelineObs,
    ) -> Result<Coordinator, FabricError> {
        let shards = workers.len();
        if shards == 0 {
            return Err(FabricError::Protocol(
                "a fabric needs at least one worker address".to_string(),
            ));
        }
        let router = ShardRouter::new(shards);
        let config = snapshot.config;
        let tracker = snapshot.tracker.clone();
        let partitions = router.partition(snapshot.models);
        let candidate_partitions = router.partition_pairs(snapshot.candidates);

        let slots: Slots = Arc::new(
            (0..shards)
                .map(|_| {
                    OrderedMutex::new(
                        classes::FABRIC_SLOT,
                        ShardSlot {
                            epoch: 0,
                            live: false,
                            addr: String::new(),
                        },
                    )
                })
                .collect(),
        );
        let state_cache = Arc::new(OrderedMutex::new(
            classes::FABRIC_STATE_CACHE,
            partitions
                .into_iter()
                .zip(candidate_partitions)
                .map(|(part, candidates)| StateEntry {
                    cut: fabric.start_seq,
                    state: EngineSnapshot {
                        config,
                        models: part,
                        tracker: AlarmTracker::new(),
                        candidates,
                    },
                })
                .collect::<Vec<_>>(),
        ));
        let stats = Arc::new(OrderedMutex::new(
            classes::FABRIC_STATS,
            FabricStats {
                shards,
                ..FabricStats::default()
            },
        ));

        let closing = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let (merge_tx, merge_rx) = channel::bounded(fabric.channel_capacity);
        let (reports_tx, reports_rx) = channel::bounded(fabric.channel_capacity);
        let merge = {
            let slots = Arc::clone(&slots);
            let state_cache = Arc::clone(&state_cache);
            let stats = Arc::clone(&stats);
            let closing = Arc::clone(&closing);
            let start_seq = fabric.start_seq;
            let merge_obs = obs.clone();
            thread::Builder::new()
                .name("fabric-merge".to_string())
                .spawn(move || {
                    merge_loop(
                        shards,
                        config,
                        tracker,
                        start_seq,
                        merge_rx,
                        reports_tx,
                        slots,
                        state_cache,
                        stats,
                        closing,
                        merge_obs,
                    )
                })
                .map_err(|e| FabricError::Io {
                    context: "spawn merge thread".to_string(),
                    source: e,
                })?
        };

        let mut coordinator = Coordinator {
            shards,
            epoch_counter: fabric.epoch_base,
            next_seq: fabric.start_seq,
            fabric,
            slots,
            streams: (0..shards).map(|_| None).collect(),
            zombies: Vec::new(),
            readers: Vec::new(),
            merge: Some(merge),
            merge_tx: Some(merge_tx),
            reports_rx,
            report_buffer: VecDeque::new(),
            state_cache,
            stats: Arc::clone(&stats),
            closing,
            journal: VecDeque::new(),
            checkpoint_counter: 0,
            obs,
        };
        for (shard, addr) in workers.iter().enumerate() {
            coordinator.attach(shard, addr.clone())?;
        }
        Ok(coordinator)
    }

    /// The shard count.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The highest fabric epoch allocated so far.
    pub fn fabric_epoch(&self) -> u64 {
        self.epoch_counter
    }

    /// A copy of the lifetime counters.
    pub fn stats(&self) -> FabricStats {
        *self.stats.lock()
    }

    /// This coordinator's observability context.
    pub fn obs(&self) -> &PipelineObs {
        &self.obs
    }

    /// A handle that renders live metrics while the front thread
    /// drives the fabric.
    pub fn metrics_probe(&self) -> CoordinatorMetricsProbe {
        CoordinatorMetricsProbe {
            stats: Arc::clone(&self.stats),
            slots: Arc::clone(&self.slots),
            obs: self.obs.clone(),
        }
    }

    /// Shards currently without a live worker.
    pub fn dead_shards(&self) -> Vec<usize> {
        (0..self.shards)
            .filter(|&k| !self.slots[k].lock().live)
            .collect()
    }

    /// Declares a shard's worker dead without touching its socket —
    /// the coordinator-side view of a network partition. Boards still
    /// arriving from the worker are fenced, and the shard becomes
    /// eligible for [`Coordinator::attach_worker`].
    pub fn declare_dead(&mut self, shard: usize) {
        if shard < self.shards {
            self.mark_dead(shard);
        }
    }

    fn mark_dead(&self, shard: usize) {
        // Flip the slot under its lock, but do the bookkeeping (stats,
        // recorder, log) after releasing it: none of it needs the slot,
        // and keeping the critical section to the one store avoids
        // nesting other lock classes under `fabric.slot`.
        let epoch = {
            let mut slot = self.slots[shard].lock();
            if !slot.live {
                return;
            }
            slot.live = false;
            slot.epoch
        };
        self.stats.lock().disconnects += 1;
        self.obs.recorder.record(
            "disconnect",
            format_args!("shard {shard} (epoch {epoch}) marked dead"),
        );
        gridwatch_obs::warn!(
            "fabric",
            "gridwatch coordinator: shard {shard} worker lost (epoch {epoch})"
        );
    }

    /// Fans one snapshot out to every live worker and journals it for
    /// migration replay. A worker whose socket rejects the write is
    /// marked dead (its boards for this and later steps will come from
    /// a successor after [`Coordinator::attach_worker`]).
    pub fn submit(&mut self, snapshot: Snapshot) -> Result<u64, FabricError> {
        // Clone the handles so the span's borrow does not pin `self`.
        let tracer = self.obs.tracer.clone();
        let exemplar = self.obs.exemplar.clone();
        let traced = exemplar.is_enabled();
        let route_start = if traced { exemplar.now_ns() } else { 0 };
        let at_secs = snapshot.at().as_secs();
        let _route = tracer.span(Stage::Route);
        let seq = self.next_seq;
        self.next_seq += 1;
        let framed = encode_json(&WireFrame {
            source: COORDINATOR_SOURCE.to_string(),
            seq,
            snapshot: snapshot.clone(),
        })
        .map_err(|e| FabricError::Protocol(format!("encode snapshot frame: {e}")))?;
        self.journal.push_back((seq, snapshot));
        self.stats.lock().submitted += 1;
        for shard in 0..self.shards {
            if !self.slots[shard].lock().live {
                continue;
            }
            let Some(stream) = self.streams[shard].as_mut() else {
                continue;
            };
            // encode_json output already carries the length prefix.
            if std::io::Write::write_all(stream, &framed).is_err() {
                self.mark_dead(shard);
            }
        }
        if traced {
            exemplar.open(seq, COORDINATOR_SOURCE, at_secs);
            // The coordinator sequences at the merge barrier, not at a
            // socket table; a zero-width Sequence slice keeps every
            // trace covering the same seven stages. Ingest/decode come
            // back with the workers' board spans.
            exemplar.record(
                seq,
                SpanSlice::new(Stage::Sequence, route_start, 0, COORDINATOR_SOURCE),
            );
            exemplar.record(
                seq,
                SpanSlice::new(
                    Stage::Route,
                    route_start,
                    exemplar.now_ns().saturating_sub(route_start),
                    COORDINATOR_SOURCE,
                ),
            );
        }
        Ok(seq)
    }

    /// Attaches a successor worker to a dead shard: allocates a fresh
    /// epoch (fencing the predecessor), ships the cached shard state,
    /// and replays the journal since that state's cut. Fails if the
    /// shard still has a live worker.
    pub fn attach_worker(&mut self, shard: usize, addr: &str) -> Result<(), FabricError> {
        if shard >= self.shards {
            return Err(FabricError::Protocol(format!(
                "shard {shard} out of range for {} shards",
                self.shards
            )));
        }
        if self.slots[shard].lock().live {
            return Err(FabricError::Protocol(format!(
                "shard {shard} already has a live worker; declare it dead first"
            )));
        }
        if let Some(old) = self.streams[shard].take() {
            self.zombies.push(old);
        }
        self.attach(shard, addr.to_string())?;
        self.stats.lock().migrations += 1;
        self.obs.recorder.record(
            "migration",
            format_args!(
                "shard {shard} migrated to {addr} (epoch {})",
                self.epoch_counter
            ),
        );
        gridwatch_obs::info!(
            "fabric",
            "gridwatch coordinator: shard {shard} migrated to {addr}"
        );
        Ok(())
    }

    /// Dials `addr`, performs the Hello handshake with the cached
    /// state, publishes the new (epoch, live) assignment, spawns the
    /// reader, and replays the journal suffix the state has not seen.
    fn attach(&mut self, shard: usize, addr: String) -> Result<(), FabricError> {
        self.epoch_counter += 1;
        let epoch = self.epoch_counter;
        let entry = self.state_cache.lock()[shard].clone();

        let mut stream =
            TcpStream::connect(&addr).map_err(io_ctx(&format!("connect worker {addr}")))?;
        stream
            .set_nodelay(true)
            .map_err(io_ctx(&format!("nodelay on {addr}")))?;
        let hello = encode_control(&FabricControl::Hello {
            shard,
            shards: self.shards,
            epoch,
            trace: self.obs.tracer.is_enabled(),
            exemplar: self.obs.exemplar.is_enabled(),
            state: entry.state,
        })?;
        write_frame(&mut stream, &hello).map_err(io_ctx(&format!("hello to {addr}")))?;
        let Some(payload) =
            read_frame(&mut stream).map_err(io_ctx(&format!("hello ack from {addr}")))?
        else {
            return Err(FabricError::Protocol(format!(
                "worker {addr} closed the connection during the handshake"
            )));
        };
        match decode_response(&payload)? {
            FabricResponse::HelloAck {
                shard: acked_shard,
                epoch: acked_epoch,
                pairs: _,
            } if acked_shard == shard && acked_epoch == epoch => {}
            other => {
                return Err(FabricError::Protocol(format!(
                    "worker {addr} answered the shard {shard} Hello with {other:?}"
                )))
            }
        }

        // Publish the assignment before the reader can push frames, so
        // nothing from this worker is ever fenced as stale.
        {
            let mut slot = self.slots[shard].lock();
            slot.epoch = epoch;
            slot.live = true;
            slot.addr = addr.clone();
        }
        self.obs.recorder.record(
            "attach",
            format_args!("shard {shard} attached to {addr} (epoch {epoch})"),
        );

        let reader_stream = stream
            .try_clone()
            .map_err(io_ctx(&format!("clone socket for {addr}")))?;
        let Some(merge_tx) = self.merge_tx.as_ref() else {
            return Err(FabricError::Protocol(
                "coordinator is already shut down".to_string(),
            ));
        };
        let tx = merge_tx.clone();
        let reader = thread::Builder::new()
            .name(format!("fabric-reader-{shard}-e{epoch}"))
            .spawn(move || reader_loop(shard, epoch, reader_stream, tx))
            .map_err(|e| FabricError::Io {
                context: format!("spawn reader for shard {shard}"),
                source: e,
            })?;
        self.readers.push(reader);

        // Journal replay: every snapshot the shipped state has not
        // folded in yet.
        for (seq, snapshot) in self.journal.iter().filter(|(seq, _)| *seq >= entry.cut) {
            let framed = encode_json(&WireFrame {
                source: COORDINATOR_SOURCE.to_string(),
                seq: *seq,
                snapshot: snapshot.clone(),
            })
            .map_err(|e| FabricError::Protocol(format!("encode replay frame: {e}")))?;
            std::io::Write::write_all(&mut stream, &framed)
                .map_err(io_ctx(&format!("replay to {addr}")))?;
        }
        self.streams[shard] = Some(stream);
        Ok(())
    }

    /// Checkpoints the fabric into `dir`: sends every worker a
    /// checkpoint marker, persists the returned shard states plus a
    /// manifest recording the cut, the fabric epoch, and the remote
    /// ownership table, refreshes the migration state cache, and trims
    /// the journal below the cut. Refuses while any shard is dead —
    /// a checkpoint must capture every shard at the same cut.
    pub fn checkpoint(&mut self, dir: impl Into<PathBuf>) -> Result<u64, FabricError> {
        let dead = self.dead_shards();
        if !dead.is_empty() {
            return Err(FabricError::Degraded { dead });
        }
        let dir = dir.into();
        Checkpointer::new(&dir)
            .prepare()
            .map_err(FabricError::Checkpoint)?;
        self.checkpoint_counter += 1;
        let id = self.checkpoint_counter;
        let cut_seq = self.next_seq;
        let remote: Vec<RemoteShard> = (0..self.shards)
            .map(|shard| {
                let slot = self.slots[shard].lock();
                RemoteShard {
                    shard,
                    epoch: slot.epoch,
                    source: slot.addr.clone(),
                }
            })
            .collect();
        let (ack_tx, ack_rx) = channel::bounded(1);
        let Some(merge_tx) = self.merge_tx.as_ref() else {
            return Err(FabricError::Protocol(
                "coordinator is already shut down".to_string(),
            ));
        };
        // The begin message rides the same FIFO channel as the boards,
        // and the markers are written after every already-submitted
        // snapshot frame, so by the time the merge thread has seen all
        // worker states it has also merged every pre-cut board: the
        // manifest's tracker is exactly the tracker at the cut.
        merge_tx
            .send(CoordMsg::CheckpointBegin {
                id,
                cut_seq,
                dir,
                fabric_epoch: self.epoch_counter,
                remote,
                ack: ack_tx,
            })
            .map_err(|_| FabricError::Protocol("merge thread is gone".to_string()))?;
        let marker = encode_control(&FabricControl::Checkpoint { id })?;
        for shard in 0..self.shards {
            let Some(stream) = self.streams[shard].as_mut() else {
                continue;
            };
            if write_frame(stream, &marker).is_err() {
                // The merge thread fails the checkpoint when the
                // reader reports this worker's disconnect.
                self.mark_dead(shard);
            }
        }
        // Pump reports while waiting so a full report channel cannot
        // wedge the merge thread (and with it, the checkpoint).
        let deadline = Instant::now() + self.fabric.checkpoint_timeout;
        loop {
            match ack_rx.try_recv() {
                Ok(Ok(())) => {
                    while self.journal.front().is_some_and(|(seq, _)| *seq < cut_seq) {
                        self.journal.pop_front();
                    }
                    return Ok(id);
                }
                Ok(Err(e)) => return Err(e),
                Err(channel::TryRecvError::Empty) => {}
                Err(channel::TryRecvError::Disconnected) => {
                    return Err(FabricError::Protocol(
                        "merge thread dropped the checkpoint".to_string(),
                    ))
                }
            }
            while let Ok(report) = self.reports_rx.try_recv() {
                self.report_buffer.push_back(report);
            }
            if Instant::now() >= deadline {
                return Err(FabricError::Protocol(format!(
                    "checkpoint {id} timed out waiting for worker states"
                )));
            }
            thread::sleep(Duration::from_millis(1));
        }
    }

    /// Returns the next finalized report, if one is ready.
    pub fn try_recv_report(&mut self) -> Option<StepReport> {
        if let Some(report) = self.report_buffer.pop_front() {
            return Some(report);
        }
        self.reports_rx.try_recv().ok()
    }

    /// Waits up to `timeout` for the next finalized report.
    pub fn recv_report_timeout(&mut self, timeout: Duration) -> Option<StepReport> {
        if let Some(report) = self.report_buffer.pop_front() {
            return Some(report);
        }
        self.reports_rx.recv_timeout(timeout).ok()
    }

    /// Stops the fabric: optionally sends every live worker a
    /// `Shutdown` (halting the worker processes), drains all
    /// outstanding reports, and joins the pipeline threads. Returns
    /// the drained reports and the final stats.
    pub fn shutdown(mut self, halt_workers: bool) -> (Vec<StepReport>, FabricStats) {
        // Flag the teardown so the EOFs we are about to cause do not
        // read as abnormal disconnects. Slots stay live: boards still
        // in flight must merge, not be fenced.
        self.closing
            .store(true, std::sync::atomic::Ordering::SeqCst);
        if halt_workers {
            if let Ok(halt) = encode_control(&FabricControl::Shutdown) {
                for stream in self.streams.iter_mut().flatten() {
                    let _ = write_frame(stream, &halt);
                }
            }
        }
        for stream in self.streams.iter().flatten() {
            let _ = stream.shutdown(Shutdown::Write);
        }
        for zombie in &self.zombies {
            let _ = zombie.shutdown(Shutdown::Both);
        }
        // Readers exit once the workers close their ends; pump reports
        // the whole time so neither the merge thread nor a reader can
        // deadlock on a full channel while we wait.
        let mut reports: Vec<StepReport> = std::mem::take(&mut self.report_buffer).into();
        loop {
            while let Ok(report) = self.reports_rx.try_recv() {
                reports.push(report);
            }
            if self.readers.iter().all(|reader| reader.is_finished()) {
                break;
            }
            thread::sleep(Duration::from_millis(1));
        }
        for reader in self.readers.drain(..) {
            let _ = reader.join();
        }
        // Closing the channel lets the merge thread finish; it drops
        // the report sender on exit, ending the drain below.
        self.merge_tx = None;
        while let Ok(report) = self.reports_rx.recv() {
            reports.push(report);
        }
        if let Some(merge) = self.merge.take() {
            let _ = merge.join();
        }
        let stats = *self.stats.lock();
        (reports, stats)
    }
}

/// Reads one worker connection, forwarding everything into the merge
/// channel; reports a disconnect (with this reader's epoch, so the
/// merge thread can tell current from superseded connections) on EOF,
/// error, or garbage.
fn reader_loop(shard: usize, epoch: u64, mut stream: TcpStream, tx: Sender<CoordMsg>) {
    loop {
        let msg = match read_frame(&mut stream) {
            Ok(Some(payload)) => match decode_response(&payload) {
                Ok(FabricResponse::Board(frame)) => CoordMsg::Board(frame),
                Ok(FabricResponse::State {
                    shard: s,
                    epoch: e,
                    id,
                    state,
                }) => CoordMsg::State {
                    shard: s,
                    epoch: e,
                    id,
                    state: Box::new(state),
                },
                // A duplicate ack is harmless protocol sloppiness.
                Ok(FabricResponse::HelloAck { .. }) => continue,
                Err(_) => CoordMsg::Disconnected { shard, epoch },
            },
            Ok(None) | Err(_) => CoordMsg::Disconnected { shard, epoch },
        };
        let last = matches!(msg, CoordMsg::Disconnected { .. });
        if tx.send(msg).is_err() || last {
            return;
        }
    }
}

/// The merge thread: fences stale boards, dedups replay overlap,
/// merges partial boards, finalizes steps in sequence order, evaluates
/// alarms on the merged board, and executes checkpoints.
#[allow(clippy::too_many_arguments)]
fn merge_loop(
    shards: usize,
    config: EngineConfig,
    mut tracker: AlarmTracker,
    start_seq: u64,
    rx: Receiver<CoordMsg>,
    reports_tx: Sender<StepReport>,
    slots: Slots,
    state_cache: Arc<OrderedMutex<Vec<StateEntry>>>,
    stats: Arc<OrderedMutex<FabricStats>>,
    closing: Arc<std::sync::atomic::AtomicBool>,
    obs: PipelineObs,
) {
    let mut pending: BTreeMap<u64, PendingStep> = BTreeMap::new();
    let mut next_emit = start_seq;
    let mut checkpoint: Option<CheckpointOp> = None;

    while let Ok(msg) = rx.recv() {
        match msg {
            CoordMsg::Board(frame) => {
                if frame.shard >= shards {
                    stats.lock().bad_boards += 1;
                } else {
                    let (slot_epoch, slot_live) = {
                        let slot = slots[frame.shard].lock();
                        (slot.epoch, slot.live)
                    };
                    if !slot_live || frame.epoch != slot_epoch {
                        stats.lock().stale_boards += 1;
                        obs.recorder.record(
                            "fenced-board",
                            format_args!(
                                "board for seq {} from shard {} epoch {} fenced (current {})",
                                frame.seq, frame.shard, frame.epoch, slot_epoch
                            ),
                        );
                    } else if frame.seq < next_emit {
                        stats.lock().replayed_boards += 1;
                    } else {
                        let traced = obs.exemplar.is_enabled();
                        let merge_start = if traced { obs.exemplar.now_ns() } else { 0 };
                        let _merge = obs.tracer.span(Stage::Merge);
                        let entry = pending.entry(frame.seq).or_insert_with(|| PendingStep {
                            board: None,
                            replied: vec![false; shards],
                        });
                        if entry.replied[frame.shard] {
                            stats.lock().duplicate_boards += 1;
                        } else {
                            // The worker's scoring time rides the frame,
                            // so remote Score work lands in the
                            // coordinator's distribution. Only accepted
                            // boards count — fenced and duplicate boards
                            // scored nothing new.
                            obs.tracer.record_ns(Stage::Score, frame.score_ns);
                            if traced {
                                // Worker-side slices (ingest/decode/
                                // score) ride the accepted board.
                                obs.exemplar.record_slices(frame.seq, &frame.spans);
                            }
                            match entry.board.as_mut() {
                                None => {
                                    entry.board = Some(frame.board);
                                    entry.replied[frame.shard] = true;
                                }
                                Some(merged) => {
                                    if merged.try_merge(frame.board).is_ok() {
                                        entry.replied[frame.shard] = true;
                                    } else {
                                        stats.lock().bad_boards += 1;
                                    }
                                }
                            }
                            if traced {
                                obs.exemplar.record(
                                    frame.seq,
                                    SpanSlice::new(
                                        Stage::Merge,
                                        merge_start,
                                        obs.exemplar.now_ns().saturating_sub(merge_start),
                                        "merge",
                                    ),
                                );
                            }
                        }
                    }
                }
            }
            CoordMsg::State {
                shard,
                epoch,
                id,
                state,
            } => {
                if let Some(op) = checkpoint.as_mut() {
                    // Epoch 0 is never allocated, so a bad shard index
                    // can never match a live assignment.
                    let current_epoch = slots.get(shard).map(|slot| slot.lock().epoch).unwrap_or(0);
                    if shard < shards
                        && op.id == id
                        && epoch == current_epoch
                        && op.files[shard].is_none()
                    {
                        match op.checkpointer.write_shard(shard, &state) {
                            Ok(name) => {
                                op.files[shard] = Some(name);
                                op.received += 1;
                                op.candidates += state.candidates.len();
                                state_cache.lock()[shard] = StateEntry {
                                    cut: op.cut_seq,
                                    state: *state,
                                };
                            }
                            Err(e) => {
                                if op.error.is_none() {
                                    op.error = Some(FabricError::Checkpoint(e));
                                }
                                op.received += 1;
                            }
                        }
                    }
                }
            }
            CoordMsg::Disconnected { shard, epoch } => {
                let mut current = false;
                if let Some(slot) = slots.get(shard) {
                    let mut slot = slot.lock();
                    if slot.live && slot.epoch == epoch {
                        slot.live = false;
                        current = true;
                    }
                }
                if current {
                    if !closing.load(std::sync::atomic::Ordering::SeqCst) {
                        stats.lock().disconnects += 1;
                        obs.recorder.record(
                            "disconnect",
                            format_args!("shard {shard} reader lost (epoch {epoch})"),
                        );
                        gridwatch_obs::warn!(
                            "fabric",
                            "gridwatch coordinator: shard {shard} worker disconnected (epoch {epoch})"
                        );
                    }
                    // A checkpoint still waiting on this worker's state
                    // can never complete.
                    if let Some(op) = checkpoint.take() {
                        if op.files.get(shard).is_some_and(|f| f.is_none()) {
                            let _ = op
                                .ack
                                .send(Err(FabricError::Degraded { dead: vec![shard] }));
                        } else {
                            checkpoint = Some(op);
                        }
                    }
                }
            }
            CoordMsg::CheckpointBegin {
                id,
                cut_seq,
                dir,
                fabric_epoch,
                remote,
                ack,
            } => {
                if let Some(stale) = checkpoint.take() {
                    let _ = stale.ack.send(Err(FabricError::Protocol(
                        "superseded by a newer checkpoint".to_string(),
                    )));
                }
                checkpoint = Some(CheckpointOp {
                    id,
                    cut_seq,
                    checkpointer: Checkpointer::new(dir),
                    fabric_epoch,
                    remote,
                    ack,
                    files: (0..shards).map(|_| None).collect(),
                    received: 0,
                    error: None,
                    candidates: 0,
                });
            }
        }

        // Finalize every fully-replied step at the head of the queue.
        loop {
            let complete = pending
                .first_key_value()
                .is_some_and(|(_, entry)| entry.replied.iter().all(|&replied| replied));
            if !complete {
                break;
            }
            if let Some((seq, entry)) = pending.pop_first() {
                next_emit = seq + 1;
                if let Some(board) = entry.board {
                    let traced = obs.exemplar.is_enabled();
                    let report_start = if traced { obs.exemplar.now_ns() } else { 0 };
                    let _report_span = obs.tracer.span(Stage::Report);
                    let alarms = tracker.evaluate(&board, &config.alarm);
                    let alarmed = !alarms.is_empty();
                    {
                        let mut stats = stats.lock();
                        stats.reports += 1;
                        stats.alarms += alarms.len() as u64;
                    }
                    if alarmed {
                        obs.recorder.record(
                            "alarm",
                            format_args!(
                                "{} alarm event(s) at t={} (seq {seq})",
                                alarms.len(),
                                board.at()
                            ),
                        );
                    }
                    let report = StepReport {
                        scores: board,
                        alarms,
                    };
                    if reports_tx.send(report).is_err() {
                        // Receiver gone (shutdown under way); keep
                        // merging so checkpoints still complete.
                    }
                    if traced {
                        obs.exemplar.record(
                            seq,
                            SpanSlice::new(
                                Stage::Report,
                                report_start,
                                obs.exemplar.now_ns().saturating_sub(report_start),
                                "merge",
                            ),
                        );
                        obs.exemplar.finalize(seq, alarmed);
                    }
                }
            }
        }

        // Complete an in-flight checkpoint once every shard reported.
        let done = checkpoint.as_ref().is_some_and(|op| op.received == shards);
        if done {
            if let Some(op) = checkpoint.take() {
                debug_assert!(
                    pending.is_empty() || next_emit >= op.cut_seq,
                    "states arrived before all pre-cut boards"
                );
                let (id, cut_seq) = (op.id, op.cut_seq);
                if finish_checkpoint(op, shards, &config, &tracker).is_ok() {
                    stats.lock().checkpoints += 1;
                    obs.recorder.record(
                        "checkpoint",
                        format_args!("fabric checkpoint {id} completed at cut {cut_seq}"),
                    );
                } else {
                    obs.recorder.record(
                        "checkpoint-error",
                        format_args!("fabric checkpoint {id} failed at cut {cut_seq}"),
                    );
                }
            }
        }
    }
}

/// Writes the manifest for a checkpoint whose shard states are all on
/// disk, and acks the front.
fn finish_checkpoint(
    op: CheckpointOp,
    shards: usize,
    config: &EngineConfig,
    tracker: &AlarmTracker,
) -> Result<(), ()> {
    if let Some(error) = op.error {
        let _ = op.ack.send(Err(error));
        return Err(());
    }
    let mut shard_files = Vec::with_capacity(shards);
    for file in op.files {
        match file {
            Some(name) => shard_files.push(name),
            None => {
                let _ = op.ack.send(Err(FabricError::Protocol(
                    "checkpoint completed with a missing shard file".to_string(),
                )));
                return Err(());
            }
        }
    }
    let manifest = CheckpointManifest {
        version: 1,
        shards,
        cut_seq: op.cut_seq,
        config: *config,
        tracker: tracker.clone(),
        shard_files,
        sources: BTreeMap::new(),
        fabric_epoch: op.fabric_epoch,
        remote: op.remote,
        candidate_pairs: op.candidates,
        // Lifecycle counters live on the remote workers; candidate
        // lists still persist through the shard states above.
        sketch_promotions: 0,
        sketch_demotions: 0,
    };
    match op.checkpointer.write_manifest(&manifest) {
        Ok(()) => {
            let _ = op.ack.send(Ok(()));
            Ok(())
        }
        Err(e) => {
            let _ = op.ack.send(Err(FabricError::Checkpoint(e)));
            Err(())
        }
    }
}
