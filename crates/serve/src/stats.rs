//! Serving observability: per-shard and engine-wide counters.

use serde::{Deserialize, Serialize};

/// Step-latency summary for one shard, in nanoseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Fastest observed `step_scores` call.
    pub min_ns: u64,
    /// Mean over all observed calls.
    pub mean_ns: u64,
    /// Slowest observed call.
    pub max_ns: u64,
}

/// Counters for one shard.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ShardStats {
    /// Shard index.
    pub shard: usize,
    /// Pair models owned by this shard.
    pub pairs: usize,
    /// Snapshots scored by this shard.
    pub processed: u64,
    /// Snapshots evicted from this shard's queue under `DropOldest`.
    pub evicted: u64,
    /// Messages currently waiting in this shard's queue.
    pub queue_depth: usize,
    /// Step-latency summary (zeroes until the first snapshot).
    pub latency: LatencySummary,
}

/// Engine-wide serving statistics, dumpable as JSON.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ServeStats {
    /// Per-shard counters, in shard order.
    pub shards: Vec<ShardStats>,
    /// Snapshots accepted at the ingestion front.
    pub submitted: u64,
    /// Snapshots refused under `Reject`.
    pub rejected: u64,
    /// Merged step reports emitted.
    pub reports: u64,
    /// Instants skipped because every shard evicted them.
    pub empty_steps: u64,
    /// Alarm events fired by the merged-board tracker.
    pub alarms: u64,
    /// Checkpoints completed.
    pub checkpoints: u64,
}

impl ServeStats {
    /// The stats as a JSON document.
    ///
    /// # Panics
    ///
    /// Panics if serialization fails (plain-old-data; it cannot).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("stats serialize")
    }

    /// Total snapshots evicted across all shards.
    pub fn total_evicted(&self) -> u64 {
        self.shards.iter().map(|s| s.evicted).sum()
    }
}

/// Mutable accumulator shared between the ingestion front and the
/// aggregator thread.
#[derive(Debug, Default)]
pub(crate) struct StatsAccumulator {
    pub(crate) per_shard: Vec<ShardAccumulator>,
    pub(crate) submitted: u64,
    pub(crate) rejected: u64,
    pub(crate) reports: u64,
    pub(crate) empty_steps: u64,
    pub(crate) alarms: u64,
    pub(crate) checkpoints: u64,
}

#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct ShardAccumulator {
    pub(crate) pairs: usize,
    pub(crate) processed: u64,
    pub(crate) evicted: u64,
    pub(crate) lat_min_ns: u64,
    pub(crate) lat_sum_ns: u64,
    pub(crate) lat_max_ns: u64,
}

impl ShardAccumulator {
    pub(crate) fn observe_latency(&mut self, elapsed_ns: u64) {
        self.processed += 1;
        self.lat_sum_ns += elapsed_ns;
        self.lat_max_ns = self.lat_max_ns.max(elapsed_ns);
        self.lat_min_ns = if self.processed == 1 {
            elapsed_ns
        } else {
            self.lat_min_ns.min(elapsed_ns)
        };
    }
}

impl StatsAccumulator {
    pub(crate) fn new(shards: usize) -> Self {
        StatsAccumulator {
            per_shard: vec![ShardAccumulator::default(); shards],
            ..StatsAccumulator::default()
        }
    }

    /// Snapshots the counters; `queue_depths` supplies the live per-shard
    /// queue lengths.
    pub(crate) fn snapshot(&self, queue_depths: &[usize]) -> ServeStats {
        ServeStats {
            shards: self
                .per_shard
                .iter()
                .enumerate()
                .map(|(k, acc)| ShardStats {
                    shard: k,
                    pairs: acc.pairs,
                    processed: acc.processed,
                    evicted: acc.evicted,
                    queue_depth: queue_depths.get(k).copied().unwrap_or(0),
                    latency: LatencySummary {
                        min_ns: acc.lat_min_ns,
                        mean_ns: acc.lat_sum_ns.checked_div(acc.processed).unwrap_or(0),
                        max_ns: acc.lat_max_ns,
                    },
                })
                .collect(),
            submitted: self.submitted,
            rejected: self.rejected,
            reports: self.reports,
            empty_steps: self.empty_steps,
            alarms: self.alarms,
            checkpoints: self.checkpoints,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_summary_tracks_min_mean_max() {
        let mut acc = ShardAccumulator::default();
        for ns in [300, 100, 200] {
            acc.observe_latency(ns);
        }
        let stats = StatsAccumulator {
            per_shard: vec![acc],
            ..StatsAccumulator::default()
        }
        .snapshot(&[5]);
        let lat = stats.shards[0].latency;
        assert_eq!(lat.min_ns, 100);
        assert_eq!(lat.mean_ns, 200);
        assert_eq!(lat.max_ns, 300);
        assert_eq!(stats.shards[0].queue_depth, 5);
    }

    #[test]
    fn stats_json_roundtrips() {
        let mut acc = StatsAccumulator::new(2);
        acc.submitted = 10;
        acc.per_shard[1].evicted = 3;
        let stats = acc.snapshot(&[0, 1]);
        let json = stats.to_json();
        let back: ServeStats = serde_json::from_str(&json).unwrap();
        assert_eq!(back, stats);
        assert_eq!(back.total_evicted(), 3);
    }
}
