//! Serving observability: per-shard and engine-wide counters, with
//! log-bucketed latency/queue distributions and Prometheus rendering.
//!
//! Every field of every struct here carries `#[serde(default)]`: stats
//! dumps are persisted next to checkpoints and re-read on `--resume`
//! tooling paths, so yesterday's dump — including pre-histogram dumps
//! whose `latency` key held a `{min_ns, mean_ns, max_ns}` summary —
//! must keep parsing after a field is added. The audit serde-default
//! lint (`CHECKPOINTED_STRUCTS`) enforces this for new fields.

use gridwatch_obs::{Exposition, LogHistogram, Tracer};
use serde::{Deserialize, Serialize};

/// Counters and distributions for one shard.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ShardStats {
    /// Shard index.
    #[serde(default)]
    pub shard: usize,
    /// Pair models owned by this shard.
    #[serde(default)]
    pub pairs: usize,
    /// Snapshots scored by this shard.
    #[serde(default)]
    pub processed: u64,
    /// Snapshots evicted from this shard's queue under `DropOldest`.
    #[serde(default)]
    pub evicted: u64,
    /// Messages currently waiting in this shard's queue.
    #[serde(default)]
    pub queue_depth: usize,
    /// Step-latency distribution in nanoseconds (empty until the first
    /// snapshot). Replaces the old min/mean/max summary; old dumps
    /// parse to an empty histogram.
    #[serde(default)]
    pub latency: LogHistogram,
    /// Queue-depth distribution, sampled at every submit.
    #[serde(default)]
    pub queue_depths: LogHistogram,
    /// Nanoseconds the ingestion front spent blocked on this shard's
    /// full queue (one sample per blocking submit; instant sends are
    /// not sampled, so `count` is the number of times backpressure
    /// actually engaged).
    #[serde(default)]
    pub backpressure_wait_ns: LogHistogram,
    /// Pairs under sketch tracking on this shard (candidates +
    /// materialized models); equals `pairs` when the sketch layer is
    /// off. Absent in pre-sketch dumps.
    #[serde(default)]
    pub tracked_pairs: usize,
    /// Pair models currently materialized on this shard (moves with
    /// promotions/demotions, unlike the startup `pairs`).
    #[serde(default)]
    pub materialized_models: usize,
    /// Approximate heap bytes held by this shard's measurement
    /// sketches (0 with the sketch layer off).
    #[serde(default)]
    pub sketch_bytes: usize,
}

/// Wire-path counters for one network connection.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConnStats {
    /// Connection id, assigned in accept order.
    #[serde(default)]
    pub conn: u64,
    /// The peer's socket address.
    #[serde(default)]
    pub peer: String,
    /// The detected encoding (`json`, `csv`, or `unknown` before the
    /// first byte arrives).
    #[serde(default)]
    pub protocol: String,
    /// Frames decoded from this connection.
    #[serde(default)]
    pub frames: u64,
    /// Frames lost to framing/parse failures (each also closes the
    /// connection).
    #[serde(default)]
    pub decode_errors: u64,
    /// Reads that hit the idle/slow-client deadline (closes the
    /// connection).
    #[serde(default)]
    pub timeouts: u64,
    /// Frames refused at the socket boundary under `Reject`.
    #[serde(default)]
    pub rejected: u64,
    /// Older frames evicted at the socket boundary under `DropOldest`
    /// to admit this connection's frames.
    #[serde(default)]
    pub dropped: u64,
    /// Whether the connection is still open.
    #[serde(default)]
    pub open: bool,
}

/// Wire-path counters for the whole listener.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetStats {
    /// Connections accepted.
    #[serde(default)]
    pub accepted: u64,
    /// Connections fully closed.
    #[serde(default)]
    pub closed: u64,
    /// Frames decoded across all connections.
    #[serde(default)]
    pub frames: u64,
    /// Decode failures across all connections.
    #[serde(default)]
    pub decode_errors: u64,
    /// Read-deadline kills across all connections.
    #[serde(default)]
    pub timeouts: u64,
    /// Connections closed because the read deadline could not be armed
    /// (`set_read_timeout` failed — the socket would otherwise run
    /// without slow-client protection). Absent in pre-fix dumps.
    #[serde(default)]
    pub deadline_failures: u64,
    /// Frames refused at the socket boundary under `Reject`.
    #[serde(default)]
    pub rejected: u64,
    /// Frames evicted at the socket boundary under `DropOldest`.
    #[serde(default)]
    pub dropped: u64,
    /// Frames absorbed as duplicates (reconnect replay, resumed
    /// checkpoints).
    #[serde(default)]
    pub duplicates: u64,
    /// Frames that arrived ahead of a sequence gap and were buffered.
    #[serde(default)]
    pub out_of_order: u64,
    /// Sequence numbers abandoned when a reorder window overflowed.
    #[serde(default)]
    pub gap_skips: u64,
    /// Periodic checkpoints that failed (the stream keeps flowing).
    #[serde(default)]
    pub checkpoint_failures: u64,
    /// Per-connection counters, in accept order.
    #[serde(default)]
    pub connections: Vec<ConnStats>,
}

/// Engine-wide serving statistics, dumpable as JSON.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ServeStats {
    /// Per-shard counters, in shard order.
    #[serde(default)]
    pub shards: Vec<ShardStats>,
    /// Snapshots accepted at the ingestion front.
    #[serde(default)]
    pub submitted: u64,
    /// Snapshots refused under `Reject`.
    #[serde(default)]
    pub rejected: u64,
    /// Merged step reports emitted.
    #[serde(default)]
    pub reports: u64,
    /// Instants skipped because every shard evicted them.
    #[serde(default)]
    pub empty_steps: u64,
    /// Alarm events fired by the merged-board tracker.
    #[serde(default)]
    pub alarms: u64,
    /// Checkpoints completed.
    #[serde(default)]
    pub checkpoints: u64,
    /// Snapshots shed by overload sampling before reaching any queue
    /// (see [`crate::SamplingConfig`]).
    #[serde(default)]
    pub sampled_out: u64,
    /// Fraction of offered snapshots actually admitted past the
    /// sampler: `submitted / (submitted + sampled_out)`, or `1.0`
    /// before anything was offered. Pre-sampling dumps parse to `0.0`
    /// here (field default), which readers should treat as "unknown".
    #[serde(default)]
    pub coverage_fraction: f64,
    /// Pair-model rebuilds fired by the shards' drift layers.
    #[serde(default)]
    pub rebuilds: u64,
    /// Sketch-layer promotions that materialized a model.
    #[serde(default)]
    pub promotions: u64,
    /// Sketch-layer demotions that retired a model.
    #[serde(default)]
    pub demotions: u64,
    /// Flight-recorder events overwritten before any drain could ship
    /// them (ring overflow). Absent in pre-trace dumps.
    #[serde(default)]
    pub flight_dropped: u64,
    /// Wire-path counters (all zero when serving a local replay).
    #[serde(default)]
    pub net: NetStats,
}

impl ServeStats {
    /// The stats as a JSON document. Plain-old-data cannot fail to
    /// serialize, but a stats report is never worth a panic either way.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self)
            .unwrap_or_else(|e| format!("{{\"error\":\"stats serialize: {e}\"}}"))
    }

    /// Total snapshots evicted across all shards.
    pub fn total_evicted(&self) -> u64 {
        self.shards.iter().map(|s| s.evicted).sum()
    }

    /// Renders the stats — plus the tracer's per-stage span
    /// histograms, when it has recorded anything — as Prometheus text
    /// exposition v0. The format is pinned by a golden test; renaming
    /// a metric is a deliberate act that must update it (and any
    /// dashboards scraping the endpoint).
    pub fn to_prometheus(&self, tracer: &Tracer) -> String {
        let mut expo = Exposition::new();
        expo.header(
            "gridwatch_submitted_total",
            "counter",
            "Snapshots accepted at the ingestion front.",
        );
        expo.sample("gridwatch_submitted_total", &[], self.submitted);
        expo.header(
            "gridwatch_rejected_total",
            "counter",
            "Snapshots refused under the Reject backpressure policy.",
        );
        expo.sample("gridwatch_rejected_total", &[], self.rejected);
        expo.header(
            "gridwatch_reports_total",
            "counter",
            "Merged step reports emitted.",
        );
        expo.sample("gridwatch_reports_total", &[], self.reports);
        expo.header(
            "gridwatch_empty_steps_total",
            "counter",
            "Instants skipped because every shard evicted them.",
        );
        expo.sample("gridwatch_empty_steps_total", &[], self.empty_steps);
        expo.header(
            "gridwatch_alarms_total",
            "counter",
            "Alarm events fired by the merged-board tracker.",
        );
        expo.sample("gridwatch_alarms_total", &[], self.alarms);
        expo.header(
            "gridwatch_checkpoints_total",
            "counter",
            "Checkpoints completed.",
        );
        expo.sample("gridwatch_checkpoints_total", &[], self.checkpoints);
        expo.header(
            "gridwatch_sampled_out_total",
            "counter",
            "Snapshots shed by overload sampling before reaching any queue.",
        );
        expo.sample("gridwatch_sampled_out_total", &[], self.sampled_out);
        expo.header(
            "gridwatch_rebuilds_total",
            "counter",
            "Pair-model rebuilds fired by the shards' drift layers.",
        );
        expo.sample("gridwatch_rebuilds_total", &[], self.rebuilds);
        expo.header(
            "gridwatch_promotions_total",
            "counter",
            "Sketch-layer promotions that materialized a pair model.",
        );
        expo.sample("gridwatch_promotions_total", &[], self.promotions);
        expo.header(
            "gridwatch_demotions_total",
            "counter",
            "Sketch-layer demotions that retired a pair model.",
        );
        expo.sample("gridwatch_demotions_total", &[], self.demotions);
        expo.header(
            "gridwatch_flight_dropped_total",
            "counter",
            "Flight-recorder events overwritten before they could be drained.",
        );
        expo.sample("gridwatch_flight_dropped_total", &[], self.flight_dropped);

        expo.header(
            "gridwatch_shard_pairs",
            "gauge",
            "Pair models owned by each shard.",
        );
        for shard in &self.shards {
            let label = shard.shard.to_string();
            expo.sample(
                "gridwatch_shard_pairs",
                &[("shard", &label)],
                shard.pairs as u64,
            );
        }
        expo.header(
            "gridwatch_shard_tracked_pairs",
            "gauge",
            "Pairs under sketch tracking on each shard (candidates + models).",
        );
        for shard in &self.shards {
            let label = shard.shard.to_string();
            expo.sample(
                "gridwatch_shard_tracked_pairs",
                &[("shard", &label)],
                shard.tracked_pairs as u64,
            );
        }
        expo.header(
            "gridwatch_shard_materialized_models",
            "gauge",
            "Pair models currently materialized on each shard.",
        );
        for shard in &self.shards {
            let label = shard.shard.to_string();
            expo.sample(
                "gridwatch_shard_materialized_models",
                &[("shard", &label)],
                shard.materialized_models as u64,
            );
        }
        expo.header(
            "gridwatch_shard_sketch_bytes",
            "gauge",
            "Approximate heap bytes held by each shard's measurement sketches.",
        );
        for shard in &self.shards {
            let label = shard.shard.to_string();
            expo.sample(
                "gridwatch_shard_sketch_bytes",
                &[("shard", &label)],
                shard.sketch_bytes as u64,
            );
        }
        expo.header(
            "gridwatch_shard_processed_total",
            "counter",
            "Snapshots scored by each shard.",
        );
        for shard in &self.shards {
            let label = shard.shard.to_string();
            expo.sample(
                "gridwatch_shard_processed_total",
                &[("shard", &label)],
                shard.processed,
            );
        }
        expo.header(
            "gridwatch_shard_evicted_total",
            "counter",
            "Snapshots evicted from each shard's queue under DropOldest.",
        );
        for shard in &self.shards {
            let label = shard.shard.to_string();
            expo.sample(
                "gridwatch_shard_evicted_total",
                &[("shard", &label)],
                shard.evicted,
            );
        }
        expo.header(
            "gridwatch_shard_queue_depth",
            "gauge",
            "Messages currently waiting in each shard's queue.",
        );
        for shard in &self.shards {
            let label = shard.shard.to_string();
            expo.sample(
                "gridwatch_shard_queue_depth",
                &[("shard", &label)],
                shard.queue_depth as u64,
            );
        }
        expo.header(
            "gridwatch_shard_step_latency_ns",
            "histogram",
            "Per-shard step_scores latency in nanoseconds.",
        );
        for shard in &self.shards {
            let label = shard.shard.to_string();
            expo.histogram(
                "gridwatch_shard_step_latency_ns",
                &[("shard", &label)],
                &shard.latency,
            );
        }
        expo.header(
            "gridwatch_shard_queue_depth_samples",
            "histogram",
            "Queue depth observed at each submit, per shard.",
        );
        for shard in &self.shards {
            let label = shard.shard.to_string();
            expo.histogram(
                "gridwatch_shard_queue_depth_samples",
                &[("shard", &label)],
                &shard.queue_depths,
            );
        }
        expo.header(
            "gridwatch_shard_backpressure_wait_ns",
            "histogram",
            "Nanoseconds the ingestion front blocked on each shard's full queue.",
        );
        for shard in &self.shards {
            let label = shard.shard.to_string();
            expo.histogram(
                "gridwatch_shard_backpressure_wait_ns",
                &[("shard", &label)],
                &shard.backpressure_wait_ns,
            );
        }

        expo.header(
            "gridwatch_net_frames_total",
            "counter",
            "Frames decoded across all connections.",
        );
        expo.sample("gridwatch_net_frames_total", &[], self.net.frames);
        expo.header(
            "gridwatch_net_decode_errors_total",
            "counter",
            "Decode failures across all connections.",
        );
        expo.sample(
            "gridwatch_net_decode_errors_total",
            &[],
            self.net.decode_errors,
        );
        expo.header(
            "gridwatch_net_timeouts_total",
            "counter",
            "Read-deadline kills across all connections.",
        );
        expo.sample("gridwatch_net_timeouts_total", &[], self.net.timeouts);
        expo.header(
            "gridwatch_net_connections_accepted_total",
            "counter",
            "Connections accepted.",
        );
        expo.sample(
            "gridwatch_net_connections_accepted_total",
            &[],
            self.net.accepted,
        );
        expo.header(
            "gridwatch_net_connections_open",
            "gauge",
            "Connections currently open.",
        );
        expo.sample(
            "gridwatch_net_connections_open",
            &[],
            self.net.accepted.saturating_sub(self.net.closed),
        );
        expo.header(
            "gridwatch_net_duplicates_total",
            "counter",
            "Frames absorbed as duplicates.",
        );
        expo.sample("gridwatch_net_duplicates_total", &[], self.net.duplicates);
        expo.header(
            "gridwatch_net_gap_skips_total",
            "counter",
            "Sequence numbers abandoned to reorder-window overflow.",
        );
        expo.sample("gridwatch_net_gap_skips_total", &[], self.net.gap_skips);

        render_stage_spans(&mut expo, tracer);
        expo.finish()
    }
}

/// Appends the tracer's per-stage span histograms (skipped entirely
/// when no stage has recorded — a disabled tracer adds nothing to the
/// exposition).
pub(crate) fn render_stage_spans(expo: &mut Exposition, tracer: &Tracer) {
    let stages = tracer.snapshot();
    if stages.iter().all(|(_, hist)| hist.count == 0) {
        return;
    }
    expo.header(
        "gridwatch_stage_ns",
        "histogram",
        "Span timing of each pipeline stage in nanoseconds.",
    );
    for (stage, hist) in &stages {
        if hist.count == 0 {
            continue;
        }
        expo.histogram("gridwatch_stage_ns", &[("stage", stage.name())], hist);
    }
}

/// Builds one cumulative burn-rate sample from a stats snapshot plus
/// the tracer's per-stage histograms. Fed to
/// [`gridwatch_obs::BurnGauges::observe`] at scrape cadence; the gauge
/// layer differences consecutive samples per window.
pub fn burn_sample_from(stats: &ServeStats, tracer: &Tracer) -> gridwatch_obs::BurnSample {
    gridwatch_obs::BurnSample {
        decode_errors: stats.net.decode_errors,
        sequence_errors: stats.net.gap_skips,
        submitted: stats.submitted,
        sampled_out: stats.sampled_out,
        stages: tracer.snapshot().into_iter().map(|(_, h)| h).collect(),
    }
}

/// Mutable accumulator shared between the ingestion front and the
/// aggregator thread.
#[derive(Debug, Default)]
pub(crate) struct StatsAccumulator {
    pub(crate) per_shard: Vec<ShardAccumulator>,
    pub(crate) submitted: u64,
    pub(crate) rejected: u64,
    pub(crate) reports: u64,
    pub(crate) empty_steps: u64,
    pub(crate) alarms: u64,
    pub(crate) checkpoints: u64,
    pub(crate) sampled_out: u64,
    pub(crate) rebuilds: u64,
    pub(crate) promotions: u64,
    pub(crate) demotions: u64,
}

#[derive(Debug, Default, Clone)]
pub(crate) struct ShardAccumulator {
    pub(crate) pairs: usize,
    pub(crate) processed: u64,
    pub(crate) evicted: u64,
    pub(crate) latency: LogHistogram,
    pub(crate) queue_depths: LogHistogram,
    pub(crate) backpressure_wait_ns: LogHistogram,
    pub(crate) tracked_pairs: usize,
    pub(crate) materialized: usize,
    pub(crate) sketch_bytes: usize,
}

impl ShardAccumulator {
    pub(crate) fn observe_latency(&mut self, elapsed_ns: u64) {
        self.processed += 1;
        self.latency.record(elapsed_ns);
    }

    pub(crate) fn observe_queue_depth(&mut self, depth: usize) {
        self.queue_depths.record(depth as u64);
    }

    pub(crate) fn observe_backpressure_wait(&mut self, wait_ns: u64) {
        self.backpressure_wait_ns.record(wait_ns);
    }
}

impl StatsAccumulator {
    pub(crate) fn new(shards: usize) -> Self {
        StatsAccumulator {
            per_shard: vec![ShardAccumulator::default(); shards],
            ..StatsAccumulator::default()
        }
    }

    /// Snapshots the counters; `queue_depths` supplies the live per-shard
    /// queue lengths.
    pub(crate) fn snapshot(&self, queue_depths: &[usize]) -> ServeStats {
        ServeStats {
            shards: self
                .per_shard
                .iter()
                .enumerate()
                .map(|(k, acc)| ShardStats {
                    shard: k,
                    pairs: acc.pairs,
                    processed: acc.processed,
                    evicted: acc.evicted,
                    queue_depth: queue_depths.get(k).copied().unwrap_or(0),
                    latency: acc.latency.clone(),
                    queue_depths: acc.queue_depths.clone(),
                    backpressure_wait_ns: acc.backpressure_wait_ns.clone(),
                    tracked_pairs: acc.tracked_pairs,
                    materialized_models: acc.materialized,
                    sketch_bytes: acc.sketch_bytes,
                })
                .collect(),
            submitted: self.submitted,
            rejected: self.rejected,
            reports: self.reports,
            empty_steps: self.empty_steps,
            alarms: self.alarms,
            checkpoints: self.checkpoints,
            sampled_out: self.sampled_out,
            coverage_fraction: {
                let offered = self.submitted + self.sampled_out;
                if offered == 0 {
                    1.0
                } else {
                    self.submitted as f64 / offered as f64
                }
            },
            rebuilds: self.rebuilds,
            promotions: self.promotions,
            demotions: self.demotions,
            flight_dropped: 0,
            net: NetStats::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridwatch_obs::Stage;

    #[test]
    fn latency_histogram_tracks_distribution() {
        let mut acc = ShardAccumulator::default();
        for ns in [300, 100, 200] {
            acc.observe_latency(ns);
        }
        let stats = StatsAccumulator {
            per_shard: vec![acc],
            ..StatsAccumulator::default()
        }
        .snapshot(&[5]);
        let lat = &stats.shards[0].latency;
        assert_eq!(lat.min, 100);
        assert_eq!(lat.mean(), 200);
        assert_eq!(lat.max, 300);
        assert_eq!(lat.count, stats.shards[0].processed);
        assert!(lat.p50() >= 100 && lat.p50() <= 300);
        assert_eq!(stats.shards[0].queue_depth, 5);
    }

    #[test]
    fn queue_and_backpressure_distributions_accumulate() {
        let mut acc = ShardAccumulator::default();
        acc.observe_queue_depth(0);
        acc.observe_queue_depth(7);
        acc.observe_backpressure_wait(1500);
        let stats = StatsAccumulator {
            per_shard: vec![acc],
            ..StatsAccumulator::default()
        }
        .snapshot(&[0]);
        assert_eq!(stats.shards[0].queue_depths.count, 2);
        assert_eq!(stats.shards[0].queue_depths.max, 7);
        assert_eq!(stats.shards[0].backpressure_wait_ns.count, 1);
        assert_eq!(stats.shards[0].backpressure_wait_ns.sum, 1500);
    }

    #[test]
    fn stats_json_roundtrips() {
        let mut acc = StatsAccumulator::new(2);
        acc.submitted = 10;
        acc.per_shard[1].evicted = 3;
        acc.per_shard[0].observe_latency(420);
        let mut stats = acc.snapshot(&[0, 1]);
        stats.net.frames = 7;
        stats.net.connections.push(ConnStats {
            conn: 0,
            peer: "127.0.0.1:9".to_string(),
            protocol: "json".to_string(),
            frames: 7,
            ..ConnStats::default()
        });
        let json = stats.to_json();
        let back: ServeStats = serde_json::from_str(&json).unwrap();
        assert_eq!(back, stats);
        assert_eq!(back.total_evicted(), 3);
        assert_eq!(back.shards[0].latency.count, 1);
    }

    #[test]
    fn dumps_without_a_net_section_still_parse() {
        // Stats files written before the network ingestion layer landed
        // have no "net" key; they must keep deserializing.
        let old = concat!(
            "{\"shards\":[],\"submitted\":4,\"rejected\":0,\"reports\":0,",
            "\"empty_steps\":0,\"alarms\":0,\"checkpoints\":0}"
        );
        let back: ServeStats = serde_json::from_str(old).unwrap();
        assert_eq!(back.submitted, 4);
        assert_eq!(back.net, NetStats::default());
    }

    #[test]
    fn pre_histogram_dumps_still_parse() {
        // Before the histogram rework, "latency" held a min/mean/max
        // summary and the distribution fields did not exist. Such dumps
        // must parse: unknown keys are ignored and every new field
        // defaults, so the old latency summary reads as an empty
        // histogram.
        let old = concat!(
            "{\"shards\":[{\"shard\":0,\"pairs\":3,\"processed\":9,\"evicted\":0,",
            "\"queue_depth\":2,\"latency\":{\"min_ns\":10,\"mean_ns\":20,\"max_ns\":30}}],",
            "\"submitted\":9,\"rejected\":0,\"reports\":9,\"empty_steps\":0,",
            "\"alarms\":1,\"checkpoints\":1}"
        );
        let back: ServeStats = serde_json::from_str(old).unwrap();
        assert_eq!(back.shards[0].processed, 9);
        assert_eq!(back.shards[0].latency, LogHistogram::default());
        assert_eq!(back.shards[0].queue_depths, LogHistogram::default());
        assert_eq!(back.shards[0].backpressure_wait_ns, LogHistogram::default());
    }

    /// Pins the JSON schema of the stats dump: adding, renaming,
    /// reordering, or dropping a key is a deliberate act that must
    /// update this golden string (and any dashboards scraping the dump).
    #[test]
    fn stats_dump_schema_is_pinned() {
        let mut stats = StatsAccumulator::new(1).snapshot(&[0]);
        stats.net.connections.push(ConnStats::default());
        let json = serde_json::to_string(&stats).unwrap();
        let golden = concat!(
            "{\"shards\":[{\"shard\":0,\"pairs\":0,\"processed\":0,\"evicted\":0,",
            "\"queue_depth\":0,",
            "\"latency\":{\"count\":0,\"sum\":0,\"min\":0,\"max\":0,\"buckets\":[]},",
            "\"queue_depths\":{\"count\":0,\"sum\":0,\"min\":0,\"max\":0,\"buckets\":[]},",
            "\"backpressure_wait_ns\":{\"count\":0,\"sum\":0,\"min\":0,\"max\":0,\"buckets\":[]},",
            "\"tracked_pairs\":0,\"materialized_models\":0,\"sketch_bytes\":0}],",
            "\"submitted\":0,\"rejected\":0,\"reports\":0,\"empty_steps\":0,",
            "\"alarms\":0,\"checkpoints\":0,\"sampled_out\":0,",
            "\"coverage_fraction\":1.0,\"rebuilds\":0,",
            "\"promotions\":0,\"demotions\":0,\"flight_dropped\":0,",
            "\"net\":{\"accepted\":0,\"closed\":0,",
            "\"frames\":0,\"decode_errors\":0,\"timeouts\":0,\"deadline_failures\":0,",
            "\"rejected\":0,",
            "\"dropped\":0,\"duplicates\":0,\"out_of_order\":0,\"gap_skips\":0,",
            "\"checkpoint_failures\":0,\"connections\":[{\"conn\":0,\"peer\":\"\",",
            "\"protocol\":\"\",\"frames\":0,\"decode_errors\":0,\"timeouts\":0,",
            "\"rejected\":0,\"dropped\":0,\"open\":false}]}}"
        );
        assert_eq!(json, golden);
    }

    /// Pins the Prometheus exposition format. The full document for a
    /// one-shard engine with a deterministic little workload: every
    /// metric name, label, bucket bound, and help string is part of
    /// the scrape contract.
    #[test]
    fn prometheus_exposition_is_pinned() {
        let mut acc = StatsAccumulator::new(1);
        acc.submitted = 3;
        acc.reports = 3;
        acc.alarms = 1;
        acc.per_shard[0].pairs = 2;
        acc.per_shard[0].tracked_pairs = 2;
        acc.per_shard[0].materialized = 2;
        for ns in [3, 900, 1000] {
            acc.per_shard[0].observe_latency(ns);
        }
        acc.per_shard[0].observe_queue_depth(1);
        let stats = acc.snapshot(&[1]);
        let text = stats.to_prometheus(&Tracer::disabled());
        let golden = "\
# HELP gridwatch_submitted_total Snapshots accepted at the ingestion front.
# TYPE gridwatch_submitted_total counter
gridwatch_submitted_total 3
# HELP gridwatch_rejected_total Snapshots refused under the Reject backpressure policy.
# TYPE gridwatch_rejected_total counter
gridwatch_rejected_total 0
# HELP gridwatch_reports_total Merged step reports emitted.
# TYPE gridwatch_reports_total counter
gridwatch_reports_total 3
# HELP gridwatch_empty_steps_total Instants skipped because every shard evicted them.
# TYPE gridwatch_empty_steps_total counter
gridwatch_empty_steps_total 0
# HELP gridwatch_alarms_total Alarm events fired by the merged-board tracker.
# TYPE gridwatch_alarms_total counter
gridwatch_alarms_total 1
# HELP gridwatch_checkpoints_total Checkpoints completed.
# TYPE gridwatch_checkpoints_total counter
gridwatch_checkpoints_total 0
# HELP gridwatch_sampled_out_total Snapshots shed by overload sampling before reaching any queue.
# TYPE gridwatch_sampled_out_total counter
gridwatch_sampled_out_total 0
# HELP gridwatch_rebuilds_total Pair-model rebuilds fired by the shards' drift layers.
# TYPE gridwatch_rebuilds_total counter
gridwatch_rebuilds_total 0
# HELP gridwatch_promotions_total Sketch-layer promotions that materialized a pair model.
# TYPE gridwatch_promotions_total counter
gridwatch_promotions_total 0
# HELP gridwatch_demotions_total Sketch-layer demotions that retired a pair model.
# TYPE gridwatch_demotions_total counter
gridwatch_demotions_total 0
# HELP gridwatch_flight_dropped_total Flight-recorder events overwritten before they could be drained.
# TYPE gridwatch_flight_dropped_total counter
gridwatch_flight_dropped_total 0
# HELP gridwatch_shard_pairs Pair models owned by each shard.
# TYPE gridwatch_shard_pairs gauge
gridwatch_shard_pairs{shard=\"0\"} 2
# HELP gridwatch_shard_tracked_pairs Pairs under sketch tracking on each shard (candidates + models).
# TYPE gridwatch_shard_tracked_pairs gauge
gridwatch_shard_tracked_pairs{shard=\"0\"} 2
# HELP gridwatch_shard_materialized_models Pair models currently materialized on each shard.
# TYPE gridwatch_shard_materialized_models gauge
gridwatch_shard_materialized_models{shard=\"0\"} 2
# HELP gridwatch_shard_sketch_bytes Approximate heap bytes held by each shard's measurement sketches.
# TYPE gridwatch_shard_sketch_bytes gauge
gridwatch_shard_sketch_bytes{shard=\"0\"} 0
# HELP gridwatch_shard_processed_total Snapshots scored by each shard.
# TYPE gridwatch_shard_processed_total counter
gridwatch_shard_processed_total{shard=\"0\"} 3
# HELP gridwatch_shard_evicted_total Snapshots evicted from each shard's queue under DropOldest.
# TYPE gridwatch_shard_evicted_total counter
gridwatch_shard_evicted_total{shard=\"0\"} 0
# HELP gridwatch_shard_queue_depth Messages currently waiting in each shard's queue.
# TYPE gridwatch_shard_queue_depth gauge
gridwatch_shard_queue_depth{shard=\"0\"} 1
# HELP gridwatch_shard_step_latency_ns Per-shard step_scores latency in nanoseconds.
# TYPE gridwatch_shard_step_latency_ns histogram
gridwatch_shard_step_latency_ns_bucket{shard=\"0\",le=\"0\"} 0
gridwatch_shard_step_latency_ns_bucket{shard=\"0\",le=\"1\"} 0
gridwatch_shard_step_latency_ns_bucket{shard=\"0\",le=\"3\"} 1
gridwatch_shard_step_latency_ns_bucket{shard=\"0\",le=\"7\"} 1
gridwatch_shard_step_latency_ns_bucket{shard=\"0\",le=\"15\"} 1
gridwatch_shard_step_latency_ns_bucket{shard=\"0\",le=\"31\"} 1
gridwatch_shard_step_latency_ns_bucket{shard=\"0\",le=\"63\"} 1
gridwatch_shard_step_latency_ns_bucket{shard=\"0\",le=\"127\"} 1
gridwatch_shard_step_latency_ns_bucket{shard=\"0\",le=\"255\"} 1
gridwatch_shard_step_latency_ns_bucket{shard=\"0\",le=\"511\"} 1
gridwatch_shard_step_latency_ns_bucket{shard=\"0\",le=\"1023\"} 3
gridwatch_shard_step_latency_ns_bucket{shard=\"0\",le=\"+Inf\"} 3
gridwatch_shard_step_latency_ns_sum{shard=\"0\"} 1903
gridwatch_shard_step_latency_ns_count{shard=\"0\"} 3
# HELP gridwatch_shard_queue_depth_samples Queue depth observed at each submit, per shard.
# TYPE gridwatch_shard_queue_depth_samples histogram
gridwatch_shard_queue_depth_samples_bucket{shard=\"0\",le=\"0\"} 0
gridwatch_shard_queue_depth_samples_bucket{shard=\"0\",le=\"1\"} 1
gridwatch_shard_queue_depth_samples_bucket{shard=\"0\",le=\"+Inf\"} 1
gridwatch_shard_queue_depth_samples_sum{shard=\"0\"} 1
gridwatch_shard_queue_depth_samples_count{shard=\"0\"} 1
# HELP gridwatch_shard_backpressure_wait_ns Nanoseconds the ingestion front blocked on each shard's full queue.
# TYPE gridwatch_shard_backpressure_wait_ns histogram
gridwatch_shard_backpressure_wait_ns_bucket{shard=\"0\",le=\"+Inf\"} 0
gridwatch_shard_backpressure_wait_ns_sum{shard=\"0\"} 0
gridwatch_shard_backpressure_wait_ns_count{shard=\"0\"} 0
# HELP gridwatch_net_frames_total Frames decoded across all connections.
# TYPE gridwatch_net_frames_total counter
gridwatch_net_frames_total 0
# HELP gridwatch_net_decode_errors_total Decode failures across all connections.
# TYPE gridwatch_net_decode_errors_total counter
gridwatch_net_decode_errors_total 0
# HELP gridwatch_net_timeouts_total Read-deadline kills across all connections.
# TYPE gridwatch_net_timeouts_total counter
gridwatch_net_timeouts_total 0
# HELP gridwatch_net_connections_accepted_total Connections accepted.
# TYPE gridwatch_net_connections_accepted_total counter
gridwatch_net_connections_accepted_total 0
# HELP gridwatch_net_connections_open Connections currently open.
# TYPE gridwatch_net_connections_open gauge
gridwatch_net_connections_open 0
# HELP gridwatch_net_duplicates_total Frames absorbed as duplicates.
# TYPE gridwatch_net_duplicates_total counter
gridwatch_net_duplicates_total 0
# HELP gridwatch_net_gap_skips_total Sequence numbers abandoned to reorder-window overflow.
# TYPE gridwatch_net_gap_skips_total counter
gridwatch_net_gap_skips_total 0
";
        assert_eq!(text, golden);
    }

    #[test]
    fn enabled_tracer_adds_stage_histograms() {
        let stats = StatsAccumulator::new(1).snapshot(&[0]);
        let tracer = Tracer::enabled();
        tracer.record_ns(Stage::Score, 100);
        tracer.record_ns(Stage::Merge, 50);
        let text = stats.to_prometheus(&tracer);
        assert!(
            text.contains("# TYPE gridwatch_stage_ns histogram"),
            "{text}"
        );
        assert!(
            text.contains("gridwatch_stage_ns_count{stage=\"score\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("gridwatch_stage_ns_count{stage=\"merge\"} 1"),
            "{text}"
        );
        assert!(
            !text.contains("stage=\"ingest\""),
            "empty stages are skipped: {text}"
        );
        // The scrape parses.
        assert!(gridwatch_obs::parse_exposition(&text).is_some());
    }
}
