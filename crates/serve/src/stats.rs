//! Serving observability: per-shard and engine-wide counters.

use serde::{Deserialize, Serialize};

/// Step-latency summary for one shard, in nanoseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Fastest observed `step_scores` call.
    pub min_ns: u64,
    /// Mean over all observed calls.
    pub mean_ns: u64,
    /// Slowest observed call.
    pub max_ns: u64,
}

/// Counters for one shard.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ShardStats {
    /// Shard index.
    pub shard: usize,
    /// Pair models owned by this shard.
    pub pairs: usize,
    /// Snapshots scored by this shard.
    pub processed: u64,
    /// Snapshots evicted from this shard's queue under `DropOldest`.
    pub evicted: u64,
    /// Messages currently waiting in this shard's queue.
    pub queue_depth: usize,
    /// Step-latency summary (zeroes until the first snapshot).
    pub latency: LatencySummary,
}

/// Wire-path counters for one network connection.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConnStats {
    /// Connection id, assigned in accept order.
    pub conn: u64,
    /// The peer's socket address.
    pub peer: String,
    /// The detected encoding (`json`, `csv`, or `unknown` before the
    /// first byte arrives).
    pub protocol: String,
    /// Frames decoded from this connection.
    pub frames: u64,
    /// Frames lost to framing/parse failures (each also closes the
    /// connection).
    pub decode_errors: u64,
    /// Reads that hit the idle/slow-client deadline (closes the
    /// connection).
    pub timeouts: u64,
    /// Frames refused at the socket boundary under `Reject`.
    pub rejected: u64,
    /// Older frames evicted at the socket boundary under `DropOldest`
    /// to admit this connection's frames.
    pub dropped: u64,
    /// Whether the connection is still open.
    pub open: bool,
}

/// Wire-path counters for the whole listener.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetStats {
    /// Connections accepted.
    pub accepted: u64,
    /// Connections fully closed.
    pub closed: u64,
    /// Frames decoded across all connections.
    pub frames: u64,
    /// Decode failures across all connections.
    pub decode_errors: u64,
    /// Read-deadline kills across all connections.
    pub timeouts: u64,
    /// Connections closed because the read deadline could not be armed
    /// (`set_read_timeout` failed — the socket would otherwise run
    /// without slow-client protection). Absent in pre-fix dumps.
    #[serde(default)]
    pub deadline_failures: u64,
    /// Frames refused at the socket boundary under `Reject`.
    pub rejected: u64,
    /// Frames evicted at the socket boundary under `DropOldest`.
    pub dropped: u64,
    /// Frames absorbed as duplicates (reconnect replay, resumed
    /// checkpoints).
    pub duplicates: u64,
    /// Frames that arrived ahead of a sequence gap and were buffered.
    pub out_of_order: u64,
    /// Sequence numbers abandoned when a reorder window overflowed.
    pub gap_skips: u64,
    /// Periodic checkpoints that failed (the stream keeps flowing).
    pub checkpoint_failures: u64,
    /// Per-connection counters, in accept order.
    pub connections: Vec<ConnStats>,
}

/// Engine-wide serving statistics, dumpable as JSON.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ServeStats {
    /// Per-shard counters, in shard order.
    pub shards: Vec<ShardStats>,
    /// Snapshots accepted at the ingestion front.
    pub submitted: u64,
    /// Snapshots refused under `Reject`.
    pub rejected: u64,
    /// Merged step reports emitted.
    pub reports: u64,
    /// Instants skipped because every shard evicted them.
    pub empty_steps: u64,
    /// Alarm events fired by the merged-board tracker.
    pub alarms: u64,
    /// Checkpoints completed.
    pub checkpoints: u64,
    /// Wire-path counters (all zero when serving a local replay).
    #[serde(default)]
    pub net: NetStats,
}

impl ServeStats {
    /// The stats as a JSON document. Plain-old-data cannot fail to
    /// serialize, but a stats report is never worth a panic either way.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self)
            .unwrap_or_else(|e| format!("{{\"error\":\"stats serialize: {e}\"}}"))
    }

    /// Total snapshots evicted across all shards.
    pub fn total_evicted(&self) -> u64 {
        self.shards.iter().map(|s| s.evicted).sum()
    }
}

/// Mutable accumulator shared between the ingestion front and the
/// aggregator thread.
#[derive(Debug, Default)]
pub(crate) struct StatsAccumulator {
    pub(crate) per_shard: Vec<ShardAccumulator>,
    pub(crate) submitted: u64,
    pub(crate) rejected: u64,
    pub(crate) reports: u64,
    pub(crate) empty_steps: u64,
    pub(crate) alarms: u64,
    pub(crate) checkpoints: u64,
}

#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct ShardAccumulator {
    pub(crate) pairs: usize,
    pub(crate) processed: u64,
    pub(crate) evicted: u64,
    pub(crate) lat_min_ns: u64,
    pub(crate) lat_sum_ns: u64,
    pub(crate) lat_max_ns: u64,
}

impl ShardAccumulator {
    pub(crate) fn observe_latency(&mut self, elapsed_ns: u64) {
        self.processed += 1;
        self.lat_sum_ns += elapsed_ns;
        self.lat_max_ns = self.lat_max_ns.max(elapsed_ns);
        self.lat_min_ns = if self.processed == 1 {
            elapsed_ns
        } else {
            self.lat_min_ns.min(elapsed_ns)
        };
    }
}

impl StatsAccumulator {
    pub(crate) fn new(shards: usize) -> Self {
        StatsAccumulator {
            per_shard: vec![ShardAccumulator::default(); shards],
            ..StatsAccumulator::default()
        }
    }

    /// Snapshots the counters; `queue_depths` supplies the live per-shard
    /// queue lengths.
    pub(crate) fn snapshot(&self, queue_depths: &[usize]) -> ServeStats {
        ServeStats {
            shards: self
                .per_shard
                .iter()
                .enumerate()
                .map(|(k, acc)| ShardStats {
                    shard: k,
                    pairs: acc.pairs,
                    processed: acc.processed,
                    evicted: acc.evicted,
                    queue_depth: queue_depths.get(k).copied().unwrap_or(0),
                    latency: LatencySummary {
                        min_ns: acc.lat_min_ns,
                        mean_ns: acc.lat_sum_ns.checked_div(acc.processed).unwrap_or(0),
                        max_ns: acc.lat_max_ns,
                    },
                })
                .collect(),
            submitted: self.submitted,
            rejected: self.rejected,
            reports: self.reports,
            empty_steps: self.empty_steps,
            alarms: self.alarms,
            checkpoints: self.checkpoints,
            net: NetStats::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_summary_tracks_min_mean_max() {
        let mut acc = ShardAccumulator::default();
        for ns in [300, 100, 200] {
            acc.observe_latency(ns);
        }
        let stats = StatsAccumulator {
            per_shard: vec![acc],
            ..StatsAccumulator::default()
        }
        .snapshot(&[5]);
        let lat = stats.shards[0].latency;
        assert_eq!(lat.min_ns, 100);
        assert_eq!(lat.mean_ns, 200);
        assert_eq!(lat.max_ns, 300);
        assert_eq!(stats.shards[0].queue_depth, 5);
    }

    #[test]
    fn stats_json_roundtrips() {
        let mut acc = StatsAccumulator::new(2);
        acc.submitted = 10;
        acc.per_shard[1].evicted = 3;
        let mut stats = acc.snapshot(&[0, 1]);
        stats.net.frames = 7;
        stats.net.connections.push(ConnStats {
            conn: 0,
            peer: "127.0.0.1:9".to_string(),
            protocol: "json".to_string(),
            frames: 7,
            ..ConnStats::default()
        });
        let json = stats.to_json();
        let back: ServeStats = serde_json::from_str(&json).unwrap();
        assert_eq!(back, stats);
        assert_eq!(back.total_evicted(), 3);
    }

    #[test]
    fn dumps_without_a_net_section_still_parse() {
        // Stats files written before the network ingestion layer landed
        // have no "net" key; they must keep deserializing.
        let old = concat!(
            "{\"shards\":[],\"submitted\":4,\"rejected\":0,\"reports\":0,",
            "\"empty_steps\":0,\"alarms\":0,\"checkpoints\":0}"
        );
        let back: ServeStats = serde_json::from_str(old).unwrap();
        assert_eq!(back.submitted, 4);
        assert_eq!(back.net, NetStats::default());
    }

    /// Pins the JSON schema of the stats dump: adding, renaming,
    /// reordering, or dropping a key is a deliberate act that must
    /// update this golden string (and any dashboards scraping the dump).
    #[test]
    fn stats_dump_schema_is_pinned() {
        let mut stats = StatsAccumulator::new(1).snapshot(&[0]);
        stats.net.connections.push(ConnStats::default());
        let json = serde_json::to_string(&stats).unwrap();
        let golden = concat!(
            "{\"shards\":[{\"shard\":0,\"pairs\":0,\"processed\":0,\"evicted\":0,",
            "\"queue_depth\":0,\"latency\":{\"min_ns\":0,\"mean_ns\":0,\"max_ns\":0}}],",
            "\"submitted\":0,\"rejected\":0,\"reports\":0,\"empty_steps\":0,",
            "\"alarms\":0,\"checkpoints\":0,\"net\":{\"accepted\":0,\"closed\":0,",
            "\"frames\":0,\"decode_errors\":0,\"timeouts\":0,\"deadline_failures\":0,",
            "\"rejected\":0,",
            "\"dropped\":0,\"duplicates\":0,\"out_of_order\":0,\"gap_skips\":0,",
            "\"checkpoint_failures\":0,\"connections\":[{\"conn\":0,\"peer\":\"\",",
            "\"protocol\":\"\",\"frames\":0,\"decode_errors\":0,\"timeouts\":0,",
            "\"rejected\":0,\"dropped\":0,\"open\":false}]}}"
        );
        assert_eq!(json, golden);
    }
}
