//! History persistence: routes the serving stack's three output
//! streams — score boards, stats samples, and flight/alarm events —
//! into an embedded [`gridwatch_store::HistoryStore`].
//!
//! The [`HistorySink`] is the one integration point the CLI commands
//! share: per-step it appends the configured depth of the score board
//! plus any alarms; at checkpoint cadence it samples the stats
//! document, syncs, seals, and applies retention. Flight-recorder
//! events drain incrementally by global index, so repeated drains
//! (every alarm, every checkpoint, shutdown) ship each event exactly
//! once — the store's retention then bounds what `flight.jsonl` never
//! could.

use std::path::Path;

use gridwatch_detect::{AlarmEvent, ScoreBoard, StepReport};
use gridwatch_obs::{ExemplarTracer, FlightRecorder};
use gridwatch_store::{
    measurement_key, pair_key, EventRecord, HistoryStore, OpenReport, Record, ScoreRow,
    StatsSample, StoreConfig, StoreError, TraceRecord, SYSTEM_KEY,
};

/// How much of each score board to persist per step. Pair scores grow
/// quadratically with the watched set, so depth is a knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HistoryDepth {
    /// Only the system score `Q_t`.
    System,
    /// System plus per-measurement scores `Q^a_t` (the default).
    #[default]
    Measurements,
    /// Everything, including per-pair scores `Q^{a,b}_t`.
    Full,
}

impl std::str::FromStr for HistoryDepth {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "system" => Ok(HistoryDepth::System),
            "measurements" => Ok(HistoryDepth::Measurements),
            "full" | "pairs" => Ok(HistoryDepth::Full),
            other => Err(format!(
                "unknown history depth {other:?} (expected system, measurements, or full)"
            )),
        }
    }
}

/// Flattens a score board into store rows at the configured depth.
/// Row order is deterministic: system, then measurements, then pairs,
/// each in the board's own sorted order.
pub fn score_rows(board: &ScoreBoard, depth: HistoryDepth) -> Vec<ScoreRow> {
    let at = board.at().as_secs();
    let mut rows = Vec::new();
    if let Some(score) = board.system_score() {
        rows.push(ScoreRow {
            at,
            key: SYSTEM_KEY.to_string(),
            score,
        });
    }
    if depth == HistoryDepth::System {
        return rows;
    }
    for (id, score) in board.measurement_scores() {
        rows.push(ScoreRow {
            at,
            key: measurement_key(&id.to_string()),
            score,
        });
    }
    if depth == HistoryDepth::Full {
        for (pair, score) in board.pair_scores() {
            rows.push(ScoreRow {
                at,
                key: pair_key(&pair.first().to_string(), &pair.second().to_string()),
                score,
            });
        }
    }
    rows
}

/// Converts an alarm into a store event (kind `alarm`).
pub fn alarm_event(alarm: &AlarmEvent) -> EventRecord {
    EventRecord {
        at: alarm.at.as_secs(),
        at_ns: 0,
        kind: "alarm".to_string(),
        detail: alarm.to_string(),
    }
}

/// The serving stack's writer onto a history store.
#[derive(Debug)]
pub struct HistorySink {
    store: HistoryStore,
    depth: HistoryDepth,
    /// Global index (see `FlightRecorder::snapshot_indexed`) of the
    /// next recorder event not yet appended.
    shipped_events: u64,
    /// Global ring index (see `ExemplarTracer::snapshot_indexed`) of
    /// the next trace exemplar not yet appended.
    shipped_exemplars: u64,
}

impl HistorySink {
    /// Opens (creating if needed) the store at `dir`.
    pub fn open(
        dir: &Path,
        config: StoreConfig,
        depth: HistoryDepth,
    ) -> Result<(HistorySink, OpenReport), StoreError> {
        let (store, report) = HistoryStore::open(dir, config)?;
        Ok((
            HistorySink {
                store,
                depth,
                shipped_events: 0,
                shipped_exemplars: 0,
            },
            report,
        ))
    }

    /// The underlying store (for scans and stats).
    pub fn store(&self) -> &HistoryStore {
        &self.store
    }

    /// Appends one step's scores (at the configured depth) and alarms.
    /// Buffered, not yet durable — durability comes at
    /// [`HistorySink::checkpoint`].
    pub fn append_report(&mut self, report: &StepReport) -> Result<(), StoreError> {
        for row in score_rows(&report.scores, self.depth) {
            self.store.append(Record::Score(row))?;
        }
        for alarm in &report.alarms {
            self.store.append(Record::Event(alarm_event(alarm)))?;
        }
        Ok(())
    }

    /// Appends one stats document (verbatim JSON) filed at `at`.
    pub fn append_stats(&mut self, at: u64, payload: String) -> Result<(), StoreError> {
        self.store
            .append(Record::Stats(StatsSample { at, payload }))?;
        Ok(())
    }

    /// Appends every recorder event not shipped by an earlier drain,
    /// filed at trace instant `at`. Returns how many were appended.
    /// Events evicted from the ring between drains are lost to the
    /// store too (the ring is the bound); the count skipped is visible
    /// as a jump in the watermark.
    pub fn drain_recorder(
        &mut self,
        recorder: &FlightRecorder,
        at: u64,
    ) -> Result<u64, StoreError> {
        let (base, events) = recorder.snapshot_indexed();
        let mut appended = 0u64;
        for (offset, event) in events.iter().enumerate() {
            let index = base + offset as u64;
            if index < self.shipped_events {
                continue;
            }
            self.store.append(Record::Event(EventRecord {
                at,
                at_ns: event.at_ns,
                kind: event.kind.clone(),
                detail: event.detail.clone(),
            }))?;
            appended += 1;
        }
        self.shipped_events = self.shipped_events.max(base + events.len() as u64);
        Ok(appended)
    }

    /// Appends every retained trace exemplar not shipped by an earlier
    /// drain, same watermark discipline as [`HistorySink::drain_recorder`]:
    /// repeated drains ship each exemplar exactly once, and exemplars
    /// evicted from the ring between drains are lost to the store too.
    /// The full span tree travels as the exemplar's pinned JSON in
    /// [`TraceRecord::payload`].
    pub fn drain_exemplars(&mut self, exemplars: &ExemplarTracer) -> Result<u64, StoreError> {
        let (base, traces) = exemplars.snapshot_indexed();
        let mut appended = 0u64;
        for (offset, trace) in traces.iter().enumerate() {
            let index = base + offset as u64;
            if index < self.shipped_exemplars {
                continue;
            }
            let payload = serde_json::to_string(trace)
                .map_err(|e| StoreError::Corrupt(format!("exemplar serialize: {e}")))?;
            self.store.append(Record::Trace(TraceRecord {
                at: trace.at,
                seq: trace.seq,
                alarmed: trace.alarmed,
                total_ns: trace.total_ns,
                source: trace.source.clone(),
                payload,
            }))?;
            appended += 1;
        }
        self.shipped_exemplars = self.shipped_exemplars.max(base + traces.len() as u64);
        Ok(appended)
    }

    /// Makes every append so far durable (WAL fsync) without sealing.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        self.store.sync()
    }

    /// Checkpoint-cadence maintenance: sync, seal the WAL into
    /// columnar blocks, and apply retention. Returns the partition
    /// window starts retention dropped.
    pub fn checkpoint(&mut self) -> Result<Vec<u64>, StoreError> {
        self.store.seal()?;
        self.store.apply_retention()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridwatch_store::RecordKind;
    use gridwatch_timeseries::{MachineId, MeasurementId, MeasurementPair, MetricKind, Timestamp};

    fn board() -> ScoreBoard {
        let mut board = ScoreBoard::new(Timestamp::from_secs(360));
        let a = MeasurementId::new(MachineId::new(0), MetricKind::CpuUtilization);
        let b = MeasurementId::new(MachineId::new(1), MetricKind::CpuUtilization);
        let c = MeasurementId::new(MachineId::new(2), MetricKind::MemoryUsage);
        board.record(MeasurementPair::new(a, b).unwrap(), 0.75);
        board.record(MeasurementPair::new(a, c).unwrap(), 0.5);
        board.record(MeasurementPair::new(b, c).unwrap(), 0.25);
        board
    }

    #[test]
    fn depth_controls_row_families() {
        let board = board();
        let system = score_rows(&board, HistoryDepth::System);
        assert_eq!(system.len(), 1);
        assert_eq!(system[0].key, SYSTEM_KEY);
        assert_eq!(system[0].at, 360);

        let measurements = score_rows(&board, HistoryDepth::Measurements);
        assert_eq!(measurements.len(), 1 + 3);
        assert!(measurements[1].key.starts_with("m:machine-000/"));

        let full = score_rows(&board, HistoryDepth::Full);
        assert_eq!(full.len(), 1 + 3 + 3);
        assert!(full.last().unwrap().key.starts_with("p:"));
    }

    #[test]
    fn sink_persists_reports_stats_and_recorder_events_once() {
        let dir = std::env::temp_dir().join(format!("gw-sink-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (mut sink, _) =
            HistorySink::open(&dir, StoreConfig::default(), HistoryDepth::Measurements).unwrap();
        let report = StepReport {
            scores: board(),
            alarms: Vec::new(),
        };
        sink.append_report(&report).unwrap();
        sink.append_stats(360, "{\"submitted\":1}".to_string())
            .unwrap();

        let recorder = FlightRecorder::new(8);
        recorder.record("checkpoint", "cut 1");
        recorder.record("alarm", "system low");
        assert_eq!(sink.drain_recorder(&recorder, 360).unwrap(), 2);
        // A second drain with one new event ships only the new one.
        recorder.record("conn-open", "peer");
        assert_eq!(sink.drain_recorder(&recorder, 720).unwrap(), 1);
        sink.checkpoint().unwrap();

        let store = sink.store();
        assert_eq!(store.scan(RecordKind::Score, 0, u64::MAX).unwrap().len(), 4);
        assert_eq!(store.scan(RecordKind::Stats, 0, u64::MAX).unwrap().len(), 1);
        let events = store.scan(RecordKind::Event, 0, u64::MAX).unwrap();
        assert_eq!(events.len(), 3);
    }

    #[test]
    fn trace_exemplars_drain_exactly_once() {
        use gridwatch_obs::{ExemplarConfig, SpanSlice, Stage};
        let dir = std::env::temp_dir().join(format!("gw-exdrain-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (mut sink, _) =
            HistorySink::open(&dir, StoreConfig::default(), HistoryDepth::System).unwrap();
        let tracer = ExemplarTracer::enabled(ExemplarConfig::default());
        for seq in 0..3u64 {
            tracer.open(seq, "local", 360 * (seq + 1));
            tracer.record(seq, SpanSlice::new(Stage::Score, 0, 100, "shard-0"));
            tracer.finalize(seq, true);
        }
        assert_eq!(sink.drain_exemplars(&tracer).unwrap(), 3);
        // Watermark: a second drain ships nothing.
        assert_eq!(sink.drain_exemplars(&tracer).unwrap(), 0);
        tracer.open(3, "local", 1440);
        tracer.record(3, SpanSlice::new(Stage::Report, 5, 10, "aggregator"));
        tracer.finalize(3, true);
        assert_eq!(sink.drain_exemplars(&tracer).unwrap(), 1);
        sink.checkpoint().unwrap();

        let rows = sink.store().scan(RecordKind::Trace, 0, u64::MAX).unwrap();
        assert_eq!(rows.len(), 4);
        match &rows[0].1 {
            Record::Trace(t) => {
                assert_eq!(t.seq, 0);
                assert_eq!(t.at, 360);
                assert!(t.alarmed);
                assert_eq!(t.total_ns, 100);
                assert_eq!(t.source, "local");
                // The payload is the exemplar's pinned JSON and parses
                // back to the same trace.
                let back: gridwatch_obs::TraceExemplar = serde_json::from_str(&t.payload).unwrap();
                assert_eq!(back.spans.len(), 1);
                assert_eq!(back.spans[0].stage, "score");
            }
            other => panic!("expected a trace record, got {other:?}"),
        }
    }

    /// A drift storm fires rebuild events far faster than the drain
    /// cadence. As long as drains keep up with the ring, every rebuild
    /// lands in the store exactly once no matter how the bursts and
    /// drains interleave; when a burst overruns the ring between
    /// drains, the overwritten events are lost to the store too (the
    /// ring is the bound) but nothing is ever duplicated.
    #[test]
    fn rebuild_churn_is_persisted_exactly_once() {
        let dir = std::env::temp_dir().join(format!("gw-churn-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (mut sink, _) =
            HistorySink::open(&dir, StoreConfig::default(), HistoryDepth::System).unwrap();
        let recorder = FlightRecorder::new(8);

        // Phase 1: bursts never exceed the ring between drains — the
        // store sees each event exactly once.
        let mut recorded = 0u64;
        let mut shipped = 0u64;
        for round in 0..10u64 {
            for k in 0..=(round % 8) {
                recorder.record("rebuild", format!("pair p-{round}-{k} refit"));
                recorded += 1;
            }
            shipped += sink.drain_recorder(&recorder, 360 * (round + 1)).unwrap();
            // Double-drain at the same instant (alarm then checkpoint
            // both drain): the second must ship nothing.
            assert_eq!(
                sink.drain_recorder(&recorder, 360 * (round + 1)).unwrap(),
                0
            );
        }
        assert_eq!(shipped, recorded);

        // Phase 2: one burst overruns the ring (12 events into 8
        // slots); the 4 overwritten events are gone, the surviving 8
        // ship once.
        for k in 0..12u64 {
            recorder.record("rebuild", format!("storm pair p-{k}"));
        }
        assert_eq!(sink.drain_recorder(&recorder, 7200).unwrap(), 8);
        sink.checkpoint().unwrap();

        let events = sink.store().scan(RecordKind::Event, 0, u64::MAX).unwrap();
        let rebuilds: Vec<_> = events
            .iter()
            .filter_map(|(_, r)| match r {
                gridwatch_store::Record::Event(e) if e.kind == "rebuild" => Some(e.detail.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(rebuilds.len() as u64, recorded + 8);
        // Exactly once: no detail string appears twice.
        let mut unique = rebuilds.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), rebuilds.len(), "a rebuild was duplicated");
    }
}
