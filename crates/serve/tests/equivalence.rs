//! The sharding equivalence property: for ANY trace and ANY shard count,
//! a `ShardedEngine` under the lossless `Block` policy emits the exact
//! same `StepReport` stream — boards and alarms, bit for bit — as a
//! single-threaded `DetectionEngine` stepping the same snapshots.

use gridwatch_detect::{
    AlarmPolicy, DetectionEngine, EngineConfig, EngineSnapshot, Snapshot, StepReport,
};
use gridwatch_serve::{BackpressurePolicy, ServeConfig, ShardedEngine};
use gridwatch_timeseries::{
    MachineId, MeasurementId, MeasurementPair, MetricKind, PairSeries, Timestamp,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const STEP_SECS: u64 = 360;

fn ids(measurements: usize) -> Vec<MeasurementId> {
    (0..measurements as u32)
        .map(|m| MeasurementId::new(MachineId::new(m / 2), MetricKind::Custom((m % 2) as u16)))
        .collect()
}

/// Linear couplings with per-measurement gain/offset plus bounded noise,
/// so the trained grids are non-degenerate but scores still vary.
fn value(m: usize, load: f64, noise: f64) -> f64 {
    (m as f64 + 1.0) * load + 7.0 * m as f64 + noise
}

/// A randomized system: training histories and a test trace that
/// optionally breaks one measurement over a window.
struct Case {
    engine: EngineSnapshot,
    trace: Vec<Snapshot>,
}

fn build_case(
    seed: u64,
    measurements: usize,
    steps: u64,
    break_measurement: usize,
    break_from: u64,
    break_len: u64,
) -> Case {
    let ids = ids(measurements);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut noise = |scale: f64| (rng.random::<f64>() - 0.5) * scale;

    let config = EngineConfig {
        alarm: AlarmPolicy {
            system_threshold: 0.7,
            measurement_threshold: 0.4,
            min_consecutive: 2,
        },
        ..EngineConfig::default()
    };
    let mut pairs = Vec::new();
    for i in 0..measurements {
        for j in (i + 1)..measurements {
            let pair = MeasurementPair::new(ids[i], ids[j]).unwrap();
            let history = PairSeries::from_samples((0..400u64).map(|k| {
                let load = (k % 48) as f64;
                (
                    k * STEP_SECS,
                    value(i, load, noise(0.4)),
                    value(j, load, noise(0.4)),
                )
            }))
            .unwrap();
            pairs.push((pair, history));
        }
    }
    let engine = DetectionEngine::train(pairs, config)
        .expect("coupled histories always train")
        .snapshot();

    let break_measurement = break_measurement % measurements;
    let trace = (0..steps)
        .map(|k| {
            let mut snap = Snapshot::new(Timestamp::from_secs((400 + k) * STEP_SECS));
            let load = (k % 48) as f64;
            for (m, &mid) in ids.iter().enumerate() {
                let broken =
                    m == break_measurement && (break_from..break_from + break_len).contains(&k);
                let v = if broken {
                    -150.0 - noise(10.0).abs()
                } else {
                    value(m, load, noise(0.4))
                };
                snap.insert(mid, v);
            }
            snap
        })
        .collect();
    Case { engine, trace }
}

fn unsharded_reports(case: &Case) -> Vec<StepReport> {
    let mut engine = DetectionEngine::from_snapshot(case.engine.clone());
    case.trace.iter().map(|s| engine.step(s)).collect()
}

fn sharded_reports(case: &Case, shards: usize, queue_capacity: usize) -> Vec<StepReport> {
    let mut engine = ShardedEngine::start(
        case.engine.clone(),
        ServeConfig {
            shards,
            queue_capacity,
            backpressure: BackpressurePolicy::Block,
            sampling: None,
        },
    );
    for snap in &case.trace {
        let report = engine.submit(snap.clone());
        assert!(
            report.accepted() && report.evicted == 0,
            "Block is lossless"
        );
    }
    let (reports, stats) = engine.shutdown();
    assert_eq!(stats.reports, case.trace.len() as u64);
    reports
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    #[test]
    fn any_shard_count_is_bitwise_identical_to_unsharded(
        seed in 0u64..1_000_000,
        measurements in 4usize..=7,
        steps in 8u64..=24,
        break_measurement in 0usize..7,
        break_from in 0u64..12,
        break_len in 0u64..10,
        queue_capacity in 1usize..=6,
    ) {
        let case = build_case(seed, measurements, steps, break_measurement, break_from, break_len);
        let want = unsharded_reports(&case);
        for shards in [1usize, 2, 4, 8] {
            let got = sharded_reports(&case, shards, queue_capacity);
            prop_assert_eq!(
                &got,
                &want,
                "shards={} capacity={} diverged from the unsharded engine",
                shards,
                queue_capacity
            );
        }
    }
}

/// Non-random pin: a trace engineered to fire alarms must produce the
/// identical alarm sequence through every shard count (so the property
/// above is known to exercise the alarm path, not just quiet boards).
#[test]
fn alarm_sequences_are_preserved_across_shard_counts() {
    let case = build_case(20080529, 6, 24, 5, 8, 9);
    let want = unsharded_reports(&case);
    let fired: usize = want.iter().map(|r| r.alarms.len()).sum();
    assert!(fired > 0, "pin trace must raise alarms");
    for shards in [1usize, 2, 4, 8] {
        let got = sharded_reports(&case, shards, 4);
        let got_alarms: Vec<_> = got.iter().flat_map(|r| r.alarms.clone()).collect();
        let want_alarms: Vec<_> = want.iter().flat_map(|r| r.alarms.clone()).collect();
        assert_eq!(got_alarms, want_alarms, "{shards} shards");
        assert_eq!(got, want, "{shards} shards");
    }
}
