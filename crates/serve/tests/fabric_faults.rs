//! Deterministic fault injection for the multi-node shard fabric, in
//! the style of the `net_faults` suite: a scripted chaos worker speaks
//! the fabric protocol byte-for-byte but misbehaves on cue, so every
//! defense — per-(seq, shard) dedup, epoch fencing, shard-bound
//! checks, degraded-checkpoint refusal, crash-resume — is exercised on
//! demand instead of by timing luck.

use std::net::TcpListener;
use std::path::PathBuf;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, Receiver, Sender};
use gridwatch_detect::{
    AlarmPolicy, AlarmTracker, DetectionEngine, EngineConfig, EngineSnapshot, Snapshot, StepReport,
};
use gridwatch_serve::{
    decode_downstream, encode_response, read_frame, write_frame, BoardFrame, Checkpointer,
    Coordinator, Downstream, FabricConfig, FabricControl, FabricError, FabricResponse, ShardWorker,
};
use gridwatch_timeseries::{
    MachineId, MeasurementId, MeasurementPair, MetricKind, PairSeries, Timestamp,
};

const STEP_SECS: u64 = 360;

fn ids(measurements: usize) -> Vec<MeasurementId> {
    (0..measurements as u32)
        .map(|m| MeasurementId::new(MachineId::new(m / 2), MetricKind::Custom((m % 2) as u16)))
        .collect()
}

fn value(m: usize, load: f64) -> f64 {
    (m as f64 + 1.0) * load + 7.0 * m as f64
}

/// A small deterministic system: noiseless couplings so every run of a
/// scenario sees identical boards.
fn build_case(measurements: usize, steps: u64) -> (EngineSnapshot, Vec<Snapshot>) {
    let ids = ids(measurements);
    let config = EngineConfig {
        alarm: AlarmPolicy {
            system_threshold: 0.7,
            measurement_threshold: 0.4,
            min_consecutive: 2,
        },
        ..EngineConfig::default()
    };
    let mut pairs = Vec::new();
    for i in 0..measurements {
        for j in (i + 1)..measurements {
            let pair = MeasurementPair::new(ids[i], ids[j]).unwrap();
            let history = PairSeries::from_samples((0..400u64).map(|k| {
                let load = (k % 48) as f64;
                (k * STEP_SECS, value(i, load), value(j, load))
            }))
            .unwrap();
            pairs.push((pair, history));
        }
    }
    let engine = DetectionEngine::train(pairs, config).unwrap().snapshot();
    let trace = (0..steps)
        .map(|k| {
            let mut snap = Snapshot::new(Timestamp::from_secs((400 + k) * STEP_SECS));
            let load = (k % 48) as f64;
            for (m, &mid) in ids.iter().enumerate() {
                snap.insert(mid, value(m, load) + 0.25);
            }
            snap
        })
        .collect();
    (engine, trace)
}

fn unsharded_reports(engine: &EngineSnapshot, trace: &[Snapshot]) -> Vec<StepReport> {
    let mut engine = DetectionEngine::from_snapshot(engine.clone());
    trace.iter().map(|s| engine.step(s)).collect()
}

fn drain_reports(coordinator: &mut Coordinator, n: usize) -> Vec<StepReport> {
    let mut reports = Vec::with_capacity(n);
    while reports.len() < n {
        match coordinator.recv_report_timeout(Duration::from_secs(10)) {
            Some(report) => reports.push(report),
            None => panic!("timed out after {} of {n} reports", reports.len()),
        }
    }
    reports
}

/// How the scripted worker misbehaves.
enum Chaos {
    /// Every board is sent four times: once correct, once duplicated,
    /// once with a forged epoch, once with an out-of-range shard index.
    Quadruplicate,
    /// Boards for `seq >= mute_after` are withheld (the worker looks
    /// partitioned from the coordinator) and flushed, stale, when the
    /// test signals `flush` — after the coordinator has migrated the
    /// shard away.
    MuteThenFlush {
        mute_after: u64,
        flush: Receiver<()>,
    },
}

/// A scripted worker: honest protocol, dishonest delivery.
fn chaos_worker(listener: TcpListener, chaos: Chaos) -> JoinHandle<()> {
    std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().expect("chaos accept");
        let payload = read_frame(&mut stream)
            .expect("chaos handshake read")
            .expect("chaos handshake frame");
        let Downstream::Control(FabricControl::Hello {
            shard,
            shards: _,
            epoch,
            state,
            trace: _,
            exemplar: _,
        }) = decode_downstream(&payload).expect("chaos handshake decode")
        else {
            panic!("chaos worker expected Hello first");
        };
        let mut engine = DetectionEngine::from_snapshot(EngineSnapshot {
            config: EngineConfig {
                parallel: false,
                ..state.config
            },
            models: state.models,
            tracker: AlarmTracker::new(),
            candidates: state.candidates,
        });
        let ack = encode_response(&FabricResponse::HelloAck {
            shard,
            epoch,
            pairs: engine.model_count(),
        })
        .unwrap();
        write_frame(&mut stream, &ack).expect("chaos ack");

        // Poll reads so the flush signal is noticed even when the
        // coordinator has stopped sending (it migrated the shard away).
        stream
            .set_read_timeout(Some(Duration::from_millis(20)))
            .unwrap();
        let mut withheld: Vec<BoardFrame> = Vec::new();
        loop {
            let payload = match read_frame(&mut stream) {
                Ok(Some(payload)) => payload,
                Ok(None) => return,
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    if let Chaos::MuteThenFlush { flush, .. } = &chaos {
                        if flush.try_recv().is_ok() {
                            // Partition heals — but the coordinator has
                            // moved on. Everything held back goes out
                            // with the superseded epoch.
                            for stale in withheld.drain(..) {
                                let bytes = encode_response(&FabricResponse::Board(stale)).unwrap();
                                if write_frame(&mut stream, &bytes).is_err() {
                                    return;
                                }
                            }
                        }
                    }
                    continue;
                }
                Err(_) => return,
            };
            match decode_downstream(&payload).expect("chaos decode") {
                Downstream::Snapshot(frame) => {
                    let board = engine.step_scores(&frame.snapshot);
                    let good = BoardFrame {
                        shard,
                        epoch,
                        seq: frame.seq,
                        board,
                        score_ns: 0,
                        spans: Vec::new(),
                    };
                    match &chaos {
                        Chaos::Quadruplicate => {
                            for forged in [
                                good.clone(),
                                good.clone(),
                                BoardFrame {
                                    epoch: epoch + 1000,
                                    ..good.clone()
                                },
                                BoardFrame {
                                    shard: shard + 64,
                                    ..good
                                },
                            ] {
                                let bytes =
                                    encode_response(&FabricResponse::Board(forged)).unwrap();
                                write_frame(&mut stream, &bytes).expect("chaos board");
                            }
                        }
                        Chaos::MuteThenFlush { mute_after, .. } => {
                            if good.seq < *mute_after {
                                let bytes = encode_response(&FabricResponse::Board(good)).unwrap();
                                write_frame(&mut stream, &bytes).expect("chaos board");
                            } else {
                                withheld.push(good);
                            }
                        }
                    }
                }
                Downstream::Control(FabricControl::Checkpoint { id }) => {
                    let bytes = encode_response(&FabricResponse::State {
                        shard,
                        epoch,
                        id,
                        state: engine.snapshot(),
                    })
                    .unwrap();
                    write_frame(&mut stream, &bytes).expect("chaos state");
                }
                Downstream::Control(FabricControl::Shutdown) => return,
                Downstream::Control(FabricControl::Hello { .. }) => {
                    panic!("chaos worker got a second Hello")
                }
            }
        }
    })
}

/// Flushes a healed partition by poking the chaos worker's channel and
/// waiting (bounded) for the coordinator to fence the stale boards.
fn await_stale_boards(coordinator: &Coordinator, want: u64) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while coordinator.stats().stale_boards < want {
        assert!(
            Instant::now() < deadline,
            "coordinator fenced only {} of {want} stale boards",
            coordinator.stats().stale_boards
        );
        std::thread::sleep(Duration::from_millis(2));
    }
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "gridwatch-fabric-faults-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Duplicate, forged-epoch, and misrouted boards are all dropped on
/// the floor — the report stream stays bit-identical to the unsharded
/// engine, and every drop lands in the right counter.
#[test]
fn duplicate_forged_and_misrouted_boards_are_dropped() {
    let (engine, trace) = build_case(4, 12);
    let want = unsharded_reports(&engine, &trace);
    let n = trace.len() as u64;

    let honest = ShardWorker::bind("127.0.0.1:0").unwrap();
    let honest_addr = honest.local_addr().to_string();
    let honest_handle = std::thread::spawn(move || honest.run());

    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let chaos_addr = listener.local_addr().unwrap().to_string();
    let chaos_handle = chaos_worker(listener, Chaos::Quadruplicate);

    let mut coordinator =
        Coordinator::connect(engine, &[honest_addr, chaos_addr], FabricConfig::default()).unwrap();
    for snap in &trace {
        coordinator.submit(snap.clone()).unwrap();
    }
    let (reports, stats) = coordinator.shutdown(true);

    assert_eq!(reports, want, "chaos deliveries must not change reports");
    assert_eq!(stats.reports, n);
    // The forged-epoch copy is always fenced; the misrouted copy is
    // always rejected on the shard bound. The honest duplicate lands in
    // `duplicate_boards` when the step is still pending and in
    // `replayed_boards` when the step was already emitted.
    assert_eq!(stats.stale_boards, n, "forged epochs fenced");
    assert_eq!(stats.bad_boards, n, "misrouted boards rejected");
    assert_eq!(
        stats.duplicate_boards + stats.replayed_boards,
        n,
        "duplicates absorbed"
    );
    assert_eq!(stats.disconnects, 0);

    honest_handle.join().unwrap().unwrap();
    chaos_handle.join().unwrap();
}

/// A partitioned worker (declared dead, socket never closed) is
/// migrated away; when the partition later heals and its backlog of
/// boards arrives, every one is fenced by the epoch check — the report
/// stream the successor produced is untouched. Also pins the
/// degraded-checkpoint refusal while the shard is dead.
#[test]
fn healed_partition_backlog_is_fenced_after_migration() {
    let (engine, trace) = build_case(4, 12);
    let want = unsharded_reports(&engine, &trace);
    let n = trace.len() as u64;
    let mute_after = 5u64;

    let honest = ShardWorker::bind("127.0.0.1:0").unwrap();
    let honest_addr = honest.local_addr().to_string();
    let honest_handle = std::thread::spawn(move || honest.run());

    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let chaos_addr = listener.local_addr().unwrap().to_string();
    let (flush_tx, flush_rx): (Sender<()>, Receiver<()>) = bounded(1);
    let chaos_handle = chaos_worker(
        listener,
        Chaos::MuteThenFlush {
            mute_after,
            flush: flush_rx,
        },
    );

    let mut coordinator =
        Coordinator::connect(engine, &[honest_addr, chaos_addr], FabricConfig::default()).unwrap();
    for snap in &trace {
        coordinator.submit(snap.clone()).unwrap();
    }
    // Steps >= mute_after cannot finalize: shard 1 looks partitioned.
    let head = drain_reports(&mut coordinator, mute_after as usize);

    // The operator declares the shard dead. A checkpoint must now be
    // refused — it cannot capture shard 1 at the cut.
    coordinator.declare_dead(1);
    assert_eq!(coordinator.dead_shards(), vec![1]);
    let dir = scratch_dir("degraded");
    match coordinator.checkpoint(&dir) {
        Err(FabricError::Degraded { dead }) => assert_eq!(dead, vec![1]),
        other => panic!("degraded checkpoint must be refused, got {other:?}"),
    }

    // Migrate shard 1 to an honest successor; the journal replay
    // regenerates everything the partitioned worker still owes.
    let successor = ShardWorker::bind("127.0.0.1:0").unwrap();
    let successor_addr = successor.local_addr().to_string();
    let successor_handle = std::thread::spawn(move || successor.run());
    coordinator.attach_worker(1, &successor_addr).unwrap();
    let tail = drain_reports(&mut coordinator, trace.len() - mute_after as usize);

    // Partition heals: the stale backlog arrives and is fenced.
    flush_tx.send(()).unwrap();
    await_stale_boards(&coordinator, n - mute_after);

    let (rest, stats) = coordinator.shutdown(true);
    assert!(rest.is_empty(), "no report may materialize twice");
    let mut got = head;
    got.extend(tail);
    assert_eq!(got, want, "migrated stream must match the unsharded engine");
    assert_eq!(stats.stale_boards, n - mute_after, "healed backlog fenced");
    assert_eq!(stats.replayed_boards, mute_after, "replay overlap absorbed");
    assert_eq!(stats.migrations, 1);
    assert_eq!(stats.disconnects, 1);
    assert_eq!(stats.checkpoints, 0);

    honest_handle.join().unwrap().unwrap();
    successor_handle.join().unwrap().unwrap();
    chaos_handle.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Coordinator crash-resume: a new coordinator recovered from the
/// checkpoint directory (same workers, `start_seq`/`epoch_base` from
/// the manifest) continues the stream exactly where the old one cut.
#[test]
fn coordinator_crash_resume_continues_the_stream() {
    let (engine, trace) = build_case(5, 14);
    let want = unsharded_reports(&engine, &trace);
    let cut = 6usize;
    let dir = scratch_dir("resume");

    let workers: Vec<ShardWorker> = (0..2)
        .map(|_| ShardWorker::bind("127.0.0.1:0").unwrap())
        .collect();
    let addrs: Vec<String> = workers.iter().map(|w| w.local_addr().to_string()).collect();
    let handles: Vec<_> = workers
        .into_iter()
        .map(|w| std::thread::spawn(move || w.run()))
        .collect();

    // First life: stream a prefix, checkpoint, die without ceremony
    // (workers keep running and fall back to accept).
    let mut first = Coordinator::connect(engine.clone(), &addrs, FabricConfig::default()).unwrap();
    for snap in &trace[..cut] {
        first.submit(snap.clone()).unwrap();
    }
    first.checkpoint(&dir).unwrap();
    let (head, first_stats) = first.shutdown(false);
    assert_eq!(first_stats.checkpoints, 1);

    // Recovery: state, cut, and fencing base all come from the
    // manifest.
    let (recovered, manifest) = Checkpointer::new(&dir).recover().unwrap();
    assert_eq!(manifest.cut_seq, cut as u64);
    assert_eq!(manifest.fabric_epoch, 2, "one epoch per initial attach");
    assert_eq!(manifest.remote.len(), 2);
    for (shard, entry) in manifest.remote.iter().enumerate() {
        assert_eq!(entry.shard, shard);
        assert!(entry.epoch >= 1 && entry.epoch <= manifest.fabric_epoch);
        assert!(!entry.source.is_empty());
    }

    let mut second = Coordinator::connect(
        recovered,
        &addrs,
        FabricConfig {
            start_seq: manifest.cut_seq,
            epoch_base: manifest.fabric_epoch,
            ..FabricConfig::default()
        },
    )
    .unwrap();
    assert!(
        second.fabric_epoch() > manifest.fabric_epoch,
        "resumed epochs must fence every pre-crash assignment"
    );
    for snap in &trace[cut..] {
        second.submit(snap.clone()).unwrap();
    }
    let (tail, second_stats) = second.shutdown(true);
    assert_eq!(second_stats.reports, (trace.len() - cut) as u64);

    let mut got = head;
    got.extend(tail);
    assert_eq!(got, want, "resumed stream must match the unsharded engine");

    for handle in handles {
        handle.join().unwrap().unwrap();
    }
    let _ = std::fs::remove_dir_all(&dir);
}
