//! Property tests for the wire codec.
//!
//! Two properties, per the issue: (1) any snapshot round-trips exactly
//! through both encodings, in any chunking; (2) arbitrary byte noise
//! never panics the decoder — every failure is a typed [`DecodeError`].

mod common;

use gridwatch_detect::Snapshot;
use gridwatch_serve::{encode_csv, encode_json, FrameDecoder, WireFrame, WireProtocol};
use gridwatch_timeseries::{MachineId, MeasurementId, MetricKind, Timestamp};
use proptest::prelude::*;

/// Decodes a whole byte stream fed in `chunk`-sized pieces.
fn decode_all(bytes: &[u8], protocol: WireProtocol, chunk: usize) -> Vec<WireFrame> {
    let mut dec = FrameDecoder::new(protocol, 1 << 20);
    let mut frames = Vec::new();
    for piece in bytes.chunks(chunk.max(1)) {
        dec.push(piece);
        while let Some(frame) = dec.next_frame().expect("valid stream") {
            frames.push(frame);
        }
    }
    assert!(!dec.has_partial(), "valid stream leaves no partial frame");
    frames
}

fn build_frame(source_tag: u32, seq: u64, at_secs: u64, values: &[(u32, u16, f64)]) -> WireFrame {
    let mut snapshot = Snapshot::new(Timestamp::from_secs(at_secs));
    for &(machine, tag, v) in values {
        // `Snapshot::insert` ignores non-finite values by design; skip
        // them here so the encoded frame equals the decoded one.
        if v.is_finite() {
            snapshot.insert(
                MeasurementId::new(MachineId::new(machine % 100), MetricKind::Custom(tag % 50)),
                v,
            );
        }
    }
    WireFrame {
        source: format!("agent-{source_tag}"),
        seq,
        snapshot,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary snapshot → JSON frame → decode is the identity, for
    /// every byte chunking — including values at the nasty edges of
    /// f64 (subnormals, zeros, full-precision normals).
    #[test]
    fn json_roundtrips_exactly(
        source_tag in 0u32..1000,
        seq in 0u64..u64::MAX / 2,
        at_secs in 0u64..4_000_000_000,
        values in proptest::strategy::collection::vec(
            (0u32..100, 0u16..50, proptest::strategy::num::f64::NORMAL
                | proptest::strategy::num::f64::ZERO
                | proptest::strategy::num::f64::SUBNORMAL),
            0..12,
        ),
        chunk in 1usize..64,
    ) {
        let frame = build_frame(source_tag, seq, at_secs, &values);
        let bytes = encode_json(&frame).unwrap();
        let got = decode_all(&bytes, WireProtocol::Auto, chunk);
        prop_assert_eq!(got, vec![frame]);
    }

    /// The same property over the CSV encoding.
    #[test]
    fn csv_roundtrips_exactly(
        source_tag in 0u32..1000,
        seq in 0u64..u64::MAX / 2,
        at_secs in 0u64..4_000_000_000,
        values in proptest::strategy::collection::vec(
            (0u32..100, 0u16..50, proptest::strategy::num::f64::NORMAL
                | proptest::strategy::num::f64::ZERO
                | proptest::strategy::num::f64::SUBNORMAL),
            0..12,
        ),
        chunk in 1usize..64,
    ) {
        let frame = build_frame(source_tag, seq, at_secs, &values);
        let line = encode_csv(&frame).unwrap();
        let got = decode_all(line.as_bytes(), WireProtocol::Auto, chunk);
        prop_assert_eq!(got, vec![frame]);
    }

    /// A multi-frame stream decodes to the same frames regardless of how
    /// the bytes are chunked.
    #[test]
    fn chunking_never_changes_what_decodes(
        seqs in proptest::strategy::collection::vec(0u64..1000, 1..6),
        chunk_a in 1usize..48,
        chunk_b in 1usize..48,
    ) {
        let mut bytes = Vec::new();
        for (k, &seq) in seqs.iter().enumerate() {
            let frame = build_frame(7, seq, (k as u64) * 360, &[(1, 2, 3.5)]);
            bytes.extend_from_slice(&encode_json(&frame).unwrap());
        }
        let a = decode_all(&bytes, WireProtocol::Json, chunk_a);
        let b = decode_all(&bytes, WireProtocol::Json, chunk_b);
        prop_assert_eq!(a.len(), seqs.len());
        prop_assert_eq!(a, b);
    }

    /// Arbitrary byte noise never panics the decoder: every push/pop
    /// cycle ends in frames, a patient wait, or a typed error.
    #[test]
    fn arbitrary_noise_never_panics(
        noise in proptest::strategy::collection::vec(proptest::arbitrary::any::<u8>(), 0..512),
        chunk in 1usize..32,
        protocol in 0u8..3,
    ) {
        let protocol = match protocol {
            0 => WireProtocol::Auto,
            1 => WireProtocol::Json,
            _ => WireProtocol::Csv,
        };
        let mut dec = FrameDecoder::new(protocol, 256);
        'outer: for piece in noise.chunks(chunk) {
            dec.push(piece);
            loop {
                match dec.next_frame() {
                    Ok(Some(_)) => {}
                    Ok(None) => break,
                    // A typed error is the contract; the stream is dead.
                    Err(_) => break 'outer,
                }
            }
        }
        // EOF on whatever state noise left behind is also panic-free.
        let _ = dec.eof_error();
    }

    /// Noise *prefixed by a valid frame* still yields that frame before
    /// any error — the decoder never corrupts already-sound input.
    #[test]
    fn valid_prefix_survives_trailing_noise(
        noise in proptest::strategy::collection::vec(proptest::arbitrary::any::<u8>(), 1..128),
        chunk in 1usize..32,
    ) {
        let frame = build_frame(3, 9, 720, &[(4, 5, -1.25)]);
        let mut bytes = encode_json(&frame).unwrap();
        bytes.extend_from_slice(&noise);
        let mut dec = FrameDecoder::new(WireProtocol::Json, 1 << 20);
        let mut got = Vec::new();
        'outer: for piece in bytes.chunks(chunk) {
            dec.push(piece);
            loop {
                match dec.next_frame() {
                    Ok(Some(f)) => got.push(f),
                    Ok(None) => break,
                    Err(_) => break 'outer,
                }
            }
        }
        prop_assert!(!got.is_empty());
        prop_assert_eq!(&got[0], &frame);
    }
}
