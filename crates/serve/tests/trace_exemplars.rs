//! End-to-end causal-trace properties:
//!
//! * Across a real TCP fabric (coordinator + remote shard workers), an
//!   alarmed snapshot's retained exemplar covers all seven pipeline
//!   stages, with worker-side slices shipped over the wire inside the
//!   board frames.
//! * The exemplar layer is an observer: with exemplars disabled (the
//!   default) or enabled, the report stream is bit-identical to the
//!   offline baseline replay.

mod common;

use std::thread::JoinHandle;

use gridwatch_obs::{ExemplarConfig, ExemplarTracer, PipelineObs, Stage};
use gridwatch_serve::{
    BackpressurePolicy, Coordinator, FabricConfig, FabricError, ServeConfig, ShardWorker,
    ShardedEngine, WorkerSummary,
};
use proptest::prelude::*;

fn exemplar_obs(head_sample_every: u64) -> PipelineObs {
    PipelineObs {
        exemplar: ExemplarTracer::enabled(ExemplarConfig {
            head_sample_every,
            ..ExemplarConfig::default()
        }),
        ..PipelineObs::default()
    }
}

struct Worker {
    addr: String,
    handle: JoinHandle<Result<WorkerSummary, FabricError>>,
}

fn spawn_worker() -> Worker {
    let worker = ShardWorker::bind("127.0.0.1:0").expect("bind worker");
    let addr = worker.local_addr().to_string();
    let handle = std::thread::spawn(move || worker.run());
    Worker { addr, handle }
}

#[test]
fn fabric_exemplars_cover_all_seven_stages_across_the_wire() {
    let snapshot = common::trained();
    let trace = common::trace(24);
    let want = common::reference_reports(snapshot.clone(), &trace);
    let alarmed_seqs: Vec<u64> = want
        .iter()
        .enumerate()
        .filter(|(_, r)| !r.alarms.is_empty())
        .map(|(k, _)| k as u64)
        .collect();
    assert!(!alarmed_seqs.is_empty(), "trace must trip alarms");

    let workers: Vec<Worker> = (0..2).map(|_| spawn_worker()).collect();
    let addrs: Vec<String> = workers.iter().map(|w| w.addr.clone()).collect();
    // head_sample_every: 1 retains every snapshot, so the suite also
    // proves head sampling and alarm retention coexist.
    let obs = exemplar_obs(1);
    let mut coordinator =
        Coordinator::connect_with_obs(snapshot, &addrs, FabricConfig::default(), obs.clone())
            .expect("connect fabric");
    for snap in &trace {
        coordinator.submit(snap.clone()).expect("submit");
    }
    let (reports, stats) = coordinator.shutdown(true);
    assert_eq!(reports, want, "exemplar capture must not perturb reports");
    assert_eq!(stats.reports, trace.len() as u64);
    for worker in workers {
        worker.handle.join().expect("worker thread").expect("run");
    }

    let (_, exemplars) = obs.exemplar.snapshot_indexed();
    assert_eq!(exemplars.len(), trace.len(), "head sampling keeps all");
    for trace_doc in &exemplars {
        assert_eq!(trace_doc.source, "coordinator");
        for stage in Stage::ALL {
            assert!(
                trace_doc.spans.iter().any(|s| s.stage == stage.name()),
                "seq {} missing {} in {:?}",
                trace_doc.seq,
                stage.name(),
                trace_doc.spans
            );
        }
        // One worker-attributed, shard-stamped Score slice per shard.
        let scored: Vec<_> = trace_doc
            .spans
            .iter()
            .filter(|s| s.stage == "score")
            .collect();
        assert_eq!(scored.len(), 2, "seq {}", trace_doc.seq);
        let mut shards: Vec<u64> = scored.iter().map(|s| s.shard.unwrap()).collect();
        shards.sort_unstable();
        assert_eq!(shards, vec![0, 1]);
        assert!(scored.iter().all(|s| s.worker.starts_with("worker-")));
    }
    let got_alarmed: Vec<u64> = exemplars
        .iter()
        .filter(|t| t.alarmed)
        .map(|t| t.seq)
        .collect();
    assert_eq!(got_alarmed, alarmed_seqs);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The exemplar layer never perturbs detection: with exemplars
    /// disabled (default) or enabled with aggressive head sampling,
    /// the sharded engine's report stream is bit-identical to the
    /// offline baseline replay of the same snapshots.
    #[test]
    fn report_stream_is_bit_identical_with_exemplars_on_or_off(
        steps in 6u64..28,
        shards in 1usize..5,
        head_every in 0u64..4,
    ) {
        let snapshot = common::trained();
        let trace = common::trace(steps);
        let want = common::reference_reports(snapshot.clone(), &trace);

        for obs in [PipelineObs::default(), exemplar_obs(head_every)] {
            let mut engine = ShardedEngine::start_with_obs(
                snapshot.clone(),
                ServeConfig {
                    shards,
                    queue_capacity: 16,
                    backpressure: BackpressurePolicy::Block,
                    sampling: None,
                },
                obs,
            );
            for snap in &trace {
                engine.submit(snap.clone());
            }
            let (reports, _) = engine.shutdown();
            prop_assert_eq!(&reports, &want);
        }
    }
}
