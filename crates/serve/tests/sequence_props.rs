//! Property coverage for `SourceTable` gap-abandonment accounting.
//!
//! The contract under test: for ANY interleaving of loss, reorder, and
//! duplication, the sum of `GapAbandoned.skipped` counts equals the true
//! number of sequence numbers below the final watermark that were never
//! applied — the table neither double-counts a lost frame nor loses
//! track of one. And after a resume, progress (which excludes pending
//! reorder buffers) admits exactly the unapplied suffix again.
//!
//! The exact-accounting property below holds only while every gap is
//! narrower than `MAX_COUNTED_GAP` (65 536): beyond it the reported
//! `skipped` saturates by design (skew tolerance, see `sequence.rs`).
//! The generators here keep sequence numbers under 200, far below the
//! cap, so exactness is the property being tested; the saturating case
//! has its own unit test.

use std::collections::BTreeSet;

use gridwatch_detect::Snapshot;
use gridwatch_serve::{Admission, SourceTable};
use gridwatch_timeseries::Timestamp;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn snap(k: u64) -> Snapshot {
    Snapshot::new(Timestamp::from_secs(k * 360))
}

fn seq_of(s: &Snapshot) -> u64 {
    s.at().as_secs() / 360
}

/// A delivery schedule derived from a true stream `0..n`: some frames
/// lost, the survivors arbitrarily shuffled, and some delivered twice.
fn schedule(seed: u64, n: u64, loss_p: f64, dup_p: f64) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut events: Vec<u64> = (0..n).filter(|_| rng.random::<f64>() >= loss_p).collect();
    // Fisher-Yates shuffle — arbitrary reorder, not just bounded.
    for i in (1..events.len()).rev() {
        let j = (rng.random::<u64>() % (i as u64 + 1)) as usize;
        events.swap(i, j);
    }
    // Duplicate deliveries of already-scheduled frames.
    let mut out = Vec::with_capacity(events.len() * 2);
    for seq in events {
        out.push(seq);
        if rng.random::<f64>() < dup_p {
            out.push(seq);
        }
    }
    out
}

/// Feeds a schedule through one source, returning the applied sequence
/// numbers (in application order) and the sum of skipped counts.
fn run(table: &mut SourceTable, events: &[u64]) -> (Vec<u64>, u64) {
    let mut applied = Vec::new();
    let mut skipped_total = 0u64;
    for &seq in events {
        match table.admit("agent-1", seq, snap(seq)) {
            Admission::Ready(snaps) => applied.extend(snaps.iter().map(seq_of)),
            Admission::GapAbandoned { skipped, released } => {
                skipped_total += skipped;
                applied.extend(released.iter().map(seq_of));
            }
            Admission::Buffered | Admission::Duplicate => {}
        }
        table.check_window_bound();
    }
    (applied, skipped_total)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `skipped` counts sum to the true number of lost sequence numbers:
    /// every seq below the final watermark was either applied exactly
    /// once or skipped exactly once, never both, never neither.
    #[test]
    fn skipped_counts_account_for_every_lost_seq(
        seed in 0u64..1_000_000,
        n in 1u64..200,
        loss_p in 0.0f64..0.5,
        dup_p in 0.0f64..0.5,
        capacity in 1usize..=8,
    ) {
        let events = schedule(seed, n, loss_p, dup_p);
        let mut table = SourceTable::new(capacity);
        let (applied, skipped_total) = run(&mut table, &events);

        // Applied seqs are strictly increasing (in-order release) and
        // therefore unique.
        prop_assert!(applied.windows(2).all(|w| w[0] < w[1]), "{applied:?}");

        let watermark = table.progress().get("agent-1").copied().unwrap_or(0);
        let applied_set: BTreeSet<u64> = applied.iter().copied().collect();
        prop_assert!(applied_set.iter().all(|&s| s < watermark));

        // The partition invariant: [0, watermark) = applied ∪ skipped.
        prop_assert_eq!(
            applied.len() as u64 + skipped_total,
            watermark,
            "applied {} + skipped {} must cover the watermark {}",
            applied.len(),
            skipped_total,
            watermark
        );
        let truly_lost = (0..watermark).filter(|s| !applied_set.contains(s)).count() as u64;
        prop_assert_eq!(skipped_total, truly_lost);
    }

    /// Resume interplay: progress excludes pending (buffered, unapplied)
    /// frames, so after a crash the resumed table treats exactly the
    /// applied-or-skipped prefix as duplicates and admits everything
    /// else — including frames that were sitting in the reorder buffer
    /// when the crash hit.
    #[test]
    fn resume_readmits_pending_frames_and_dedups_the_prefix(
        seed in 0u64..1_000_000,
        n in 1u64..150,
        loss_p in 0.0f64..0.4,
        capacity in 1usize..=6,
        cut_frac in 0.0f64..1.0,
    ) {
        let events = schedule(seed, n, loss_p, 0.2);
        let cut = ((events.len() as f64) * cut_frac) as usize;
        let mut table = SourceTable::new(capacity);
        let (_, _) = run(&mut table, &events[..cut]);
        let watermark = table.progress().get("agent-1").copied().unwrap_or(0);

        // Frames buffered (pending) at the cut sit at/above the
        // watermark by construction; collect them from the event prefix.
        let mut resumed = SourceTable::resume(capacity, table.progress());
        let mut reapplied = Vec::new();
        for k in 0..n {
            match resumed.admit("agent-1", k, snap(k)) {
                Admission::Ready(snaps) => reapplied.extend(snaps.iter().map(seq_of)),
                Admission::Duplicate => {
                    prop_assert!(
                        k < watermark,
                        "seq {} >= watermark {} must not be a duplicate after resume \
                         (pending buffers are excluded from progress)",
                        k,
                        watermark
                    );
                }
                other => {
                    return Err(TestCaseError::fail(format!(
                        "in-order replay must apply or dedup, got {other:?} for seq {k}"
                    )));
                }
            }
        }
        // The full in-order replay applies exactly the suffix.
        prop_assert_eq!(reapplied, (watermark..n).collect::<Vec<_>>());
        prop_assert_eq!(
            resumed.progress().get("agent-1").copied().unwrap_or(0),
            n.max(watermark)
        );
    }
}
