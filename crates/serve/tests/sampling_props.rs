//! Property coverage for overload-aware adaptive sampling: below the
//! queue watermark the sampler must be INERT — the report stream is
//! bit-identical to an engine configured with no sampling at all, for
//! any trace, shard count, or sampling tuning. Shedding is allowed to
//! change results only once queues actually back up; an idle system
//! must never pay a fidelity cost for having the feature enabled.

use gridwatch_detect::{DetectionEngine, EngineConfig, EngineSnapshot, Snapshot, StepReport};
use gridwatch_serve::{BackpressurePolicy, SamplingConfig, ServeConfig, ShardedEngine};
use gridwatch_timeseries::{
    MachineId, MeasurementId, MeasurementPair, MetricKind, PairSeries, Timestamp,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const STEP_SECS: u64 = 360;

fn ids(measurements: usize) -> Vec<MeasurementId> {
    (0..measurements as u32)
        .map(|m| MeasurementId::new(MachineId::new(m / 2), MetricKind::Custom((m % 2) as u16)))
        .collect()
}

fn value(m: usize, load: f64, noise: f64) -> f64 {
    (m as f64 + 1.0) * load + 7.0 * m as f64 + noise
}

fn build_case(seed: u64, measurements: usize, steps: u64) -> (EngineSnapshot, Vec<Snapshot>) {
    let ids = ids(measurements);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut noise = |scale: f64| (rng.random::<f64>() - 0.5) * scale;
    let mut pairs = Vec::new();
    for i in 0..measurements {
        for j in (i + 1)..measurements {
            let pair = MeasurementPair::new(ids[i], ids[j]).unwrap();
            let history = PairSeries::from_samples((0..400u64).map(|k| {
                let load = (k % 48) as f64;
                (
                    k * STEP_SECS,
                    value(i, load, noise(0.4)),
                    value(j, load, noise(0.4)),
                )
            }))
            .unwrap();
            pairs.push((pair, history));
        }
    }
    let engine = DetectionEngine::train(pairs, EngineConfig::default())
        .expect("coupled histories always train")
        .snapshot();
    let trace = (0..steps)
        .map(|k| {
            let mut snap = Snapshot::new(Timestamp::from_secs((400 + k) * STEP_SECS));
            let load = (k % 48) as f64;
            for (m, &mid) in ids.iter().enumerate() {
                snap.insert(mid, value(m, load, noise(0.4)));
            }
            snap
        })
        .collect();
    (engine, trace)
}

fn replay(
    engine: EngineSnapshot,
    trace: &[Snapshot],
    shards: usize,
    sampling: Option<SamplingConfig>,
) -> (Vec<StepReport>, gridwatch_serve::ServeStats) {
    let mut engine = ShardedEngine::start(
        engine,
        ServeConfig {
            shards,
            // A queue this deep never fills from a same-thread driver:
            // the submit loop and the drain race, but depth stays far
            // below any watermark percentage of 4096.
            queue_capacity: 4096,
            backpressure: BackpressurePolicy::Block,
            sampling,
        },
    );
    for snap in trace {
        let report = engine.submit(snap.clone());
        assert!(report.accepted(), "below watermark nothing is shed");
        assert!(!report.sampled_out);
    }
    engine.shutdown()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Below the watermark, enabling sampling changes NOTHING: reports
    /// are bit-identical, no snapshot is shed, coverage stays 1.0.
    #[test]
    fn sampling_below_watermark_is_bit_identical(
        seed in 0u64..1_000_000,
        measurements in 4usize..=6,
        steps in 8u64..=24,
        shards in 1usize..=4,
        watermark_pct in 10u8..=100,
        stride in 2u32..=8,
    ) {
        let (engine, trace) = build_case(seed, measurements, steps);
        let (want, base_stats) = replay(engine.clone(), &trace, shards, None);
        let (got, stats) = replay(
            engine,
            &trace,
            shards,
            Some(SamplingConfig { watermark_pct, stride }),
        );
        prop_assert_eq!(&got, &want, "sampling below watermark diverged");
        prop_assert_eq!(stats.sampled_out, 0);
        prop_assert_eq!(base_stats.sampled_out, 0);
        prop_assert!((stats.coverage_fraction - 1.0).abs() < 1e-12);
        prop_assert_eq!(stats.reports, trace.len() as u64);
    }

    /// A disabled stride (< 2) is inert even at watermark 0: the knob
    /// cannot half-engage.
    #[test]
    fn disabled_stride_never_sheds(
        seed in 0u64..1_000_000,
        steps in 8u64..=16,
    ) {
        let (engine, trace) = build_case(seed, 4, steps);
        let (want, _) = replay(engine.clone(), &trace, 2, None);
        let (got, stats) = replay(
            engine,
            &trace,
            2,
            Some(SamplingConfig { watermark_pct: 0, stride: 1 }),
        );
        prop_assert_eq!(&got, &want);
        prop_assert_eq!(stats.sampled_out, 0);
    }
}
