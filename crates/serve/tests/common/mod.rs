//! Shared fixtures for the network integration suites: a trained
//! engine, a deterministic trace, and [`ChaosClient`] — a raw-TCP test
//! client that can misbehave on demand (partial writes, mid-frame
//! disconnects, stalls, garbage).

#![allow(dead_code)] // each test binary uses its own slice of this module

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::path::PathBuf;
use std::time::Duration;

use gridwatch_detect::{
    AlarmPolicy, DetectionEngine, EngineConfig, EngineSnapshot, Snapshot, StepReport,
};
use gridwatch_serve::{encode_csv, encode_json, WireFrame};
use gridwatch_timeseries::{
    MachineId, MeasurementId, MeasurementPair, MetricKind, PairSeries, Timestamp,
};

pub const STEP_SECS: u64 = 360;
pub const MEASUREMENTS: usize = 6;

pub fn ids() -> Vec<MeasurementId> {
    (0..MEASUREMENTS as u32)
        .map(|m| MeasurementId::new(MachineId::new(m / 2), MetricKind::Custom((m % 2) as u16)))
        .collect()
}

pub fn value(m: usize, k: u64) -> f64 {
    let load = (k % 48) as f64;
    (m as f64 + 1.0) * load + 5.0 * m as f64
}

/// Trains all 15 pairs over 6 linearly-coupled measurements.
pub fn trained() -> EngineSnapshot {
    let ids = ids();
    let config = EngineConfig {
        alarm: AlarmPolicy {
            system_threshold: 0.7,
            measurement_threshold: 0.4,
            min_consecutive: 2,
        },
        ..EngineConfig::default()
    };
    let mut pairs = Vec::new();
    for i in 0..MEASUREMENTS {
        for j in (i + 1)..MEASUREMENTS {
            let pair = MeasurementPair::new(ids[i], ids[j]).unwrap();
            let history = PairSeries::from_samples(
                (0..400u64).map(|k| (k * STEP_SECS, value(i, k), value(j, k))),
            )
            .unwrap();
            pairs.push((pair, history));
        }
    }
    DetectionEngine::train(pairs, config).unwrap().snapshot()
}

/// A trace that runs healthy, then breaks the last measurement for a
/// stretch (long enough to trip the alarm debounce), then recovers.
pub fn trace(steps: u64) -> Vec<Snapshot> {
    trace_from(0, steps)
}

/// The same trace, starting `offset` steps in (for post-recovery tails).
pub fn trace_from(offset: u64, steps: u64) -> Vec<Snapshot> {
    let ids = ids();
    (offset..offset + steps)
        .map(|k| {
            let mut snap = Snapshot::new(Timestamp::from_secs((400 + k) * STEP_SECS));
            for (m, &mid) in ids.iter().enumerate() {
                let v = if m == MEASUREMENTS - 1 && (8..16).contains(&k) {
                    -200.0
                } else {
                    value(m, k)
                };
                snap.insert(mid, v);
            }
            snap
        })
        .collect()
}

/// The ground truth: a single-threaded engine replaying the same trace.
pub fn reference_reports(snapshot: EngineSnapshot, trace: &[Snapshot]) -> Vec<StepReport> {
    let mut engine = DetectionEngine::from_snapshot(snapshot);
    trace.iter().map(|s| engine.step(s)).collect()
}

/// Wire frames for a trace, sequence-stamped from `first_seq`.
pub fn frames(source: &str, first_seq: u64, trace: &[Snapshot]) -> Vec<WireFrame> {
    trace
        .iter()
        .enumerate()
        .map(|(k, snap)| WireFrame {
            source: source.to_string(),
            seq: first_seq + k as u64,
            snapshot: snap.clone(),
        })
        .collect()
}

pub fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gridwatch-net-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A raw-TCP client with precise control over how bytes hit the wire, so
/// tests can inject every network fault class deterministically.
pub struct ChaosClient {
    stream: TcpStream,
}

impl ChaosClient {
    pub fn connect(addr: SocketAddr) -> Self {
        let stream = TcpStream::connect(addr).expect("connect to listener");
        stream.set_nodelay(true).expect("nodelay");
        ChaosClient { stream }
    }

    /// Writes raw bytes (whatever they are) and flushes.
    pub fn send(&mut self, bytes: &[u8]) {
        self.stream.write_all(bytes).expect("write to listener");
        self.stream.flush().expect("flush");
    }

    /// Writes bytes in fixed-size chunks, flushing between chunks, so
    /// the server sees interleaved partial writes.
    pub fn send_chunked(&mut self, bytes: &[u8], chunk: usize) {
        for piece in bytes.chunks(chunk.max(1)) {
            self.send(piece);
        }
    }

    /// Sends one frame in the length-prefixed JSON encoding.
    pub fn send_json(&mut self, frame: &WireFrame) {
        let bytes = encode_json(frame).expect("encodable frame");
        self.send(&bytes);
    }

    /// Sends one frame as a CSV line.
    pub fn send_csv(&mut self, frame: &WireFrame) {
        let line = encode_csv(frame).expect("encodable frame");
        self.send(line.as_bytes());
    }

    /// Half-closes the write side so the server observes EOF while this
    /// client can still read.
    pub fn finish_writing(&self) {
        self.stream
            .shutdown(Shutdown::Write)
            .expect("half-close write side");
    }

    /// Blocks until the server closes this connection (EOF or reset).
    /// This is the event a test waits on instead of sleeping: once it
    /// returns, the server has fully processed this connection's fate.
    pub fn wait_closed(mut self) {
        self.stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("read timeout");
        let mut sink = [0u8; 256];
        loop {
            match self.stream.read(&mut sink) {
                Ok(0) | Err(_) => return,
                Ok(_) => continue,
            }
        }
    }

    /// Drops the socket abruptly (mid-frame disconnects).
    pub fn disconnect(self) {
        drop(self);
    }
}
