//! The multi-node fabric equivalence property: a [`Coordinator`]
//! fanning snapshots out to N remote [`ShardWorker`] processes (here:
//! threads with real TCP sockets — `{N workers × 1 shard each}`)
//! produces the exact same `StepReport` stream — boards and alarms,
//! bit for bit — as a single unsharded `DetectionEngine`, which the
//! sibling `equivalence` suite proves equals `{1 process × N shards}`.
//! Holds for shard counts 1/2/4/8, and across a worker kill with
//! checkpoint-transfer migration mid-stream.

use std::thread::JoinHandle;

use gridwatch_detect::{
    AlarmPolicy, DetectionEngine, EngineConfig, EngineSnapshot, Snapshot, StepReport,
};
use gridwatch_obs::{parse_exposition, PipelineObs, Stage};
use gridwatch_serve::{
    Coordinator, FabricConfig, FabricError, ShardWorker, WorkerController, WorkerSummary,
};
use gridwatch_timeseries::{
    MachineId, MeasurementId, MeasurementPair, MetricKind, PairSeries, Timestamp,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const STEP_SECS: u64 = 360;

fn ids(measurements: usize) -> Vec<MeasurementId> {
    (0..measurements as u32)
        .map(|m| MeasurementId::new(MachineId::new(m / 2), MetricKind::Custom((m % 2) as u16)))
        .collect()
}

fn value(m: usize, load: f64, noise: f64) -> f64 {
    (m as f64 + 1.0) * load + 7.0 * m as f64 + noise
}

struct Case {
    engine: EngineSnapshot,
    trace: Vec<Snapshot>,
}

/// Same randomized-system builder as the in-process equivalence suite:
/// coupled training histories plus a test trace that breaks one
/// measurement over a window.
fn build_case(
    seed: u64,
    measurements: usize,
    steps: u64,
    break_measurement: usize,
    break_from: u64,
    break_len: u64,
) -> Case {
    let ids = ids(measurements);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut noise = |scale: f64| (rng.random::<f64>() - 0.5) * scale;

    let config = EngineConfig {
        alarm: AlarmPolicy {
            system_threshold: 0.7,
            measurement_threshold: 0.4,
            min_consecutive: 2,
        },
        ..EngineConfig::default()
    };
    let mut pairs = Vec::new();
    for i in 0..measurements {
        for j in (i + 1)..measurements {
            let pair = MeasurementPair::new(ids[i], ids[j]).unwrap();
            let history = PairSeries::from_samples((0..400u64).map(|k| {
                let load = (k % 48) as f64;
                (
                    k * STEP_SECS,
                    value(i, load, noise(0.4)),
                    value(j, load, noise(0.4)),
                )
            }))
            .unwrap();
            pairs.push((pair, history));
        }
    }
    let engine = DetectionEngine::train(pairs, config)
        .expect("coupled histories always train")
        .snapshot();

    let break_measurement = break_measurement % measurements;
    let trace = (0..steps)
        .map(|k| {
            let mut snap = Snapshot::new(Timestamp::from_secs((400 + k) * STEP_SECS));
            let load = (k % 48) as f64;
            for (m, &mid) in ids.iter().enumerate() {
                let broken =
                    m == break_measurement && (break_from..break_from + break_len).contains(&k);
                let v = if broken {
                    -150.0 - noise(10.0).abs()
                } else {
                    value(m, load, noise(0.4))
                };
                snap.insert(mid, v);
            }
            snap
        })
        .collect();
    Case { engine, trace }
}

fn unsharded_reports(case: &Case) -> Vec<StepReport> {
    let mut engine = DetectionEngine::from_snapshot(case.engine.clone());
    case.trace.iter().map(|s| engine.step(s)).collect()
}

/// One in-process "remote" worker: a real TCP listener served on its
/// own thread, killable mid-stream through its controller.
struct Worker {
    addr: String,
    controller: WorkerController,
    handle: JoinHandle<Result<WorkerSummary, FabricError>>,
}

fn spawn_worker() -> Worker {
    let worker = ShardWorker::bind("127.0.0.1:0").expect("bind worker");
    let addr = worker.local_addr().to_string();
    let controller = worker.controller();
    let handle = std::thread::spawn(move || worker.run());
    Worker {
        addr,
        controller,
        handle,
    }
}

fn spawn_workers(n: usize) -> Vec<Worker> {
    (0..n).map(|_| spawn_worker()).collect()
}

fn join_workers(workers: Vec<Worker>) {
    for worker in workers {
        // A killed worker returns Ok too; only a real server error
        // should fail the test.
        worker
            .handle
            .join()
            .expect("worker thread")
            .expect("worker run");
    }
}

/// Streams the whole trace through a fabric of `shards` workers.
fn fabric_reports(case: &Case, shards: usize) -> Vec<StepReport> {
    let workers = spawn_workers(shards);
    let addrs: Vec<String> = workers.iter().map(|w| w.addr.clone()).collect();
    let mut coordinator =
        Coordinator::connect(case.engine.clone(), &addrs, FabricConfig::default())
            .expect("connect fabric");
    for snap in &case.trace {
        coordinator.submit(snap.clone()).expect("submit");
    }
    let (reports, stats) = coordinator.shutdown(true);
    assert_eq!(stats.reports, case.trace.len() as u64);
    assert_eq!(stats.stale_boards, 0);
    assert_eq!(stats.disconnects, 0);
    join_workers(workers);
    reports
}

fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir =
        std::env::temp_dir().join(format!("gridwatch-fabric-eq-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Streams the trace through a fabric, but checkpoints a third of the
/// way in, kills one worker two thirds of the way in, and migrates its
/// shard to a fresh successor via checkpoint state + journal replay.
fn fabric_reports_with_migration(
    case: &Case,
    shards: usize,
    victim: usize,
    tag: &str,
) -> Vec<StepReport> {
    let dir = scratch_dir(tag);
    let mut workers = spawn_workers(shards);
    let addrs: Vec<String> = workers.iter().map(|w| w.addr.clone()).collect();
    let mut coordinator =
        Coordinator::connect(case.engine.clone(), &addrs, FabricConfig::default())
            .expect("connect fabric");

    let n = case.trace.len();
    let cut = n / 3;
    let kill_at = (2 * n) / 3;
    for snap in &case.trace[..cut] {
        coordinator.submit(snap.clone()).expect("submit");
    }
    coordinator.checkpoint(&dir).expect("checkpoint");
    for snap in &case.trace[cut..kill_at] {
        coordinator.submit(snap.clone()).expect("submit");
    }

    // Kill the victim mid-epoch and migrate its shard to a successor.
    workers[victim].controller.kill();
    coordinator.declare_dead(victim);
    let successor = spawn_worker();
    coordinator
        .attach_worker(victim, &successor.addr)
        .expect("attach successor");
    let old = std::mem::replace(&mut workers[victim], successor);
    old.handle
        .join()
        .expect("victim thread")
        .expect("victim run");

    for snap in &case.trace[kill_at..] {
        coordinator.submit(snap.clone()).expect("submit");
    }
    let (reports, stats) = coordinator.shutdown(true);
    assert_eq!(stats.reports, n as u64, "every step must still report");
    assert_eq!(stats.migrations, 1);
    assert_eq!(stats.checkpoints, 1);
    join_workers(workers);
    let _ = std::fs::remove_dir_all(&dir);
    reports
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// `{N processes × 1 shard}` over TCP equals the unsharded engine
    /// (and, transitively, `{1 process × N shards}`) bit for bit.
    #[test]
    fn remote_fabric_matches_unsharded_bit_for_bit(
        seed in 0u64..1_000_000,
        measurements in 4usize..=6,
        steps in 8u64..=18,
        break_measurement in 0usize..6,
        break_from in 0u64..10,
        break_len in 0u64..8,
    ) {
        let case = build_case(seed, measurements, steps, break_measurement, break_from, break_len);
        let want = unsharded_reports(&case);
        for shards in [1usize, 2, 4, 8] {
            let got = fabric_reports(&case, shards);
            prop_assert_eq!(
                &got,
                &want,
                "{} remote shards diverged from the unsharded engine",
                shards
            );
        }
    }

    /// The stream stays bit-identical across a worker kill mid-epoch
    /// with checkpoint-transfer migration to a successor.
    #[test]
    fn migration_preserves_the_report_stream(
        seed in 0u64..1_000_000,
        measurements in 4usize..=6,
        steps in 9u64..=18,
        break_measurement in 0usize..6,
        break_from in 0u64..10,
        break_len in 0u64..8,
        victim_pick in 0usize..8,
    ) {
        let case = build_case(seed, measurements, steps, break_measurement, break_from, break_len);
        let want = unsharded_reports(&case);
        for shards in [1usize, 2, 4, 8] {
            let victim = victim_pick % shards;
            let got = fabric_reports_with_migration(
                &case,
                shards,
                victim,
                &format!("{seed}-{shards}"),
            );
            prop_assert_eq!(
                &got,
                &want,
                "{} shards with shard {} migrated diverged from the unsharded engine",
                shards,
                victim
            );
        }
    }
}

/// Turning the observability layer on — span tracing across the wire,
/// score timing on the workers, the metrics probe rendering live — must
/// not perturb the stream: the reports stay bit-identical to the
/// unsharded engine, while the tracer genuinely collects spans.
#[test]
fn observed_fabric_stays_bit_identical() {
    let case = build_case(19731102, 5, 16, 2, 4, 6);
    let want = unsharded_reports(&case);

    let workers = spawn_workers(3);
    let addrs: Vec<String> = workers.iter().map(|w| w.addr.clone()).collect();
    let obs = PipelineObs::default();
    obs.tracer.enable();
    let mut coordinator = Coordinator::connect_with_obs(
        case.engine.clone(),
        &addrs,
        FabricConfig::default(),
        obs.clone(),
    )
    .expect("connect fabric");
    let probe = coordinator.metrics_probe();
    for snap in &case.trace {
        coordinator.submit(snap.clone()).expect("submit");
    }
    let (got, stats) = coordinator.shutdown(true);
    join_workers(workers);
    assert_eq!(got, want, "observability must not change the stream");
    assert_eq!(stats.reports, case.trace.len() as u64);

    // Every submit took a Route span, and every accepted board carried
    // its worker-side score timing upstream (3 shards × every step).
    let steps = case.trace.len() as u64;
    assert_eq!(obs.tracer.stage(Stage::Route).count, steps);
    assert_eq!(obs.tracer.stage(Stage::Score).count, 3 * steps);
    assert_eq!(obs.tracer.stage(Stage::Report).count, steps);

    // The probe renders a parseable exposition carrying the same counts.
    let text = probe.to_prometheus();
    let samples = parse_exposition(&text).expect("parseable exposition");
    let submitted = samples
        .iter()
        .find(|s| s.name == "gridwatch_fabric_submitted_total")
        .expect("submitted counter");
    assert_eq!(submitted.value, steps as f64);
    let route_count = samples
        .iter()
        .find(|s| {
            s.name == "gridwatch_stage_ns_count"
                && s.labels.iter().any(|(k, v)| k == "stage" && v == "route")
        })
        .expect("route span histogram");
    assert_eq!(route_count.value, steps as f64);
}

/// Non-random pin: the migration path must preserve an alarm-firing
/// trace exactly — kills land mid-alarm-window so debounce state is
/// exercised across the merge.
#[test]
fn alarms_survive_migration_bit_for_bit() {
    let case = build_case(20080529, 6, 24, 5, 8, 9);
    let want = unsharded_reports(&case);
    let fired: usize = want.iter().map(|r| r.alarms.len()).sum();
    assert!(fired > 0, "pin trace must raise alarms");
    for shards in [2usize, 4] {
        let got =
            fabric_reports_with_migration(&case, shards, shards - 1, &format!("pin-{shards}"));
        assert_eq!(got, want, "{shards} shards");
    }
}
