//! Sketch gating through the sharded serving layer: candidate pairs are
//! partitioned alongside models, promoted inside the owning shard,
//! surfaced in `ServeStats`, carried through checkpoints, and the whole
//! gated pipeline stays bit-identical to a single-threaded engine.

use std::path::PathBuf;

use gridwatch_detect::{
    DetectionEngine, EngineConfig, EngineSnapshot, SketchConfig, Snapshot, StepReport,
};
use gridwatch_serve::{BackpressurePolicy, Checkpointer, ServeConfig, ShardedEngine};
use gridwatch_timeseries::{
    MachineId, MeasurementId, MeasurementPair, MetricKind, PairSeries, Timestamp,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const STEP_SECS: u64 = 360;

fn id(tag: u16) -> MeasurementId {
    MeasurementId::new(MachineId::new(0), MetricKind::Custom(tag))
}

/// The shared stationary load at tick `k`.
fn load_at(k: u64) -> f64 {
    let phase = (k % 48) as f64 / 48.0 * std::f64::consts::TAU;
    30.0 + 25.0 * phase.sin()
}

/// One trained pair `(0,1)`, one truly-correlated candidate `(2,3)`,
/// and four noise-only candidates over measurements 4 and 5.
fn trained_with_candidates() -> EngineSnapshot {
    let sketch = SketchConfig {
        // 64 lanes: estimator noise std ~1/sqrt(depth) = 0.125, so the
        // 0.6 admission threshold sits ~5 sigma above noise and this
        // test cannot flicker.
        depth: 64,
        rescore_every: 4,
        admit_rounds: 2,
        demote_rounds: 3,
        cooldown: 20,
        min_history: 30,
        ..SketchConfig::default()
    };
    let config = EngineConfig {
        sketch: Some(sketch),
        ..EngineConfig::default()
    };
    let pair = MeasurementPair::new(id(0), id(1)).unwrap();
    let history = PairSeries::from_samples((0..300u64).map(|k| {
        let load = load_at(k);
        (k * STEP_SECS, load, 2.0 * load + 10.0)
    }))
    .unwrap();
    let mut engine = DetectionEngine::train(vec![(pair, history)], config).unwrap();
    let candidates: Vec<MeasurementPair> = [(2, 3), (2, 4), (3, 5), (4, 5), (1, 4)]
        .iter()
        .map(|&(a, b)| MeasurementPair::new(id(a), id(b)).unwrap())
        .collect();
    engine.add_candidates(candidates);
    engine.snapshot()
}

/// A stationary trace: measurements 0-3 follow the shared load (so the
/// `(2,3)` candidate is truly correlated), 4 and 5 are pure noise.
fn trace(steps: u64) -> Vec<Snapshot> {
    // The trace is materialized once (seeded RNG, fixed order), so the
    // sharded and unsharded runs consume byte-identical inputs.
    let mut rng = StdRng::seed_from_u64(42);
    (0..steps)
        .map(|k| {
            let tick = 300 + k;
            let load = load_at(tick);
            let mut noise = |scale: f64| scale * (rng.random::<f64>() * 2.0 - 1.0);
            let mut snap = Snapshot::new(Timestamp::from_secs(tick * STEP_SECS));
            snap.insert(id(0), load + noise(1.0));
            snap.insert(id(1), 2.0 * load + 10.0 + noise(1.0));
            snap.insert(id(2), 3.0 * load + 5.0 + noise(1.0));
            snap.insert(id(3), 1.5 * load + 2.0 + noise(1.0));
            snap.insert(id(4), noise(30.0));
            snap.insert(id(5), noise(30.0));
            snap
        })
        .collect()
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gridwatch-sketch-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn serve_config(shards: usize) -> ServeConfig {
    ServeConfig {
        shards,
        queue_capacity: 8,
        backpressure: BackpressurePolicy::Block,
        sampling: None,
    }
}

/// The sharded gated pipeline is bit-identical to the unsharded one,
/// counts the promotion in `ServeStats`, and leaves only the noise
/// candidates unmaterialized.
#[test]
fn sharded_promotion_matches_unsharded_and_counts_in_stats() {
    let snapshot = trained_with_candidates();
    let trace = trace(80);

    let mut single = DetectionEngine::from_snapshot(snapshot.clone());
    let want: Vec<StepReport> = trace.iter().map(|s| single.step(s)).collect();
    assert_eq!(single.promotion_count(), 1, "exactly the (2,3) candidate");
    assert_eq!(single.model_count(), 2);
    assert_eq!(single.candidates().len(), 4);

    let mut engine = ShardedEngine::start(snapshot, serve_config(3));
    for snap in &trace {
        engine.submit(snap.clone());
    }
    let (got, stats) = engine.shutdown();
    assert_eq!(got, want, "sharded reports must match the unsharded run");
    assert_eq!(stats.promotions, 1);
    assert_eq!(stats.demotions, 0);
    let tracked: usize = stats.shards.iter().map(|s| s.tracked_pairs).sum();
    let materialized: usize = stats.shards.iter().map(|s| s.materialized_models).sum();
    let sketch_bytes: usize = stats.shards.iter().map(|s| s.sketch_bytes).sum();
    assert_eq!(tracked, 6, "1 trained + 5 candidates stay tracked");
    assert_eq!(materialized, 2, "trained pair + the promoted candidate");
    assert!(sketch_bytes > 0, "lanes are live on at least one shard");
}

/// Candidates survive a checkpoint: the manifest counts them, recovery
/// reassembles them, and a resumed sharded engine keeps producing the
/// exact reports of an uninterrupted unsharded run.
#[test]
fn candidates_survive_checkpoint_and_resume() {
    let snapshot = trained_with_candidates();
    let trace = trace(80);

    // Cut before anything can promote (min_history is 30): the
    // checkpoint must carry all five candidates as candidates.
    let dir = scratch_dir("resume");
    let cut = 10usize;
    let mut engine = ShardedEngine::start(snapshot, serve_config(2));
    for snap in &trace[..cut] {
        engine.submit(snap.clone());
    }
    let manifest = engine.checkpoint(&dir).expect("checkpoint succeeds");
    assert_eq!(manifest.cut_seq, cut as u64);
    assert_eq!(manifest.candidate_pairs, 5, "nothing promoted by the cut");
    drop(engine);

    let (recovered, _manifest) = Checkpointer::new(&dir).recover().expect("recover succeeds");
    assert_eq!(recovered.candidates.len(), 5);
    assert_eq!(recovered.models.len(), 1);

    // Resume and replay from the cut: the sketch lanes restart cold,
    // but lane state never feeds scores — only promotion timing — and
    // the unsharded reference consumed the identical prefix, so resumed
    // reports match an unsharded resume from the same checkpoint.
    let mut single = DetectionEngine::from_snapshot(recovered.clone());
    let want_resumed: Vec<StepReport> = trace[cut..].iter().map(|s| single.step(s)).collect();
    let mut engine = ShardedEngine::start(recovered, serve_config(4));
    for snap in &trace[cut..] {
        engine.submit(snap.clone());
    }
    let (got, stats) = engine.shutdown();
    assert_eq!(got, want_resumed);
    assert_eq!(stats.promotions, 1, "the correlated pair still promotes");

    // A second checkpoint after promotion: the promoted pair is a model
    // now, so only the four noise candidates remain counted.
    let mut engine = ShardedEngine::start(single.snapshot(), serve_config(2));
    let manifest = engine.checkpoint(&dir).expect("second checkpoint");
    assert_eq!(manifest.candidate_pairs, 4);
    engine.shutdown();
    let (recovered, _) = Checkpointer::new(&dir).recover().unwrap();
    assert_eq!(recovered.models.len(), 2);
    assert_eq!(recovered.candidates.len(), 4);
    let _ = std::fs::remove_dir_all(&dir);
}
