//! Crash-recovery: checkpoint mid-stream, kill the engine without a
//! clean shutdown, restore from the manifest, and verify the resumed
//! stream matches an uninterrupted single-threaded run exactly.

use std::path::PathBuf;

use gridwatch_detect::{
    AlarmPolicy, DetectionEngine, EngineConfig, EngineSnapshot, Snapshot, StepReport,
};
use gridwatch_serve::{BackpressurePolicy, Checkpointer, ServeConfig, ShardedEngine};
use gridwatch_timeseries::{
    MachineId, MeasurementId, MeasurementPair, MetricKind, PairSeries, Timestamp,
};

const STEP_SECS: u64 = 360;
const MEASUREMENTS: usize = 6;

fn ids() -> Vec<MeasurementId> {
    (0..MEASUREMENTS as u32)
        .map(|m| MeasurementId::new(MachineId::new(m / 2), MetricKind::Custom((m % 2) as u16)))
        .collect()
}

fn value(m: usize, k: u64) -> f64 {
    let load = (k % 48) as f64;
    (m as f64 + 1.0) * load + 5.0 * m as f64
}

fn trained() -> EngineSnapshot {
    let ids = ids();
    let config = EngineConfig {
        alarm: AlarmPolicy {
            system_threshold: 0.7,
            measurement_threshold: 0.4,
            min_consecutive: 2,
        },
        ..EngineConfig::default()
    };
    let mut pairs = Vec::new();
    for i in 0..MEASUREMENTS {
        for j in (i + 1)..MEASUREMENTS {
            let pair = MeasurementPair::new(ids[i], ids[j]).unwrap();
            let history = PairSeries::from_samples(
                (0..400u64).map(|k| (k * STEP_SECS, value(i, k), value(j, k))),
            )
            .unwrap();
            pairs.push((pair, history));
        }
    }
    DetectionEngine::train(pairs, config).unwrap().snapshot()
}

/// A trace whose fault window straddles the checkpoint cut, so alarm
/// debounce streaks are live state the checkpoint must carry over.
fn trace(steps: u64) -> Vec<Snapshot> {
    let ids = ids();
    (0..steps)
        .map(|k| {
            let mut snap = Snapshot::new(Timestamp::from_secs((400 + k) * STEP_SECS));
            for (m, &mid) in ids.iter().enumerate() {
                let v = if m == MEASUREMENTS - 1 && (12..22).contains(&k) {
                    -180.0
                } else {
                    value(m, k)
                };
                snap.insert(mid, v);
            }
            snap
        })
        .collect()
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gridwatch-recover-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn uninterrupted_reports(snapshot: EngineSnapshot, trace: &[Snapshot]) -> Vec<StepReport> {
    let mut engine = DetectionEngine::from_snapshot(snapshot);
    trace.iter().map(|s| engine.step(s)).collect()
}

/// The core crash-recovery scenario. The checkpoint cut lands at step
/// 14 — inside the fault window, with a live alarm streak.
fn crash_and_recover(original_shards: usize, recovered_shards: usize, tag: &str) {
    let snapshot = trained();
    let trace = trace(30);
    let want = uninterrupted_reports(snapshot.clone(), &trace);
    assert!(
        want.iter().any(|r| !r.alarms.is_empty()),
        "scenario must exercise alarms"
    );

    let dir = scratch_dir(tag);
    let cut = 14usize;
    let mut engine = ShardedEngine::start(
        snapshot,
        ServeConfig {
            shards: original_shards,
            queue_capacity: 8,
            backpressure: BackpressurePolicy::Block,
            sampling: None,
        },
    );
    for snap in &trace[..cut] {
        engine.submit(snap.clone());
    }
    let manifest = engine.checkpoint(&dir).expect("checkpoint succeeds");
    assert_eq!(manifest.cut_seq, cut as u64);
    // Keep streaming past the checkpoint, then "crash": drop the engine
    // without shutdown. Everything since the cut is lost.
    for snap in &trace[cut..cut + 5] {
        engine.submit(snap.clone());
    }
    drop(engine);

    // Restore from the manifest, possibly onto a different shard count,
    // and replay the stream from the cut.
    let (recovered, manifest) = Checkpointer::new(&dir).recover().expect("recover succeeds");
    let resume_from = manifest.cut_seq as usize;
    let mut engine = ShardedEngine::start(
        recovered,
        ServeConfig {
            shards: recovered_shards,
            queue_capacity: 8,
            backpressure: BackpressurePolicy::Block,
            sampling: None,
        },
    );
    for snap in &trace[resume_from..] {
        engine.submit(snap.clone());
    }
    let (got, stats) = engine.shutdown();
    assert_eq!(stats.reports as usize, trace.len() - resume_from);
    assert_eq!(
        got,
        want[resume_from..],
        "resumed reports must match the uninterrupted run"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn crash_recovery_resumes_exactly_same_shard_count() {
    crash_and_recover(4, 4, "same");
}

#[test]
fn crash_recovery_resumes_exactly_onto_fewer_shards() {
    crash_and_recover(4, 2, "fewer");
}

#[test]
fn crash_recovery_resumes_exactly_onto_unsharded_engine() {
    let snapshot = trained();
    let trace = trace(30);
    let want = uninterrupted_reports(snapshot.clone(), &trace);

    let dir = scratch_dir("unsharded");
    let cut = 14usize;
    let mut engine = ShardedEngine::start(
        snapshot,
        ServeConfig {
            shards: 3,
            queue_capacity: 8,
            backpressure: BackpressurePolicy::Block,
            sampling: None,
        },
    );
    for snap in &trace[..cut] {
        engine.submit(snap.clone());
    }
    engine.checkpoint(&dir).unwrap();
    drop(engine);

    // A recovered checkpoint is a plain EngineSnapshot: it can resume
    // on a single-threaded DetectionEngine too.
    let (recovered, _) = Checkpointer::new(&dir).recover().unwrap();
    let mut engine = DetectionEngine::from_snapshot(recovered);
    let got: Vec<StepReport> = trace[cut..].iter().map(|s| engine.step(s)).collect();
    assert_eq!(got, want[cut..]);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn second_checkpoint_overwrites_first_atomically() {
    let snapshot = trained();
    let trace = trace(30);
    let want = uninterrupted_reports(snapshot.clone(), &trace);

    let dir = scratch_dir("overwrite");
    let mut engine = ShardedEngine::start(
        snapshot,
        ServeConfig {
            shards: 2,
            queue_capacity: 8,
            backpressure: BackpressurePolicy::Block,
            sampling: None,
        },
    );
    for (k, snap) in trace.iter().enumerate() {
        if k == 10 || k == 20 {
            engine.checkpoint(&dir).unwrap();
        }
        engine.submit(snap.clone());
    }
    let (_, stats) = engine.shutdown();
    assert_eq!(stats.checkpoints, 2);

    // Only the latest checkpoint remains; it resumes from step 20.
    let (recovered, manifest) = Checkpointer::new(&dir).recover().unwrap();
    assert_eq!(manifest.cut_seq, 20);
    let mut engine = DetectionEngine::from_snapshot(recovered);
    let got: Vec<StepReport> = trace[20..].iter().map(|s| engine.step(s)).collect();
    assert_eq!(got, want[20..]);
    let _ = std::fs::remove_dir_all(&dir);
}
