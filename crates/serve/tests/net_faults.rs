//! Deterministic fault injection against the TCP ingestion tier.
//!
//! Every test drives a real listener over loopback with a [`ChaosClient`]
//! injecting one network fault class, then asserts three things: the
//! listener survives, the stats account for the fault, and — under the
//! lossless `Block` policy — the merged `StepReport` stream stays
//! bit-identical to a single-threaded replay of the same snapshots.
//!
//! No sleeps-as-synchronization: tests wait on events — the expected
//! number of reports arriving, or the server closing a faulted
//! connection (observed by the client as EOF) — never on timers racing
//! the server. Ports are OS-assigned (`127.0.0.1:0`), so suites cannot
//! collide on addresses.

mod common;

use std::collections::BTreeMap;
use std::time::Duration;

use common::ChaosClient;
use gridwatch_detect::StepReport;
use gridwatch_obs::{parse_exposition, MetricsServer, PipelineObs};
use gridwatch_serve::{
    encode_json, BackpressurePolicy, Checkpointer, NetConfig, NetServer, ServeConfig,
};

const SOURCE: &str = "agent-1";

fn serve_config() -> ServeConfig {
    ServeConfig {
        shards: 2,
        queue_capacity: 8,
        backpressure: BackpressurePolicy::Block,
        sampling: None,
    }
}

fn bind(net: NetConfig) -> NetServer {
    NetServer::bind(
        "127.0.0.1:0",
        common::trained(),
        serve_config(),
        net,
        BTreeMap::new(),
    )
    .expect("bind an OS-assigned port")
}

/// Waits for exactly `n` merged reports — the event that proves the
/// server decoded, sequenced, and applied `n` snapshots.
fn collect_reports(server: &NetServer, n: usize) -> Vec<StepReport> {
    (0..n)
        .map(|k| {
            server
                .recv_report_timeout(Duration::from_secs(30))
                .unwrap_or_else(|| panic!("report {k} of {n} never arrived"))
        })
        .collect()
}

#[test]
fn clean_json_stream_is_bit_identical_to_replay() {
    let trace = common::trace(24);
    let want = common::reference_reports(common::trained(), &trace);
    assert!(
        want.iter().any(|r| !r.alarms.is_empty()),
        "trace must alarm"
    );

    let server = bind(NetConfig::default());
    let mut client = ChaosClient::connect(server.local_addr());
    for frame in common::frames(SOURCE, 0, &trace) {
        client.send_json(&frame);
    }
    let got = collect_reports(&server, trace.len());
    client.disconnect();
    let (rest, stats) = server.shutdown();
    assert!(rest.is_empty());
    assert_eq!(got, want, "network stream diverged from offline replay");
    assert_eq!(stats.net.frames, trace.len() as u64);
    assert_eq!(stats.net.decode_errors, 0);
    assert_eq!(stats.net.duplicates, 0);
    assert_eq!(stats.net.connections[0].protocol, "json");
}

#[test]
fn clean_csv_stream_is_bit_identical_to_replay() {
    let trace = common::trace(20);
    let want = common::reference_reports(common::trained(), &trace);

    let server = bind(NetConfig::default());
    let mut client = ChaosClient::connect(server.local_addr());
    for frame in common::frames(SOURCE, 0, &trace) {
        client.send_csv(&frame);
    }
    let got = collect_reports(&server, trace.len());
    client.disconnect();
    let (_, stats) = server.shutdown();
    assert_eq!(got, want);
    assert_eq!(stats.net.connections[0].protocol, "csv");
}

#[test]
fn interleaved_partial_writes_decode_identically() {
    let trace = common::trace(16);
    let want = common::reference_reports(common::trained(), &trace);

    let server = bind(NetConfig::default());
    let mut client = ChaosClient::connect(server.local_addr());
    for (k, frame) in common::frames(SOURCE, 0, &trace).iter().enumerate() {
        // Dribble every frame in tiny, varying chunks.
        let bytes = encode_json(frame).unwrap();
        client.send_chunked(&bytes, 1 + k % 5);
    }
    let got = collect_reports(&server, trace.len());
    client.disconnect();
    let (_, stats) = server.shutdown();
    assert_eq!(got, want, "partial writes must not corrupt framing");
    assert_eq!(stats.net.frames, trace.len() as u64);
    assert_eq!(stats.net.decode_errors, 0);
}

#[test]
fn mixed_protocol_connections_feed_one_sequenced_stream() {
    let trace = common::trace(20);
    let want = common::reference_reports(common::trained(), &trace);
    let frames = common::frames(SOURCE, 0, &trace);
    let (head, tail) = frames.split_at(10);

    let server = bind(NetConfig {
        reorder_capacity: 32,
        ..NetConfig::default()
    });
    // The tail arrives first over CSV; the reorder window holds it until
    // the JSON connection delivers the head.
    let mut csv_client = ChaosClient::connect(server.local_addr());
    for frame in tail {
        csv_client.send_csv(frame);
    }
    let mut json_client = ChaosClient::connect(server.local_addr());
    for frame in head {
        json_client.send_json(frame);
    }
    let got = collect_reports(&server, trace.len());
    csv_client.disconnect();
    json_client.disconnect();
    let (_, stats) = server.shutdown();
    assert_eq!(got, want, "two connections, one source, one exact stream");
    assert_eq!(stats.net.frames, trace.len() as u64);
    assert!(stats.net.out_of_order > 0, "the tail had to be buffered");
}

#[test]
fn mid_frame_disconnect_then_reconnect_with_replay_is_lossless() {
    let trace = common::trace(24);
    let want = common::reference_reports(common::trained(), &trace);
    let frames = common::frames(SOURCE, 0, &trace);
    let delivered_before_crash = 9usize;

    let server = bind(NetConfig::default());

    // First connection: some whole frames, then half a frame, then gone.
    let mut first = ChaosClient::connect(server.local_addr());
    for frame in &frames[..delivered_before_crash] {
        first.send_json(frame);
    }
    let partial = encode_json(&frames[delivered_before_crash]).unwrap();
    first.send(&partial[..partial.len() / 2]);
    first.finish_writing();
    // EOF mid-frame: the server counts the truncation and closes; the
    // client observing the close is the synchronization point.
    first.wait_closed();

    // The agent restarts and replays its entire journal, as real agents
    // do when they cannot know what was applied.
    let mut second = ChaosClient::connect(server.local_addr());
    for frame in &frames {
        second.send_json(frame);
    }
    let got = collect_reports(&server, trace.len());
    second.disconnect();
    let (_, stats) = server.shutdown();

    assert_eq!(got, want, "replay after a crash must not double-apply");
    assert_eq!(stats.net.decode_errors, 1, "the truncated frame");
    assert_eq!(stats.net.connections[0].decode_errors, 1);
    assert_eq!(
        stats.net.duplicates, delivered_before_crash as u64,
        "every frame the first connection delivered is replayed as a duplicate"
    );
    assert_eq!(stats.submitted, trace.len() as u64);
}

#[test]
fn garbage_bytes_close_one_connection_and_spare_the_rest() {
    let trace = common::trace(18);
    let want = common::reference_reports(common::trained(), &trace);

    let server = bind(NetConfig::default());

    // A hostile stream: printable garbage, so it detects as CSV and
    // fails parsing with a typed error.
    let mut evil = ChaosClient::connect(server.local_addr());
    evil.send(b"total,garbage,stream,zzz\n");
    evil.finish_writing();
    evil.wait_closed();

    // Binary garbage on a second connection.
    let mut worse = ChaosClient::connect(server.local_addr());
    worse.send(&[0xff, 0xfe, 0x00, 0x17, b'\n']);
    worse.finish_writing();
    worse.wait_closed();

    // A well-behaved client is untouched.
    let mut good = ChaosClient::connect(server.local_addr());
    for frame in common::frames(SOURCE, 0, &trace) {
        good.send_json(&frame);
    }
    let got = collect_reports(&server, trace.len());
    good.disconnect();
    let (_, stats) = server.shutdown();

    assert_eq!(got, want, "garbage on other connections must not perturb");
    assert_eq!(stats.net.decode_errors, 2);
    assert_eq!(stats.net.frames, trace.len() as u64);
    assert_eq!(stats.net.accepted, 3);
}

#[test]
fn oversized_frame_is_refused_with_a_typed_error() {
    let trace = common::trace(12);
    let want = common::reference_reports(common::trained(), &trace);

    let server = bind(NetConfig {
        max_frame_bytes: 1 << 16,
        ..NetConfig::default()
    });

    // A length prefix claiming 4 MiB against a 64 KiB limit: refused
    // before any payload is buffered.
    let mut bomber = ChaosClient::connect(server.local_addr());
    bomber.send(&u32::to_be_bytes(1 << 22));
    bomber.finish_writing();
    bomber.wait_closed();

    let mut good = ChaosClient::connect(server.local_addr());
    for frame in common::frames(SOURCE, 0, &trace) {
        good.send_json(&frame);
    }
    let got = collect_reports(&server, trace.len());
    good.disconnect();
    let (_, stats) = server.shutdown();

    assert_eq!(got, want);
    assert_eq!(stats.net.decode_errors, 1, "the oversized claim");
    assert_eq!(stats.net.connections[0].frames, 0);
}

#[test]
fn slow_loris_client_hits_the_read_deadline() {
    let trace = common::trace(12);
    let want = common::reference_reports(common::trained(), &trace);

    let server = bind(NetConfig {
        read_timeout: Duration::from_millis(100),
        ..NetConfig::default()
    });

    // Half a frame, then silence. The server's read deadline — not this
    // test — decides when to give up; the client just observes the close.
    let mut loris = ChaosClient::connect(server.local_addr());
    let frame = encode_json(&common::frames(SOURCE, 0, &trace)[0]).unwrap();
    loris.send(&frame[..6]);
    loris.wait_closed();

    // Deadline generosity check: a normal client pushing frames promptly
    // is never timed out. It disconnects right after sending — lingering
    // idle would legitimately trip the deliberately-short deadline.
    let mut good = ChaosClient::connect(server.local_addr());
    for frame in common::frames(SOURCE, 0, &trace) {
        good.send_json(&frame);
    }
    good.disconnect();
    let got = collect_reports(&server, trace.len());
    let (_, stats) = server.shutdown();

    assert_eq!(got, want);
    assert_eq!(stats.net.timeouts, 1, "the stalled connection");
    assert_eq!(stats.net.connections[0].timeouts, 1);
    assert_eq!(stats.net.connections[1].timeouts, 0);
}

#[test]
fn out_of_order_frames_are_resequenced_exactly() {
    let trace = common::trace(20);
    let want = common::reference_reports(common::trained(), &trace);
    let frames = common::frames(SOURCE, 0, &trace);

    let server = bind(NetConfig::default());
    let mut client = ChaosClient::connect(server.local_addr());
    // Swap every adjacent pair: 1,0,3,2,... — each odd frame arrives one
    // early and must wait in the reorder window.
    for pair in frames.chunks(2) {
        if let [a, b] = pair {
            client.send_json(b);
            client.send_json(a);
        }
    }
    let got = collect_reports(&server, trace.len());
    client.disconnect();
    let (_, stats) = server.shutdown();

    assert_eq!(got, want, "reordering must reconstruct the exact stream");
    assert_eq!(stats.net.out_of_order, trace.len() as u64 / 2);
    assert_eq!(stats.net.gap_skips, 0);
}

#[test]
fn checkpoint_resume_absorbs_full_replay() {
    let dir = common::scratch_dir("resume");
    let head = common::trace(20);
    let tail = common::trace_from(20, 8);
    let head_frames = common::frames(SOURCE, 0, &head);
    let tail_frames = common::frames(SOURCE, 20, &tail);

    // First life: stream the head with periodic checkpoints.
    let server = NetServer::bind(
        "127.0.0.1:0",
        common::trained(),
        serve_config(),
        NetConfig {
            checkpoint_dir: Some(dir.clone()),
            checkpoint_every: 5,
            ..NetConfig::default()
        },
        BTreeMap::new(),
    )
    .unwrap();
    let mut client = ChaosClient::connect(server.local_addr());
    for frame in &head_frames {
        client.send_json(frame);
    }
    let first_reports = collect_reports(&server, head.len());
    client.disconnect();
    server.shutdown();

    // The final checkpoint pins both the models and the source progress.
    let (recovered, manifest) = Checkpointer::new(&dir).recover().unwrap();
    assert_eq!(manifest.sources[SOURCE], head.len() as u64);

    // Second life: the agent replays everything it ever sent, then
    // continues with fresh frames.
    let server = NetServer::bind(
        "127.0.0.1:0",
        recovered,
        serve_config(),
        NetConfig::default(),
        manifest.sources,
    )
    .unwrap();
    let mut client = ChaosClient::connect(server.local_addr());
    for frame in head_frames.iter().chain(&tail_frames) {
        client.send_json(frame);
    }
    let second_reports = collect_reports(&server, tail.len());
    client.disconnect();
    let (_, stats) = server.shutdown();

    // No head snapshot was double-applied...
    assert_eq!(stats.net.duplicates, head.len() as u64);
    assert_eq!(stats.submitted, tail.len() as u64);
    // ...and the combined stream is bit-identical to one uninterrupted
    // replay of head + tail.
    let full: Vec<_> = head.iter().chain(&tail).cloned().collect();
    let want = common::reference_reports(common::trained(), &full);
    let got: Vec<_> = first_reports.into_iter().chain(second_reports).collect();
    assert_eq!(got, want, "crash + resume must not perturb the stream");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn live_metrics_scrape_accounts_for_every_processed_snapshot() {
    let trace = common::trace(30);
    let want = common::reference_reports(common::trained(), &trace);

    let obs = PipelineObs::default();
    obs.tracer.enable();
    let server = NetServer::bind_with_obs(
        "127.0.0.1:0",
        common::trained(),
        serve_config(),
        NetConfig::default(),
        BTreeMap::new(),
        obs,
    )
    .expect("bind an OS-assigned port");
    let probe = server.metrics_probe();
    let metrics =
        MetricsServer::bind("127.0.0.1:0", move || probe.to_prometheus()).expect("bind metrics");

    let mut client = ChaosClient::connect(server.local_addr());
    for frame in common::frames(SOURCE, 0, &trace) {
        client.send_json(&frame);
    }
    let got = collect_reports(&server, trace.len());

    // Scrape over real HTTP while the listener is still live, after the
    // last report: every applied snapshot must already be on the books.
    let (status, body) =
        gridwatch_obs::scrape(metrics.local_addr(), "/metrics").expect("scrape the endpoint");
    assert!(status.contains("200"), "bad scrape status: {status}");
    let samples = parse_exposition(&body).expect("parseable exposition");

    let shard_processed: f64 = samples
        .iter()
        .filter(|s| s.name == "gridwatch_shard_processed_total")
        .map(|s| s.value)
        .sum();
    let latency_counts: f64 = samples
        .iter()
        .filter(|s| s.name == "gridwatch_shard_step_latency_ns_count")
        .map(|s| s.value)
        .sum();
    // Each snapshot fans out to every shard, and each shard observes one
    // step latency per processed snapshot.
    let shards = serve_config().shards as f64;
    let steps = trace.len() as f64;
    assert_eq!(shard_processed, shards * steps);
    assert_eq!(latency_counts, shards * steps);
    let submitted = samples
        .iter()
        .find(|s| s.name == "gridwatch_submitted_total")
        .expect("submitted counter");
    assert_eq!(submitted.value, steps);
    // The enabled tracer's stage spans rode along.
    assert!(
        samples.iter().any(|s| s.name == "gridwatch_stage_ns_count"),
        "stage spans missing from a traced scrape"
    );

    client.disconnect();
    metrics.shutdown();
    let (_, stats) = server.shutdown();
    assert_eq!(
        got, want,
        "an observed listener must not perturb the stream"
    );
    assert_eq!(stats.submitted, trace.len() as u64);
}

#[test]
fn lossy_flood_never_wedges_the_listener() {
    let trace = common::trace(200);
    let server = NetServer::bind(
        "127.0.0.1:0",
        common::trained(),
        ServeConfig {
            shards: 2,
            queue_capacity: 2,
            backpressure: BackpressurePolicy::DropOldest,
            sampling: None,
        },
        NetConfig {
            ingest_capacity: 2,
            reorder_capacity: 4,
            ..NetConfig::default()
        },
        BTreeMap::new(),
    )
    .unwrap();
    let mut client = ChaosClient::connect(server.local_addr());
    for frame in common::frames(SOURCE, 0, &trace) {
        client.send_json(&frame);
    }
    client.finish_writing();
    client.wait_closed();
    let (_, stats) = server.shutdown();

    // Liveness + accounting: the shutdown above completing is the
    // no-wedge proof, and every frame is accounted for — applied,
    // evicted at the socket boundary, or (at most a reorder window's
    // worth) still waiting on an abandonable gap at teardown.
    assert_eq!(stats.net.frames, trace.len() as u64);
    assert_eq!(stats.net.decode_errors, 0);
    let accounted = stats.submitted + stats.net.dropped;
    assert!(accounted <= trace.len() as u64, "{}", stats.to_json());
    assert!(
        trace.len() as u64 - accounted <= 4,
        "at most reorder_capacity frames may die buffered: {}",
        stats.to_json()
    );
    assert!(
        stats.net.gap_skips <= stats.net.dropped,
        "only evicted frames leave gaps to skip: {}",
        stats.to_json()
    );
}
