//! Integration tests for the serving stack's history sink:
//!
//! * Regression for the unbounded `flight.jsonl` problem — repeated
//!   alarm/flight dumps through the store stay bounded under retention
//!   instead of growing a loose JSONL file forever.
//! * The acceptance criterion that stored scores are bit-identical to
//!   the live `StepReport` stream they were written from.

use std::path::Path;

use gridwatch_detect::{AlarmPolicy, DetectionEngine, EngineConfig, Snapshot, StepReport};
use gridwatch_obs::FlightRecorder;
use gridwatch_serve::history::{score_rows, HistoryDepth, HistorySink};
use gridwatch_store::{RecordKind, StoreConfig};
use gridwatch_timeseries::{
    MachineId, MeasurementId, MeasurementPair, MetricKind, PairSeries, Timestamp,
};

/// Total bytes under a directory, recursively.
fn dir_bytes(dir: &Path) -> u64 {
    let mut total = 0;
    let Ok(entries) = std::fs::read_dir(dir) else {
        return 0;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            total += dir_bytes(&path);
        } else if let Ok(meta) = entry.metadata() {
            total += meta.len();
        }
    }
    total
}

fn partition_count(dir: &Path) -> usize {
    std::fs::read_dir(dir)
        .unwrap()
        .flatten()
        .filter(|e| {
            e.path().is_dir() && e.file_name().to_str().is_some_and(|n| n.starts_with("p-"))
        })
        .count()
}

/// The regression the store exists to fix: before it, every alarm
/// appended the whole flight-recorder ring to `flight.jsonl`, which
/// grew without bound. Through the sink, drains are incremental and
/// retention caps the partitions, so sustained alarm dumping reaches a
/// steady state instead of growing forever.
#[test]
fn repeated_alarm_dumps_stay_bounded_under_retention() {
    let dir = std::env::temp_dir().join(format!("gw-flight-bound-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let config = StoreConfig {
        partition_secs: 600,
        retention_secs: None,
        max_partitions: Some(3),
    };
    let (mut sink, _) = HistorySink::open(&dir, config, HistoryDepth::System).unwrap();
    let recorder = FlightRecorder::new(64);

    let mut sizes = Vec::new();
    for round in 0..40u64 {
        let at = round * 600;
        // One "alarm dump" per round: a burst of recorder traffic, an
        // incremental drain, and checkpoint-cadence maintenance.
        for k in 0..20 {
            recorder.record("alarm", format!("round {round} event {k}"));
        }
        sink.drain_recorder(&recorder, at).unwrap();
        sink.checkpoint().unwrap();

        assert!(
            partition_count(&dir) <= 3,
            "round {round}: retention did not cap partitions"
        );
        sizes.push(dir_bytes(&dir));
    }

    // No loose flight.jsonl appears anywhere near the store.
    assert!(!dir.join("flight.jsonl").exists());

    // Past warmup (cap reached by round 3) the footprint plateaus: the
    // last round is no bigger than twice the warmed-up size, where the
    // old behaviour grew linearly (40 rounds ≈ 10× round 4).
    let warmed = sizes[5];
    let last = *sizes.last().unwrap();
    assert!(
        last <= warmed * 2,
        "store grew without bound: {warmed} bytes after warmup, {last} at the end"
    );

    // Events older than the retained window are gone; recent survive.
    let events = sink.store().scan(RecordKind::Event, 0, u64::MAX).unwrap();
    assert!(!events.is_empty());
    let oldest = events.iter().map(|(_, r)| r.at()).min().unwrap();
    assert!(oldest >= 36 * 600, "expired partitions were not dropped");

    let _ = std::fs::remove_dir_all(&dir);
}

/// A small trained system: two coupled measurements plus a third, with
/// a mid-trace break so scores actually move and alarms can fire.
fn reports() -> Vec<StepReport> {
    const STEP: u64 = 360;
    let ids = [
        MeasurementId::new(MachineId::new(0), MetricKind::CpuUtilization),
        MeasurementId::new(MachineId::new(0), MetricKind::MemoryUsage),
        MeasurementId::new(MachineId::new(1), MetricKind::CpuUtilization),
    ];
    let mut pairs = Vec::new();
    for i in 0..ids.len() {
        for j in (i + 1)..ids.len() {
            let pair = MeasurementPair::new(ids[i], ids[j]).unwrap();
            let history = PairSeries::from_samples((0..300u64).map(|k| {
                let load = (k % 24) as f64;
                (
                    k * STEP,
                    (i as f64 + 1.0) * load + 0.1 * (k as f64).sin(),
                    (j as f64 + 1.0) * load + 0.1 * (k as f64 * 0.7).cos(),
                )
            }))
            .unwrap();
            pairs.push((pair, history));
        }
    }
    let config = EngineConfig {
        alarm: AlarmPolicy {
            system_threshold: 0.7,
            measurement_threshold: 0.4,
            min_consecutive: 2,
        },
        ..EngineConfig::default()
    };
    let mut engine = DetectionEngine::train(pairs, config).unwrap();
    (0..30u64)
        .map(|k| {
            let mut snap = Snapshot::new(Timestamp::from_secs((300 + k) * STEP));
            let load = (k % 24) as f64;
            for (m, &mid) in ids.iter().enumerate() {
                let v = if m == 1 && (10..20).contains(&k) {
                    -200.0
                } else {
                    (m as f64 + 1.0) * load
                };
                snap.insert(mid, v);
            }
            engine.step(&snap)
        })
        .collect()
}

/// Acceptance: a time-range scan over the store returns score rows
/// bit-identical to the live report stream — same keys, same order,
/// same `f64` bits — so `gridwatch history` answers match what a JSON
/// blob of the reports would have said.
#[test]
fn stored_scores_are_bit_identical_to_the_live_report_stream() {
    let dir = std::env::temp_dir().join(format!("gw-bitident-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let reports = reports();

    let (mut sink, _) =
        HistorySink::open(&dir, StoreConfig::default(), HistoryDepth::Full).unwrap();
    for report in &reports {
        sink.append_report(report).unwrap();
    }
    sink.checkpoint().unwrap();

    // The reference stream, straight from the in-memory boards.
    let expected: Vec<_> = reports
        .iter()
        .flat_map(|r| score_rows(&r.scores, HistoryDepth::Full))
        .collect();

    let scanned = sink.store().scan(RecordKind::Score, 0, u64::MAX).unwrap();
    assert_eq!(scanned.len(), expected.len());
    for ((_, got), want) in scanned.iter().zip(expected.iter()) {
        let gridwatch_store::Record::Score(got) = got else {
            panic!("non-score record in a score scan");
        };
        assert_eq!(got.at, want.at);
        assert_eq!(got.key, want.key);
        assert_eq!(
            got.score.to_bits(),
            want.score.to_bits(),
            "score for {} at {} drifted through the store",
            want.key,
            want.at
        );
    }

    // And a narrowed time-range scan is the matching contiguous slice.
    let from = reports[10].scores.at().as_secs();
    let to = reports[19].scores.at().as_secs();
    let window = sink.store().scan(RecordKind::Score, from, to).unwrap();
    let want_window: Vec<_> = expected
        .iter()
        .filter(|r| (from..=to).contains(&r.at))
        .collect();
    assert_eq!(window.len(), want_window.len());

    // Alarms made it in as events (the break guarantees at least one).
    let alarms: usize = reports.iter().map(|r| r.alarms.len()).sum();
    assert!(alarms > 0, "the broken window should alarm");
    let events = sink.store().scan(RecordKind::Event, 0, u64::MAX).unwrap();
    assert_eq!(events.len(), alarms);

    let _ = std::fs::remove_dir_all(&dir);
}
