//! Property-based tests for the report/table layer used by every
//! experiment.

use gridwatch_eval::report::{ascii_line_chart, Check, ExperimentResult, Table};
use proptest::prelude::*;

fn arb_cell() -> impl Strategy<Value = String> {
    "[a-zA-Z0-9 ,\"]{0,12}"
}

proptest! {
    #[test]
    fn csv_has_one_line_per_row_plus_header(
        headers in prop::collection::vec(arb_cell(), 1..6),
        rows in prop::collection::vec(prop::collection::vec(arb_cell(), 1..6), 0..10),
    ) {
        let width = headers.len();
        let mut table = Table::new("t", headers);
        for row in &rows {
            let mut padded = row.clone();
            padded.resize(width, String::new());
            table.push_row(padded);
        }
        let csv = table.to_csv();
        prop_assert_eq!(csv.lines().count(), rows.len() + 1);
        // Quoted cells keep commas from splitting fields: unquoted commas
        // per line equal width - 1 after removing quoted sections.
        for line in csv.lines() {
            let mut in_quotes = false;
            let mut separators = 0;
            for c in line.chars() {
                match c {
                    '"' => in_quotes = !in_quotes,
                    ',' if !in_quotes => separators += 1,
                    _ => {}
                }
            }
            prop_assert_eq!(separators, width - 1, "line {:?}", line);
        }
    }

    #[test]
    fn ascii_table_contains_every_cell_trimmed(
        cells in prop::collection::vec("[a-z0-9]{1,8}", 1..5),
    ) {
        let mut table = Table::new("demo", cells.clone());
        table.push_row(cells.clone());
        let ascii = table.to_ascii();
        for cell in &cells {
            prop_assert!(ascii.contains(cell.as_str()));
        }
    }

    #[test]
    fn chart_dimensions_are_respected(
        values in prop::collection::vec(-1e3f64..1e3, 1..300),
        width in 1usize..100,
        height in 1usize..20,
    ) {
        let chart = ascii_line_chart(&values, width, height);
        // height rows plus the two boundary label lines.
        prop_assert_eq!(chart.lines().count(), height + 2);
        for line in chart.lines().skip(1).take(height) {
            prop_assert!(line.chars().count() <= width + 12 + 1);
        }
        prop_assert!(chart.contains('*'));
    }

    #[test]
    fn all_checks_passed_reflects_every_check(flags in prop::collection::vec(any::<bool>(), 0..10)) {
        let mut r = ExperimentResult::new("x", "y");
        for (i, &ok) in flags.iter().enumerate() {
            r.checks.push(Check::new(format!("c{i}"), ok, "d"));
        }
        prop_assert_eq!(r.all_checks_passed(), flags.iter().all(|&b| b));
    }
}
