//! Figure 5: the example 9×9 prior transition probability matrix for a
//! 3×3 grid — the one artifact we can reproduce *digit for digit*,
//! because it is pure math (the spatial-closeness prior with `w = 2` and
//! the mean-axis decay kernel; see DESIGN.md for the reverse
//! engineering).

use gridwatch_core::prior::prior_matrix;
use gridwatch_core::DecayKernel;
use gridwatch_grid::GridStructure;

use crate::report::{Check, ExperimentResult, Table};

/// The matrix exactly as printed in the paper (percentages).
#[rustfmt::skip]
pub const PAPER_MATRIX: [[f64; 9]; 9] = [
    [21.98, 14.65,  8.79, 14.65, 10.99,  7.33,  8.79,  7.33,  5.49],
    [13.16, 19.74, 13.16,  9.87, 13.16,  9.87,  6.58,  7.89,  6.58],
    [ 8.79, 14.65, 21.98,  7.33, 10.99, 14.65,  5.49,  7.33,  8.79],
    [13.16,  9.87,  6.58, 19.74, 13.16,  7.89, 13.16,  9.87,  6.58],
    [ 8.82, 11.76,  8.82, 11.76, 17.65, 11.76,  8.82, 11.76,  8.82],
    [ 6.58,  9.87, 13.16,  7.89, 13.16, 19.74,  6.58,  9.87, 13.16],
    [ 8.79,  7.33,  5.49, 14.65, 10.99,  7.33, 21.98, 14.65,  8.79],
    [ 6.58,  7.89,  6.58,  9.87, 13.16,  9.87, 13.16, 19.74, 13.16],
    [ 5.49,  7.33,  8.79,  7.33, 10.99, 14.65,  8.79, 14.65, 21.98],
];

/// Regenerates the prior matrix and compares against the paper's print.
pub fn run() -> ExperimentResult {
    let mut result = ExperimentResult::new(
        "fig5",
        "example prior transition probability matrix (3x3 grid, w = 2)",
    );
    let grid = GridStructure::uniform((0.0, 3.0), (0.0, 3.0), 3, 3);
    let matrix = prior_matrix(&grid, DecayKernel::MeanAxis, 2.0);

    let mut headers = vec!["from\\to".to_string()];
    headers.extend((1..=9).map(|j| format!("c{j}")));
    let mut table = Table::new("prior matrix (%)", headers);
    let mut max_deviation: f64 = 0.0;
    for (i, row) in matrix.iter().enumerate() {
        let mut cells = vec![format!("c{}", i + 1)];
        for (j, &p) in row.iter().enumerate() {
            cells.push(format!("{:.2}", p * 100.0));
            max_deviation = max_deviation.max((p * 100.0 - PAPER_MATRIX[i][j]).abs());
        }
        table.push_row(cells);
    }
    result.tables.push(table);
    result.checks.push(Check::new(
        "every entry matches the paper's printed matrix to 0.005 percentage points",
        max_deviation < 5e-3,
        format!("max |deviation| = {max_deviation:.5} percentage points"),
    ));
    let rows_ok = matrix
        .iter()
        .all(|row| (row.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    result.checks.push(Check::new(
        "every row is a probability distribution",
        rows_ok,
        "row sums within 1e-9 of 1",
    ));
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_paper_exactly() {
        let r = run();
        assert!(r.all_checks_passed(), "{}", r.to_ascii());
        assert_eq!(r.tables[0].rows.len(), 9);
    }
}
