//! Figures 7–8: the density-adaptive grid built from history data
//! (Fig 7) and the same grid after online data drift beyond the original
//! boundary (Fig 8) — the paper's example drifts along the vertical axis
//! and the structure gains two intervals.

use gridwatch_core::{ModelConfig, TransitionModel};
use gridwatch_timeseries::{PairSeries, Point2};

use crate::harness::RunOptions;
use crate::report::{Check, ExperimentResult, Table};

/// Regenerates the offline grid and the drift-extended grid.
pub fn run(options: RunOptions) -> ExperimentResult {
    let mut result = ExperimentResult::new(
        "fig7_8",
        "adaptive grid from history data, then extended under online drift",
    );
    result.notes.push(format!("seed {}", options.seed));

    // History similar in spirit to the paper's Figure 7 snapshot: a dense
    // blob with a mild diagonal relation.
    let history = PairSeries::from_samples((0..2000u64).map(|k| {
        let t = k as f64 / 37.0;
        let x = 0.2 + 0.08 * (t.sin() + 1.0) + 0.02 * ((k % 13) as f64 / 13.0);
        let y = 0.01 + 0.05 * (t.cos() + 1.0) * x + 0.002 * ((k % 7) as f64 / 7.0);
        (k * 360, x, y)
    }))
    .expect("generated samples are valid");

    let mut model =
        TransitionModel::fit(&history, ModelConfig::default()).expect("history is modelable");
    let before_cols = model.grid().columns();
    let before_rows = model.grid().rows();
    let before_upper_y = model.grid().y_partition().upper();

    let mut offline = Table::new(
        "fig7: offline grid structure",
        vec!["dimension".into(), "intervals".into(), "range".into()],
    );
    offline.push_row(vec![
        "x".into(),
        before_cols.to_string(),
        format!(
            "[{:.4}, {:.4})",
            model.grid().x_partition().lower(),
            model.grid().x_partition().upper()
        ),
    ]);
    offline.push_row(vec![
        "y".into(),
        before_rows.to_string(),
        format!(
            "[{:.4}, {:.4})",
            model.grid().y_partition().lower(),
            before_upper_y
        ),
    ]);
    result.tables.push(offline);

    // Online drift along the vertical axis, as in the paper's Figure 8:
    // y slowly exceeds the historical upper bound.
    let last = *history.points().last().expect("non-empty");
    let mut extensions = 0u64;
    let y_step = model.grid().y_partition().average_width() * 0.2;
    for k in 0..60 {
        let p = Point2::new(last.x, before_upper_y + (k as f64 - 10.0) * y_step * 0.25);
        let out = model.observe(p);
        if out.extended {
            extensions += 1;
        }
    }
    let after_rows = model.grid().rows();
    let after_upper_y = model.grid().y_partition().upper();

    let mut updated = Table::new(
        "fig8: grid after online drift",
        vec!["dimension".into(), "intervals".into(), "range".into()],
    );
    updated.push_row(vec![
        "x".into(),
        model.grid().columns().to_string(),
        format!(
            "[{:.4}, {:.4})",
            model.grid().x_partition().lower(),
            model.grid().x_partition().upper()
        ),
    ]);
    updated.push_row(vec![
        "y".into(),
        after_rows.to_string(),
        format!(
            "[{:.4}, {:.4})",
            model.grid().y_partition().lower(),
            after_upper_y
        ),
    ]);
    result.tables.push(updated);

    result.checks.push(Check::new(
        "gradual drift extends the drifting dimension (y gains intervals)",
        after_rows > before_rows && after_upper_y > before_upper_y,
        format!(
            "rows {before_rows} -> {after_rows}, upper y {:.4} -> {:.4}, {extensions} extension events",
            before_upper_y, after_upper_y
        ),
    ));
    result.checks.push(Check::new(
        "the non-drifting dimension is unchanged",
        model.grid().columns() == before_cols,
        format!("columns stay at {before_cols}"),
    ));

    // A far outlier must NOT extend the grid.
    let cells_before = model.grid().cell_count();
    let out = model.observe(Point2::new(1e6, 1e6));
    result.checks.push(Check::new(
        "a far outlier does not extend the grid",
        !out.extended && model.grid().cell_count() == cells_before,
        format!("cell count stays at {cells_before}"),
    ));
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drift_extends_and_outliers_do_not() {
        let r = run(RunOptions::default());
        assert!(r.all_checks_passed(), "{}", r.to_ascii());
    }
}
