//! The in-text Section 4.2 evidence for the spatial-closeness prior:
//! "in two days' measurement values … the total number of transitions is
//! 701, among which 412 occurs inside the cells … 280 transitions
//! between a cell and its closest neighbor. As the cell distance
//! increases, it becomes less likely that points move among these
//! cells."
//!
//! We count transitions of a simulated pair over two days by Chebyshev
//! cell distance and verify the same monotone decay.

use gridwatch_grid::{GridBuilder, GridConfig};
use gridwatch_sim::scenario::clean_scenario;
use gridwatch_timeseries::{
    AlignmentPolicy, GroupId, MachineId, MeasurementId, MetricKind, PairSeries, Timestamp,
};

use crate::harness::RunOptions;
use crate::report::{Check, ExperimentResult, Table};

/// Counts two days of transitions per cell distance.
pub fn run(options: RunOptions) -> ExperimentResult {
    let mut result = ExperimentResult::new(
        "closeness",
        "transition counts vs cell distance over two days (spatial closeness)",
    );
    let scenario = clean_scenario(GroupId::A, 1, options.seed);
    let m = MachineId::new(0);
    let a = MeasurementId::new(m, MetricKind::IfOutOctetsRate);
    let b = MeasurementId::new(m, MetricKind::PortUtilization);
    let sa = scenario
        .trace
        .series(a)
        .expect("simulated")
        .slice(Timestamp::EPOCH, Timestamp::from_days(2));
    let sb = scenario
        .trace
        .series(b)
        .expect("simulated")
        .slice(Timestamp::EPOCH, Timestamp::from_days(2));
    let pair = PairSeries::align(&sa, &sb, AlignmentPolicy::Intersect).expect("same schedule");

    // The paper's counts (412 of 701 transitions stay in-cell) imply a
    // grid whose cells are coarse relative to one sampling step's
    // movement; we match that resolution here and note it.
    let grid_config = GridConfig::builder()
        .units_per_dimension(30)
        .max_intervals(10)
        .uniform_intervals(8)
        .build()
        .expect("valid grid config");
    let grid = GridBuilder::new(grid_config)
        .build(pair.points())
        .expect("two days of data build a grid");

    // Histogram of Chebyshev cell distances per transition.
    let mut by_distance: Vec<u64> = Vec::new();
    let mut total = 0u64;
    for (_, from, to) in pair.transitions() {
        let (Some(ci), Some(cj)) = (grid.locate(from), grid.locate(to)) else {
            continue;
        };
        let (dx, dy) = grid.offset(ci, cj);
        let d = dx.unsigned_abs().max(dy.unsigned_abs()) as usize;
        if by_distance.len() <= d {
            by_distance.resize(d + 1, 0);
        }
        by_distance[d] += 1;
        total += 1;
    }

    let mut table = Table::new(
        "transitions per Chebyshev cell distance",
        vec![
            "distance".into(),
            "count (ours)".into(),
            "share (ours)".into(),
            "paper (of 701)".into(),
        ],
    );
    let paper = ["412", "280", "-", "-"];
    for (d, &n) in by_distance.iter().enumerate() {
        table.push_row(vec![
            d.to_string(),
            n.to_string(),
            format!("{:.1}%", 100.0 * n as f64 / total as f64),
            paper.get(d).unwrap_or(&"-").to_string(),
        ]);
    }
    result.tables.push(table);
    result
        .notes
        .push(format!("total transitions: {total} (paper: 701)"));

    let in_cell = by_distance.first().copied().unwrap_or(0);
    let nearest = by_distance.get(1).copied().unwrap_or(0);
    let farther: u64 = by_distance.iter().skip(2).sum();
    result.checks.push(Check::new(
        "most transitions stay inside the current cell",
        in_cell * 2 >= total,
        format!("{in_cell}/{total} in-cell (paper: 412/701)"),
    ));
    result.checks.push(Check::new(
        "nearest-neighbour transitions outnumber all farther ones",
        nearest >= farther,
        format!("{nearest} at distance 1 vs {farther} farther (paper: 280 vs 9)"),
    ));
    // The paper's version of this claim: 412 in-cell, 280 at distance 1,
    // and only 9 transitions anywhere farther. Monotonicity deep into the
    // sparse tail is noise; the substantive claim is that the first two
    // steps dominate and the far tail is rare.
    let far_rare = farther as f64 <= 0.1 * total as f64;
    let first_steps_decay = in_cell >= nearest && nearest >= farther;
    result.checks.push(Check::new(
        "transition counts decay with cell distance (far tail rare)",
        first_steps_decay && far_rare,
        format!(
            "counts: {by_distance:?}, far share {:.1}%",
            100.0 * farther as f64 / total as f64
        ),
    ));
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spatial_closeness_holds_on_simulated_data() {
        let r = run(RunOptions::default());
        assert!(r.all_checks_passed(), "{}", r.to_ascii());
    }
}
