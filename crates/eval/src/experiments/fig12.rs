//! Figure 12: fitness scores of one watched pair per group over the test
//! day, with ground-truth problems in the morning (Group A) or afternoon
//! (Groups B and C). The paper shows a deep downward spike in the
//! fitness plot exactly when the problem occurs; we verify the dip falls
//! inside the injected fault window and that the correlation-preserving
//! load spike earlier the same day causes no comparable dip.

use gridwatch_core::{ModelConfig, TransitionModel};
use gridwatch_sim::scenario::{figure12_fault_window, group_fault_scenario, TEST_DAY};
use gridwatch_timeseries::{GroupId, Point2, Timestamp};

use crate::harness::{fit_pair_model, RunOptions};
use crate::metrics::{mean_score_in, min_score_in};
use crate::report::{ascii_line_chart, Check, ExperimentResult, Table};

/// Per-tick fitness of the focus pair over the test day for one group.
pub fn pair_fitness_series(
    group: GroupId,
    options: RunOptions,
) -> (Vec<(Timestamp, f64)>, ModelConfig) {
    let scenario = group_fault_scenario(group, options.machines, options.seed);
    let (a, b) = scenario
        .focus_pair
        .expect("fault scenario has a focus pair");
    let config = ModelConfig::builder()
        .update_threshold(0.005)
        .build()
        .expect("valid config");
    let mut model: TransitionModel =
        fit_pair_model(&scenario.trace, a, b, Timestamp::from_days(15), config);

    let start = Timestamp::from_days(TEST_DAY);
    let end = Timestamp::from_days(TEST_DAY + 1);
    let sa = scenario.trace.series(a).expect("simulated");
    let sb = scenario.trace.series(b).expect("simulated");
    let mut series = Vec::new();
    for t in scenario.trace.interval().ticks(start, end) {
        let (Some(x), Some(y)) = (sa.value_at(t), sb.value_at(t)) else {
            continue;
        };
        let outcome = model.observe(Point2::new(x, y));
        if let Some(score) = outcome.score {
            series.push((t, score.fitness()));
        }
    }
    (series, config)
}

/// Regenerates the three per-group fitness plots.
pub fn run(options: RunOptions) -> ExperimentResult {
    let mut result = ExperimentResult::new(
        "fig12",
        "fitness scores when system problems occur (one pair per group)",
    );
    result.notes.push(
        "train 15 days, test June 13; faults: A morning 8-10am, B/C afternoon 2-4pm; \
         load-spike control at 4-5am"
            .to_string(),
    );

    let mut buckets_table = Table::new(
        "six-hour-bucket mean fitness per group",
        vec![
            "group".into(),
            "12am-6am".into(),
            "6am-12pm".into(),
            "12pm-6pm".into(),
            "6pm-12am".into(),
        ],
    );

    for group in GroupId::ALL {
        let (series, _) = pair_fitness_series(group, options);
        let day = Timestamp::from_days(TEST_DAY).as_secs();

        let mut row = vec![group.to_string()];
        for bucket in 0..4 {
            let lo = Timestamp::from_secs(day + bucket * 6 * 3600);
            let hi = Timestamp::from_secs(day + (bucket + 1) * 6 * 3600);
            let mean = mean_score_in(&series, lo, hi).unwrap_or(f64::NAN);
            row.push(format!("{mean:.4}"));
        }
        buckets_table.push_row(row);

        let (fs, fe) = figure12_fault_window(group);
        let fault_min = min_score_in(&series, fs, fe).expect("samples in fault window");
        // Reference: the quiet evening, away from spike and fault.
        let normal_lo = Timestamp::from_secs(day + 19 * 3600);
        let normal_hi = Timestamp::from_secs(day + 23 * 3600);
        let normal_min = min_score_in(&series, normal_lo, normal_hi).expect("evening samples");
        let normal_mean = mean_score_in(&series, normal_lo, normal_hi).expect("evening samples");
        result.checks.push(Check::new(
            format!("group {group}: deep downward spike inside the fault window"),
            fault_min < normal_min - 0.1 && fault_min < normal_mean - 0.2,
            format!(
                "fault-window min {fault_min:.3} vs evening min {normal_min:.3} / mean {normal_mean:.3}"
            ),
        ));

        let spike_lo = Timestamp::from_secs(day + 4 * 3600);
        let spike_hi = Timestamp::from_secs(day + 5 * 3600);
        let spike_min = min_score_in(&series, spike_lo, spike_hi).expect("spike samples");
        result.checks.push(Check::new(
            format!("group {group}: the load spike causes no comparable dip"),
            spike_min > fault_min,
            format!("spike-window min {spike_min:.3} vs fault-window min {fault_min:.3}"),
        ));

        let values: Vec<f64> = series.iter().map(|&(_, q)| q).collect();
        result.notes.push(format!(
            "group {group} fitness over the day:\n{}",
            ascii_line_chart(&values, 72, 8)
        ));

        let mut detail = Table::new(
            format!("group {group} per-tick fitness"),
            vec!["tick".into(), "fitness".into()],
        );
        for (k, &(_, q)) in series.iter().enumerate() {
            detail.push_row(vec![k.to_string(), format!("{q:.4}")]);
        }
        result.tables.push(detail);
    }
    result.tables.insert(0, buckets_table);
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dips_align_with_ground_truth() {
        let r = run(RunOptions {
            machines: 2,
            ..RunOptions::default()
        });
        assert!(r.all_checks_passed(), "{}", r.to_ascii());
    }
}
