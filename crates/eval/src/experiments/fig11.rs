//! Figure 11: the worked fitness-score example — six cells, printed
//! transition probabilities, ranks, and fitness scores. Reproduced
//! exactly.

use gridwatch_core::fitness::score_row;
use gridwatch_grid::CellId;

use crate::report::{Check, ExperimentResult, Table};

/// The transition probabilities printed in the figure (from cell c4).
pub const PAPER_PROBABILITIES: [f64; 6] = [0.1116, 0.2422, 0.2095, 0.2538, 0.1734, 0.0094];
/// The ranks the paper prints for each cell.
pub const PAPER_RANKS: [usize; 6] = [5, 2, 3, 1, 4, 6];
/// The fitness scores the paper prints for each cell.
pub const PAPER_FITNESS: [f64; 6] = [0.3333, 0.8333, 0.6667, 1.0000, 0.5000, 0.1667];

/// Recomputes ranks and fitness for the printed probability row.
pub fn run() -> ExperimentResult {
    let mut result = ExperimentResult::new(
        "fig11",
        "fitness score computation worked example (6 cells, from c4)",
    );
    let mut table = Table::new(
        "rank and fitness per destination cell",
        vec![
            "cell".into(),
            "probability".into(),
            "rank (ours)".into(),
            "rank (paper)".into(),
            "fitness (ours)".into(),
            "fitness (paper)".into(),
        ],
    );
    let mut ranks_match = true;
    let mut fitness_match = true;
    for j in 0..6 {
        let s = score_row(&PAPER_PROBABILITIES, CellId(j));
        let rank = s.rank().expect("in-grid destination");
        if rank != PAPER_RANKS[j] {
            ranks_match = false;
        }
        if (s.fitness() - PAPER_FITNESS[j]).abs() > 5e-5 {
            fitness_match = false;
        }
        table.push_row(vec![
            format!("c{}", j + 1),
            format!("{:.2}%", PAPER_PROBABILITIES[j] * 100.0),
            rank.to_string(),
            PAPER_RANKS[j].to_string(),
            format!("{:.4}", s.fitness()),
            format!("{:.4}", PAPER_FITNESS[j]),
        ]);
    }
    result.tables.push(table);
    result.checks.push(Check::new(
        "ranks match the paper's printed ranking",
        ranks_match,
        "competition ranking over descending probability",
    ));
    result.checks.push(Check::new(
        "fitness scores match the paper's Eq. (7) values to 4 decimals",
        fitness_match,
        "Q = 1 - (rank - 1)/s with s = 6",
    ));
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_paper_exactly() {
        let r = run();
        assert!(r.all_checks_passed(), "{}", r.to_ascii());
    }
}
