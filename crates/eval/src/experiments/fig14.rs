//! Figure 14: per-machine average fitness scores — the localization
//! view. One machine per group is degraded during the test day; its
//! average fitness must fall clearly below every healthy machine's, just
//! as the paper's Figure 14 shows exactly one low-scoring machine per
//! group.

use gridwatch_core::ModelConfig;
use gridwatch_detect::EngineConfig;
use gridwatch_sim::scenario::{localization_scenario, TEST_DAY};
use gridwatch_timeseries::{GroupId, MachineId, Timestamp};

use crate::harness::{build_engine, replay_engine, RunOptions};
use crate::report::{Check, ExperimentResult, Table};

/// Per-machine mean fitness over the test day for one group. The
/// degraded machine is machine 0.
pub fn machine_scores(group: GroupId, options: RunOptions) -> Vec<(MachineId, f64)> {
    let scenario = localization_scenario(group, options.machines, options.seed);
    let config = EngineConfig {
        model: ModelConfig::builder()
            .update_threshold(0.005)
            .build()
            .expect("valid config"),
        ..EngineConfig::default()
    };
    let mut engine = build_engine(
        &scenario.trace,
        Timestamp::from_days(15),
        options.max_pairs,
        config,
    );
    let (rows, _) = replay_engine(
        &mut engine,
        &scenario.trace,
        Timestamp::from_days(TEST_DAY),
        Timestamp::from_days(TEST_DAY + 1),
    );
    // Average the per-machine scores over the day.
    let mut acc: std::collections::BTreeMap<MachineId, (f64, usize)> = Default::default();
    for (_, board) in &rows {
        for (machine, q) in board.machine_scores() {
            let e = acc.entry(machine).or_insert((0.0, 0));
            e.0 += q;
            e.1 += 1;
        }
    }
    acc.into_iter()
        .map(|(m, (sum, n))| (m, sum / n as f64))
        .collect()
}

/// Regenerates the per-machine fitness chart for all three groups.
pub fn run(options: RunOptions) -> ExperimentResult {
    let mut result = ExperimentResult::new(
        "fig14",
        "per-machine average fitness; the degraded machine scores lowest",
    );
    result.notes.push(format!(
        "machine 0 of each group degraded on the test day \
         (load share x0.25, extra noise); {} machines; seed {}",
        options.machines, options.seed
    ));
    let mut table = Table::new(
        "mean fitness per machine and group",
        vec!["group".into(), "machine".into(), "mean fitness".into()],
    );
    for group in GroupId::ALL {
        let scores = machine_scores(group, options);
        for &(m, q) in &scores {
            table.push_row(vec![group.to_string(), m.to_string(), format!("{q:.4}")]);
        }
        let degraded = scores
            .iter()
            .find(|(m, _)| *m == MachineId::new(0))
            .map(|&(_, q)| q)
            .expect("machine 0 scored");
        let healthy_min = scores
            .iter()
            .filter(|(m, _)| *m != MachineId::new(0))
            .map(|&(_, q)| q)
            .fold(f64::INFINITY, f64::min);
        result.checks.push(Check::new(
            format!("group {group}: the degraded machine scores lowest"),
            degraded < healthy_min,
            format!("degraded {degraded:.4} vs healthiest-but-lowest {healthy_min:.4}"),
        ));
    }
    result.tables.push(table);
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degraded_machine_is_lowest_in_every_group() {
        let r = run(RunOptions {
            machines: 3,
            max_pairs: 30,
            seed: 20080529,
        });
        assert!(r.all_checks_passed(), "{}", r.to_ascii());
    }
}
