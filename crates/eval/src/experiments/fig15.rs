//! Figure 15: the system fitness score `Q_t` over nine test days (June
//! 13–21), with a model initialized from one day of history and updated
//! adaptively. The paper finds periodic patterns: higher fitness when
//! the system is less active (nights and weekends), lower fitness at
//! weekday peak hours.

use gridwatch_core::ModelConfig;
use gridwatch_detect::EngineConfig;
use gridwatch_sim::scenario::clean_scenario;
use gridwatch_timeseries::{GroupId, Timestamp};

use crate::harness::{build_engine, replay_engine, system_scores, RunOptions};
use crate::report::{ascii_line_chart, Check, ExperimentResult, Table};
use crate::split::{TestWindow, TrainWindow};

/// Nine days of per-tick system scores for one group, trained on one
/// day.
pub fn nine_day_scores(group: GroupId, options: RunOptions) -> Vec<(Timestamp, f64)> {
    let scenario = clean_scenario(group, options.machines, options.seed);
    let config = EngineConfig {
        model: ModelConfig::builder()
            .update_threshold(0.005)
            .build()
            .expect("valid config"),
        ..EngineConfig::default()
    };
    let (_, train_end) = TrainWindow::OneDay.range();
    let mut engine = build_engine(&scenario.trace, train_end, options.max_pairs, config);
    let (start, end) = TestWindow::NineDays.range();
    let (rows, _) = replay_engine(&mut engine, &scenario.trace, start, end);
    system_scores(&rows)
}

/// Regenerates the nine-day periodic-pattern plot for all groups.
pub fn run(options: RunOptions) -> ExperimentResult {
    let mut result = ExperimentResult::new(
        "fig15",
        "Q_t over nine days: weekday peak dips, weekend highs",
    );
    result
        .notes
        .push("model initialized from one day (May 29), updated and evaluated June 13-21".into());
    let mut daily_table = Table::new(
        "daily mean Q_t per group",
        vec![
            "day".into(),
            "weekday".into(),
            "group A".into(),
            "group B".into(),
            "group C".into(),
        ],
    );
    let mut all_scores = Vec::new();
    for group in GroupId::ALL {
        all_scores.push((group, nine_day_scores(group, options)));
    }
    let (start, _) = TestWindow::NineDays.range();
    for d in 0..9 {
        let day_idx = start.day_index() + d;
        let lo = Timestamp::from_days(day_idx);
        let hi = Timestamp::from_days(day_idx + 1);
        let mut row = vec![format!("6.{}", 13 + d), format!("{:?}", lo.weekday())];
        for (_, scores) in &all_scores {
            let mean = crate::metrics::mean_score_in(scores, lo, hi).unwrap_or(f64::NAN);
            row.push(format!("{mean:.4}"));
        }
        daily_table.push_row(row);
    }
    result.tables.push(daily_table);

    for (group, scores) in &all_scores {
        // Peak weekday hours vs weekend at the same hours.
        let mut peak_weekday = Vec::new();
        let mut weekend = Vec::new();
        let mut night = Vec::new();
        for &(t, q) in scores {
            let hour = t.hour().get();
            let is_peak_hour = (10..18).contains(&hour);
            if t.is_weekend() && is_peak_hour {
                weekend.push(q);
            } else if !t.is_weekend() && is_peak_hour {
                peak_weekday.push(q);
            } else if hour < 6 {
                night.push(q);
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        let (pw, we, ni) = (mean(&peak_weekday), mean(&weekend), mean(&night));
        result.checks.push(Check::new(
            format!("group {group}: weekend fitness exceeds weekday peak fitness"),
            we > pw,
            format!("weekend-peak-hours {we:.4} vs weekday-peak-hours {pw:.4}"),
        ));
        result.checks.push(Check::new(
            format!("group {group}: quiet nights score at least as well as weekday peaks"),
            ni >= pw - 5e-3,
            format!("nights {ni:.4} vs weekday peaks {pw:.4}"),
        ));
        let values: Vec<f64> = scores.iter().map(|&(_, q)| q).collect();
        result.notes.push(format!(
            "group {group} nine-day Q_t:\n{}",
            ascii_line_chart(&values, 72, 8)
        ));
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn periodic_pattern_emerges() {
        let r = run(RunOptions {
            machines: 2,
            max_pairs: 8,
            seed: 20080529,
        });
        assert!(r.all_checks_passed(), "{}", r.to_ascii());
    }
}
