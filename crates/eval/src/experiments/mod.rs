//! One module per paper artifact. Each `run` function regenerates the
//! artifact's data on simulated traces and reports shape checks against
//! the paper's qualitative claims.
//!
//! | module | paper artifact |
//! |---|---|
//! | [`fig1`] | Fig. 1 — correlated measurements as time series |
//! | [`fig2`] | Fig. 2 — linear / non-linear / arbitrary pair scatter |
//! | [`fig5`] | Fig. 5 — the printed 9×9 prior transition matrix |
//! | [`fig7_8`] | Figs. 7–8 — adaptive grid, offline and after drift |
//! | [`fig9_10`] | Figs. 9–10 — prior vs posterior transition rows |
//! | [`fig11`] | Fig. 11 — worked fitness-score example |
//! | [`closeness`] | §4.2 in-text — spatial-closeness transition counts |
//! | [`fig12`] | Fig. 12 — fitness dips at ground-truth problems |
//! | [`fig13`] | Fig. 13 — offline vs adaptive fitness and update time |
//! | [`fig14`] | Fig. 14 — per-machine fitness localization |
//! | [`fig15`] | Fig. 15 — nine-day periodic fitness patterns |
//! | [`fig16`] | Fig. 16 — training-size effect over one day |
//! | [`ablation`] | DESIGN.md §6 — design-choice quality ablations |
//! | [`baselines_quality`] | beyond the paper — detector quality head-to-head |
//! | [`scale`] | §6 in-text — paper-scale pair counts and update cost |

pub mod ablation;
pub mod baselines_quality;
pub mod closeness;
pub mod fig1;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod fig2;
pub mod fig5;
pub mod fig7_8;
pub mod fig9_10;
pub mod scale;

use crate::harness::RunOptions;
use crate::report::ExperimentResult;

/// Every experiment's id, in paper order.
pub const ALL: [&str; 15] = [
    "fig1",
    "fig2",
    "fig5",
    "fig7_8",
    "fig9_10",
    "fig11",
    "closeness",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "ablation",
    "baselines_quality",
    "scale",
];

/// Runs one experiment by id.
///
/// Returns `None` for an unknown id.
pub fn run_by_name(name: &str, options: RunOptions) -> Option<ExperimentResult> {
    Some(match name {
        "fig1" => fig1::run(options),
        "fig2" => fig2::run(options),
        "fig5" => fig5::run(),
        "fig7_8" => fig7_8::run(options),
        "fig9_10" => fig9_10::run(),
        "fig11" => fig11::run(),
        "closeness" => closeness::run(options),
        "fig12" => fig12::run(options),
        "fig13" => fig13::run(options),
        "fig14" => fig14::run(options),
        "fig15" => fig15::run(options),
        "fig16" => fig16::run(options),
        "ablation" => ablation::run(options),
        "baselines_quality" => baselines_quality::run(options),
        "scale" => scale::run(options),
        _ => return None,
    })
}
