//! Figure 1: two correlated measurements (`IfOutOctetsRate_IF` and
//! `IfInOctetsRate_IF`) plotted as time series over one day — the
//! motivating picture: simultaneous peaks caused by shared workload.

use gridwatch_sim::scenario::clean_scenario;
use gridwatch_timeseries::stats::pearson;
use gridwatch_timeseries::{
    AlignmentPolicy, GroupId, MachineId, MeasurementId, MetricKind, PairSeries, Timestamp,
};

use crate::harness::RunOptions;
use crate::report::{ascii_line_chart, Check, ExperimentResult, Table};

/// Regenerates the one-day time-series view of a correlated pair.
pub fn run(options: RunOptions) -> ExperimentResult {
    let mut result =
        ExperimentResult::new("fig1", "two correlated measurements as one-day time series");
    result.notes.push(format!(
        "seed {}, 6-minute sampling, simulated group A",
        options.seed
    ));
    let scenario = clean_scenario(GroupId::A, 1, options.seed);
    let m = MachineId::new(0);
    let out_id = MeasurementId::new(m, MetricKind::IfOutOctetsRate);
    let in_id = MeasurementId::new(m, MetricKind::IfInOctetsRate);
    let day = (Timestamp::EPOCH, Timestamp::from_days(1));
    let out_series = scenario
        .trace
        .series(out_id)
        .expect("simulated")
        .slice(day.0, day.1);
    let in_series = scenario
        .trace
        .series(in_id)
        .expect("simulated")
        .slice(day.0, day.1);

    let mut table = Table::new(
        "measurement values (x 6 minutes)",
        vec![
            "tick".into(),
            "IfOutOctetsRate_IF".into(),
            "IfInOctetsRate_IF".into(),
        ],
    );
    for (k, ((_, a), (_, b))) in out_series.iter().zip(in_series.iter()).enumerate() {
        table.push_row(vec![k.to_string(), format!("{a:.1}"), format!("{b:.1}")]);
    }
    result.tables.push(table);

    let pair = PairSeries::align(&out_series, &in_series, AlignmentPolicy::Intersect)
        .expect("same sampling schedule");
    let (xs, ys) = pair.columns();
    let r = pearson(&xs, &ys).unwrap_or(0.0);
    result.checks.push(Check::new(
        "the two measurements are visibly correlated (shared workload)",
        r > 0.8,
        format!("pearson r = {r:.4} over {} samples", xs.len()),
    ));
    result.notes.push(format!(
        "IfOut day profile:\n{}",
        ascii_line_chart(out_series.values(), 72, 8)
    ));
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_is_correlated() {
        let r = run(RunOptions::default());
        assert!(r.all_checks_passed(), "{}", r.to_ascii());
        assert_eq!(r.tables[0].rows.len(), 240);
    }
}
