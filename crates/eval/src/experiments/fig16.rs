//! Figure 16: the effect of the training-set size on one test day (June
//! 13), in six-hour buckets. The paper: with one day of training the
//! fitness drops under heavy workloads; the 15-day model "greatly
//! improves the stability, with a fitness score above 0.9 during both
//! peak and non-peak hours".

use gridwatch_core::ModelConfig;
use gridwatch_detect::EngineConfig;
use gridwatch_sim::scenario::clean_scenario;
use gridwatch_timeseries::{GroupId, Timestamp};

use crate::harness::{build_engine, replay_engine, system_scores, RunOptions};
use crate::metrics::mean_score_in;
use crate::report::{Check, ExperimentResult, Table};
use crate::split::{TestWindow, TrainWindow};

/// Six-hour-bucket mean `Q_t` on June 13 for one training window.
pub fn bucket_means(train: TrainWindow, options: RunOptions) -> [f64; 4] {
    let scenario = clean_scenario(GroupId::A, options.machines, options.seed);
    let config = EngineConfig {
        model: ModelConfig::builder()
            .update_threshold(0.005)
            .build()
            .expect("valid config"),
        ..EngineConfig::default()
    };
    let (_, train_end) = train.range();
    let mut engine = build_engine(&scenario.trace, train_end, options.max_pairs, config);
    let (start, end) = TestWindow::OneDay.range();
    let (rows, _) = replay_engine(&mut engine, &scenario.trace, start, end);
    let scores = system_scores(&rows);
    let day = start.as_secs();
    std::array::from_fn(|bucket| {
        let lo = Timestamp::from_secs(day + bucket as u64 * 6 * 3600);
        let hi = Timestamp::from_secs(day + (bucket as u64 + 1) * 6 * 3600);
        mean_score_in(&scores, lo, hi).unwrap_or(f64::NAN)
    })
}

/// Regenerates the one-day, three-training-sizes comparison.
pub fn run(options: RunOptions) -> ExperimentResult {
    let mut result = ExperimentResult::new(
        "fig16",
        "Q_t on June 13 in six-hour buckets, per training-set size",
    );
    let mut table = Table::new(
        "bucket mean Q_t",
        vec![
            "train".into(),
            "12am-6am".into(),
            "6am-12pm".into(),
            "12pm-6pm".into(),
            "6pm-12am".into(),
        ],
    );
    let mut per_train = Vec::new();
    for train in TrainWindow::ALL {
        let buckets = bucket_means(train, options);
        table.push_row(
            std::iter::once(train.to_string())
                .chain(buckets.iter().map(|q| format!("{q:.4}")))
                .collect(),
        );
        per_train.push((train, buckets));
    }
    result.tables.push(table);

    let one_day = per_train[0].1;
    let fifteen = per_train[2].1;
    // Peak buckets are the daytime ones (6am-12pm, 12pm-6pm).
    let peak = |b: &[f64; 4]| (b[1] + b[2]) / 2.0;
    let min_of = |b: &[f64; 4]| b.iter().copied().fold(f64::INFINITY, f64::min);
    result.checks.push(Check::new(
        "more history improves peak-hour fitness (15-day >= 1-day)",
        peak(&fifteen) >= peak(&one_day) - 5e-3,
        format!(
            "peak-hours mean: 15-day {:.4} vs 1-day {:.4}",
            peak(&fifteen),
            peak(&one_day)
        ),
    ));
    result.checks.push(Check::new(
        "the 15-day model stays stable (above ~0.9) in every bucket",
        min_of(&fifteen) > 0.88,
        format!(
            "15-day worst bucket {:.4} (paper: above 0.9)",
            min_of(&fifteen)
        ),
    ));
    result.checks.push(Check::new(
        "the 15-day model's buckets vary less than the 1-day model's",
        {
            let spread =
                |b: &[f64; 4]| b.iter().copied().fold(f64::NEG_INFINITY, f64::max) - min_of(b);
            spread(&fifteen) <= spread(&one_day) + 5e-3
        },
        "bucket max-min spread comparison",
    ));
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn training_size_improves_stability() {
        let r = run(RunOptions {
            machines: 2,
            max_pairs: 8,
            seed: 20080613,
        });
        assert!(r.all_checks_passed(), "{}", r.to_ascii());
    }
}
