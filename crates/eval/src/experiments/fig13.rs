//! Figure 13: (a) average fitness of the *offline* model (trained once)
//! versus the *adaptive* model (updated online), over every combination
//! of training window {1, 8, 15 days} and test window {1, 5, 9, 13
//! days}; (b) the online updating time.
//!
//! The paper's shape claims: adaptive ≥ offline, with the largest gap at
//! one-day training; fitness grows with the test-set size; typical
//! average fitness lands in 0.8–0.98; per-sample updating cost is far
//! below the 6-minute sampling interval and is worst for the one-day
//! training set.

use gridwatch_core::ModelConfig;
use gridwatch_detect::EngineConfig;
use gridwatch_sim::scenario::clean_scenario;
use gridwatch_timeseries::GroupId;

use crate::harness::{build_engine, replay_engine, system_scores, RunOptions};
use crate::report::{Check, ExperimentResult, Table};
use crate::split::{TestWindow, TrainWindow};

/// One sweep cell: the mean fitness and the update-time statistics.
#[derive(Debug, Clone, Copy)]
pub struct SweepCell {
    /// Mean of `Q_t` over the test window.
    pub mean_fitness: f64,
    /// Total wall time inside `engine.step`, in seconds.
    pub step_seconds: f64,
    /// Wall time per processed snapshot, in milliseconds.
    pub ms_per_snapshot: f64,
}

/// Runs the full offline/adaptive sweep for one group.
pub fn sweep(options: RunOptions) -> Vec<(TrainWindow, TestWindow, bool, SweepCell)> {
    let scenario = clean_scenario(GroupId::A, options.machines, options.seed);
    let mut out = Vec::new();
    for train in TrainWindow::ALL {
        for adaptive in [false, true] {
            // One engine per (train, adaptive); evaluate the longest test
            // window and derive the shorter ones from its prefix? The
            // adaptive model's state depends on what it has seen, so each
            // test window must be replayed from a fresh engine to match
            // the paper's protocol.
            for test in TestWindow::ALL {
                let model = ModelConfig::builder()
                    .adaptive(adaptive)
                    .update_threshold(0.005)
                    .build()
                    .expect("valid config");
                let config = EngineConfig {
                    model,
                    ..EngineConfig::default()
                };
                let (_, train_end) = train.range();
                let mut engine =
                    build_engine(&scenario.trace, train_end, options.max_pairs, config);
                let (start, end) = test.range();
                let (rows, spent) = replay_engine(&mut engine, &scenario.trace, start, end);
                let scores = system_scores(&rows);
                let mean = scores.iter().map(|&(_, q)| q).sum::<f64>() / scores.len() as f64;
                let snapshots = scores.len().max(1);
                out.push((
                    train,
                    test,
                    adaptive,
                    SweepCell {
                        mean_fitness: mean,
                        step_seconds: spent.as_secs_f64(),
                        ms_per_snapshot: spent.as_secs_f64() * 1e3 / snapshots as f64,
                    },
                ));
            }
        }
    }
    out
}

/// Regenerates both panels of Figure 13.
pub fn run(options: RunOptions) -> ExperimentResult {
    let mut result = ExperimentResult::new(
        "fig13",
        "offline vs adaptive average fitness (a) and updating time (b)",
    );
    result.notes.push(format!(
        "group A, {} machines, up to {} pairs, seed {}",
        options.machines, options.max_pairs, options.seed
    ));
    let cells = sweep(options);

    let mut fitness_table = Table::new(
        "fig13a: average fitness",
        vec![
            "train".into(),
            "mode".into(),
            TestWindow::OneDay.to_string(),
            TestWindow::FiveDays.to_string(),
            TestWindow::NineDays.to_string(),
            TestWindow::ThirteenDays.to_string(),
        ],
    );
    let mut time_table = Table::new(
        "fig13b: engine step time (adaptive), seconds over window / ms per snapshot",
        vec![
            "train".into(),
            TestWindow::OneDay.to_string(),
            TestWindow::FiveDays.to_string(),
            TestWindow::NineDays.to_string(),
            TestWindow::ThirteenDays.to_string(),
        ],
    );
    let lookup = |train: TrainWindow, test: TestWindow, adaptive: bool| -> SweepCell {
        cells
            .iter()
            .find(|(tr, te, ad, _)| *tr == train && *te == test && *ad == adaptive)
            .expect("sweep covers all combinations")
            .3
    };
    for train in TrainWindow::ALL {
        for adaptive in [false, true] {
            let mut row = vec![
                train.to_string(),
                if adaptive { "adaptive" } else { "offline" }.to_string(),
            ];
            for test in TestWindow::ALL {
                row.push(format!("{:.4}", lookup(train, test, adaptive).mean_fitness));
            }
            fitness_table.push_row(row);
        }
        let mut row = vec![train.to_string()];
        for test in TestWindow::ALL {
            let c = lookup(train, test, true);
            row.push(format!(
                "{:.2}s / {:.2}ms",
                c.step_seconds, c.ms_per_snapshot
            ));
        }
        time_table.push_row(row);
    }
    result.tables.push(fitness_table);
    result.tables.push(time_table);

    // Shape checks.
    let mut adaptive_wins = 0usize;
    let mut combos = 0usize;
    for train in TrainWindow::ALL {
        for test in TestWindow::ALL {
            combos += 1;
            if lookup(train, test, true).mean_fitness
                >= lookup(train, test, false).mean_fitness - 1e-3
            {
                adaptive_wins += 1;
            }
        }
    }
    result.checks.push(Check::new(
        "adaptive updating does not hurt, and usually improves, the fitness",
        adaptive_wins * 4 >= combos * 3,
        format!("adaptive >= offline in {adaptive_wins}/{combos} combinations"),
    ));

    let gap = |train: TrainWindow| -> f64 {
        TestWindow::ALL
            .iter()
            .map(|&te| lookup(train, te, true).mean_fitness - lookup(train, te, false).mean_fitness)
            .sum::<f64>()
            / TestWindow::ALL.len() as f64
    };
    result.checks.push(Check::new(
        "the adaptive advantage is largest for the one-day training set",
        gap(TrainWindow::OneDay) >= gap(TrainWindow::FifteenDays) - 1e-3,
        format!(
            "mean gap: 1-day {:.4}, 8-day {:.4}, 15-day {:.4}",
            gap(TrainWindow::OneDay),
            gap(TrainWindow::EightDays),
            gap(TrainWindow::FifteenDays)
        ),
    ));

    let adaptive_means: Vec<f64> = TrainWindow::ALL
        .iter()
        .flat_map(|&tr| TestWindow::ALL.iter().map(move |&te| (tr, te)))
        .map(|(tr, te)| lookup(tr, te, true).mean_fitness)
        .collect();
    let lo = adaptive_means.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = adaptive_means
        .iter()
        .copied()
        .fold(f64::NEG_INFINITY, f64::max);
    result.checks.push(Check::new(
        "adaptive average fitness lands in the paper's 0.8-0.98 band",
        lo >= 0.75 && hi <= 1.0,
        format!("range [{lo:.4}, {hi:.4}] (paper: 0.8-0.98)"),
    ));

    let per_sample_budget_ok = TrainWindow::ALL.iter().all(|&tr| {
        TestWindow::ALL
            .iter()
            .all(|&te| lookup(tr, te, true).ms_per_snapshot < 360_000.0 / 10.0)
    });
    result.checks.push(Check::new(
        "per-snapshot update cost is far below the 6-minute sampling interval",
        per_sample_budget_ok,
        "all cells under 36 s per snapshot (paper: < 23 ms per sample per pair)",
    ));
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_shapes_hold_on_small_scale() {
        let r = run(RunOptions {
            machines: 2,
            max_pairs: 6,
            seed: 20080529,
        });
        assert!(r.all_checks_passed(), "{}", r.to_ascii());
    }
}
