//! Figure 2: the three pairwise correlation shapes the model must
//! handle — linear (2b), non-linear across machines (2c), and arbitrary
//! saturating shapes (2d). We regenerate one scatter per shape and
//! verify the shape statistically: linear pairs have high Pearson |r|;
//! the non-linear ones have high Spearman rank correlation but visibly
//! lower Pearson.

use gridwatch_sim::scenario::clean_scenario;
use gridwatch_timeseries::stats::{pearson, spearman};
use gridwatch_timeseries::{
    AlignmentPolicy, GroupId, MachineId, MeasurementId, MetricKind, PairSeries, Timestamp,
};

use crate::harness::RunOptions;
use crate::report::{Check, ExperimentResult, Table};

/// Regenerates the three correlation-shape scatters.
pub fn run(options: RunOptions) -> ExperimentResult {
    let mut result = ExperimentResult::new(
        "fig2",
        "pairwise correlation shapes: linear, cross-machine, saturating",
    );
    let scenario = clean_scenario(GroupId::A, 2, options.seed);
    let trace = &scenario.trace;
    let window = (Timestamp::EPOCH, Timestamp::from_days(3));

    let pair_of = |a: MeasurementId, b: MeasurementId| -> PairSeries {
        let sa = trace
            .series(a)
            .expect("simulated")
            .slice(window.0, window.1);
        let sb = trace
            .series(b)
            .expect("simulated")
            .slice(window.0, window.1);
        PairSeries::align(&sa, &sb, AlignmentPolicy::Intersect).expect("same schedule")
    };

    let m0 = MachineId::new(0);
    let m1 = MachineId::new(1);
    let cases = [
        (
            "2b-linear",
            pair_of(
                MeasurementId::new(m0, MetricKind::IfOutOctetsRate),
                MeasurementId::new(m0, MetricKind::IfInOctetsRate),
            ),
        ),
        (
            "2c-cross-machine",
            pair_of(
                MeasurementId::new(m0, MetricKind::IfInOctetsRate),
                MeasurementId::new(m1, MetricKind::CpuUtilization),
            ),
        ),
        (
            "2d-saturating",
            pair_of(
                MeasurementId::new(m0, MetricKind::IfOutOctetsRate),
                MeasurementId::new(m0, MetricKind::PortUtilization),
            ),
        ),
    ];

    let mut stats_table = Table::new(
        "correlation statistics per shape",
        vec![
            "case".into(),
            "pearson r".into(),
            "spearman rho".into(),
            "samples".into(),
        ],
    );
    let mut measured = Vec::new();
    for (name, pair) in &cases {
        let (xs, ys) = pair.columns();
        let r = pearson(&xs, &ys).unwrap_or(0.0);
        let rho = spearman(&xs, &ys).unwrap_or(0.0);
        measured.push((*name, r, rho));
        stats_table.push_row(vec![
            name.to_string(),
            format!("{r:.4}"),
            format!("{rho:.4}"),
            xs.len().to_string(),
        ]);

        let mut scatter = Table::new(format!("scatter {name}"), vec!["x".into(), "y".into()]);
        for p in pair.points() {
            scatter.push_row(vec![format!("{:.2}", p.x), format!("{:.2}", p.y)]);
        }
        result.tables.push(scatter);
    }
    result.tables.insert(0, stats_table);

    let linear = measured[0];
    let saturating = measured[2];
    result.checks.push(Check::new(
        "the in/out traffic pair on one machine is linear (Fig 2b)",
        linear.1 > 0.9,
        format!("pearson r = {:.4}", linear.1),
    ));
    result.checks.push(Check::new(
        "the utilization pair is monotone but non-linear (Fig 2d)",
        saturating.2 > 0.9 && saturating.1 < saturating.2,
        format!(
            "spearman rho = {:.4} vs pearson r = {:.4}",
            saturating.2, saturating.1
        ),
    ));
    let cross = measured[1];
    result.checks.push(Check::new(
        "the cross-machine pair is correlated through the shared workload (Fig 2c)",
        cross.2 > 0.5,
        format!("spearman rho = {:.4}", cross.2),
    ));
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_are_as_claimed() {
        let r = run(RunOptions::default());
        assert!(r.all_checks_passed(), "{}", r.to_ascii());
        assert_eq!(r.tables.len(), 4); // stats + 3 scatters
    }
}
