//! Figures 9–10: the prior transition distribution from one cell
//! (peaked at the cell itself) versus the posterior after six days of
//! observed transitions dominated by one destination (peak moves to the
//! observed destination).
//!
//! The paper's example uses cell c12 with most observed transitions
//! going to c10; we reproduce the same situation on a 4×4 grid.

use gridwatch_core::{DecayKernel, TransitionMatrix};
use gridwatch_grid::{CellId, GridStructure};

use crate::report::{Check, ExperimentResult, Table};

/// Regenerates the prior/posterior comparison.
pub fn run() -> ExperimentResult {
    let mut result = ExperimentResult::new(
        "fig9_10",
        "prior vs posterior transition distribution from cell c12",
    );
    let grid = GridStructure::uniform((0.0, 4.0), (0.0, 4.0), 4, 4);
    let from = CellId(11); // c12 in 1-based paper numbering
    let to = CellId(9); // c10

    let mut matrix = TransitionMatrix::new(DecayKernel::MeanAxis, 2.0);
    let prior_row = matrix.compute_row(&grid, from);

    // Six days of 6-minute samples ≈ 1440 transitions; the paper's
    // walkthrough says "many transitions from c12 to c10 are observed".
    // We emulate a realistic mix: 60% to c10, 25% self, 15% to a
    // neighbour of c10.
    let neighbour = CellId(10); // c11
    for k in 0..1440 {
        let dest = match k % 20 {
            0..=11 => to,
            12..=16 => from,
            _ => neighbour,
        };
        matrix.observe(from, dest);
    }
    let posterior_row = matrix.row(&grid, from).to_vec();

    let mut table = Table::new(
        "P(c12 -> c) before and after six days of updates",
        vec!["cell".into(), "prior %".into(), "posterior %".into()],
    );
    for j in 0..grid.cell_count() {
        table.push_row(vec![
            format!("c{}", j + 1),
            format!("{:.2}", prior_row[j] * 100.0),
            format!("{:.2}", posterior_row[j] * 100.0),
        ]);
    }
    result.tables.push(table);

    let argmax = |row: &[f64]| {
        row.iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .expect("non-empty")
            .0
    };
    result.checks.push(Check::new(
        "the prior peaks at the source cell c12",
        argmax(&prior_row) == from.index(),
        format!("prior argmax = c{}", argmax(&prior_row) + 1),
    ));
    result.checks.push(Check::new(
        "after many observed c12→c10 transitions the posterior peaks at c10",
        argmax(&posterior_row) == to.index(),
        format!("posterior argmax = c{}", argmax(&posterior_row) + 1),
    ));
    result.checks.push(Check::new(
        "both rows remain probability distributions",
        (prior_row.iter().sum::<f64>() - 1.0).abs() < 1e-9
            && (posterior_row.iter().sum::<f64>() - 1.0).abs() < 1e-9,
        "row sums within 1e-9 of 1",
    ));
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn posterior_peak_moves_to_observed_destination() {
        let r = run();
        assert!(r.all_checks_passed(), "{}", r.to_ascii());
    }
}
