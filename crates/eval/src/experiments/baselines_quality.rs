//! Head-to-head detection quality of the paper's model versus the
//! Related Work baselines (beyond the paper, which compares only
//! qualitatively): on the faulted group-A test day, each detector is
//! trained on the same 8-day focus-pair history and scored on
//!
//! * **normal-period score** — mean over the quiet evening (higher =
//!   fewer false alarms),
//! * **fault separation** — normal-period minimum minus fault-window
//!   minimum (positive = the fault dips below anything normal),
//! * **spike dip** — how far the correlation-preserving *peak-hour*
//!   load surge drags the detector down (smaller = better; the
//!   per-metric z-score strawman fails here).

use gridwatch_baselines::{
    GmmDetector, LinearInvariantDetector, MarkovDetector, PairDetector, ZScoreDetector,
};
use gridwatch_sim::scenario::TEST_DAY;
use gridwatch_sim::{
    FaultEvent, FaultKind, FaultSchedule, Infrastructure, TraceGenerator, WorkloadConfig,
};
use gridwatch_timeseries::{GroupId, MachineId, MeasurementId, MetricKind, Point2, Timestamp};

use crate::harness::RunOptions;
use crate::metrics::{mean_score_in, min_score_in};
use crate::report::{Check, ExperimentResult, Table};

/// One detector's measured quality.
#[derive(Debug, Clone)]
pub struct DetectorQuality {
    /// Detector name.
    pub name: &'static str,
    /// Mean score over the quiet evening.
    pub normal_mean: f64,
    /// Evening minimum minus fault-window minimum.
    pub fault_separation: f64,
    /// Evening mean minus spike-window mean.
    pub spike_dip: f64,
}

/// Runs all four detectors over the faulted test day.
///
/// The scenario injects a correlation break at 2-4pm and — unlike the
/// Figure 12 scenario — a *peak-hour* correlated surge (load x1.25 at
/// 11am-12pm): both metrics climb together toward the top of their
/// trained range, which is exactly the "flood of user requests" a
/// per-metric monitor false-alarms on while correlation models do not.
pub fn evaluate_all(options: RunOptions) -> Vec<DetectorQuality> {
    let infra = Infrastructure::standard_group(GroupId::A, options.machines, options.seed);
    let machine = MachineId::new(0);
    let a = MeasurementId::new(machine, MetricKind::PortUtilization);
    let b = MeasurementId::new(machine, MetricKind::IfOutOctetsRate);
    let day = Timestamp::from_days(TEST_DAY).as_secs();
    let mut faults = FaultSchedule::new();
    faults.push(FaultEvent::new(
        FaultKind::CorrelationBreak {
            target: b,
            level: 0.5,
        },
        Timestamp::from_secs(day + 14 * 3600),
        Timestamp::from_secs(day + 16 * 3600),
    ));
    faults.push(FaultEvent::new(
        FaultKind::LoadSpike { factor: 1.25 },
        Timestamp::from_secs(day + 11 * 3600),
        Timestamp::from_secs(day + 12 * 3600),
    ));
    let generator = TraceGenerator::new(
        infra,
        WorkloadConfig::default(),
        faults.clone(),
        options.seed,
    );
    let trace = generator.generate(Timestamp::EPOCH, Timestamp::from_days(TEST_DAY + 1));
    let sa = trace.series(a).expect("simulated");
    let sb = trace.series(b).expect("simulated");
    let train_end = Timestamp::from_days(8);
    let history = gridwatch_timeseries::PairSeries::align(
        &sa.slice(Timestamp::EPOCH, train_end),
        &sb.slice(Timestamp::EPOCH, train_end),
        gridwatch_timeseries::AlignmentPolicy::Intersect,
    )
    .expect("same schedule");

    let mut detectors: Vec<Box<dyn PairDetector>> = vec![
        Box::new(MarkovDetector::default()),
        Box::new(LinearInvariantDetector::default()),
        Box::new(GmmDetector::default()),
        Box::new(ZScoreDetector::default()),
    ];
    let start = Timestamp::from_days(TEST_DAY);
    let end = Timestamp::from_days(TEST_DAY + 1);
    let evening = (
        Timestamp::from_secs(day + 19 * 3600),
        Timestamp::from_secs(day + 23 * 3600),
    );
    let spike = (
        Timestamp::from_secs(day + 11 * 3600),
        Timestamp::from_secs(day + 12 * 3600),
    );
    let (fault_lo, fault_hi) = faults.truth_windows()[0];

    detectors
        .iter_mut()
        .map(|d| {
            d.fit(&history).expect("history fits every detector");
            let mut samples = Vec::new();
            for t in trace.interval().ticks(start, end) {
                let (Some(x), Some(y)) = (sa.value_at(t), sb.value_at(t)) else {
                    continue;
                };
                samples.push((t, d.observe(Point2::new(x, y))));
            }
            let normal_mean = mean_score_in(&samples, evening.0, evening.1).unwrap_or(f64::NAN);
            let normal_min = min_score_in(&samples, evening.0, evening.1).unwrap_or(f64::NAN);
            let fault_min = min_score_in(&samples, fault_lo, fault_hi).unwrap_or(f64::NAN);
            let spike_mean = mean_score_in(&samples, spike.0, spike.1).unwrap_or(f64::NAN);
            DetectorQuality {
                name: d.name(),
                normal_mean,
                fault_separation: normal_min - fault_min,
                spike_dip: normal_mean - spike_mean,
            }
        })
        .collect()
}

/// Regenerates the comparison table.
pub fn run(options: RunOptions) -> ExperimentResult {
    let mut result = ExperimentResult::new(
        "baselines_quality",
        "detection quality: grid-Markov vs linear invariant, GMM, z-score",
    );
    let rows = evaluate_all(options);
    let mut table = Table::new(
        "per-detector quality on the faulted test day",
        vec![
            "detector".into(),
            "normal mean".into(),
            "fault separation".into(),
            "spike dip".into(),
        ],
    );
    for q in &rows {
        table.push_row(vec![
            q.name.to_string(),
            format!("{:.4}", q.normal_mean),
            format!("{:.4}", q.fault_separation),
            format!("{:.4}", q.spike_dip),
        ]);
    }
    result.tables.push(table);

    let get = |name: &str| rows.iter().find(|q| q.name == name).expect("detector ran");
    let markov = get("grid-markov");
    let zscore = get("z-score");
    result.checks.push(Check::new(
        "the grid-Markov model separates the fault",
        markov.fault_separation > 0.1,
        format!("separation {:.4}", markov.fault_separation),
    ));
    result.checks.push(Check::new(
        "the grid-Markov model stays quiet in normal periods",
        markov.normal_mean > 0.9,
        format!("normal mean {:.4}", markov.normal_mean),
    ));
    result.checks.push(Check::new(
        "the per-metric z-score is hit harder by the correlated load spike \
         than the grid-Markov model (the paper's false-positive argument)",
        zscore.spike_dip > markov.spike_dip,
        format!(
            "spike dip: z-score {:.4} vs grid-markov {:.4}",
            zscore.spike_dip, markov.spike_dip
        ),
    ));
    let correlation_methods_detect = ["grid-markov", "linear-invariant", "gaussian-mixture"]
        .iter()
        .all(|n| get(n).fault_separation > 0.05);
    result.checks.push(Check::new(
        "every correlation-aware method separates this (correlation-breaking) fault",
        correlation_methods_detect,
        rows.iter()
            .map(|q| format!("{}: {:.3}", q.name, q.fault_separation))
            .collect::<Vec<_>>()
            .join(", "),
    ));
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quality_comparison_holds() {
        let r = run(RunOptions {
            machines: 2,
            ..RunOptions::default()
        });
        assert!(r.all_checks_passed(), "{}", r.to_ascii());
    }
}
