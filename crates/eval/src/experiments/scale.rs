//! The paper's deployment scale: "For each group, there are roughly 3000
//! measurements. We select 100 … and conduct the experiments on the
//! 3 × C(100, 2) pairs of measurements", processing "more than 4,000
//! monitoring data points" per model well within the 6-minute sampling
//! budget.
//!
//! This experiment trains a full-scale group (~100 screened
//! measurements, all pairs) and measures training time, per-snapshot
//! stepping cost (serial and parallel), and the sparse matrices' memory
//! economy — the claims behind the paper's "the method is fast and can
//! be embedded in online monitoring tools".

use std::time::Instant;

use gridwatch_core::ModelConfig;
use gridwatch_detect::{DetectionEngine, EngineConfig, PairScreen};
use gridwatch_sim::scenario::{clean_scenario, TEST_DAY};
use gridwatch_timeseries::{AlignmentPolicy, GroupId, PairSeries, Timestamp};

use crate::harness::{snapshot_at, training_map, RunOptions};
use crate::report::{Check, ExperimentResult, Table};

/// Machines needed for ~100 high-variance measurements (6 metrics per
/// machine, one of which the variance screen drops).
const SCALE_MACHINES: usize = 20;

/// Regenerates the scale/efficiency measurements.
pub fn run(options: RunOptions) -> ExperimentResult {
    let mut result = ExperimentResult::new(
        "scale",
        "paper-scale efficiency: ~100 measurements, all pairs, timed",
    );
    let scenario = clean_scenario(GroupId::A, SCALE_MACHINES, options.seed);
    let train_end = Timestamp::from_days(8);
    let training = training_map(&scenario.trace, train_end);
    let screen = PairScreen {
        min_cv: 0.05,
        ..PairScreen::default()
    };
    let measurements = {
        // Count distinct measurements the screen keeps.
        let pairs = screen.select(&training);
        let mut set = std::collections::BTreeSet::new();
        for p in &pairs {
            set.insert(p.first());
            set.insert(p.second());
        }
        (set.len(), pairs)
    };
    let (kept, pairs) = measurements;
    result.notes.push(format!(
        "{SCALE_MACHINES} machines -> {kept} screened measurements -> {} pairs \
         (paper: 100 measurements, 4950 pairs per group)",
        pairs.len()
    ));

    let histories: Vec<_> = pairs
        .iter()
        .filter_map(|&p| {
            PairSeries::align(
                &training[&p.first()],
                &training[&p.second()],
                AlignmentPolicy::Intersect,
            )
            .ok()
            .map(|h| (p, h))
        })
        .collect();

    let model = ModelConfig::builder()
        .update_threshold(0.005)
        .build()
        .expect("valid config");

    // Train once, timed.
    let started = Instant::now();
    let mut engine = DetectionEngine::train(
        histories.clone(),
        EngineConfig {
            model,
            ..EngineConfig::default()
        },
    )
    .expect("scale training succeeds");
    let train_secs = started.elapsed().as_secs_f64();

    // Step the test day's first two hours, serial.
    let step_range: Vec<_> = scenario
        .trace
        .interval()
        .ticks(
            Timestamp::from_days(TEST_DAY),
            Timestamp::from_secs(TEST_DAY * 86_400 + 2 * 3600),
        )
        .collect();
    let started = Instant::now();
    for &t in &step_range {
        engine.step(&snapshot_at(&scenario.trace, t));
    }
    let serial_ms = started.elapsed().as_secs_f64() * 1e3 / step_range.len() as f64;

    // Same with parallel stepping on a fresh engine.
    let started = Instant::now();
    let mut parallel_engine = DetectionEngine::train(
        histories,
        EngineConfig {
            model,
            parallel: true,
            ..EngineConfig::default()
        },
    )
    .expect("scale training succeeds");
    let _ = started; // training timed once above
    let started = Instant::now();
    for &t in &step_range {
        parallel_engine.step(&snapshot_at(&scenario.trace, t));
    }
    let parallel_ms = started.elapsed().as_secs_f64() * 1e3 / step_range.len() as f64;
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    result.notes.push(format!(
        "parallel stepping measured on {cores} core(s); it only helps with >1"
    ));

    // Memory economy: distinct sparse entries vs a dense matrix.
    let mut stored = 0u64;
    let mut dense_cells = 0u64;
    for p in engine.pairs().collect::<Vec<_>>() {
        let m = engine.model(p).expect("pair is live");
        stored += m.matrix().distinct_entries() as u64;
        let s = m.grid().cell_count() as u64;
        dense_cells += s * s;
    }

    let mut table = Table::new("scale metrics", vec!["metric".into(), "value".into()]);
    table.push_row(vec!["pair models".into(), engine.model_count().to_string()]);
    table.push_row(vec!["training time".into(), format!("{train_secs:.2} s")]);
    table.push_row(vec![
        "per-snapshot step (serial)".into(),
        format!("{serial_ms:.2} ms"),
    ]);
    table.push_row(vec![
        "per-snapshot step (parallel)".into(),
        format!("{parallel_ms:.2} ms"),
    ]);
    table.push_row(vec![
        "per-model update (serial)".into(),
        format!("{:.1} us", serial_ms * 1e3 / engine.model_count() as f64),
    ]);
    table.push_row(vec!["distinct sparse entries".into(), stored.to_string()]);
    table.push_row(vec![
        "dense-matrix cells avoided".into(),
        dense_cells.to_string(),
    ]);
    result.tables.push(table);

    result.checks.push(Check::new(
        "the engine reaches the paper's scale (thousands of pairs)",
        engine.model_count() >= 1000,
        format!("{} pair models", engine.model_count()),
    ));
    result.checks.push(Check::new(
        "a full snapshot across all pairs costs far less than the 6-minute budget",
        serial_ms < 360_000.0 / 10.0,
        format!("{serial_ms:.2} ms per snapshot (budget 360 000 ms)"),
    ));
    result.checks.push(Check::new(
        "per-model update cost is in the paper's reported regime (< 23 ms)",
        serial_ms / (engine.model_count() as f64) < 23.0,
        format!(
            "{:.3} ms per model per sample",
            serial_ms / engine.model_count() as f64
        ),
    ));
    result.checks.push(Check::new(
        "the sparse representation stores orders of magnitude fewer entries \
         than dense matrices",
        stored * 100 < dense_cells,
        format!("{stored} stored vs {dense_cells} dense entries"),
    ));
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[ignore = "runs the full paper-scale training; invoke with --ignored"]
    fn scale_checks_hold() {
        let r = run(RunOptions::default());
        assert!(r.all_checks_passed(), "{}", r.to_ascii());
    }
}
