//! Quality ablations over the model's design choices (DESIGN.md §6):
//! how much does each ingredient of the paper's design contribute to
//! detection quality?
//!
//! For each variant we train on 8 days of a faulted group-A trace,
//! replay the test day on the focus pair, and report (a) the mean
//! fitness over normal periods (higher = fewer false alarms) and (b)
//! the *dip depth*: the gap between the normal-period minimum fitness
//! and the fault-window minimum (positive = the fault is separable, the
//! statistic behind the paper's Figure 12 plots; an AUC over the whole
//! window would be diluted by the rank-forgiving self-transitions that
//! follow the initial anomalous jump). Variants:
//!
//! * decay kernel: MeanAxis (paper) / Chebyshev / Manhattan / Euclidean;
//! * decay rate `w ∈ {1.5, 2, 4}`;
//! * adaptive (MAFIA-merged) grid vs uniform equal-width grid;
//! * Bayesian prior + replay vs "frozen prior" (no history replay —
//!   what scoring from the spatial prior alone would give).

use gridwatch_core::{DecayKernel, ModelConfig, TransitionModel};
use gridwatch_grid::GridConfig;
use gridwatch_sim::scenario::{group_fault_scenario, TEST_DAY};
use gridwatch_timeseries::{GroupId, Point2, Timestamp};

use crate::harness::RunOptions;
use crate::metrics::{mean_score_in, min_score_in};
use crate::report::{Check, ExperimentResult, Table};

/// The quality of one variant on the faulted test day.
#[derive(Debug, Clone, Copy)]
pub struct VariantQuality {
    /// Mean fitness over the fault-free parts of the day.
    pub normal_fitness: f64,
    /// Normal-period minimum fitness minus fault-window minimum fitness
    /// (positive = the fault dips below anything normal).
    pub dip_depth: f64,
}

/// Trains a variant and evaluates it on the focus pair's test day.
fn evaluate(config: ModelConfig, options: RunOptions, replay_history: bool) -> VariantQuality {
    let scenario = group_fault_scenario(GroupId::A, options.machines, options.seed);
    let (a, b) = scenario.focus_pair.expect("scenario has a focus pair");
    let train_end = Timestamp::from_days(8);
    let sa = scenario.trace.series(a).expect("simulated");
    let sb = scenario.trace.series(b).expect("simulated");
    let history = gridwatch_timeseries::PairSeries::align(
        &sa.slice(Timestamp::EPOCH, train_end),
        &sb.slice(Timestamp::EPOCH, train_end),
        gridwatch_timeseries::AlignmentPolicy::Intersect,
    )
    .expect("same schedule");

    let mut model = if replay_history {
        TransitionModel::fit(&history, config).expect("history is modelable")
    } else {
        // Prior-only ablation: build the grid, skip the replay.
        let grid = gridwatch_grid::GridBuilder::new(config.grid)
            .build(history.points())
            .expect("grid builds");
        let mut m = TransitionModel::from_grid(grid, config).expect("valid config");
        // Seed the trajectory with the last history point.
        m.observe(*history.points().last().expect("non-empty"));
        m
    };

    let start = Timestamp::from_days(TEST_DAY);
    let end = Timestamp::from_days(TEST_DAY + 1);
    let mut samples = Vec::new();
    for t in scenario.trace.interval().ticks(start, end) {
        let (Some(x), Some(y)) = (sa.value_at(t), sb.value_at(t)) else {
            continue;
        };
        if let Some(score) = model.observe(Point2::new(x, y)).score {
            samples.push((t, score.fitness()));
        }
    }
    let day = start.as_secs();
    let evening = (
        Timestamp::from_secs(day + 18 * 3600),
        Timestamp::from_secs(day + 24 * 3600),
    );
    let normal_fitness = mean_score_in(&samples, evening.0, evening.1).unwrap_or(f64::NAN);
    let normal_min = min_score_in(&samples, evening.0, evening.1).unwrap_or(f64::NAN);
    let (fs, fe) = scenario.faults.truth_windows()[0];
    let fault_min = min_score_in(&samples, fs, fe).unwrap_or(f64::NAN);
    VariantQuality {
        normal_fitness,
        dip_depth: normal_min - fault_min,
    }
}

/// Regenerates the ablation table.
pub fn run(options: RunOptions) -> ExperimentResult {
    let mut result = ExperimentResult::new(
        "ablation",
        "detection quality of each design-choice variant (focus pair, test day)",
    );
    let mut table = Table::new(
        "variant quality",
        vec![
            "variant".into(),
            "normal-period fitness".into(),
            "fault dip depth".into(),
        ],
    );

    let base = ModelConfig::builder()
        .update_threshold(0.005)
        .build()
        .expect("valid config");
    let mut rows: Vec<(String, VariantQuality)> = Vec::new();

    for kernel in DecayKernel::ALL {
        let config = ModelConfig { kernel, ..base };
        rows.push((
            format!("kernel={kernel:?}"),
            evaluate(config, options, true),
        ));
    }
    for w in [1.5, 4.0] {
        let config = ModelConfig {
            decay_rate: w,
            ..base
        };
        rows.push((format!("decay w={w}"), evaluate(config, options, true)));
    }
    let uniform_grid = GridConfig::builder()
        .uniform_cv_threshold(1e9)
        .uniform_intervals(16)
        .build()
        .expect("valid grid config");
    rows.push((
        "uniform grid".into(),
        evaluate(
            ModelConfig {
                grid: uniform_grid,
                ..base
            },
            options,
            true,
        ),
    ));
    rows.push((
        "prior only (no replay)".into(),
        evaluate(base, options, false),
    ));

    for (name, q) in &rows {
        table.push_row(vec![
            name.clone(),
            format!("{:.4}", q.normal_fitness),
            format!("{:.4}", q.dip_depth),
        ]);
    }
    result.tables.push(table);

    let paper = rows[0].1; // MeanAxis, w = 2, adaptive, replayed
    result.checks.push(Check::new(
        "the paper's configuration dips clearly below normal during the fault",
        paper.dip_depth > 0.1,
        format!("dip depth = {:.4}", paper.dip_depth),
    ));
    result.checks.push(Check::new(
        "the paper's configuration keeps normal periods quiet (fitness > 0.9)",
        paper.normal_fitness > 0.9,
        format!("normal fitness = {:.4}", paper.normal_fitness),
    ));
    let prior_only = rows.last().expect("rows non-empty").1;
    result.checks.push(Check::new(
        "replaying history keeps normal periods at least as quiet as the prior alone",
        paper.normal_fitness >= prior_only.normal_fitness - 0.02,
        format!(
            "normal fitness replayed {:.4} vs prior-only {:.4}",
            paper.normal_fitness, prior_only.normal_fitness
        ),
    ));
    let all_kernels_work = rows[..4].iter().all(|(_, q)| q.dip_depth > 0.05);
    result.checks.push(Check::new(
        "every decay kernel separates the fault (the design is robust to the kernel)",
        all_kernels_work,
        rows[..4]
            .iter()
            .map(|(n, q)| format!("{n}: {:.3}", q.dip_depth))
            .collect::<Vec<_>>()
            .join(", "),
    ));
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_checks_hold() {
        let r = run(RunOptions {
            machines: 2,
            ..RunOptions::default()
        });
        assert!(r.all_checks_passed(), "{}", r.to_ascii());
    }
}
