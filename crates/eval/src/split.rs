//! The paper's train/test calendar (Section 6).
//!
//! One month of monitoring data, May 29 to June 27 2008; our epoch
//! second 0 is May 29 00:00 (a Thursday, matching the real calendar).
//!
//! * Training sets all start May 29: 1 day (May 29), 8 days (May
//!   29–June 5), 15 days (May 29–June 12).
//! * Test sets all start June 13 (day 15): 1, 5, 9, and 13 days.

use std::fmt;

use serde::{Deserialize, Serialize};

use gridwatch_timeseries::Timestamp;

/// First test day (June 13) as a day index from the May 29 epoch.
pub const TEST_START_DAY: u64 = 15;

/// The paper's three training windows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TrainWindow {
    /// May 29 only ("5.29–5.29").
    OneDay,
    /// May 29 – June 5 ("5.29–6.5").
    EightDays,
    /// May 29 – June 12 ("5.29–6.12").
    FifteenDays,
}

impl TrainWindow {
    /// All training windows, smallest first.
    pub const ALL: [TrainWindow; 3] = [
        TrainWindow::OneDay,
        TrainWindow::EightDays,
        TrainWindow::FifteenDays,
    ];

    /// Number of days in the window.
    pub fn days(self) -> u64 {
        match self {
            TrainWindow::OneDay => 1,
            TrainWindow::EightDays => 8,
            TrainWindow::FifteenDays => 15,
        }
    }

    /// The half-open `[start, end)` timestamps.
    pub fn range(self) -> (Timestamp, Timestamp) {
        (Timestamp::EPOCH, Timestamp::from_days(self.days()))
    }
}

impl fmt::Display for TrainWindow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrainWindow::OneDay => write!(f, "5.29-5.29"),
            TrainWindow::EightDays => write!(f, "5.29-6.5"),
            TrainWindow::FifteenDays => write!(f, "5.29-6.12"),
        }
    }
}

/// The paper's four test windows, all starting June 13.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TestWindow {
    /// June 13 ("6.13–6.13").
    OneDay,
    /// June 13–17 ("6.13–6.17").
    FiveDays,
    /// June 13–21 ("6.13–6.21").
    NineDays,
    /// June 13–25 ("6.13–6.25").
    ThirteenDays,
}

impl TestWindow {
    /// All test windows, smallest first.
    pub const ALL: [TestWindow; 4] = [
        TestWindow::OneDay,
        TestWindow::FiveDays,
        TestWindow::NineDays,
        TestWindow::ThirteenDays,
    ];

    /// Number of days in the window.
    pub fn days(self) -> u64 {
        match self {
            TestWindow::OneDay => 1,
            TestWindow::FiveDays => 5,
            TestWindow::NineDays => 9,
            TestWindow::ThirteenDays => 13,
        }
    }

    /// The half-open `[start, end)` timestamps.
    pub fn range(self) -> (Timestamp, Timestamp) {
        (
            Timestamp::from_days(TEST_START_DAY),
            Timestamp::from_days(TEST_START_DAY + self.days()),
        )
    }
}

impl fmt::Display for TestWindow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestWindow::OneDay => write!(f, "6.13-6.13"),
            TestWindow::FiveDays => write!(f, "6.13-6.17"),
            TestWindow::NineDays => write!(f, "6.13-6.21"),
            TestWindow::ThirteenDays => write!(f, "6.13-6.25"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn training_windows_start_at_epoch() {
        for w in TrainWindow::ALL {
            let (start, end) = w.range();
            assert_eq!(start, Timestamp::EPOCH);
            assert_eq!(end.day_index(), w.days());
        }
    }

    #[test]
    fn test_windows_start_june_13() {
        for w in TestWindow::ALL {
            let (start, end) = w.range();
            assert_eq!(start.day_index(), 15);
            assert_eq!(end.day_index() - start.day_index(), w.days());
        }
    }

    #[test]
    fn no_overlap_between_train_and_test() {
        let (_, train_end) = TrainWindow::FifteenDays.range();
        let (test_start, _) = TestWindow::OneDay.range();
        assert!(train_end <= test_start);
    }

    #[test]
    fn display_uses_paper_labels() {
        assert_eq!(TrainWindow::EightDays.to_string(), "5.29-6.5");
        assert_eq!(TestWindow::ThirteenDays.to_string(), "6.13-6.25");
    }
}
