//! The experiment harness that regenerates every figure of the paper's
//! evaluation (Section 6) on simulated monitoring data.
//!
//! Each paper artifact has a module under [`experiments`] producing an
//! [`ExperimentResult`]: one or more tables (rendered as ASCII and CSV)
//! plus a list of *shape checks* — the qualitative claims the
//! reproduction must uphold (who wins, where the dips are, what grows).
//! Absolute numbers differ from the paper because the substrate is a
//! simulator; see `EXPERIMENTS.md` at the workspace root for the
//! paper-vs-measured record.
//!
//! Run everything from the CLI:
//!
//! ```text
//! cargo run -p gridwatch-eval --bin repro -- all
//! cargo run -p gridwatch-eval --bin repro -- fig12 --seed 7 --machines 4
//! ```
//!
//! # Example
//!
//! ```
//! use gridwatch_eval::experiments::fig11;
//!
//! let result = fig11::run();
//! assert!(result.checks.iter().all(|c| c.passed));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod chaos;
pub mod experiments;
pub mod harness;
pub mod metrics;
pub mod report;
pub mod split;

pub use report::{Check, ExperimentResult, Table};
