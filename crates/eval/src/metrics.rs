//! Detection-quality metrics against the simulator's ground-truth fault
//! schedule — strictly more than the paper could measure (it relied on
//! administrator-identified events), used to quantify the shape claims.

use gridwatch_sim::FaultSchedule;
use gridwatch_timeseries::Timestamp;

/// A binary-detection confusion summary at a fixed score threshold.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Confusion {
    /// Faulty samples flagged.
    pub true_positives: usize,
    /// Normal samples flagged.
    pub false_positives: usize,
    /// Normal samples passed.
    pub true_negatives: usize,
    /// Faulty samples passed.
    pub false_negatives: usize,
}

impl Confusion {
    /// Precision `tp / (tp + fp)`, or `None` with no positives.
    pub fn precision(&self) -> Option<f64> {
        let denom = self.true_positives + self.false_positives;
        (denom > 0).then(|| self.true_positives as f64 / denom as f64)
    }

    /// Recall `tp / (tp + fn)`, or `None` with no faulty samples.
    pub fn recall(&self) -> Option<f64> {
        let denom = self.true_positives + self.false_negatives;
        (denom > 0).then(|| self.true_positives as f64 / denom as f64)
    }

    /// F1 score, or `None` when precision or recall is undefined.
    pub fn f1(&self) -> Option<f64> {
        let p = self.precision()?;
        let r = self.recall()?;
        ((p + r) > 0.0).then(|| 2.0 * p * r / (p + r))
    }

    /// False-positive rate `fp / (fp + tn)`, or `None` with no normal
    /// samples.
    pub fn false_positive_rate(&self) -> Option<f64> {
        let denom = self.false_positives + self.true_negatives;
        (denom > 0).then(|| self.false_positives as f64 / denom as f64)
    }
}

/// Labels scored samples against the fault schedule and thresholds the
/// scores: a sample alarms when `score < threshold`.
pub fn confusion_at(
    samples: &[(Timestamp, f64)],
    faults: &FaultSchedule,
    threshold: f64,
) -> Confusion {
    let mut c = Confusion::default();
    for &(t, score) in samples {
        let truth = faults.truth_label(t);
        let flagged = score < threshold;
        match (truth, flagged) {
            (true, true) => c.true_positives += 1,
            (true, false) => c.false_negatives += 1,
            (false, true) => c.false_positives += 1,
            (false, false) => c.true_negatives += 1,
        }
    }
    c
}

/// The area under the ROC curve, computed as the Mann–Whitney statistic:
/// the probability that a random faulty sample scores *lower* than a
/// random normal one (lower score = more anomalous). 0.5 = chance,
/// 1.0 = perfect separation. Returns `None` if either class is empty.
pub fn auc(samples: &[(Timestamp, f64)], faults: &FaultSchedule) -> Option<f64> {
    let faulty: Vec<f64> = samples
        .iter()
        .filter(|(t, _)| faults.truth_label(*t))
        .map(|&(_, s)| s)
        .collect();
    let normal: Vec<f64> = samples
        .iter()
        .filter(|(t, _)| !faults.truth_label(*t))
        .map(|&(_, s)| s)
        .collect();
    if faulty.is_empty() || normal.is_empty() {
        return None;
    }
    let mut wins = 0.0;
    for &f in &faulty {
        for &n in &normal {
            if f < n {
                wins += 1.0;
            } else if f == n {
                wins += 0.5;
            }
        }
    }
    Some(wins / (faulty.len() as f64 * normal.len() as f64))
}

/// Detection delay: the time from each truth window's start to the first
/// sample inside it scoring below `threshold`. Returns one entry per
/// truth window (`None` if never detected).
pub fn detection_delays(
    samples: &[(Timestamp, f64)],
    faults: &FaultSchedule,
    threshold: f64,
) -> Vec<Option<u64>> {
    faults
        .truth_windows()
        .into_iter()
        .map(|(start, end)| {
            samples
                .iter()
                .find(|&&(t, s)| t >= start && t < end && s < threshold)
                .map(|&(t, _)| t.saturating_secs_since(start))
        })
        .collect()
}

/// Mean of the scores in `[lo, hi)`, or `None` if no samples fall there.
pub fn mean_score_in(samples: &[(Timestamp, f64)], lo: Timestamp, hi: Timestamp) -> Option<f64> {
    let vals: Vec<f64> = samples
        .iter()
        .filter(|(t, _)| *t >= lo && *t < hi)
        .map(|&(_, s)| s)
        .collect();
    (!vals.is_empty()).then(|| vals.iter().sum::<f64>() / vals.len() as f64)
}

/// Minimum score in `[lo, hi)`, or `None` if no samples fall there.
pub fn min_score_in(samples: &[(Timestamp, f64)], lo: Timestamp, hi: Timestamp) -> Option<f64> {
    samples
        .iter()
        .filter(|(t, _)| *t >= lo && *t < hi)
        .map(|&(_, s)| s)
        .min_by(|a, b| a.partial_cmp(b).expect("finite scores"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridwatch_sim::{FaultEvent, FaultKind};
    use gridwatch_timeseries::{MachineId, MeasurementId, MetricKind};

    fn schedule() -> FaultSchedule {
        let target = MeasurementId::new(MachineId::new(0), MetricKind::CpuUtilization);
        let mut s = FaultSchedule::new();
        s.push(FaultEvent::new(
            FaultKind::CorrelationBreak { target, level: 0.5 },
            Timestamp::from_secs(100),
            Timestamp::from_secs(200),
        ));
        s
    }

    fn samples() -> Vec<(Timestamp, f64)> {
        // Normal (high) outside [100, 200), low inside — except one
        // missed faulty sample and one false positive.
        vec![
            (Timestamp::from_secs(0), 0.95),
            (Timestamp::from_secs(50), 0.10),  // false positive
            (Timestamp::from_secs(100), 0.90), // missed (late detection)
            (Timestamp::from_secs(150), 0.20), // detected
            (Timestamp::from_secs(199), 0.15), // detected
            (Timestamp::from_secs(250), 0.97),
        ]
    }

    #[test]
    fn confusion_counts() {
        let c = confusion_at(&samples(), &schedule(), 0.5);
        assert_eq!(c.true_positives, 2);
        assert_eq!(c.false_negatives, 1);
        assert_eq!(c.false_positives, 1);
        assert_eq!(c.true_negatives, 2);
        assert!((c.precision().unwrap() - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.recall().unwrap() - 2.0 / 3.0).abs() < 1e-12);
        assert!(c.f1().unwrap() > 0.6);
        assert!((c.false_positive_rate().unwrap() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_classes_give_none() {
        let c = Confusion::default();
        assert_eq!(c.precision(), None);
        assert_eq!(c.recall(), None);
        assert_eq!(c.f1(), None);
    }

    #[test]
    fn auc_separates_classes() {
        let a = auc(&samples(), &schedule()).unwrap();
        assert!(a > 0.5, "auc {a}");
        // Perfectly separated scores give auc 1.
        let perfect: Vec<(Timestamp, f64)> = vec![
            (Timestamp::from_secs(0), 0.9),
            (Timestamp::from_secs(150), 0.1),
        ];
        assert_eq!(auc(&perfect, &schedule()), Some(1.0));
        // No faulty samples -> None.
        let clean = FaultSchedule::new();
        assert_eq!(auc(&samples(), &clean), None);
    }

    #[test]
    fn delay_measures_first_hit() {
        let d = detection_delays(&samples(), &schedule(), 0.5);
        assert_eq!(d, vec![Some(50)]); // first sub-threshold at t=150
        let d = detection_delays(&samples(), &schedule(), 0.05);
        assert_eq!(d, vec![None]); // threshold too strict
    }

    #[test]
    fn window_means_and_mins() {
        let s = samples();
        let m = mean_score_in(&s, Timestamp::from_secs(100), Timestamp::from_secs(200)).unwrap();
        assert!((m - (0.90 + 0.20 + 0.15) / 3.0).abs() < 1e-12);
        assert_eq!(
            min_score_in(&s, Timestamp::from_secs(100), Timestamp::from_secs(200)),
            Some(0.15)
        );
        assert_eq!(
            mean_score_in(&s, Timestamp::from_secs(300), Timestamp::from_secs(400)),
            None
        );
    }
}
