//! Shared experiment plumbing: pair selection, engine construction, and
//! timed replay over a trace.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use gridwatch_core::{ModelConfig, TransitionModel};
use gridwatch_detect::{DetectionEngine, EngineConfig, PairScreen, ScoreBoard, Snapshot};
use gridwatch_sim::Trace;
use gridwatch_timeseries::{
    AlignmentPolicy, MeasurementId, MeasurementPair, PairSeries, TimeSeries, Timestamp,
};

/// Common experiment knobs, settable from the `repro` CLI.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunOptions {
    /// Machines per simulated group.
    pub machines: usize,
    /// Master seed.
    pub seed: u64,
    /// Cap on concurrently watched pairs.
    pub max_pairs: usize,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            machines: 4,
            seed: 20080529,
            max_pairs: 40,
        }
    }
}

/// Slices every measurement's series to `[EPOCH, end)` — the training
/// view of a trace.
pub fn training_map(trace: &Trace, end: Timestamp) -> BTreeMap<MeasurementId, TimeSeries> {
    trace
        .measurement_ids()
        .map(|id| {
            (
                id,
                trace
                    .series(id)
                    .expect("id comes from the trace")
                    .slice(Timestamp::EPOCH, end),
            )
        })
        .collect()
}

/// Selects pairs with the paper's high-variance screen, capped at
/// `max_pairs`.
pub fn screened_pairs(
    trace: &Trace,
    train_end: Timestamp,
    max_pairs: usize,
) -> Vec<MeasurementPair> {
    let training = training_map(trace, train_end);
    let screen = PairScreen {
        min_cv: 0.05,
        max_pairs: Some(max_pairs),
        ..PairScreen::default()
    };
    screen.select(&training)
}

/// Aligns pair histories over `[start, end)` for the given pairs,
/// dropping pairs that cannot be aligned.
pub fn pair_histories(
    trace: &Trace,
    pairs: &[MeasurementPair],
    start: Timestamp,
    end: Timestamp,
) -> Vec<(MeasurementPair, PairSeries)> {
    pairs
        .iter()
        .filter_map(|&p| {
            let a = trace.series(p.first())?.slice(start, end);
            let b = trace.series(p.second())?.slice(start, end);
            PairSeries::align(&a, &b, AlignmentPolicy::Intersect)
                .ok()
                .map(|h| (p, h))
        })
        .collect()
}

/// Fits a detection engine on `[EPOCH, train_end)` for the screened
/// pairs.
///
/// # Panics
///
/// Panics if no pair yields a usable model (misconfigured experiment).
pub fn build_engine(
    trace: &Trace,
    train_end: Timestamp,
    max_pairs: usize,
    config: EngineConfig,
) -> DetectionEngine {
    let pairs = screened_pairs(trace, train_end, max_pairs);
    let histories = pair_histories(trace, &pairs, Timestamp::EPOCH, train_end);
    DetectionEngine::train(histories, config).expect("experiment should yield usable pair models")
}

/// The snapshot of a trace at tick `t`.
pub fn snapshot_at(trace: &Trace, t: Timestamp) -> Snapshot {
    let mut snap = Snapshot::new(t);
    for id in trace.measurement_ids() {
        if let Some(v) = trace.series(id).expect("id from trace").value_at(t) {
            snap.insert(id, v);
        }
    }
    snap
}

/// Replays `[start, end)` through the engine, returning the per-tick
/// score boards and the total wall time spent inside `engine.step`.
pub fn replay_engine(
    engine: &mut DetectionEngine,
    trace: &Trace,
    start: Timestamp,
    end: Timestamp,
) -> (Vec<(Timestamp, ScoreBoard)>, Duration) {
    let mut rows = Vec::new();
    let mut spent = Duration::ZERO;
    for t in trace.interval().ticks(start, end) {
        let snap = snapshot_at(trace, t);
        let started = Instant::now();
        let report = engine.step(&snap);
        spent += started.elapsed();
        if !report.scores.is_empty() {
            rows.push((t, report.scores));
        }
    }
    (rows, spent)
}

/// Fits a single pair model on `[EPOCH, train_end)` of a trace.
///
/// # Panics
///
/// Panics if the pair's history is degenerate (misconfigured
/// experiment).
pub fn fit_pair_model(
    trace: &Trace,
    a: MeasurementId,
    b: MeasurementId,
    train_end: Timestamp,
    config: ModelConfig,
) -> TransitionModel {
    let sa = trace.series(a).expect("measurement in trace");
    let sb = trace.series(b).expect("measurement in trace");
    let history = PairSeries::align(
        &sa.slice(Timestamp::EPOCH, train_end),
        &sb.slice(Timestamp::EPOCH, train_end),
        AlignmentPolicy::Intersect,
    )
    .expect("trace series share the sampling schedule");
    TransitionModel::fit(&history, config).expect("pair history should be modelable")
}

/// Per-tick system scores from replayed boards.
pub fn system_scores(rows: &[(Timestamp, ScoreBoard)]) -> Vec<(Timestamp, f64)> {
    rows.iter()
        .filter_map(|(t, board)| board.system_score().map(|q| (*t, q)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridwatch_sim::scenario::clean_scenario;
    use gridwatch_timeseries::GroupId;

    #[test]
    fn engine_pipeline_runs_end_to_end() {
        let s = clean_scenario(GroupId::A, 2, 1);
        let mut engine = build_engine(
            &s.trace,
            Timestamp::from_days(2),
            10,
            EngineConfig::default(),
        );
        let (rows, spent) = replay_engine(
            &mut engine,
            &s.trace,
            Timestamp::from_days(2),
            Timestamp::from_secs(2 * 86_400 + 4 * 3600),
        );
        assert!(!rows.is_empty());
        assert!(spent.as_nanos() > 0);
        let scores = system_scores(&rows);
        assert_eq!(scores.len(), rows.len());
        assert!(scores.iter().all(|&(_, q)| (0.0..=1.0).contains(&q)));
    }

    #[test]
    fn screened_pairs_respect_cap() {
        let s = clean_scenario(GroupId::B, 3, 2);
        let pairs = screened_pairs(&s.trace, Timestamp::from_days(1), 7);
        assert!(pairs.len() <= 7);
        assert!(!pairs.is_empty());
    }

    #[test]
    fn fit_pair_model_works_on_trace_pairs() {
        let s = clean_scenario(GroupId::A, 1, 3);
        let mut ids = s.trace.measurement_ids();
        let a = ids.next().unwrap();
        let b = ids.nth(1).unwrap();
        let model = fit_pair_model(
            &s.trace,
            a,
            b,
            Timestamp::from_days(3),
            ModelConfig::default(),
        );
        assert!(model.matrix().total_observations() > 0);
    }
}
