//! Scored evaluation under hostile conditions: run each chaos regime
//! (see [`gridwatch_sim::ChaosRegime`]) against its typed ground truth
//! and report detection latency, precision/recall, and the
//! false-rebuild rate of the drift layer.
//!
//! The engine under test pairs a *frozen* (non-adaptive) model with the
//! drift layer: an adaptive grid extends itself over a drifted
//! trajectory and self-heals silently, while a frozen grid scores
//! off-manifold points as outliers — exactly the sustained decay the
//! drift detector watches for, making the rebuild an observable,
//! attributable event.

use gridwatch_core::ModelConfig;
use gridwatch_detect::{DriftConfig, EngineConfig, RebuildEvent};
use gridwatch_sim::chaos::chaos_scenario;
use gridwatch_sim::scenario::TEST_DAY;
use gridwatch_sim::ChaosRegime;
use gridwatch_timeseries::Timestamp;
use serde::{Deserialize, Serialize};

use crate::harness::{build_engine, replay_engine, system_scores};
use crate::metrics::{confusion_at, detection_delays};
use crate::report::{Check, ExperimentResult, Table};

/// Knobs of a chaos evaluation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosOptions {
    /// Machines per simulated group.
    pub machines: usize,
    /// Master seed (each regime derives its trace from it).
    pub seed: u64,
    /// Cap on concurrently watched pairs.
    pub max_pairs: usize,
    /// System-score alarm threshold used for detection scoring.
    pub threshold: f64,
    /// Days replayed after the training cut.
    pub replay_days: u64,
}

impl Default for ChaosOptions {
    fn default() -> Self {
        ChaosOptions {
            machines: 3,
            seed: 20080529,
            max_pairs: 30,
            threshold: 0.6,
            replay_days: 2,
        }
    }
}

/// The engine configuration the chaos harness evaluates: frozen pair
/// models plus the drift layer (see the module docs for why the model
/// must be frozen for drift to be observable).
pub fn chaos_engine_config() -> EngineConfig {
    EngineConfig {
        model: ModelConfig::default().frozen(),
        drift: Some(DriftConfig::default()),
        ..EngineConfig::default()
    }
}

/// Scored outcome of one regime's run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegimeReport {
    /// The regime evaluated.
    pub regime: String,
    /// Scored system-level samples in the replay window.
    pub samples: usize,
    /// Seconds from the first truth window's start to the first
    /// below-threshold sample inside it; `None` when the regime has no
    /// truth windows or the fault was never detected.
    pub detection_delay_secs: Option<u64>,
    /// Sample-level precision at the threshold (`None` when nothing
    /// was flagged).
    pub precision: Option<f64>,
    /// Sample-level recall at the threshold (`None` when the regime
    /// defines no faulty samples).
    pub recall: Option<f64>,
    /// Pair-model rebuilds the drift layer fired during the replay.
    pub rebuilds: usize,
    /// Rebuilds that fired outside every expected-rebuild window — for
    /// any regime other than drift, every rebuild is false.
    pub false_rebuilds: usize,
    /// Lowest system score seen in the replay window.
    pub min_system_score: f64,
}

/// Runs one regime end to end: generate its scenario, train on the
/// clean prefix, replay the chaos window, and score against ground
/// truth.
pub fn run_regime(regime: ChaosRegime, options: ChaosOptions) -> RegimeReport {
    let scenario = chaos_scenario(regime, options.machines, options.seed);
    let train_end = Timestamp::from_days(TEST_DAY);
    let replay_end = Timestamp::from_days(TEST_DAY + options.replay_days);
    let mut engine = build_engine(
        &scenario.trace,
        train_end,
        options.max_pairs,
        chaos_engine_config(),
    );
    let (rows, _) = replay_engine(&mut engine, &scenario.trace, train_end, replay_end);
    let samples = system_scores(&rows);
    let truth = scenario.truth_schedule();
    let confusion = confusion_at(&samples, &truth, options.threshold);
    let delay = detection_delays(&samples, &truth, options.threshold)
        .into_iter()
        .next()
        .flatten();
    let rebuild_events = engine.take_rebuild_events();
    let expected = scenario.chaos.rebuild_windows();
    let false_rebuilds = rebuild_events
        .iter()
        .filter(|e| !in_any_window(e, &expected))
        .count();
    RegimeReport {
        regime: regime.name().to_string(),
        samples: samples.len(),
        detection_delay_secs: delay,
        precision: confusion.precision(),
        recall: confusion.recall(),
        rebuilds: rebuild_events.len(),
        false_rebuilds,
        min_system_score: samples
            .iter()
            .map(|&(_, q)| q)
            .fold(f64::INFINITY, f64::min),
    }
}

/// Whether a rebuild event falls inside any expected-rebuild window.
fn in_any_window(event: &RebuildEvent, windows: &[(Timestamp, Timestamp)]) -> bool {
    windows
        .iter()
        .any(|&(start, end)| event.at >= start && event.at < end)
}

/// Runs every regime and assembles the scored report with shape checks.
pub fn run_all(options: ChaosOptions) -> ExperimentResult {
    let mut result = ExperimentResult::new(
        "chaos",
        "hostile-conditions regimes scored against typed ground truth",
    );
    result.notes.push(format!(
        "machines={} seed={} max_pairs={} threshold={} replay_days={}",
        options.machines, options.seed, options.max_pairs, options.threshold, options.replay_days
    ));
    result.notes.push(
        "engine: frozen pair models + drift layer (adaptive grids would self-heal silently)"
            .to_string(),
    );
    let mut table = Table::new(
        "per-regime detection quality",
        [
            "regime",
            "samples",
            "delay_s",
            "precision",
            "recall",
            "rebuilds",
            "false_rebuilds",
            "min_Q",
        ]
        .map(String::from)
        .to_vec(),
    );
    let mut reports = Vec::new();
    for regime in ChaosRegime::ALL {
        let report = run_regime(regime, options);
        table.push_row(vec![
            report.regime.clone(),
            report.samples.to_string(),
            report
                .detection_delay_secs
                .map_or("-".to_string(), |d| d.to_string()),
            fmt_opt(report.precision),
            fmt_opt(report.recall),
            report.rebuilds.to_string(),
            report.false_rebuilds.to_string(),
            format!("{:.3}", report.min_system_score),
        ]);
        reports.push(report);
    }
    result.tables.push(table);

    let drift = reports
        .iter()
        .find(|r| r.regime == "drift")
        .expect("drift regime runs");
    result.checks.push(Check::new(
        "a permanent correlation rewire triggers at least one model rebuild",
        drift.rebuilds > 0,
        format!("drift rebuilds = {}", drift.rebuilds),
    ));
    result.checks.push(Check::new(
        "drift is detected (some sample in the truth window crosses the threshold)",
        drift.detection_delay_secs.is_some(),
        format!("delay = {:?} s", drift.detection_delay_secs),
    ));
    let cascade = reports
        .iter()
        .find(|r| r.regime == "cascade")
        .expect("cascade regime runs");
    result.checks.push(Check::new(
        "the fault cascade is detected with non-zero recall",
        cascade.recall.is_some_and(|r| r > 0.0),
        format!("cascade recall = {}", fmt_opt(cascade.recall)),
    ));
    let worst_false = reports
        .iter()
        .filter(|r| r.regime != "drift")
        .map(|r| r.false_rebuilds)
        .max()
        .unwrap_or(0);
    result.checks.push(Check::new(
        "no non-drift regime provokes a model rebuild (false-rebuild rate 0)",
        worst_false == 0,
        format!("worst non-drift false rebuilds = {worst_false}"),
    ));
    result
}

fn fmt_opt(v: Option<f64>) -> String {
    v.map_or("-".to_string(), |x| format!("{x:.3}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One fast end-to-end regime run; the full five-regime sweep is
    /// exercised by the CLI chaos suite.
    #[test]
    fn overload_regime_scores_and_never_rebuilds() {
        let options = ChaosOptions {
            machines: 2,
            max_pairs: 10,
            replay_days: 1,
            ..ChaosOptions::default()
        };
        let report = run_regime(ChaosRegime::Overload, options);
        assert!(report.samples > 0);
        assert_eq!(report.regime, "overload");
        assert_eq!(
            report.false_rebuilds, report.rebuilds,
            "overload defines no expected-rebuild windows"
        );
    }
}
