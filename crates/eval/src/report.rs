//! Uniform experiment output: tables, shape checks, ASCII rendering, and
//! CSV export.

use std::fmt::Write as _;
use std::path::Path;

use serde::{Deserialize, Serialize};

/// One table of an experiment's output.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table {
    /// Table title.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows; each row has `headers.len()` cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: Vec<String>) -> Self {
        Table {
            title: title.into(),
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row's width differs from the header count.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(row);
    }

    /// Renders the table as aligned ASCII.
    pub fn to_ascii(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Renders the table as CSV (RFC-4180-style quoting for commas and
    /// quotes).
    pub fn to_csv(&self) -> String {
        let quote = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| quote(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| quote(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }
}

/// A qualitative shape check: a claim from the paper and whether the
/// reproduction upholds it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Check {
    /// The claim being verified.
    pub claim: String,
    /// Whether the measured data satisfy the claim.
    pub passed: bool,
    /// Measured evidence (numbers from this run).
    pub detail: String,
}

impl Check {
    /// Creates a check.
    pub fn new(claim: impl Into<String>, passed: bool, detail: impl Into<String>) -> Self {
        Check {
            claim: claim.into(),
            passed,
            detail: detail.into(),
        }
    }
}

/// The full output of one experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentResult {
    /// Experiment id, e.g. `fig12`.
    pub name: String,
    /// What the paper's artifact shows.
    pub description: String,
    /// Result tables.
    pub tables: Vec<Table>,
    /// Shape checks against the paper's claims.
    pub checks: Vec<Check>,
    /// Free-form notes (parameters, seeds, caveats).
    pub notes: Vec<String>,
}

impl ExperimentResult {
    /// Creates an empty result.
    pub fn new(name: impl Into<String>, description: impl Into<String>) -> Self {
        ExperimentResult {
            name: name.into(),
            description: description.into(),
            tables: Vec::new(),
            checks: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Whether every shape check passed.
    pub fn all_checks_passed(&self) -> bool {
        self.checks.iter().all(|c| c.passed)
    }

    /// Renders the whole result as ASCII for the terminal.
    pub fn to_ascii(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "=== {} — {}", self.name, self.description);
        for note in &self.notes {
            let _ = writeln!(out, "  note: {note}");
        }
        for table in &self.tables {
            let _ = writeln!(out);
            out.push_str(&table.to_ascii());
        }
        if !self.checks.is_empty() {
            let _ = writeln!(out, "\n## shape checks");
            for c in &self.checks {
                let _ = writeln!(
                    out,
                    "  [{}] {} ({})",
                    if c.passed { "PASS" } else { "FAIL" },
                    c.claim,
                    c.detail
                );
            }
        }
        out
    }

    /// Writes each table as `<dir>/<name>_<index>.csv` and the checks as
    /// `<dir>/<name>_checks.csv`.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating the directory or files.
    pub fn write_csv(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        for (i, t) in self.tables.iter().enumerate() {
            let path = dir.join(format!("{}_{}.csv", self.name, i));
            std::fs::write(path, t.to_csv())?;
        }
        let mut checks = Table::new(
            "checks",
            vec!["claim".into(), "passed".into(), "detail".into()],
        );
        for c in &self.checks {
            checks.push_row(vec![
                c.claim.clone(),
                c.passed.to_string(),
                c.detail.clone(),
            ]);
        }
        std::fs::write(
            dir.join(format!("{}_checks.csv", self.name)),
            checks.to_csv(),
        )
    }
}

/// Renders a single numeric series as a compact ASCII line chart.
///
/// Useful for eyeballing fitness-score time series in the terminal
/// (Figures 12, 15, 16).
pub fn ascii_line_chart(values: &[f64], width: usize, height: usize) -> String {
    if values.is_empty() || width == 0 || height == 0 {
        return String::new();
    }
    // Downsample to `width` columns by averaging.
    let cols: Vec<f64> = (0..width)
        .map(|c| {
            let lo = c * values.len() / width;
            let hi = (((c + 1) * values.len()) / width).max(lo + 1);
            let slice = &values[lo..hi.min(values.len())];
            slice.iter().sum::<f64>() / slice.len() as f64
        })
        .collect();
    let min = cols.iter().copied().fold(f64::INFINITY, f64::min);
    let max = cols.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = (max - min).max(1e-12);
    let mut grid = vec![vec![' '; width]; height];
    for (c, &v) in cols.iter().enumerate() {
        let r = ((v - min) / span * (height - 1) as f64).round() as usize;
        grid[height - 1 - r][c] = '*';
    }
    let mut out = String::new();
    let _ = writeln!(out, "{max:>10.4} ┐");
    for row in grid {
        let _ = writeln!(out, "           │{}", row.into_iter().collect::<String>());
    }
    let _ = writeln!(out, "{min:>10.4} ┘");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_table() -> Table {
        let mut t = Table::new("demo", vec!["a".into(), "b,with comma".into()]);
        t.push_row(vec!["1".into(), "x\"quoted\"".into()]);
        t.push_row(vec!["22".into(), "y".into()]);
        t
    }

    #[test]
    fn ascii_table_aligns_columns() {
        let a = sample_table().to_ascii();
        assert!(a.contains("## demo"));
        assert!(a.contains("22"));
    }

    #[test]
    fn csv_quotes_special_cells() {
        let csv = sample_table().to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next().unwrap(), "a,\"b,with comma\"");
        assert_eq!(lines.next().unwrap(), "1,\"x\"\"quoted\"\"\"");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_rejected() {
        let mut t = Table::new("t", vec!["a".into()]);
        t.push_row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn result_roundtrip_and_checks() {
        let mut r = ExperimentResult::new("figX", "testing");
        r.tables.push(sample_table());
        r.checks.push(Check::new("works", true, "yes"));
        r.checks.push(Check::new("fails", false, "no"));
        assert!(!r.all_checks_passed());
        let ascii = r.to_ascii();
        assert!(ascii.contains("[PASS] works"));
        assert!(ascii.contains("[FAIL] fails"));
    }

    #[test]
    fn csv_files_written() {
        let dir = std::env::temp_dir().join(format!("gridwatch_eval_test_{}", std::process::id()));
        let mut r = ExperimentResult::new("figY", "demo");
        r.tables.push(sample_table());
        r.write_csv(&dir).unwrap();
        assert!(dir.join("figY_0.csv").exists());
        assert!(dir.join("figY_checks.csv").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn line_chart_renders_extremes() {
        let values: Vec<f64> = (0..100).map(|k| (k as f64 / 10.0).sin()).collect();
        let chart = ascii_line_chart(&values, 40, 8);
        assert!(chart.contains('*'));
        assert!(chart.lines().count() == 10);
        assert!(ascii_line_chart(&[], 40, 8).is_empty());
    }
}
