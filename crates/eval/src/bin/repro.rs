//! The `repro` CLI: regenerates the paper's figures on simulated data.
//!
//! ```text
//! repro all                     # every experiment
//! repro fig12 fig13             # selected experiments
//! repro fig14 --machines 6      # bigger simulated group
//! repro all --out results/      # also write CSV files
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use gridwatch_eval::experiments;
use gridwatch_eval::harness::RunOptions;

struct Args {
    names: Vec<String>,
    options: RunOptions,
    out_dir: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut names = Vec::new();
    let mut options = RunOptions::default();
    let mut out_dir = None;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        let mut value_for = |flag: &str| -> Result<String, String> {
            argv.next().ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--seed" => {
                options.seed = value_for("--seed")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--machines" => {
                options.machines = value_for("--machines")?
                    .parse()
                    .map_err(|e| format!("bad --machines: {e}"))?;
            }
            "--max-pairs" => {
                options.max_pairs = value_for("--max-pairs")?
                    .parse()
                    .map_err(|e| format!("bad --max-pairs: {e}"))?;
            }
            "--out" => out_dir = Some(PathBuf::from(value_for("--out")?)),
            "--help" | "-h" => {
                return Err(format!(
                    "usage: repro <experiment…|all> [--seed N] [--machines N] \
                     [--max-pairs N] [--out DIR]\nexperiments: {}",
                    experiments::ALL.join(", ")
                ));
            }
            name if !name.starts_with('-') => names.push(name.to_string()),
            other => return Err(format!("unknown flag {other} (try --help)")),
        }
    }
    if names.is_empty() {
        return Err("no experiment named; try `repro all` or --help".into());
    }
    if names.iter().any(|n| n == "all") {
        names = experiments::ALL.iter().map(|s| s.to_string()).collect();
    }
    Ok(Args {
        names,
        options,
        out_dir,
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let mut all_passed = true;
    for name in &args.names {
        let Some(result) = experiments::run_by_name(name, args.options) else {
            eprintln!(
                "unknown experiment `{name}`; known: {}",
                experiments::ALL.join(", ")
            );
            all_passed = false;
            continue;
        };
        println!("{}", result.to_ascii());
        if let Some(dir) = &args.out_dir {
            if let Err(e) = result.write_csv(dir) {
                eprintln!("failed to write CSVs for {name}: {e}");
                all_passed = false;
            }
        }
        all_passed &= result.all_checks_passed();
    }
    if all_passed {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
