//! Property-based tests for the timeseries crate's core invariants.

use gridwatch_timeseries::stats::{fractional_ranks, pearson, quantile, spearman, Welford};
use gridwatch_timeseries::{AlignmentPolicy, PairSeries, SampleInterval, TimeSeries, Timestamp};
use proptest::prelude::*;

fn finite_f64() -> impl Strategy<Value = f64> {
    prop::num::f64::NORMAL | prop::num::f64::ZERO
}

fn small_values(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e6f64..1e6, 2..max_len)
}

proptest! {
    #[test]
    fn series_roundtrips_through_samples(values in prop::collection::vec(finite_f64(), 0..64)) {
        let samples: Vec<(u64, f64)> = values
            .iter()
            .enumerate()
            .map(|(k, &v)| (k as u64 * 360, v))
            .collect();
        let ts = TimeSeries::from_samples(samples.clone()).unwrap();
        prop_assert_eq!(ts.len(), values.len());
        for (k, &v) in values.iter().enumerate() {
            prop_assert_eq!(ts.value_at(Timestamp::from_secs(k as u64 * 360)), Some(v));
        }
    }

    #[test]
    fn slice_never_exceeds_bounds(
        n in 1usize..100,
        a in 0u64..50_000,
        b in 0u64..50_000,
    ) {
        let ts = TimeSeries::from_samples((0..n as u64).map(|k| (k * 100, k as f64))).unwrap();
        let (lo, hi) = (a.min(b), a.max(b));
        let s = ts.slice(Timestamp::from_secs(lo), Timestamp::from_secs(hi));
        for (t, _) in s.iter() {
            prop_assert!(t.as_secs() >= lo && t.as_secs() < hi);
        }
    }

    #[test]
    fn welford_matches_two_pass(values in small_values(128)) {
        let mut w = Welford::new();
        for &v in &values {
            w.update(v);
        }
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / values.len() as f64;
        let scale = 1.0 + mean.abs() + var.abs();
        prop_assert!((w.mean().unwrap() - mean).abs() / scale < 1e-9);
        prop_assert!((w.population_variance().unwrap() - var).abs() / scale.powi(2) < 1e-6);
    }

    #[test]
    fn welford_merge_is_order_insensitive(
        a in small_values(64),
        b in small_values(64),
    ) {
        let feed = |vals: &[f64]| {
            let mut w = Welford::new();
            vals.iter().for_each(|&v| w.update(v));
            w
        };
        let mut ab = feed(&a);
        ab.merge(&feed(&b));
        let mut ba = feed(&b);
        ba.merge(&feed(&a));
        prop_assert_eq!(ab.count(), ba.count());
        prop_assert!((ab.mean().unwrap() - ba.mean().unwrap()).abs() < 1e-6);
    }

    #[test]
    fn pearson_is_bounded_and_symmetric(values in small_values(64)) {
        let ys: Vec<f64> = values.iter().rev().copied().collect();
        if let Some(r) = pearson(&values, &ys) {
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r));
            let r2 = pearson(&ys, &values).unwrap();
            prop_assert!((r - r2).abs() < 1e-12);
        }
    }

    #[test]
    fn pearson_invariant_under_affine_maps(values in small_values(32), scale in 0.1f64..100.0, shift in -1e3f64..1e3) {
        let ys: Vec<f64> = values.iter().map(|v| scale * v + shift).collect();
        if let Some(r) = pearson(&values, &ys) {
            prop_assert!((r - 1.0).abs() < 1e-6, "affine with positive scale must give r=1, got {r}");
        }
    }

    #[test]
    fn spearman_equals_one_for_strictly_increasing(n in 3usize..40) {
        let xs: Vec<f64> = (0..n).map(|k| k as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| x * x * x + 1.0).collect();
        prop_assert!((spearman(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ranks_are_a_permutation_average(values in small_values(64)) {
        let ranks = fractional_ranks(&values);
        let sum: f64 = ranks.iter().sum();
        let expected = values.len() as f64 * (values.len() as f64 + 1.0) / 2.0;
        prop_assert!((sum - expected).abs() < 1e-6);
    }

    #[test]
    fn quantile_is_monotone_in_q(values in small_values(64), q1 in 0.0f64..=1.0, q2 in 0.0f64..=1.0) {
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let a = quantile(&values, lo).unwrap();
        let b = quantile(&values, hi).unwrap();
        prop_assert!(a <= b + 1e-12);
    }

    #[test]
    fn alignment_intersection_is_subset_of_both(
        ta in prop::collection::btree_set(0u64..2000, 1..50),
        tb in prop::collection::btree_set(0u64..2000, 1..50),
    ) {
        let a = TimeSeries::from_samples(ta.iter().map(|&t| (t, t as f64))).unwrap();
        let b = TimeSeries::from_samples(tb.iter().map(|&t| (t, -(t as f64)))).unwrap();
        match PairSeries::align(&a, &b, AlignmentPolicy::Intersect) {
            Ok(p) => {
                for (t, pt) in p.iter() {
                    prop_assert!(ta.contains(&t.as_secs()));
                    prop_assert!(tb.contains(&t.as_secs()));
                    prop_assert_eq!(pt.x, t.as_secs() as f64);
                    prop_assert_eq!(pt.y, -(t.as_secs() as f64));
                }
            }
            Err(_) => {
                prop_assert!(ta.intersection(&tb).next().is_none());
            }
        }
    }

    #[test]
    fn transitions_count_is_len_minus_one(n in 2usize..100) {
        let p = PairSeries::from_samples((0..n as u64).map(|k| (k, k as f64, k as f64))).unwrap();
        prop_assert_eq!(p.transitions().count(), n - 1);
    }

    #[test]
    fn ticks_are_strictly_increasing_and_in_range(
        start in 0u64..100_000,
        len in 1u64..100_000,
        step in 1u64..5_000,
    ) {
        let end = start + len;
        let ticks: Vec<_> = SampleInterval::from_secs(step)
            .ticks(Timestamp::from_secs(start), Timestamp::from_secs(end))
            .collect();
        for w in ticks.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
        for t in &ticks {
            prop_assert!(t.as_secs() >= start && t.as_secs() < end);
        }
        let expected = len.div_ceil(step);
        prop_assert_eq!(ticks.len() as u64, expected);
    }
}
