use std::fmt;

use serde::{Deserialize, Serialize};

/// One of the monitored infrastructures (the paper's anonymized companies
/// A, B, and C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum GroupId {
    /// Infrastructure group A.
    A,
    /// Infrastructure group B.
    B,
    /// Infrastructure group C.
    C,
}

impl GroupId {
    /// All three groups, in order.
    pub const ALL: [GroupId; 3] = [GroupId::A, GroupId::B, GroupId::C];
}

impl fmt::Display for GroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GroupId::A => write!(f, "A"),
            GroupId::B => write!(f, "B"),
            GroupId::C => write!(f, "C"),
        }
    }
}

/// A machine (server) within an infrastructure group.
///
/// The paper's measurements are identified by `(machine, metric)`; machine
/// identity is what problem *localization* reports (Figure 14 plots
/// per-machine fitness scores).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MachineId(u32);

impl MachineId {
    /// Creates a machine identifier from its index within the group.
    pub fn new(index: u32) -> Self {
        MachineId(index)
    }

    /// The machine's index.
    pub fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for MachineId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "machine-{:03}", self.0)
    }
}

/// The kind of system metric a measurement samples.
///
/// The variants mirror the metric names that appear in the paper's figures
/// (`IfOutOctetsRate_IF`, `CurrentUtilization_PORT`, CPU and memory usage,
/// …) plus a catch-all [`MetricKind::Custom`] for extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum MetricKind {
    /// CPU utilization (fraction or percent).
    CpuUtilization,
    /// Memory usage.
    MemoryUsage,
    /// Free disk space.
    FreeDiskSpace,
    /// Disk or network I/O throughput.
    IoThroughput,
    /// Inbound traffic rate on an interface (`IfInOctetsRate_IF`).
    IfInOctetsRate,
    /// Outbound traffic rate on an interface (`IfOutOctetsRate_IF`).
    IfOutOctetsRate,
    /// Inbound traffic rate on a switch port (`ifInOctetsRate_PORT`).
    PortInOctetsRate,
    /// Outbound traffic rate on a switch port (`ifOutOctetsRate_PORT`).
    PortOutOctetsRate,
    /// Port utilization (`CurrentUtilization_PORT`).
    PortUtilization,
    /// Any other metric, identified by a small integer tag.
    Custom(u16),
}

impl fmt::Display for MetricKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetricKind::CpuUtilization => write!(f, "CpuUtilization"),
            MetricKind::MemoryUsage => write!(f, "MemoryUsage"),
            MetricKind::FreeDiskSpace => write!(f, "FreeDiskSpace"),
            MetricKind::IoThroughput => write!(f, "IoThroughput"),
            MetricKind::IfInOctetsRate => write!(f, "IfInOctetsRate_IF"),
            MetricKind::IfOutOctetsRate => write!(f, "IfOutOctetsRate_IF"),
            MetricKind::PortInOctetsRate => write!(f, "ifInOctetsRate_PORT"),
            MetricKind::PortOutOctetsRate => write!(f, "ifOutOctetsRate_PORT"),
            MetricKind::PortUtilization => write!(f, "CurrentUtilization_PORT"),
            MetricKind::Custom(tag) => write!(f, "Custom_{tag}"),
        }
    }
}

/// Error parsing a [`MetricKind`], [`GroupId`], or [`MachineId`] from
/// text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseIdError {
    offered: String,
    kind: &'static str,
}

impl fmt::Display for ParseIdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot parse {} from {:?}", self.kind, self.offered)
    }
}

impl std::error::Error for ParseIdError {}

impl std::str::FromStr for MetricKind {
    type Err = ParseIdError;

    /// Parses the [`fmt::Display`] form back into a metric kind.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Ok(match s {
            "CpuUtilization" => MetricKind::CpuUtilization,
            "MemoryUsage" => MetricKind::MemoryUsage,
            "FreeDiskSpace" => MetricKind::FreeDiskSpace,
            "IoThroughput" => MetricKind::IoThroughput,
            "IfInOctetsRate_IF" => MetricKind::IfInOctetsRate,
            "IfOutOctetsRate_IF" => MetricKind::IfOutOctetsRate,
            "ifInOctetsRate_PORT" => MetricKind::PortInOctetsRate,
            "ifOutOctetsRate_PORT" => MetricKind::PortOutOctetsRate,
            "CurrentUtilization_PORT" => MetricKind::PortUtilization,
            other => {
                let tag = other
                    .strip_prefix("Custom_")
                    .and_then(|t| t.parse::<u16>().ok())
                    .ok_or_else(|| ParseIdError {
                        offered: other.to_string(),
                        kind: "metric kind",
                    })?;
                MetricKind::Custom(tag)
            }
        })
    }
}

impl std::str::FromStr for GroupId {
    type Err = ParseIdError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "A" | "a" => Ok(GroupId::A),
            "B" | "b" => Ok(GroupId::B),
            "C" | "c" => Ok(GroupId::C),
            other => Err(ParseIdError {
                offered: other.to_string(),
                kind: "group id",
            }),
        }
    }
}

impl std::str::FromStr for MachineId {
    type Err = ParseIdError;

    /// Parses either the [`fmt::Display`] form (`machine-003`) or a bare
    /// index (`3`).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let digits = s.strip_prefix("machine-").unwrap_or(s);
        digits
            .parse::<u32>()
            .map(MachineId::new)
            .map_err(|_| ParseIdError {
                offered: s.to_string(),
                kind: "machine id",
            })
    }
}

/// A measurement: one metric on one machine.
///
/// "A metric obtained from a machine represents a unique measurement"
/// (paper, Section 6). Measurements are the nodes of the correlation graph;
/// pairwise models are built between measurements.
///
/// # Example
///
/// ```
/// use gridwatch_timeseries::{MachineId, MeasurementId, MetricKind};
///
/// let m = MeasurementId::new(MachineId::new(3), MetricKind::CpuUtilization);
/// assert_eq!(m.machine(), MachineId::new(3));
/// assert_eq!(m.to_string(), "machine-003/CpuUtilization");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MeasurementId {
    machine: MachineId,
    metric: MetricKind,
}

impl MeasurementId {
    /// Creates a measurement identifier.
    pub fn new(machine: MachineId, metric: MetricKind) -> Self {
        MeasurementId { machine, metric }
    }

    /// The machine this measurement is collected on.
    pub fn machine(self) -> MachineId {
        self.machine
    }

    /// The metric this measurement samples.
    pub fn metric(self) -> MetricKind {
        self.metric
    }
}

impl fmt::Display for MeasurementId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.machine, self.metric)
    }
}

/// An unordered pair of distinct measurements, normalized so the smaller
/// identifier always comes first.
///
/// Pairwise models are symmetric in the sense that one model is kept per
/// unordered pair (the paper tracks `l(l-1)/2` models); this type makes
/// pair keys canonical.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MeasurementPair {
    first: MeasurementId,
    second: MeasurementId,
}

impl MeasurementPair {
    /// Creates a canonical pair from two distinct measurements.
    ///
    /// Returns `None` if `a == b` (a measurement is never paired with
    /// itself).
    pub fn new(a: MeasurementId, b: MeasurementId) -> Option<Self> {
        match a.cmp(&b) {
            std::cmp::Ordering::Less => Some(MeasurementPair {
                first: a,
                second: b,
            }),
            std::cmp::Ordering::Greater => Some(MeasurementPair {
                first: b,
                second: a,
            }),
            std::cmp::Ordering::Equal => None,
        }
    }

    /// The lexicographically smaller measurement.
    pub fn first(self) -> MeasurementId {
        self.first
    }

    /// The lexicographically larger measurement.
    pub fn second(self) -> MeasurementId {
        self.second
    }

    /// Whether this pair involves the given measurement.
    pub fn contains(self, m: MeasurementId) -> bool {
        self.first == m || self.second == m
    }

    /// The other endpoint, if `m` is one of the pair's endpoints.
    pub fn partner_of(self, m: MeasurementId) -> Option<MeasurementId> {
        if self.first == m {
            Some(self.second)
        } else if self.second == m {
            Some(self.first)
        } else {
            None
        }
    }
}

impl fmt::Display for MeasurementPair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({} ~ {})", self.first, self.second)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(machine: u32, tag: u16) -> MeasurementId {
        MeasurementId::new(MachineId::new(machine), MetricKind::Custom(tag))
    }

    #[test]
    fn pair_is_canonical() {
        let a = m(0, 0);
        let b = m(1, 0);
        let p1 = MeasurementPair::new(a, b).unwrap();
        let p2 = MeasurementPair::new(b, a).unwrap();
        assert_eq!(p1, p2);
        assert_eq!(p1.first(), a);
        assert_eq!(p1.second(), b);
    }

    #[test]
    fn self_pair_rejected() {
        let a = m(0, 0);
        assert!(MeasurementPair::new(a, a).is_none());
    }

    #[test]
    fn partner_lookup() {
        let a = m(0, 0);
        let b = m(1, 0);
        let c = m(2, 0);
        let p = MeasurementPair::new(a, b).unwrap();
        assert_eq!(p.partner_of(a), Some(b));
        assert_eq!(p.partner_of(b), Some(a));
        assert_eq!(p.partner_of(c), None);
        assert!(p.contains(a) && p.contains(b) && !p.contains(c));
    }

    #[test]
    fn display_formats() {
        let id = m(7, 3);
        assert_eq!(id.to_string(), "machine-007/Custom_3");
        assert_eq!(GroupId::A.to_string(), "A");
        assert_eq!(
            MetricKind::PortUtilization.to_string(),
            "CurrentUtilization_PORT"
        );
    }

    #[test]
    fn serde_roundtrip() {
        let p = MeasurementPair::new(m(1, 2), m(0, 9)).unwrap();
        let json = serde_json::to_string(&p).unwrap();
        let back: MeasurementPair = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }

    #[test]
    fn groups_all() {
        assert_eq!(GroupId::ALL.len(), 3);
    }

    #[test]
    fn metric_kind_display_roundtrips_through_from_str() {
        let kinds = [
            MetricKind::CpuUtilization,
            MetricKind::MemoryUsage,
            MetricKind::FreeDiskSpace,
            MetricKind::IoThroughput,
            MetricKind::IfInOctetsRate,
            MetricKind::IfOutOctetsRate,
            MetricKind::PortInOctetsRate,
            MetricKind::PortOutOctetsRate,
            MetricKind::PortUtilization,
            MetricKind::Custom(42),
        ];
        for k in kinds {
            let parsed: MetricKind = k.to_string().parse().unwrap();
            assert_eq!(parsed, k);
        }
        assert!("NotAMetric".parse::<MetricKind>().is_err());
        assert!("Custom_notanumber".parse::<MetricKind>().is_err());
    }

    #[test]
    fn group_and_machine_from_str() {
        assert_eq!("A".parse::<GroupId>().unwrap(), GroupId::A);
        assert_eq!("b".parse::<GroupId>().unwrap(), GroupId::B);
        assert!("Z".parse::<GroupId>().is_err());
        assert_eq!(
            "machine-007".parse::<MachineId>().unwrap(),
            MachineId::new(7)
        );
        assert_eq!("12".parse::<MachineId>().unwrap(), MachineId::new(12));
        assert!("machine-x".parse::<MachineId>().is_err());
        let err = "Z".parse::<GroupId>().unwrap_err();
        assert!(err.to_string().contains("group id"));
    }
}
