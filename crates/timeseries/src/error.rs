use std::error::Error;
use std::fmt;

use crate::Timestamp;

/// Errors produced when constructing or manipulating time series.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TimeSeriesError {
    /// A sample was pushed with a timestamp not strictly greater than the
    /// latest existing sample.
    NonMonotonicTimestamp {
        /// Timestamp of the latest sample already stored.
        latest: Timestamp,
        /// The offending timestamp.
        offered: Timestamp,
    },
    /// A sample value was NaN or infinite.
    NonFiniteValue {
        /// Timestamp at which the bad value was offered.
        at: Timestamp,
        /// The offending value.
        value: f64,
    },
    /// Two series had no overlapping timestamps to align on.
    EmptyAlignment,
    /// An operation required a non-empty series.
    EmptySeries,
}

impl fmt::Display for TimeSeriesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TimeSeriesError::NonMonotonicTimestamp { latest, offered } => write!(
                f,
                "timestamp {offered} is not after the latest sample at {latest}"
            ),
            TimeSeriesError::NonFiniteValue { at, value } => {
                write!(f, "non-finite sample value {value} at {at}")
            }
            TimeSeriesError::EmptyAlignment => {
                write!(f, "series share no timestamps to align on")
            }
            TimeSeriesError::EmptySeries => write!(f, "operation requires a non-empty series"),
        }
    }
}

impl Error for TimeSeriesError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errs = [
            TimeSeriesError::NonMonotonicTimestamp {
                latest: Timestamp::from_secs(10),
                offered: Timestamp::from_secs(5),
            },
            TimeSeriesError::NonFiniteValue {
                at: Timestamp::from_secs(0),
                value: f64::NAN,
            },
            TimeSeriesError::EmptyAlignment,
            TimeSeriesError::EmptySeries,
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
            assert!(!s.ends_with('.'));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TimeSeriesError>();
    }
}
