use serde::{Deserialize, Serialize};

use crate::{TimeSeries, TimeSeriesError, Timestamp};

/// A point in the two-dimensional value space of a measurement pair.
///
/// At time `t`, the values of measurements `m1` and `m2` form the feature
/// vector `x_t = (m1_t, m2_t)` (paper, Section 3).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point2 {
    /// Value of the first measurement.
    pub x: f64,
    /// Value of the second measurement.
    pub y: f64,
}

impl Point2 {
    /// Creates a point.
    pub fn new(x: f64, y: f64) -> Self {
        Point2 { x, y }
    }

    /// Whether both coordinates are finite.
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl From<(f64, f64)> for Point2 {
    fn from((x, y): (f64, f64)) -> Self {
        Point2::new(x, y)
    }
}

/// How two series with mismatched timestamps are merged into a
/// [`PairSeries`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
#[non_exhaustive]
pub enum AlignmentPolicy {
    /// Keep only timestamps present in *both* series (inner join). This is
    /// the default: both measurements are sampled on the same schedule in
    /// the paper's setting.
    #[default]
    Intersect,
    /// For every timestamp of the first series, pair it with the most
    /// recent sample of the second at or before it (as-of join). Useful
    /// when sampling schedules are offset.
    AsOfFirst,
}

/// A time-aligned sequence of two-dimensional points from a measurement
/// pair — the input stream for a pairwise correlation model.
///
/// # Example
///
/// ```
/// use gridwatch_timeseries::{AlignmentPolicy, PairSeries, TimeSeries};
///
/// let a = TimeSeries::from_samples([(0, 1.0), (360, 2.0), (720, 3.0)])?;
/// let b = TimeSeries::from_samples([(0, 10.0), (720, 30.0)])?;
/// let pair = PairSeries::align(&a, &b, AlignmentPolicy::Intersect)?;
/// assert_eq!(pair.len(), 2);
/// assert_eq!(pair.points()[1].y, 30.0);
/// # Ok::<(), gridwatch_timeseries::TimeSeriesError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PairSeries {
    timestamps: Vec<Timestamp>,
    points: Vec<Point2>,
}

impl PairSeries {
    /// Creates an empty pair series.
    pub fn new() -> Self {
        PairSeries::default()
    }

    /// Aligns two series into a pair series under the given policy.
    ///
    /// # Errors
    ///
    /// Returns [`TimeSeriesError::EmptyAlignment`] if the result would be
    /// empty (no shared timestamps under [`AlignmentPolicy::Intersect`], or
    /// an empty first series under [`AlignmentPolicy::AsOfFirst`]).
    pub fn align(
        a: &TimeSeries,
        b: &TimeSeries,
        policy: AlignmentPolicy,
    ) -> Result<Self, TimeSeriesError> {
        let mut out = PairSeries::new();
        match policy {
            AlignmentPolicy::Intersect => {
                let (mut i, mut j) = (0usize, 0usize);
                let (ta, tb) = (a.timestamps(), b.timestamps());
                while i < ta.len() && j < tb.len() {
                    match ta[i].cmp(&tb[j]) {
                        std::cmp::Ordering::Less => i += 1,
                        std::cmp::Ordering::Greater => j += 1,
                        std::cmp::Ordering::Equal => {
                            out.timestamps.push(ta[i]);
                            out.points.push(Point2::new(a.values()[i], b.values()[j]));
                            i += 1;
                            j += 1;
                        }
                    }
                }
            }
            AlignmentPolicy::AsOfFirst => {
                for (t, x) in a.iter() {
                    if let Some((_, y)) = b.latest_at_or_before(t) {
                        out.timestamps.push(t);
                        out.points.push(Point2::new(x, y));
                    }
                }
            }
        }
        if out.is_empty() {
            return Err(TimeSeriesError::EmptyAlignment);
        }
        Ok(out)
    }

    /// Builds a pair series directly from `(seconds, x, y)` samples.
    ///
    /// # Errors
    ///
    /// Returns an error for non-increasing timestamps or non-finite
    /// coordinates.
    pub fn from_samples<I>(samples: I) -> Result<Self, TimeSeriesError>
    where
        I: IntoIterator<Item = (u64, f64, f64)>,
    {
        let mut out = PairSeries::new();
        for (secs, x, y) in samples {
            out.push(Timestamp::from_secs(secs), Point2::new(x, y))?;
        }
        Ok(out)
    }

    /// Appends a point.
    ///
    /// # Errors
    ///
    /// Same invariants as [`TimeSeries::push`]: strictly increasing
    /// timestamps, finite coordinates.
    pub fn push(&mut self, at: Timestamp, p: Point2) -> Result<(), TimeSeriesError> {
        if !p.is_finite() {
            let bad = if p.x.is_finite() { p.y } else { p.x };
            return Err(TimeSeriesError::NonFiniteValue { at, value: bad });
        }
        if let Some(&latest) = self.timestamps.last() {
            if at <= latest {
                return Err(TimeSeriesError::NonMonotonicTimestamp {
                    latest,
                    offered: at,
                });
            }
        }
        self.timestamps.push(at);
        self.points.push(p);
        Ok(())
    }

    /// Number of aligned points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the pair series is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The aligned timestamps.
    pub fn timestamps(&self) -> &[Timestamp] {
        &self.timestamps
    }

    /// The aligned points, parallel to [`PairSeries::timestamps`].
    pub fn points(&self) -> &[Point2] {
        &self.points
    }

    /// Iterates over `(timestamp, point)` samples.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = (Timestamp, Point2)> + '_ {
        self.timestamps
            .iter()
            .zip(self.points.iter())
            .map(|(&t, &p)| (t, p))
    }

    /// Iterates over consecutive transitions `(t_next, from, to)`.
    ///
    /// This is the stream the transition-probability model consumes: each
    /// item is the observed move `x_t → x_{t+1}` together with the arrival
    /// timestamp.
    pub fn transitions(&self) -> impl Iterator<Item = (Timestamp, Point2, Point2)> + '_ {
        self.points
            .windows(2)
            .zip(self.timestamps.iter().skip(1))
            .map(|(w, &t)| (t, w[0], w[1]))
    }

    /// The sub-series with timestamps in `[start, end)`.
    pub fn slice(&self, start: Timestamp, end: Timestamp) -> PairSeries {
        let lo = self.timestamps.partition_point(|&t| t < start);
        let hi = self.timestamps.partition_point(|&t| t < end);
        PairSeries {
            timestamps: self.timestamps[lo..hi].to_vec(),
            points: self.points[lo..hi].to_vec(),
        }
    }

    /// Splits into `(before, from)` at `at`: points strictly before `at`,
    /// and points at or after it.
    ///
    /// Used for train/test splits ("we sample a training set to simulate
    /// history data, and a test set … from the one month's monitoring
    /// data").
    pub fn split_at(&self, at: Timestamp) -> (PairSeries, PairSeries) {
        let mid = self.timestamps.partition_point(|&t| t < at);
        (
            PairSeries {
                timestamps: self.timestamps[..mid].to_vec(),
                points: self.points[..mid].to_vec(),
            },
            PairSeries {
                timestamps: self.timestamps[mid..].to_vec(),
                points: self.points[mid..].to_vec(),
            },
        )
    }

    /// Per-dimension value slices `(xs, ys)` copied out of the points.
    pub fn columns(&self) -> (Vec<f64>, Vec<f64>) {
        (
            self.points.iter().map(|p| p.x).collect(),
            self.points.iter().map(|p| p.y).collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intersect_alignment_keeps_shared_timestamps() {
        let a = TimeSeries::from_samples([(0, 1.0), (360, 2.0), (720, 3.0)]).unwrap();
        let b = TimeSeries::from_samples([(360, 20.0), (720, 30.0), (1080, 40.0)]).unwrap();
        let p = PairSeries::align(&a, &b, AlignmentPolicy::Intersect).unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(p.points()[0], Point2::new(2.0, 20.0));
        assert_eq!(p.points()[1], Point2::new(3.0, 30.0));
    }

    #[test]
    fn intersect_alignment_errors_when_disjoint() {
        let a = TimeSeries::from_samples([(0, 1.0)]).unwrap();
        let b = TimeSeries::from_samples([(360, 20.0)]).unwrap();
        let err = PairSeries::align(&a, &b, AlignmentPolicy::Intersect).unwrap_err();
        assert_eq!(err, TimeSeriesError::EmptyAlignment);
    }

    #[test]
    fn as_of_alignment_uses_latest_earlier_sample() {
        let a = TimeSeries::from_samples([(100, 1.0), (500, 2.0)]).unwrap();
        let b = TimeSeries::from_samples([(0, 10.0), (400, 40.0)]).unwrap();
        let p = PairSeries::align(&a, &b, AlignmentPolicy::AsOfFirst).unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(p.points()[0], Point2::new(1.0, 10.0));
        assert_eq!(p.points()[1], Point2::new(2.0, 40.0));
    }

    #[test]
    fn transitions_are_consecutive() {
        let p = PairSeries::from_samples([(0, 0.0, 0.0), (1, 1.0, 1.0), (2, 2.0, 4.0)]).unwrap();
        let ts: Vec<_> = p.transitions().collect();
        assert_eq!(ts.len(), 2);
        assert_eq!(ts[0].1, Point2::new(0.0, 0.0));
        assert_eq!(ts[0].2, Point2::new(1.0, 1.0));
        assert_eq!(ts[1].0, Timestamp::from_secs(2));
    }

    #[test]
    fn split_at_partitions_all_points() {
        let p = PairSeries::from_samples((0..10).map(|k| (k * 360, k as f64, k as f64))).unwrap();
        let (train, test) = p.split_at(Timestamp::from_secs(5 * 360));
        assert_eq!(train.len(), 5);
        assert_eq!(test.len(), 5);
        assert_eq!(test.timestamps()[0], Timestamp::from_secs(1800));
    }

    #[test]
    fn push_validates_points() {
        let mut p = PairSeries::new();
        p.push(Timestamp::from_secs(0), Point2::new(1.0, 1.0))
            .unwrap();
        assert!(p
            .push(Timestamp::from_secs(0), Point2::new(1.0, 1.0))
            .is_err());
        assert!(p
            .push(Timestamp::from_secs(1), Point2::new(f64::NAN, 1.0))
            .is_err());
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn columns_extract_dimensions() {
        let p = PairSeries::from_samples([(0, 1.0, 10.0), (1, 2.0, 20.0)]).unwrap();
        let (xs, ys) = p.columns();
        assert_eq!(xs, vec![1.0, 2.0]);
        assert_eq!(ys, vec![10.0, 20.0]);
    }
}
