use serde::{Deserialize, Serialize};

use crate::{SampleInterval, TimeSeriesError, Timestamp};

/// A time series: strictly increasing timestamps with finite `f64` values.
///
/// This is the storage type for one measurement's monitoring data. Samples
/// must be appended in strictly increasing timestamp order and must be
/// finite; both invariants are enforced at insertion ([`TimeSeries::push`]).
///
/// # Example
///
/// ```
/// use gridwatch_timeseries::{TimeSeries, Timestamp};
///
/// let ts = TimeSeries::from_samples([(0, 1.0), (360, 2.0), (720, 4.0)])?;
/// assert_eq!(ts.len(), 3);
/// assert_eq!(ts.value_at(Timestamp::from_secs(360)), Some(2.0));
/// assert_eq!(ts.mean(), Some(7.0 / 3.0));
/// # Ok::<(), gridwatch_timeseries::TimeSeriesError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    timestamps: Vec<Timestamp>,
    values: Vec<f64>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        TimeSeries::default()
    }

    /// Creates an empty series with capacity for `n` samples.
    pub fn with_capacity(n: usize) -> Self {
        TimeSeries {
            timestamps: Vec::with_capacity(n),
            values: Vec::with_capacity(n),
        }
    }

    /// Builds a series from `(seconds, value)` samples.
    ///
    /// # Errors
    ///
    /// Returns an error if timestamps are not strictly increasing or any
    /// value is non-finite.
    pub fn from_samples<I>(samples: I) -> Result<Self, TimeSeriesError>
    where
        I: IntoIterator<Item = (u64, f64)>,
    {
        let iter = samples.into_iter();
        let mut ts = TimeSeries::with_capacity(iter.size_hint().0);
        for (secs, value) in iter {
            ts.push(Timestamp::from_secs(secs), value)?;
        }
        Ok(ts)
    }

    /// Appends a sample.
    ///
    /// # Errors
    ///
    /// Returns [`TimeSeriesError::NonMonotonicTimestamp`] if `at` is not
    /// strictly after the last sample, and
    /// [`TimeSeriesError::NonFiniteValue`] if `value` is NaN or infinite.
    pub fn push(&mut self, at: Timestamp, value: f64) -> Result<(), TimeSeriesError> {
        if !value.is_finite() {
            return Err(TimeSeriesError::NonFiniteValue { at, value });
        }
        if let Some(&latest) = self.timestamps.last() {
            if at <= latest {
                return Err(TimeSeriesError::NonMonotonicTimestamp {
                    latest,
                    offered: at,
                });
            }
        }
        self.timestamps.push(at);
        self.values.push(value);
        Ok(())
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.timestamps.len()
    }

    /// Whether the series holds no samples.
    pub fn is_empty(&self) -> bool {
        self.timestamps.is_empty()
    }

    /// The sample timestamps, in increasing order.
    pub fn timestamps(&self) -> &[Timestamp] {
        &self.timestamps
    }

    /// The sample values, parallel to [`TimeSeries::timestamps`].
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The first sample's timestamp, if any.
    pub fn start(&self) -> Option<Timestamp> {
        self.timestamps.first().copied()
    }

    /// The last sample's timestamp, if any.
    pub fn end(&self) -> Option<Timestamp> {
        self.timestamps.last().copied()
    }

    /// The value recorded exactly at `at`, if present.
    pub fn value_at(&self, at: Timestamp) -> Option<f64> {
        self.timestamps
            .binary_search(&at)
            .ok()
            .map(|i| self.values[i])
    }

    /// The most recent sample at or before `at`, if any.
    pub fn latest_at_or_before(&self, at: Timestamp) -> Option<(Timestamp, f64)> {
        let idx = match self.timestamps.binary_search(&at) {
            Ok(i) => i,
            Err(0) => return None,
            Err(i) => i - 1,
        };
        Some((self.timestamps[idx], self.values[idx]))
    }

    /// Iterates over `(timestamp, value)` samples.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            inner: self.timestamps.iter().zip(self.values.iter()),
        }
    }

    /// Returns the sub-series with timestamps in `[start, end)`.
    pub fn slice(&self, start: Timestamp, end: Timestamp) -> TimeSeries {
        let lo = self.timestamps.partition_point(|&t| t < start);
        let hi = self.timestamps.partition_point(|&t| t < end);
        TimeSeries {
            timestamps: self.timestamps[lo..hi].to_vec(),
            values: self.values[lo..hi].to_vec(),
        }
    }

    /// Mean of all values, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        if self.is_empty() {
            None
        } else {
            Some(self.values.iter().sum::<f64>() / self.len() as f64)
        }
    }

    /// Population variance of all values, or `None` if empty.
    pub fn variance(&self) -> Option<f64> {
        let mean = self.mean()?;
        let ss: f64 = self.values.iter().map(|v| (v - mean) * (v - mean)).sum();
        Some(ss / self.len() as f64)
    }

    /// Minimum value, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        self.values.iter().copied().reduce(f64::min)
    }

    /// Maximum value, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        self.values.iter().copied().reduce(f64::max)
    }

    /// Coefficient of variation (`stddev / |mean|`).
    ///
    /// Used by the paper's measurement-selection criterion ("the
    /// measurement should have high variance during the monitoring
    /// period"). Returns `None` for empty series or zero mean.
    pub fn coefficient_of_variation(&self) -> Option<f64> {
        let mean = self.mean()?;
        if mean == 0.0 {
            return None;
        }
        Some(self.variance()?.sqrt() / mean.abs())
    }

    /// Downsamples to one sample per `interval`, keeping the last sample in
    /// each interval-aligned bucket.
    pub fn resample(&self, interval: SampleInterval) -> TimeSeries {
        let mut out = TimeSeries::new();
        let step = interval.as_secs();
        let mut current_bucket: Option<(u64, Timestamp, f64)> = None;
        for (t, v) in self.iter() {
            let bucket = t.as_secs() / step;
            match current_bucket {
                Some((b, _, _)) if b == bucket => {
                    current_bucket = Some((bucket, t, v));
                }
                Some((_, bt, bv)) => {
                    out.push(Timestamp::from_secs(bt.as_secs() / step * step), bv)
                        .expect("bucket starts are strictly increasing and values finite");
                    current_bucket = Some((bucket, t, v));
                }
                None => current_bucket = Some((bucket, t, v)),
            }
        }
        if let Some((_, bt, bv)) = current_bucket {
            out.push(Timestamp::from_secs(bt.as_secs() / step * step), bv)
                .expect("final bucket start is after all previous and value finite");
        }
        out
    }
}

impl<'a> IntoIterator for &'a TimeSeries {
    type Item = (Timestamp, f64);
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

/// Iterator over a series' `(timestamp, value)` samples; see
/// [`TimeSeries::iter`].
#[derive(Debug, Clone)]
pub struct Iter<'a> {
    inner: std::iter::Zip<std::slice::Iter<'a, Timestamp>, std::slice::Iter<'a, f64>>,
}

impl Iterator for Iter<'_> {
    type Item = (Timestamp, f64);

    fn next(&mut self) -> Option<Self::Item> {
        self.inner.next().map(|(&t, &v)| (t, v))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

impl ExactSizeIterator for Iter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    fn series() -> TimeSeries {
        TimeSeries::from_samples([(0, 1.0), (360, 2.0), (720, 4.0), (1080, 8.0)]).unwrap()
    }

    #[test]
    fn push_enforces_monotonicity() {
        let mut ts = series();
        let err = ts.push(Timestamp::from_secs(1080), 1.0).unwrap_err();
        assert!(matches!(err, TimeSeriesError::NonMonotonicTimestamp { .. }));
        let err = ts.push(Timestamp::from_secs(100), 1.0).unwrap_err();
        assert!(matches!(err, TimeSeriesError::NonMonotonicTimestamp { .. }));
        ts.push(Timestamp::from_secs(1081), 1.0).unwrap();
    }

    #[test]
    fn push_rejects_non_finite() {
        let mut ts = TimeSeries::new();
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let err = ts.push(Timestamp::from_secs(0), bad).unwrap_err();
            assert!(matches!(err, TimeSeriesError::NonFiniteValue { .. }));
        }
        assert!(ts.is_empty());
    }

    #[test]
    fn value_lookup() {
        let ts = series();
        assert_eq!(ts.value_at(Timestamp::from_secs(720)), Some(4.0));
        assert_eq!(ts.value_at(Timestamp::from_secs(721)), None);
    }

    #[test]
    fn latest_at_or_before() {
        let ts = series();
        assert_eq!(
            ts.latest_at_or_before(Timestamp::from_secs(800)),
            Some((Timestamp::from_secs(720), 4.0))
        );
        assert_eq!(
            ts.latest_at_or_before(Timestamp::from_secs(720)),
            Some((Timestamp::from_secs(720), 4.0))
        );
        assert_eq!(
            ts.latest_at_or_before(Timestamp::EPOCH),
            Some((Timestamp::EPOCH, 1.0))
        );
        let empty = TimeSeries::new();
        assert_eq!(empty.latest_at_or_before(Timestamp::from_secs(5)), None);
    }

    #[test]
    fn slicing_is_half_open() {
        let ts = series();
        let s = ts.slice(Timestamp::from_secs(360), Timestamp::from_secs(1080));
        assert_eq!(s.len(), 2);
        assert_eq!(s.values(), &[2.0, 4.0]);
        assert!(ts
            .slice(Timestamp::from_secs(2000), Timestamp::from_secs(3000))
            .is_empty());
    }

    #[test]
    fn summary_statistics() {
        let ts = series();
        assert_eq!(ts.mean(), Some(15.0 / 4.0));
        assert_eq!(ts.min(), Some(1.0));
        assert_eq!(ts.max(), Some(8.0));
        let var = ts.variance().unwrap();
        assert!(var > 0.0);
        assert!(ts.coefficient_of_variation().unwrap() > 0.0);
        assert_eq!(TimeSeries::new().mean(), None);
    }

    #[test]
    fn resample_keeps_last_per_bucket() {
        let ts = TimeSeries::from_samples([(0, 1.0), (100, 2.0), (360, 3.0), (400, 4.0)]).unwrap();
        let r = ts.resample(SampleInterval::SIX_MINUTES);
        assert_eq!(r.len(), 2);
        assert_eq!(r.values(), &[2.0, 4.0]);
        assert_eq!(
            r.timestamps(),
            &[Timestamp::from_secs(0), Timestamp::from_secs(360)]
        );
    }

    #[test]
    fn iteration_matches_storage() {
        let ts = series();
        let collected: Vec<_> = ts.iter().collect();
        assert_eq!(collected.len(), 4);
        assert_eq!(collected[2], (Timestamp::from_secs(720), 4.0));
        let via_ref: Vec<_> = (&ts).into_iter().collect();
        assert_eq!(collected, via_ref);
    }

    #[test]
    fn serde_roundtrip() {
        let ts = series();
        let json = serde_json::to_string(&ts).unwrap();
        let back: TimeSeries = serde_json::from_str(&json).unwrap();
        assert_eq!(ts, back);
    }
}
