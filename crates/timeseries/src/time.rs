use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// Seconds in one minute.
const MINUTE: u64 = 60;
/// Seconds in one hour.
const HOUR: u64 = 60 * MINUTE;
/// Seconds in one day.
const DAY: u64 = 24 * HOUR;
/// Seconds in one week.
const WEEK: u64 = 7 * DAY;

/// A point in time, in whole seconds since the start of the monitoring
/// epoch.
///
/// The paper's traces start on May 29 2008; we treat that instant as second
/// zero. All calendar helpers ([`Timestamp::weekday`], [`Timestamp::hour`])
/// are relative to this epoch, with the epoch itself defined to fall on a
/// Thursday at 00:00 (May 29 2008 was a Thursday).
///
/// # Example
///
/// ```
/// use gridwatch_timeseries::{Timestamp, Weekday};
///
/// let t = Timestamp::from_days(2); // Saturday, May 31 2008
/// assert_eq!(t.weekday(), Weekday::Saturday);
/// assert!(t.is_weekend());
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Timestamp(u64);

/// Day of week for a [`Timestamp`], relative to the Thursday epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Weekday {
    /// Monday.
    Monday,
    /// Tuesday.
    Tuesday,
    /// Wednesday.
    Wednesday,
    /// Thursday (the epoch day).
    Thursday,
    /// Friday.
    Friday,
    /// Saturday.
    Saturday,
    /// Sunday.
    Sunday,
}

/// Hour of day in `0..24`, produced by [`Timestamp::hour`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct HourOfDay(u8);

impl HourOfDay {
    /// Creates an hour of day.
    ///
    /// # Panics
    ///
    /// Panics if `hour >= 24`.
    pub fn new(hour: u8) -> Self {
        assert!(hour < 24, "hour of day must be in 0..24, got {hour}");
        HourOfDay(hour)
    }

    /// The hour as an integer in `0..24`.
    pub fn get(self) -> u8 {
        self.0
    }

    /// The six-hour bucket index (`0..4`) the paper's Figure 12 and
    /// Figure 16 plot against: 12am–6am, 6am–12pm, 12pm–6pm, 6pm–12am.
    pub fn six_hour_bucket(self) -> usize {
        usize::from(self.0) / 6
    }
}

impl fmt::Display for HourOfDay {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:02}:00", self.0)
    }
}

impl Timestamp {
    /// The epoch itself (second zero, May 29 2008 00:00).
    pub const EPOCH: Timestamp = Timestamp(0);

    /// Creates a timestamp from whole seconds since the epoch.
    pub fn from_secs(secs: u64) -> Self {
        Timestamp(secs)
    }

    /// Creates a timestamp from whole days since the epoch.
    pub fn from_days(days: u64) -> Self {
        Timestamp(days * DAY)
    }

    /// Creates a timestamp from whole hours since the epoch.
    pub fn from_hours(hours: u64) -> Self {
        Timestamp(hours * HOUR)
    }

    /// Seconds since the epoch.
    pub fn as_secs(self) -> u64 {
        self.0
    }

    /// Whole days since the epoch (truncating).
    pub fn day_index(self) -> u64 {
        self.0 / DAY
    }

    /// Seconds into the current day (`0..86400`).
    pub fn seconds_of_day(self) -> u64 {
        self.0 % DAY
    }

    /// Fraction of the current day elapsed, in `[0, 1)`.
    pub fn day_fraction(self) -> f64 {
        self.seconds_of_day() as f64 / DAY as f64
    }

    /// Fraction of the current week elapsed, in `[0, 1)`.
    pub fn week_fraction(self) -> f64 {
        (self.0 % WEEK) as f64 / WEEK as f64
    }

    /// Hour of day.
    pub fn hour(self) -> HourOfDay {
        HourOfDay((self.seconds_of_day() / HOUR) as u8)
    }

    /// Day of week (epoch day 0 is a Thursday).
    pub fn weekday(self) -> Weekday {
        match self.day_index() % 7 {
            0 => Weekday::Thursday,
            1 => Weekday::Friday,
            2 => Weekday::Saturday,
            3 => Weekday::Sunday,
            4 => Weekday::Monday,
            5 => Weekday::Tuesday,
            _ => Weekday::Wednesday,
        }
    }

    /// Whether this timestamp falls on a Saturday or Sunday.
    pub fn is_weekend(self) -> bool {
        matches!(self.weekday(), Weekday::Saturday | Weekday::Sunday)
    }

    /// Saturating subtraction of another timestamp, as a duration in
    /// seconds.
    pub fn saturating_secs_since(self, earlier: Timestamp) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "d{}+{:02}:{:02}:{:02}",
            self.day_index(),
            self.seconds_of_day() / HOUR,
            (self.seconds_of_day() % HOUR) / MINUTE,
            self.seconds_of_day() % MINUTE
        )
    }
}

impl Add<SampleInterval> for Timestamp {
    type Output = Timestamp;

    fn add(self, rhs: SampleInterval) -> Timestamp {
        Timestamp(self.0 + rhs.as_secs())
    }
}

impl AddAssign<SampleInterval> for Timestamp {
    fn add_assign(&mut self, rhs: SampleInterval) {
        self.0 += rhs.as_secs();
    }
}

impl Sub<Timestamp> for Timestamp {
    type Output = u64;

    /// Seconds between two timestamps.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`.
    fn sub(self, rhs: Timestamp) -> u64 {
        debug_assert!(rhs.0 <= self.0, "timestamp subtraction underflow");
        self.0 - rhs.0
    }
}

/// The spacing between consecutive samples of a monitored measurement.
///
/// The paper's selection criterion requires a sampling rate of at least one
/// sample per six minutes; [`SampleInterval::SIX_MINUTES`] is therefore the
/// default throughout the workspace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SampleInterval(u64);

impl SampleInterval {
    /// The paper's 6-minute sampling interval.
    pub const SIX_MINUTES: SampleInterval = SampleInterval(6 * MINUTE);

    /// One minute.
    pub const ONE_MINUTE: SampleInterval = SampleInterval(MINUTE);

    /// Creates an interval from whole seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is zero.
    pub fn from_secs(secs: u64) -> Self {
        assert!(secs > 0, "sample interval must be positive");
        SampleInterval(secs)
    }

    /// The interval length in seconds.
    pub fn as_secs(self) -> u64 {
        self.0
    }

    /// Number of samples this interval produces per day (truncating).
    pub fn samples_per_day(self) -> u64 {
        DAY / self.0
    }

    /// Iterator over the sample timestamps in `[start, end)`.
    ///
    /// # Example
    ///
    /// ```
    /// use gridwatch_timeseries::{SampleInterval, Timestamp};
    ///
    /// let ticks: Vec<_> = SampleInterval::SIX_MINUTES
    ///     .ticks(Timestamp::EPOCH, Timestamp::from_hours(1))
    ///     .collect();
    /// assert_eq!(ticks.len(), 10);
    /// ```
    pub fn ticks(self, start: Timestamp, end: Timestamp) -> Ticks {
        Ticks {
            next: start,
            end,
            step: self,
        }
    }
}

impl Default for SampleInterval {
    fn default() -> Self {
        SampleInterval::SIX_MINUTES
    }
}

impl fmt::Display for SampleInterval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}s", self.0)
    }
}

/// Iterator over sample timestamps; see [`SampleInterval::ticks`].
#[derive(Debug, Clone)]
pub struct Ticks {
    next: Timestamp,
    end: Timestamp,
    step: SampleInterval,
}

impl Iterator for Ticks {
    type Item = Timestamp;

    fn next(&mut self) -> Option<Timestamp> {
        if self.next >= self.end {
            return None;
        }
        let out = self.next;
        self.next += self.step;
        Some(out)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self
            .end
            .as_secs()
            .saturating_sub(self.next.as_secs())
            .div_ceil(self.step.as_secs()) as usize;
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for Ticks {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_thursday() {
        assert_eq!(Timestamp::EPOCH.weekday(), Weekday::Thursday);
    }

    #[test]
    fn weekday_cycle() {
        let expected = [
            Weekday::Thursday,
            Weekday::Friday,
            Weekday::Saturday,
            Weekday::Sunday,
            Weekday::Monday,
            Weekday::Tuesday,
            Weekday::Wednesday,
            Weekday::Thursday,
        ];
        for (d, want) in expected.iter().enumerate() {
            assert_eq!(Timestamp::from_days(d as u64).weekday(), *want);
        }
    }

    #[test]
    fn weekend_detection() {
        assert!(!Timestamp::from_days(0).is_weekend()); // Thu
        assert!(!Timestamp::from_days(1).is_weekend()); // Fri
        assert!(Timestamp::from_days(2).is_weekend()); // Sat
        assert!(Timestamp::from_days(3).is_weekend()); // Sun
        assert!(!Timestamp::from_days(4).is_weekend()); // Mon
    }

    #[test]
    fn hour_and_buckets() {
        let t = Timestamp::from_secs(13 * HOUR + 30 * MINUTE);
        assert_eq!(t.hour().get(), 13);
        assert_eq!(t.hour().six_hour_bucket(), 2); // 12pm-6pm
        assert_eq!(Timestamp::from_hours(0).hour().six_hour_bucket(), 0);
        assert_eq!(Timestamp::from_hours(6).hour().six_hour_bucket(), 1);
        assert_eq!(Timestamp::from_hours(23).hour().six_hour_bucket(), 3);
    }

    #[test]
    fn six_minute_interval_samples_per_day() {
        assert_eq!(SampleInterval::SIX_MINUTES.samples_per_day(), 240);
    }

    #[test]
    fn ticks_cover_range_exclusively() {
        let ticks: Vec<_> = SampleInterval::from_secs(360)
            .ticks(Timestamp::from_secs(0), Timestamp::from_secs(1080))
            .collect();
        assert_eq!(
            ticks,
            vec![
                Timestamp::from_secs(0),
                Timestamp::from_secs(360),
                Timestamp::from_secs(720)
            ]
        );
    }

    #[test]
    fn ticks_exact_size() {
        let it = SampleInterval::SIX_MINUTES.ticks(Timestamp::EPOCH, Timestamp::from_days(1));
        assert_eq!(it.len(), 240);
        assert_eq!(it.count(), 240);
    }

    #[test]
    fn day_fraction_in_unit_range() {
        for s in [0, 1, 43200, 86399, 86400, 100000] {
            let f = Timestamp::from_secs(s).day_fraction();
            assert!((0.0..1.0).contains(&f), "fraction {f} for {s}");
        }
    }

    #[test]
    fn timestamp_display_roundtrip_structure() {
        let t = Timestamp::from_secs(2 * DAY + 3 * HOUR + 4 * MINUTE + 5);
        assert_eq!(t.to_string(), "d2+03:04:05");
    }

    #[test]
    fn timestamp_arithmetic() {
        let t = Timestamp::from_secs(100);
        let u = t + SampleInterval::from_secs(260);
        assert_eq!(u.as_secs(), 360);
        assert_eq!(u - t, 260);
        assert_eq!(t.saturating_secs_since(u), 0);
        assert_eq!(u.saturating_secs_since(t), 260);
    }

    #[test]
    #[should_panic(expected = "hour of day")]
    fn hour_of_day_rejects_out_of_range() {
        HourOfDay::new(24);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_interval_rejected() {
        SampleInterval::from_secs(0);
    }
}
