//! Statistics utilities implemented from scratch: running moments
//! (Welford), Pearson and Spearman correlation, quantiles, and fixed-width
//! histograms.
//!
//! The Rust stats ecosystem is thin compared to what the paper's authors
//! had available, so everything the workspace needs is implemented here
//! with tests against hand-computed values.

use serde::{Deserialize, Serialize};

/// Numerically stable running mean/variance accumulator (Welford's
/// algorithm).
///
/// # Example
///
/// ```
/// use gridwatch_timeseries::stats::Welford;
///
/// let mut w = Welford::new();
/// for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     w.update(v);
/// }
/// assert_eq!(w.mean(), Some(5.0));
/// assert_eq!(w.population_variance(), Some(4.0));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Welford::default()
    }

    /// Feeds one observation.
    pub fn update(&mut self, value: f64) {
        self.count += 1;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (value - self.mean);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Running mean, or `None` before any observation.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then_some(self.mean)
    }

    /// Population variance (`/n`), or `None` before any observation.
    pub fn population_variance(&self) -> Option<f64> {
        (self.count > 0).then(|| self.m2 / self.count as f64)
    }

    /// Sample variance (`/(n-1)`), or `None` with fewer than two
    /// observations.
    pub fn sample_variance(&self) -> Option<f64> {
        (self.count > 1).then(|| self.m2 / (self.count - 1) as f64)
    }

    /// Population standard deviation.
    pub fn population_stddev(&self) -> Option<f64> {
        self.population_variance().map(f64::sqrt)
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &Welford) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64) * (other.count as f64) / total as f64;
        self.mean += delta * other.count as f64 / total as f64;
        self.count = total;
    }
}

/// Pearson product-moment correlation of two equal-length slices.
///
/// Returns `None` if the slices differ in length, have fewer than two
/// elements, or either has zero variance.
pub fn pearson(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        let dx = x - mx;
        let dy = y - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        return None;
    }
    Some(sxy / (sxx.sqrt() * syy.sqrt()))
}

/// Spearman rank correlation of two equal-length slices.
///
/// Computed as the Pearson correlation of fractional ranks (average ranks
/// for ties). Returns `None` under the same conditions as [`pearson`].
pub fn spearman(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    let rx = fractional_ranks(xs);
    let ry = fractional_ranks(ys);
    pearson(&rx, &ry)
}

/// Fractional ranks (1-based, ties receive their average rank).
pub fn fractional_ranks(values: &[f64]) -> Vec<f64> {
    let mut order: Vec<usize> = (0..values.len()).collect();
    order.sort_by(|&a, &b| values[a].partial_cmp(&values[b]).expect("finite values"));
    let mut ranks = vec![0.0; values.len()];
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        // A tie is bit-exact equality by definition: two samples rank
        // equally only when they carry the very same value.
        #[allow(clippy::float_cmp)]
        while j + 1 < order.len() && values[order[j + 1]] == values[order[i]] {
            j += 1;
        }
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for &idx in &order[i..=j] {
            ranks[idx] = avg_rank;
        }
        i = j + 1;
    }
    ranks
}

/// Linear-interpolated quantile of a slice, `q` in `[0, 1]`.
///
/// Returns `None` for an empty slice.
///
/// # Panics
///
/// Panics if `q` is outside `[0, 1]` or any value is NaN.
pub fn quantile(values: &[f64], q: f64) -> Option<f64> {
    assert!(
        (0.0..=1.0).contains(&q),
        "quantile fraction must be in [0,1]"
    );
    if values.is_empty() {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in quantile input"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        Some(sorted[lo])
    } else {
        let frac = pos - lo as f64;
        Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
    }
}

/// Median (the 0.5 [`quantile`]).
pub fn median(values: &[f64]) -> Option<f64> {
    quantile(values, 0.5)
}

/// A fixed-width histogram over `[lo, hi)` — the unit-counting pass of the
/// MAFIA-style grid construction works on exactly this structure.
///
/// Values outside the range are clamped into the first/last bin.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins over `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0`, `lo >= hi`, or the bounds are non-finite.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(
            lo.is_finite() && hi.is_finite(),
            "histogram bounds must be finite"
        );
        assert!(lo < hi, "histogram lower bound must be below upper bound");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
        }
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Width of each bin.
    pub fn bin_width(&self) -> f64 {
        (self.hi - self.lo) / self.counts.len() as f64
    }

    /// The bin index a value falls into (clamped to range). `NaN` lands
    /// in the first bin, like any other below-range value.
    pub fn bin_of(&self, value: f64) -> usize {
        let last = self.counts.len() - 1;
        // Clamp BEFORE the float→usize cast. `value <= lo` handles the
        // negative side, but NaN fails every comparison, and a huge or
        // infinite value makes the quotient overflow usize — both were
        // previously absorbed only by Rust's saturating cast semantics
        // (NaN→0, +inf→usize::MAX). The clamp makes the truncation
        // explicit instead of an implicit property of `as`.
        if value.is_nan() || value <= self.lo {
            return 0;
        }
        let raw = (value - self.lo) / self.bin_width();
        if raw >= last as f64 {
            return last;
        }
        raw as usize
    }

    /// Adds one observation.
    pub fn add(&mut self, value: f64) {
        let b = self.bin_of(value);
        self.counts[b] += 1;
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// The `[lo, hi)` boundaries of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bin_bounds(&self, i: usize) -> (f64, f64) {
        assert!(i < self.counts.len(), "bin index out of range");
        let w = self.bin_width();
        (self.lo + i as f64 * w, self.lo + (i + 1) as f64 * w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_two_pass() {
        let data = [1.5, 2.5, -3.0, 4.0, 0.0, 10.0];
        let mut w = Welford::new();
        for &v in &data {
            w.update(v);
        }
        let mean = data.iter().sum::<f64>() / data.len() as f64;
        let var = data.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / data.len() as f64;
        assert!((w.mean().unwrap() - mean).abs() < 1e-12);
        assert!((w.population_variance().unwrap() - var).abs() < 1e-12);
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let a = [1.0, 2.0, 3.0];
        let b = [10.0, 20.0, 30.0, 40.0];
        let mut w1 = Welford::new();
        a.iter().for_each(|&v| w1.update(v));
        let mut w2 = Welford::new();
        b.iter().for_each(|&v| w2.update(v));
        w1.merge(&w2);
        let mut all = Welford::new();
        a.iter().chain(b.iter()).for_each(|&v| all.update(v));
        assert!((w1.mean().unwrap() - all.mean().unwrap()).abs() < 1e-12);
        assert!(
            (w1.population_variance().unwrap() - all.population_variance().unwrap()).abs() < 1e-12
        );
        assert_eq!(w1.count(), 7);
    }

    #[test]
    fn welford_merge_with_empty() {
        let mut w = Welford::new();
        w.update(5.0);
        let snapshot = w;
        w.merge(&Welford::new());
        assert_eq!(w, snapshot);
        let mut empty = Welford::new();
        empty.merge(&snapshot);
        assert_eq!(empty, snapshot);
    }

    #[test]
    fn pearson_perfect_and_inverse() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x + 1.0).collect();
        assert!((pearson(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = xs.iter().map(|x| -x).collect();
        assert!((pearson(&xs, &neg).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_degenerate_cases() {
        assert_eq!(pearson(&[1.0], &[1.0]), None);
        assert_eq!(pearson(&[1.0, 2.0], &[1.0]), None);
        assert_eq!(pearson(&[1.0, 1.0], &[1.0, 2.0]), None); // zero variance
    }

    #[test]
    fn spearman_captures_monotone_nonlinear() {
        let xs: Vec<f64> = (1..=20).map(|k| k as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (x / 2.0).exp()).collect();
        let rho = spearman(&xs, &ys).unwrap();
        assert!((rho - 1.0).abs() < 1e-12, "rho = {rho}");
        // Pearson on the same data is well below 1.
        assert!(pearson(&xs, &ys).unwrap() < 0.9);
    }

    #[test]
    fn fractional_ranks_handle_ties() {
        let r = fractional_ranks(&[10.0, 20.0, 20.0, 30.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    fn quantiles_interpolate() {
        let vals = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&vals, 0.0), Some(1.0));
        assert_eq!(quantile(&vals, 1.0), Some(4.0));
        assert_eq!(median(&vals), Some(2.5));
        assert_eq!(quantile(&[], 0.5), None);
        assert_eq!(quantile(&[7.0], 0.3), Some(7.0));
    }

    #[test]
    #[should_panic(expected = "quantile fraction")]
    fn quantile_rejects_bad_fraction() {
        quantile(&[1.0], 1.5);
    }

    #[test]
    fn histogram_bins_and_clamping() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        assert_eq!(h.bin_width(), 2.0);
        h.add(-1.0); // clamps to bin 0
        h.add(0.0);
        h.add(1.9);
        h.add(2.0);
        h.add(9.99);
        h.add(10.0); // clamps to last bin
        h.add(100.0); // clamps to last bin
        assert_eq!(h.counts(), &[3, 1, 0, 0, 3]);
        assert_eq!(h.total(), 7);
        assert_eq!(h.bin_bounds(1), (2.0, 4.0));
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn histogram_rejects_zero_bins() {
        Histogram::new(0.0, 1.0, 0);
    }

    #[test]
    fn histogram_clamps_extreme_and_non_finite_values_explicitly() {
        // Regression: the bucket index was computed with a bare
        // `as usize` cast, which relied on saturating-cast semantics to
        // avoid wrapping on NaN / ±inf / huge quotients. The clamp is
        // now explicit; this pins the behaviour at every extreme.
        let h = Histogram::new(-5.0, 5.0, 4);
        assert_eq!(h.bin_of(f64::NEG_INFINITY), 0);
        assert_eq!(h.bin_of(f64::INFINITY), 3);
        assert_eq!(h.bin_of(f64::NAN), 0);
        assert_eq!(h.bin_of(-1e308), 0);
        assert_eq!(h.bin_of(1e308), 3);
        assert_eq!(h.bin_of(f64::MIN_POSITIVE), 2);
        // A degenerate-width histogram (lo ≈ hi) still cannot escape
        // the bin range even though the quotient overflows.
        let tiny = Histogram::new(0.0, f64::MIN_POSITIVE, 2);
        assert_eq!(tiny.bin_of(1.0), 1);
        assert_eq!(tiny.bin_of(-1.0), 0);
        // Adding the extremes never panics and lands in real bins.
        let mut h = Histogram::new(0.0, 1.0, 3);
        for v in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 1e300, -1e300] {
            h.add(v);
        }
        assert_eq!(h.total(), 5);
        assert_eq!(h.counts(), &[3, 0, 2]);
    }
}
