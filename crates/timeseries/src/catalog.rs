use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::{GroupId, MachineId, MeasurementId, MetricKind};

/// Metadata about one registered measurement.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MeasurementInfo {
    /// The measurement's identity.
    pub id: MeasurementId,
    /// The infrastructure group the machine belongs to.
    pub group: GroupId,
    /// Free-form description (e.g. the exported SNMP counter name).
    pub description: String,
}

/// A registry of the measurements under monitoring, with machine and group
/// lookup for problem localization.
///
/// The paper localizes problems by averaging fitness scores over "the
/// measurements collected from the same machine" (Figure 14); the catalog
/// provides that machine ↔ measurement mapping.
///
/// # Example
///
/// ```
/// use gridwatch_timeseries::{Catalog, GroupId, MachineId, MetricKind};
///
/// let mut catalog = Catalog::new();
/// let cpu = catalog.register(MachineId::new(0), MetricKind::CpuUtilization, GroupId::A);
/// let mem = catalog.register(MachineId::new(0), MetricKind::MemoryUsage, GroupId::A);
/// assert_eq!(catalog.measurements_on(MachineId::new(0)).count(), 2);
/// assert_eq!(catalog.group_of(cpu), Some(GroupId::A));
/// # let _ = mem;
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Catalog {
    entries: BTreeMap<MeasurementId, MeasurementInfo>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Registers a measurement and returns its identifier.
    ///
    /// Registering the same `(machine, metric)` twice replaces the earlier
    /// entry.
    pub fn register(
        &mut self,
        machine: MachineId,
        metric: MetricKind,
        group: GroupId,
    ) -> MeasurementId {
        let id = MeasurementId::new(machine, metric);
        self.entries.insert(
            id,
            MeasurementInfo {
                id,
                group,
                description: format!("{metric} on {machine} (group {group})"),
            },
        );
        id
    }

    /// Registers a measurement with an explicit description.
    pub fn register_with_description(
        &mut self,
        machine: MachineId,
        metric: MetricKind,
        group: GroupId,
        description: impl Into<String>,
    ) -> MeasurementId {
        let id = self.register(machine, metric, group);
        if let Some(entry) = self.entries.get_mut(&id) {
            entry.description = description.into();
        }
        id
    }

    /// Number of registered measurements.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Metadata for a measurement, if registered.
    pub fn info(&self, id: MeasurementId) -> Option<&MeasurementInfo> {
        self.entries.get(&id)
    }

    /// The group a measurement belongs to, if registered.
    pub fn group_of(&self, id: MeasurementId) -> Option<GroupId> {
        self.entries.get(&id).map(|e| e.group)
    }

    /// Iterates over all registered measurement ids, in sorted order.
    pub fn ids(&self) -> impl ExactSizeIterator<Item = MeasurementId> + '_ {
        self.entries.keys().copied()
    }

    /// Iterates over measurements collected on the given machine.
    pub fn measurements_on(&self, machine: MachineId) -> impl Iterator<Item = MeasurementId> + '_ {
        self.ids().filter(move |id| id.machine() == machine)
    }

    /// Iterates over measurements in the given group.
    pub fn measurements_in(&self, group: GroupId) -> impl Iterator<Item = MeasurementId> + '_ {
        self.entries
            .values()
            .filter(move |e| e.group == group)
            .map(|e| e.id)
    }

    /// The distinct machines with at least one registered measurement, in
    /// sorted order.
    pub fn machines(&self) -> Vec<MachineId> {
        let mut machines: Vec<MachineId> = self.ids().map(|id| id.machine()).collect();
        machines.dedup();
        machines
    }
}

impl Extend<(MachineId, MetricKind, GroupId)> for Catalog {
    fn extend<T: IntoIterator<Item = (MachineId, MetricKind, GroupId)>>(&mut self, iter: T) {
        for (machine, metric, group) in iter {
            self.register(machine, metric, group);
        }
    }
}

impl FromIterator<(MachineId, MetricKind, GroupId)> for Catalog {
    fn from_iter<T: IntoIterator<Item = (MachineId, MetricKind, GroupId)>>(iter: T) -> Self {
        let mut c = Catalog::new();
        c.extend(iter);
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_catalog() -> Catalog {
        let mut c = Catalog::new();
        c.register(MachineId::new(0), MetricKind::CpuUtilization, GroupId::A);
        c.register(MachineId::new(0), MetricKind::MemoryUsage, GroupId::A);
        c.register(MachineId::new(1), MetricKind::CpuUtilization, GroupId::B);
        c
    }

    #[test]
    fn register_and_lookup() {
        let c = sample_catalog();
        assert_eq!(c.len(), 3);
        let id = MeasurementId::new(MachineId::new(1), MetricKind::CpuUtilization);
        assert_eq!(c.group_of(id), Some(GroupId::B));
        assert!(c.info(id).unwrap().description.contains("machine-001"));
    }

    #[test]
    fn per_machine_and_per_group_queries() {
        let c = sample_catalog();
        assert_eq!(c.measurements_on(MachineId::new(0)).count(), 2);
        assert_eq!(c.measurements_in(GroupId::A).count(), 2);
        assert_eq!(c.measurements_in(GroupId::C).count(), 0);
        assert_eq!(c.machines(), vec![MachineId::new(0), MachineId::new(1)]);
    }

    #[test]
    fn reregistering_replaces() {
        let mut c = sample_catalog();
        let id = c.register_with_description(
            MachineId::new(0),
            MetricKind::CpuUtilization,
            GroupId::C,
            "relocated",
        );
        assert_eq!(c.len(), 3);
        assert_eq!(c.group_of(id), Some(GroupId::C));
        assert_eq!(c.info(id).unwrap().description, "relocated");
    }

    #[test]
    fn from_iterator_collects() {
        let c: Catalog = [
            (MachineId::new(0), MetricKind::IoThroughput, GroupId::A),
            (MachineId::new(2), MetricKind::FreeDiskSpace, GroupId::C),
        ]
        .into_iter()
        .collect();
        assert_eq!(c.len(), 2);
    }
}
