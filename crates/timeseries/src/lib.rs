//! Measurement identifiers, time-series storage, pair alignment, and
//! statistics for the `gridwatch` workspace.
//!
//! A *measurement* in the sense of the ICDCS 2009 paper is a single metric
//! observed on a single machine (e.g. CPU utilization on host `web-03`),
//! producing a time series as the system runs. This crate provides:
//!
//! * [`MeasurementId`], [`MachineId`], [`MetricKind`] — strongly typed
//!   identifiers for measurements (`machine × metric`).
//! * [`Timestamp`] and [`SampleInterval`] — integer second timekeeping with
//!   day/hour helpers used by the periodic workload experiments.
//! * [`TimeSeries`] — a sorted `(Timestamp, f64)` sequence with range
//!   queries, resampling, and iteration.
//! * [`PairSeries`] — the two-dimensional stream `(m1_t, m2_t)` obtained by
//!   aligning two series on their timestamps; the input to the pairwise
//!   correlation models in `gridwatch-core`.
//! * [`stats`] — running statistics (Welford), Pearson/Spearman
//!   correlation, quantiles, and histograms implemented from scratch.
//! * [`Catalog`] — a registry mapping measurements to machines and groups,
//!   used for problem localization.
//!
//! # Example
//!
//! ```
//! use gridwatch_timeseries::{TimeSeries, Timestamp, SampleInterval};
//!
//! let interval = SampleInterval::SIX_MINUTES;
//! let mut ts = TimeSeries::new();
//! for k in 0..10 {
//!     ts.push(Timestamp::from_secs(k * interval.as_secs()), k as f64)?;
//! }
//! assert_eq!(ts.len(), 10);
//! assert_eq!(ts.value_at(Timestamp::from_secs(720)), Some(2.0));
//! # Ok::<(), gridwatch_timeseries::TimeSeriesError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod catalog;
mod error;
mod id;
mod pair;
mod series;
pub mod stats;
mod time;
mod window;

pub use catalog::{Catalog, MeasurementInfo};
pub use error::TimeSeriesError;
pub use id::{GroupId, MachineId, MeasurementId, MeasurementPair, MetricKind, ParseIdError};
pub use pair::{AlignmentPolicy, PairSeries, Point2};
pub use series::TimeSeries;
pub use time::{HourOfDay, SampleInterval, Timestamp, Weekday};
pub use window::{BucketSeries, SlidingWindow};
