use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use crate::stats::Welford;
use crate::{TimeSeries, Timestamp};

/// A fixed-capacity sliding window over a value stream, maintaining running
/// statistics of the most recent `capacity` samples.
///
/// Used by detectors that compare the current behaviour against a recent
/// baseline (e.g. the z-score baseline detector).
///
/// # Example
///
/// ```
/// use gridwatch_timeseries::SlidingWindow;
///
/// let mut w = SlidingWindow::new(3);
/// for v in [1.0, 2.0, 3.0, 4.0] {
///     w.push(v);
/// }
/// assert_eq!(w.len(), 3);
/// assert_eq!(w.mean(), Some(3.0)); // window holds 2,3,4
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SlidingWindow {
    capacity: usize,
    buf: VecDeque<f64>,
}

impl SlidingWindow {
    /// Creates a window holding at most `capacity` samples.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "sliding window capacity must be positive");
        SlidingWindow {
            capacity,
            buf: VecDeque::with_capacity(capacity),
        }
    }

    /// Pushes a sample, evicting the oldest if full. Returns the evicted
    /// sample, if any.
    pub fn push(&mut self, value: f64) -> Option<f64> {
        let evicted = if self.buf.len() == self.capacity {
            self.buf.pop_front()
        } else {
            None
        };
        self.buf.push_back(value);
        evicted
    }

    /// Number of samples currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the window holds no samples.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Whether the window has reached capacity.
    pub fn is_full(&self) -> bool {
        self.buf.len() == self.capacity
    }

    /// Mean of the samples currently in the window.
    pub fn mean(&self) -> Option<f64> {
        if self.buf.is_empty() {
            None
        } else {
            Some(self.buf.iter().sum::<f64>() / self.buf.len() as f64)
        }
    }

    /// Population standard deviation of the window contents.
    pub fn stddev(&self) -> Option<f64> {
        let mut w = Welford::new();
        for &v in &self.buf {
            w.update(v);
        }
        w.population_stddev()
    }

    /// Iterates over the window contents, oldest first.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = f64> + '_ {
        self.buf.iter().copied()
    }
}

/// A series of per-bucket means, where buckets are fixed spans of time
/// (e.g. the 6-hour buckets of the paper's Figures 12 and 16).
///
/// # Example
///
/// ```
/// use gridwatch_timeseries::{BucketSeries, TimeSeries, Timestamp};
///
/// let ts = TimeSeries::from_samples([(0, 1.0), (100, 3.0), (3600, 10.0)])?;
/// let buckets = BucketSeries::from_series(&ts, 3600);
/// assert_eq!(buckets.len(), 2);
/// assert_eq!(buckets.mean_of(0), Some(2.0));
/// assert_eq!(buckets.mean_of(1), Some(10.0));
/// # Ok::<(), gridwatch_timeseries::TimeSeriesError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct BucketSeries {
    bucket_secs: u64,
    /// `(bucket_index, welford)` for buckets that received samples,
    /// in increasing bucket order.
    buckets: Vec<(u64, Welford)>,
}

impl BucketSeries {
    /// Buckets a series into spans of `bucket_secs` seconds, averaging the
    /// samples that fall in each span.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_secs == 0`.
    pub fn from_series(series: &TimeSeries, bucket_secs: u64) -> Self {
        Self::from_iter_inner(series.iter(), bucket_secs)
    }

    /// Buckets raw `(timestamp, value)` samples.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_secs == 0`.
    pub fn from_samples<I>(samples: I, bucket_secs: u64) -> Self
    where
        I: IntoIterator<Item = (Timestamp, f64)>,
    {
        Self::from_iter_inner(samples.into_iter(), bucket_secs)
    }

    fn from_iter_inner<I>(samples: I, bucket_secs: u64) -> Self
    where
        I: Iterator<Item = (Timestamp, f64)>,
    {
        assert!(bucket_secs > 0, "bucket span must be positive");
        let mut out = BucketSeries {
            bucket_secs,
            buckets: Vec::new(),
        };
        for (t, v) in samples {
            let idx = t.as_secs() / bucket_secs;
            match out.buckets.last_mut() {
                Some((last_idx, w)) if *last_idx == idx => w.update(v),
                _ => {
                    let mut w = Welford::new();
                    w.update(v);
                    out.buckets.push((idx, w));
                }
            }
        }
        out
    }

    /// Number of non-empty buckets.
    pub fn len(&self) -> usize {
        self.buckets.len()
    }

    /// Whether there are no buckets.
    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }

    /// Mean of the `i`-th non-empty bucket (in time order).
    pub fn mean_of(&self, i: usize) -> Option<f64> {
        self.buckets.get(i).and_then(|(_, w)| w.mean())
    }

    /// Iterates `(bucket_start_timestamp, mean)` pairs.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = (Timestamp, f64)> + '_ {
        self.buckets.iter().map(|(idx, w)| {
            (
                Timestamp::from_secs(idx * self.bucket_secs),
                w.mean().expect("buckets are only created non-empty"),
            )
        })
    }

    /// The means as a plain vector, in time order.
    pub fn means(&self) -> Vec<f64> {
        self.iter().map(|(_, m)| m).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_evicts_oldest() {
        let mut w = SlidingWindow::new(2);
        assert_eq!(w.push(1.0), None);
        assert_eq!(w.push(2.0), None);
        assert!(w.is_full());
        assert_eq!(w.push(3.0), Some(1.0));
        let contents: Vec<_> = w.iter().collect();
        assert_eq!(contents, vec![2.0, 3.0]);
    }

    #[test]
    fn window_stats() {
        let mut w = SlidingWindow::new(10);
        assert_eq!(w.mean(), None);
        for v in [2.0, 4.0, 6.0] {
            w.push(v);
        }
        assert_eq!(w.mean(), Some(4.0));
        let sd = w.stddev().unwrap();
        assert!((sd - (8.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn window_rejects_zero_capacity() {
        SlidingWindow::new(0);
    }

    #[test]
    fn buckets_skip_empty_spans() {
        let ts = TimeSeries::from_samples([(0, 2.0), (10, 4.0), (7200, 9.0)]).unwrap();
        let b = BucketSeries::from_series(&ts, 3600);
        assert_eq!(b.len(), 2);
        let pairs: Vec<_> = b.iter().collect();
        assert_eq!(pairs[0], (Timestamp::from_secs(0), 3.0));
        assert_eq!(pairs[1], (Timestamp::from_secs(7200), 9.0));
        assert_eq!(b.means(), vec![3.0, 9.0]);
    }

    #[test]
    fn six_hour_buckets_of_one_day() {
        // 240 six-minute samples of constant 1.0 -> 4 buckets of mean 1.0.
        let samples = (0..240u64).map(|k| (k * 360, 1.0));
        let ts = TimeSeries::from_samples(samples).unwrap();
        let b = BucketSeries::from_series(&ts, 6 * 3600);
        assert_eq!(b.len(), 4);
        assert!(b.means().iter().all(|&m| m == 1.0));
    }
}
