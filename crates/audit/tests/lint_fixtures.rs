//! Self-tests over the fixture corpora: every rule fires on the bad
//! corpus, nothing fires on the good corpus, and the binary's exit
//! codes match.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::process::Command;

use gridwatch_audit::concurrency::scan_concurrency_paths;
use gridwatch_audit::lints::Rule;
use gridwatch_audit::scan_paths;

fn fixture_dir(which: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(which)
}

/// Per-file rules plus the concurrency pass over a fixture directory —
/// the same union the binary's `--paths` mode reports.
fn scan_all(which: &str) -> Vec<gridwatch_audit::lints::Violation> {
    let dir = fixture_dir(which);
    let mut violations = scan_paths(&dir).expect("scan fixtures");
    violations.extend(
        scan_concurrency_paths(&dir)
            .expect("concurrency scan fixtures")
            .violations,
    );
    violations
}

#[test]
fn bad_corpus_trips_every_rule() {
    let violations = scan_all("bad");
    let fired: BTreeSet<Rule> = violations.iter().map(|v| v.rule).collect();
    for &rule in Rule::ALL.iter().chain(Rule::CONCURRENCY) {
        assert!(fired.contains(&rule), "rule {} never fired", rule.name());
    }

    let by_file = |name: &str| violations.iter().filter(|v| v.file == name).count();
    assert_eq!(by_file("panics.rs"), 3, "{violations:#?}");
    assert_eq!(by_file("float_cmp.rs"), 3, "{violations:#?}");
    assert_eq!(by_file("unbounded.rs"), 3, "{violations:#?}");
    assert_eq!(by_file("serde_missing_default.rs"), 1, "{violations:#?}");
    assert_eq!(by_file("lock_inversion.rs"), 2, "{violations:#?}");
    assert_eq!(by_file("blocking_under_lock.rs"), 3, "{violations:#?}");
    assert_eq!(by_file("condvar_no_loop.rs"), 1, "{violations:#?}");
}

#[test]
fn good_corpus_is_clean() {
    let violations = scan_all("good");
    assert!(violations.is_empty(), "{violations:#?}");
}

#[test]
fn seeded_inversion_pair_is_flagged_on_both_sides() {
    // The AB/BA pair across two functions: the cycle must be reported
    // at both inner acquisitions, naming the conflicting order.
    let violations = scan_all("bad");
    let cycles: Vec<_> = violations
        .iter()
        .filter(|v| v.rule == Rule::LockCycle && v.file == "lock_inversion.rs")
        .collect();
    assert_eq!(cycles.len(), 2, "{cycles:#?}");
    let excerpts: BTreeSet<&str> = cycles.iter().map(|v| v.excerpt.as_str()).collect();
    assert!(
        excerpts.contains("let b = self.beta.lock();"),
        "{cycles:#?}"
    );
    assert!(
        excerpts.contains("let a = self.alpha.lock();"),
        "{cycles:#?}"
    );
    for v in &cycles {
        assert!(v.message.contains("cycle"), "{}", v.message);
    }
}

#[test]
fn violations_carry_usable_locations() {
    let violations = scan_all("bad");
    for v in &violations {
        assert!(v.line > 0, "{v:?}");
        assert!(!v.excerpt.is_empty(), "{v:?}");
        // The fingerprint is the trimmed source line of the violation.
        let path = fixture_dir("bad").join(&v.file);
        let source = std::fs::read_to_string(path).expect("fixture readable");
        let line = source
            .lines()
            .nth(v.line as usize - 1)
            .expect("line in range");
        assert_eq!(line.trim(), v.excerpt, "{v:?}");
    }
}

#[test]
fn binary_exits_nonzero_on_bad_and_zero_on_good() {
    let bin = env!("CARGO_BIN_EXE_gridwatch-audit");

    let bad = Command::new(bin)
        .args(["--paths"])
        .arg(fixture_dir("bad"))
        .output()
        .expect("run on bad corpus");
    assert_eq!(bad.status.code(), Some(1), "{bad:?}");

    let good = Command::new(bin)
        .args(["--paths"])
        .arg(fixture_dir("good"))
        .output()
        .expect("run on good corpus");
    assert_eq!(good.status.code(), Some(0), "{good:?}");
}

#[test]
fn workspace_audit_passes_with_committed_allowlist() {
    let root = gridwatch_audit::find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root");
    let bin = env!("CARGO_BIN_EXE_gridwatch-audit");
    let out = Command::new(bin)
        .args(["lint", "--root"])
        .arg(&root)
        .output()
        .expect("run workspace audit");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        out.status.code(),
        Some(0),
        "workspace audit failed:\n{stdout}"
    );
    assert!(stdout.contains("allowlist burn-down:"), "{stdout}");
}

#[test]
fn net_wire_sequence_carry_no_allowlist_entries() {
    // Satellite guarantee: the TCP ingestion path stays panic-free with
    // no allowlisted exceptions at all.
    let root = gridwatch_audit::find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root");
    let ledger =
        std::fs::read_to_string(root.join("audit/allowlist.txt")).expect("allowlist readable");
    let entries = gridwatch_audit::allowlist::parse(&ledger).expect("allowlist parses");
    for e in entries {
        for burned in ["net.rs", "wire.rs", "sequence.rs"] {
            assert!(
                !(e.file.contains("serve/src") && e.file.ends_with(burned)),
                "burned-down file regained an allowlist entry: {e:?}"
            );
        }
    }
}
