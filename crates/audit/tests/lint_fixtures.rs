//! Self-tests over the fixture corpora: every rule fires on the bad
//! corpus, nothing fires on the good corpus, and the binary's exit
//! codes match.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::process::Command;

use gridwatch_audit::lints::Rule;
use gridwatch_audit::scan_paths;

fn fixture_dir(which: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(which)
}

#[test]
fn bad_corpus_trips_every_rule() {
    let violations = scan_paths(&fixture_dir("bad")).expect("scan bad fixtures");
    let fired: BTreeSet<Rule> = violations.iter().map(|v| v.rule).collect();
    for &rule in Rule::ALL {
        assert!(fired.contains(&rule), "rule {} never fired", rule.name());
    }

    let by_file = |name: &str| violations.iter().filter(|v| v.file == name).count();
    assert_eq!(by_file("panics.rs"), 3, "{violations:#?}");
    assert_eq!(by_file("float_cmp.rs"), 3, "{violations:#?}");
    assert_eq!(by_file("unbounded.rs"), 3, "{violations:#?}");
    assert_eq!(by_file("serde_missing_default.rs"), 1, "{violations:#?}");
}

#[test]
fn good_corpus_is_clean() {
    let violations = scan_paths(&fixture_dir("good")).expect("scan good fixtures");
    assert!(violations.is_empty(), "{violations:#?}");
}

#[test]
fn violations_carry_usable_locations() {
    let violations = scan_paths(&fixture_dir("bad")).expect("scan bad fixtures");
    for v in &violations {
        assert!(v.line > 0, "{v:?}");
        assert!(!v.excerpt.is_empty(), "{v:?}");
        // The fingerprint is the trimmed source line of the violation.
        let path = fixture_dir("bad").join(&v.file);
        let source = std::fs::read_to_string(path).expect("fixture readable");
        let line = source
            .lines()
            .nth(v.line as usize - 1)
            .expect("line in range");
        assert_eq!(line.trim(), v.excerpt, "{v:?}");
    }
}

#[test]
fn binary_exits_nonzero_on_bad_and_zero_on_good() {
    let bin = env!("CARGO_BIN_EXE_gridwatch-audit");

    let bad = Command::new(bin)
        .args(["--paths"])
        .arg(fixture_dir("bad"))
        .output()
        .expect("run on bad corpus");
    assert_eq!(bad.status.code(), Some(1), "{bad:?}");

    let good = Command::new(bin)
        .args(["--paths"])
        .arg(fixture_dir("good"))
        .output()
        .expect("run on good corpus");
    assert_eq!(good.status.code(), Some(0), "{good:?}");
}

#[test]
fn workspace_audit_passes_with_committed_allowlist() {
    let root = gridwatch_audit::find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root");
    let bin = env!("CARGO_BIN_EXE_gridwatch-audit");
    let out = Command::new(bin)
        .args(["lint", "--root"])
        .arg(&root)
        .output()
        .expect("run workspace audit");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        out.status.code(),
        Some(0),
        "workspace audit failed:\n{stdout}"
    );
    assert!(stdout.contains("allowlist burn-down:"), "{stdout}");
}

#[test]
fn net_wire_sequence_carry_no_allowlist_entries() {
    // Satellite guarantee: the TCP ingestion path stays panic-free with
    // no allowlisted exceptions at all.
    let root = gridwatch_audit::find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root");
    let ledger =
        std::fs::read_to_string(root.join("audit/allowlist.txt")).expect("allowlist readable");
    let entries = gridwatch_audit::allowlist::parse(&ledger).expect("allowlist parses");
    for e in entries {
        for burned in ["net.rs", "wire.rs", "sequence.rs"] {
            assert!(
                !(e.file.contains("serve/src") && e.file.ends_with(burned)),
                "burned-down file regained an allowlist entry: {e:?}"
            );
        }
    }
}
