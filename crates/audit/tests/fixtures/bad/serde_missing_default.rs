// Fixture: a checkpointed struct grows a field without #[serde(default)]
// — old checkpoints would fail to deserialize.

#[derive(Serialize, Deserialize)]
pub struct CheckpointManifest {
    #[serde(default)]
    pub version: u32,
    #[serde(default)]
    pub shards: usize,
    pub added_without_default: Vec<String>,
}
