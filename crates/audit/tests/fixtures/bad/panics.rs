// Fixture: every no-panic form in non-test code must be flagged.

pub fn take(x: Option<u32>) -> u32 {
    x.unwrap()
}

pub fn take_with_message(x: Option<u32>) -> u32 {
    x.expect("value must be present")
}

pub fn bail(n: u32) -> u32 {
    if n == 0 {
        panic!("n must be positive");
    }
    n
}
