// Fixture: unbounded channel constructors defeat backpressure.

pub fn crossbeam_style() {
    let (_tx, _rx) = channel::unbounded::<u64>();
}

pub fn tokio_style() {
    let (_tx, _rx) = tokio::sync::mpsc::unbounded_channel::<u64>();
}

pub fn std_style() {
    let (_tx, _rx) = std::sync::mpsc::channel::<u64>();
}
