//! Seeded lock-order inversion: `forward` nests alpha → beta while
//! `backward` nests beta → alpha, so the global lock-order graph has a
//! two-class cycle. Two threads running the two functions deadlock.
//! The `lock-cycle` rule must flag both inner acquisitions.

pub struct Pair {
    alpha: Mutex<State>,
    beta: Mutex<State>,
}

impl Pair {
    pub fn forward(&self) {
        let a = self.alpha.lock();
        let b = self.beta.lock();
        b.merge(&a);
    }

    pub fn backward(&self) {
        let b = self.beta.lock();
        let a = self.alpha.lock();
        a.merge(&b);
    }
}
