//! Guards held across blocking operations: a bounded-channel send, a
//! channel recv, and an fsync all execute while the `stats` mutex is
//! held, stalling every other thread for the full wait. The
//! `blocking-under-lock` rule must flag all three.

pub struct Hub {
    stats: Mutex<Stats>,
    tx: Sender<u64>,
}

impl Hub {
    pub fn publish(&self, value: u64) {
        let mut stats = self.stats.lock();
        stats.sent += 1;
        self.tx.send(value);
    }

    pub fn drain(&self, rx: &Receiver<u64>) {
        let mut stats = self.stats.lock();
        let value = rx.recv();
        stats.received += 1;
    }

    pub fn persist(&self, file: &File) {
        let stats = self.stats.lock();
        file.sync_all();
    }
}
