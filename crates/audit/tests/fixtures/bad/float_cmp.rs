// Fixture: naked equality on scores, probabilities, and float literals.

pub fn perfect(score: f64) -> bool {
    score == 1.0
}

pub fn same_fitness(fitness_a: f64, fitness_b: f64) -> bool {
    fitness_a == fitness_b
}

pub fn never_happened(prob: f64) -> bool {
    prob != 0.0
}
