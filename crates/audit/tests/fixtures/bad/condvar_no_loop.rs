//! A `Condvar` wait guarded by `if` instead of a predicate loop:
//! condvar wakeups are spurious, so this proceeds with `ready` still
//! false. The `condvar-no-loop` rule must flag the wait.

pub struct Gate {
    ready: Mutex<bool>,
    cond: Condvar,
}

impl Gate {
    pub fn pass(&self) {
        let mut guard = self.ready.lock();
        if !*guard {
            guard = self.cond.wait(guard);
        }
    }
}
