//! Concurrency patterns the lint must accept: a consistent alpha →
//! beta order in every function, guards dropped before blocking calls,
//! temporaries that die at their statement, and condvar waits inside
//! predicate loops.

pub struct Pair {
    alpha: Mutex<State>,
    beta: Mutex<State>,
    ready: Mutex<bool>,
    cond: Condvar,
    tx: Sender<u64>,
}

impl Pair {
    pub fn forward(&self) {
        let a = self.alpha.lock();
        let b = self.beta.lock();
        b.merge(&a);
    }

    pub fn also_forward(&self) {
        let a = self.alpha.lock();
        a.tick();
        let b = self.beta.lock();
        b.merge(&a);
    }

    pub fn publish(&self, value: u64) {
        let mut a = self.alpha.lock();
        a.count += 1;
        drop(a);
        self.tx.send(value);
    }

    pub fn scoped_publish(&self, value: u64) {
        {
            let mut a = self.alpha.lock();
            a.count += 1;
        }
        self.tx.send(value);
    }

    pub fn counted_publish(&self, value: u64) {
        self.alpha.lock().count += 1;
        self.tx.send(value);
    }

    pub fn pass(&self) {
        let mut guard = self.ready.lock();
        while !*guard {
            guard = self.cond.wait(guard);
        }
    }
}
