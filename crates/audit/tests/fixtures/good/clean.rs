// Fixture: code the lints must NOT flag.
//
// The string below spells out x.unwrap() and panic!("...") inside a
// literal, and this comment mentions score == 1.0 — neither is code.

pub const DOC: &str = "call x.unwrap() or panic!(\"boom\") at your peril; score == 1.0";

pub fn recovered(x: Option<u32>) -> u32 {
    x.unwrap_or(0)
}

pub fn close_enough(score: f64) -> bool {
    (score - 1.0).abs() <= 1e-9
}

pub fn integer_compare(n: usize) -> bool {
    n == 3
}

pub fn bounded_queues() {
    let (_tx, _rx) = channel::bounded::<u64>(64);
    let (_tx2, _rx2) = std::sync::mpsc::sync_channel::<u64>(64);
}

#[derive(Serialize, Deserialize)]
pub struct CheckpointManifest {
    #[serde(default)]
    pub version: u32,
    #[serde(default)]
    pub shards: usize,
    #[serde(skip)]
    pub scratch: Vec<u8>,
}

// A non-checkpointed struct needs no serde attributes at all.
pub struct ScratchState {
    pub anything: u64,
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_panic_freely() {
        let x: Option<u32> = Some(1);
        assert_eq!(x.unwrap(), 1);
        if false {
            panic!("unreachable");
        }
    }
}
