//! The checkpoint validator against real and corrupted checkpoints.
//!
//! Deterministic cases cover corruptions that `Checkpointer::recover`
//! (and therefore `gridwatch serve --resume`) would happily accept —
//! the validator's whole reason to exist — and property tests assert
//! the two safety guarantees: truncated manifests are always rejected,
//! and no input whatsoever makes the validator panic.

use std::fs;
use std::path::PathBuf;
use std::sync::OnceLock;

use proptest::prelude::*;

use gridwatch_audit::checkpoint::validate_checkpoint;
use gridwatch_detect::{AlarmTracker, DetectionEngine, EngineConfig, EngineSnapshot};
use gridwatch_serve::{CheckpointManifest, Checkpointer};
use gridwatch_timeseries::{MachineId, MeasurementId, MeasurementPair, MetricKind, PairSeries};

/// A pristine two-shard checkpoint, generated once and kept in memory:
/// `(manifest_json, [(shard_file_name, shard_json)])`.
fn pristine() -> &'static (String, Vec<(String, String)>) {
    static PRISTINE: OnceLock<(String, Vec<(String, String)>)> = OnceLock::new();
    PRISTINE.get_or_init(|| {
        let mk = |m: u32, t: u16| MeasurementId::new(MachineId::new(m), MetricKind::Custom(t));
        let ids = [mk(0, 0), mk(0, 1), mk(1, 0)];
        let mut pairs = Vec::new();
        for i in 0..3 {
            for j in (i + 1)..3 {
                let pair = MeasurementPair::new(ids[i], ids[j]).unwrap();
                let history = PairSeries::from_samples((0..300u64).map(|k| {
                    let x = (k % 40) as f64;
                    (k * 360, (i as f64 + 1.0) * x, (j as f64 + 2.0) * x)
                }))
                .unwrap();
                pairs.push((pair, history));
            }
        }
        let full = DetectionEngine::train(pairs, EngineConfig::default())
            .unwrap()
            .snapshot();
        let left = EngineSnapshot {
            config: full.config,
            models: full.models[..2].to_vec(),
            tracker: AlarmTracker::new(),
            candidates: Vec::new(),
        };
        let right = EngineSnapshot {
            config: full.config,
            models: full.models[2..].to_vec(),
            tracker: AlarmTracker::new(),
            candidates: Vec::new(),
        };
        let manifest = CheckpointManifest {
            version: 1,
            shards: 2,
            cut_seq: 7,
            config: full.config,
            tracker: full.tracker.clone(),
            shard_files: vec!["shard-0.json".into(), "shard-1.json".into()],
            sources: std::collections::BTreeMap::from([("agent-1".to_string(), 9)]),
            fabric_epoch: 0,
            remote: Vec::new(),
            candidate_pairs: 0,
            sketch_promotions: 0,
            sketch_demotions: 0,
        };
        (
            serde_json::to_string_pretty(&manifest).unwrap(),
            vec![
                ("shard-0.json".into(), serde_json::to_string(&left).unwrap()),
                (
                    "shard-1.json".into(),
                    serde_json::to_string(&right).unwrap(),
                ),
            ],
        )
    })
}

/// Materializes a checkpoint directory with the given manifest text and
/// the pristine shard files.
fn materialize(tag: &str, manifest_text: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("gridwatch-audit-ckpt-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    let (_, shards) = pristine();
    for (name, json) in shards {
        fs::write(dir.join(name), json).unwrap();
    }
    fs::write(dir.join("manifest.json"), manifest_text).unwrap();
    dir
}

fn cleanup(dir: &PathBuf) {
    let _ = fs::remove_dir_all(dir);
}

#[test]
fn pristine_checkpoint_validates() {
    let (manifest, _) = pristine();
    let dir = materialize("ok", manifest);
    let report = validate_checkpoint(&dir);
    assert!(report.is_valid(), "{:#?}", report.problems);
    assert_eq!(report.shards_checked, 2);
    assert_eq!(report.models_checked, 3);
    // And --resume agrees it is fine.
    assert!(Checkpointer::new(&dir).recover().is_ok());
    cleanup(&dir);
}

/// The acceptance criterion: corruptions that `recover()` ACCEPTS but
/// the validator rejects.
#[test]
fn rejects_corruptions_that_resume_would_accept() {
    let (manifest, _) = pristine();

    // recover() ignores the version field entirely.
    let bumped = manifest.replace("\"version\": 1", "\"version\": 2");
    assert_ne!(&bumped, manifest);
    let dir = materialize("version", &bumped);
    assert!(Checkpointer::new(&dir).recover().is_ok(), "resume accepts");
    let report = validate_checkpoint(&dir);
    assert!(!report.is_valid());
    assert!(
        report.problems.iter().any(|p| p.contains("version")),
        "{:#?}",
        report.problems
    );
    cleanup(&dir);

    // recover() never looks at alarm thresholds.
    let hot = manifest.replace("\"system_threshold\": 0.6", "\"system_threshold\": 60.0");
    assert_ne!(&hot, manifest);
    let dir = materialize("threshold", &hot);
    assert!(Checkpointer::new(&dir).recover().is_ok(), "resume accepts");
    let report = validate_checkpoint(&dir);
    assert!(!report.is_valid());
    assert!(
        report
            .problems
            .iter()
            .any(|p| p.contains("system_threshold")),
        "{:#?}",
        report.problems
    );
    cleanup(&dir);

    // recover() never cross-checks cut_seq against source watermarks.
    let ahead = manifest.replace("\"cut_seq\": 7", "\"cut_seq\": 700");
    assert_ne!(&ahead, manifest);
    let dir = materialize("cutseq", &ahead);
    assert!(Checkpointer::new(&dir).recover().is_ok(), "resume accepts");
    let report = validate_checkpoint(&dir);
    assert!(!report.is_valid());
    assert!(
        report.problems.iter().any(|p| p.contains("cut_seq")),
        "{:#?}",
        report.problems
    );
    cleanup(&dir);

    // serde silently drops unknown keys, so a typo'd field deserializes
    // to the default and resume proceeds on the wrong state.
    let typo = manifest.replacen("\"cut_seq\"", "\"cut_sq\": 7,\n  \"cut_seq\"", 1);
    assert_ne!(&typo, manifest);
    let dir = materialize("typo", &typo);
    assert!(Checkpointer::new(&dir).recover().is_ok(), "resume accepts");
    let report = validate_checkpoint(&dir);
    assert!(!report.is_valid());
    assert!(
        report.problems.iter().any(|p| p.contains("cut_sq")),
        "{:#?}",
        report.problems
    );
    cleanup(&dir);
}

/// A checkpoint written before the sketch gate existed (no
/// `candidate_pairs` / `sketch_promotions` / `sketch_demotions` keys in
/// the manifest, no `candidates` list in the shard snapshots) must
/// still pass `gridwatch audit --checkpoint` and `--resume`: every new
/// field is `#[serde(default)]` and registered with the validator's
/// key schema.
#[test]
fn pre_sketch_checkpoint_still_validates_and_resumes() {
    let (manifest, shards) = pristine();
    let legacy_manifest = manifest
        .replace(",\n  \"candidate_pairs\": 0", "")
        .replace(",\n  \"sketch_promotions\": 0", "")
        .replace(",\n  \"sketch_demotions\": 0", "")
        // EngineConfig predating the gate had no `sketch` key either.
        .replace(",\n    \"sketch\": null", "");
    assert!(!legacy_manifest.contains("sketch"), "{legacy_manifest}");
    assert_ne!(&legacy_manifest, manifest, "fixture must actually change");
    let dir = materialize("pre-sketch", &legacy_manifest);
    for (name, json) in shards {
        let legacy_shard = json
            .replace(",\"candidates\":[]", "")
            .replace(",\"sketch\":null", "");
        assert_ne!(&legacy_shard, json, "shard fixture must actually change");
        assert!(!legacy_shard.contains("sketch"), "{legacy_shard}");
        fs::write(dir.join(name), legacy_shard).unwrap();
    }
    // validate_checkpoint is exactly what `gridwatch audit --checkpoint`
    // runs.
    let report = validate_checkpoint(&dir);
    assert!(report.is_valid(), "{:#?}", report.problems);
    assert_eq!(report.shards_checked, 2);
    let (snapshot, _manifest) = Checkpointer::new(&dir).recover().unwrap();
    assert!(snapshot.candidates.is_empty());
    assert_eq!(snapshot.models.len(), 3);
    cleanup(&dir);
}

/// Remote-table corruptions a fabric coordinator's `--resume` would
/// accept: `recover()` only reassembles models and never reads the
/// ownership table, so fencing-critical damage sails through it.
#[test]
fn remote_ownership_table_is_validated() {
    let (manifest, _) = pristine();
    let promote = |remote: &str| {
        manifest
            .replace("\"fabric_epoch\": 0", "\"fabric_epoch\": 5")
            .replace("\"remote\": []", &format!("\"remote\": {remote}"))
    };
    let entry = |shard: usize, epoch: u64, source: &str| {
        format!("{{\"shard\": {shard}, \"epoch\": {epoch}, \"source\": \"{source}\"}}")
    };

    // A coherent table passes both the validator and recover().
    let good = promote(&format!(
        "[{}, {}]",
        entry(0, 3, "127.0.0.1:7801"),
        entry(1, 5, "127.0.0.1:7802")
    ));
    assert_ne!(&good, manifest, "fixture must actually change");
    let dir = materialize("remote-ok", &good);
    assert!(Checkpointer::new(&dir).recover().is_ok());
    let report = validate_checkpoint(&dir);
    assert!(report.is_valid(), "{:#?}", report.problems);
    cleanup(&dir);

    // Stale/incoherent epoch: a worker admitted above the manifest's
    // own fabric epoch could never be fenced on resume.
    let stale = promote(&format!(
        "[{}, {}]",
        entry(0, 9, "127.0.0.1:7801"),
        entry(1, 5, "127.0.0.1:7802")
    ));
    let dir = materialize("remote-stale", &stale);
    assert!(Checkpointer::new(&dir).recover().is_ok(), "resume accepts");
    let report = validate_checkpoint(&dir);
    assert!(!report.is_valid());
    assert!(
        report
            .problems
            .iter()
            .any(|p| p.contains("fabric epoch is only")),
        "{:#?}",
        report.problems
    );
    cleanup(&dir);

    // Epoch 0 is reserved for "never owned remotely".
    let zero = promote(&format!(
        "[{}, {}]",
        entry(0, 0, "127.0.0.1:7801"),
        entry(1, 5, "127.0.0.1:7802")
    ));
    let dir = materialize("remote-zero", &zero);
    assert!(Checkpointer::new(&dir).recover().is_ok(), "resume accepts");
    let report = validate_checkpoint(&dir);
    assert!(!report.is_valid());
    assert!(
        report.problems.iter().any(|p| p.contains("epoch 0")),
        "{:#?}",
        report.problems
    );
    cleanup(&dir);

    // Orphaned worker: assigned to a shard the manifest doesn't have
    // (which also leaves shard 1 with no owner).
    let orphan = promote(&format!(
        "[{}, {}]",
        entry(0, 3, "127.0.0.1:7801"),
        entry(7, 5, "127.0.0.1:7802")
    ));
    let dir = materialize("remote-orphan", &orphan);
    assert!(Checkpointer::new(&dir).recover().is_ok(), "resume accepts");
    let report = validate_checkpoint(&dir);
    assert!(!report.is_valid());
    assert!(
        report
            .problems
            .iter()
            .any(|p| p.contains("orphaned worker")),
        "{:#?}",
        report.problems
    );
    assert!(
        report
            .problems
            .iter()
            .any(|p| p.contains("no remote owner")),
        "{:#?}",
        report.problems
    );
    cleanup(&dir);

    // Duplicate ownership: two workers both claim shard 0.
    let dup = promote(&format!(
        "[{}, {}]",
        entry(0, 3, "127.0.0.1:7801"),
        entry(0, 5, "127.0.0.1:7802")
    ));
    let dir = materialize("remote-dup", &dup);
    assert!(Checkpointer::new(&dir).recover().is_ok(), "resume accepts");
    let report = validate_checkpoint(&dir);
    assert!(!report.is_valid());
    assert!(
        report
            .problems
            .iter()
            .any(|p| p.contains("more than one remote owner")),
        "{:#?}",
        report.problems
    );
    cleanup(&dir);
}

#[test]
fn rejects_tampered_shard_models() {
    // A decay rate w <= 1 breaks the paper's spatial-closeness prior
    // (Section 4.2); recover() parses it happily.
    let (manifest, shards) = pristine();
    let dir = materialize("decay", manifest);
    let tampered = shards[0]
        .1
        .replace("\"decay_rate\":2.0", "\"decay_rate\":0.5");
    assert_ne!(tampered, shards[0].1, "fixture must actually change");
    fs::write(dir.join(&shards[0].0), tampered).unwrap();
    assert!(Checkpointer::new(&dir).recover().is_ok(), "resume accepts");
    let report = validate_checkpoint(&dir);
    assert!(!report.is_valid());
    assert!(
        report.problems.iter().any(|p| p.contains("decay rate")),
        "{:#?}",
        report.problems
    );
    cleanup(&dir);
}

#[test]
fn rejects_structural_damage() {
    let (manifest, _) = pristine();

    // Missing shard file.
    let dir = materialize("missing-shard", manifest);
    fs::remove_file(dir.join("shard-1.json")).unwrap();
    let report = validate_checkpoint(&dir);
    assert!(!report.is_valid());
    cleanup(&dir);

    // Duplicate pair: both shard entries point at the same file.
    let dup = manifest.replace("shard-1.json", "shard-0.json");
    let dir = materialize("dup-pair", &dup);
    let report = validate_checkpoint(&dir);
    assert!(!report.is_valid());
    assert!(
        report
            .problems
            .iter()
            .any(|p| p.contains("more than one shard") || p.contains("listed more than once")),
        "{:#?}",
        report.problems
    );
    cleanup(&dir);

    // Path traversal in a shard name.
    let traversal = manifest.replace("shard-1.json", "../shard-1.json");
    let dir = materialize("traversal", &traversal);
    let report = validate_checkpoint(&dir);
    assert!(!report.is_valid());
    assert!(
        report.problems.iter().any(|p| p.contains("path separator")),
        "{:#?}",
        report.problems
    );
    cleanup(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any strict truncation of the manifest is rejected, and never
    /// panics: a torn write must not resume.
    #[test]
    fn truncated_manifests_always_rejected(frac in 0.0f64..1.0) {
        let (manifest, _) = pristine();
        let cut = ((manifest.len() as f64) * frac) as usize;
        let cut = cut.min(manifest.len().saturating_sub(1));
        let truncated = String::from_utf8_lossy(&manifest.as_bytes()[..cut]).into_owned();
        let dir = materialize("trunc", &truncated);
        let report = validate_checkpoint(&dir);
        cleanup(&dir);
        prop_assert!(!report.is_valid(), "truncation at {cut} accepted");
    }

    /// Arbitrary byte splices never panic the validator. (A splice can
    /// land in whitespace and leave the manifest semantically intact,
    /// so rejection is only asserted when the JSON actually changed.)
    #[test]
    fn spliced_manifests_never_panic(
        offset in 0usize..4096,
        garbage in prop::collection::vec(any::<u8>(), 1usize..16),
    ) {
        let (manifest, _) = pristine();
        let bytes = manifest.as_bytes();
        let at = offset % bytes.len();
        let mut corrupted = Vec::with_capacity(bytes.len() + garbage.len());
        corrupted.extend_from_slice(&bytes[..at]);
        corrupted.extend_from_slice(&garbage);
        corrupted.extend_from_slice(&bytes[at..]);
        let text = String::from_utf8_lossy(&corrupted).into_owned();
        let dir = materialize("splice", &text);
        let report = validate_checkpoint(&dir);
        cleanup(&dir);
        // Must complete without panicking; the report itself must stay
        // internally consistent.
        prop_assert!(report.problems.len() < 10_000);
    }
}
