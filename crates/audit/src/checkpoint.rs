//! Offline checkpoint validation — deeper than `--resume`'s own checks.
//!
//! [`Checkpointer::recover`] verifies just enough to reassemble an
//! engine: manifest parses, shard count matches, shard files parse, no
//! duplicate pairs. It deliberately skips semantic checks that would
//! slow every restart. This validator runs them all, offline, and
//! **collects every problem** instead of stopping at the first, so an
//! operator sees the complete damage report for a suspect directory:
//!
//! * manifest schema: no unknown keys (typos silently ignored by serde),
//!   supported `version`;
//! * shard file hygiene: unique names, no path separators or `..`;
//! * config coherence: every shard snapshot's config equals the
//!   manifest's (the manifest is the single source of truth on resume);
//! * alarm policy sanity: thresholds finite in `[0, 1]`,
//!   `min_consecutive >= 1`;
//! * model invariants per shard (paper §3–§4): well-formed grid, decay
//!   rate `w > 1`, in-range transition counts, sampled rows
//!   row-stochastic — via [`gridwatch_detect::invariants::verify_model`];
//! * no pair owned by two shards;
//! * sequencing coherence: when per-source watermarks are recorded,
//!   their sum must cover `cut_seq` (the cut cannot have accepted more
//!   frames than its sources delivered);
//! * remote ownership coherence: when a fabric coordinator recorded a
//!   remote table, every shard has exactly one owner, no owner points
//!   at a shard outside the manifest, and every admission epoch is in
//!   `1..=fabric_epoch` (stale epochs would defeat board fencing on
//!   resume).
//!
//! The validator never panics on any input — corrupt bytes, truncated
//! files, and hostile manifests all come back as problems in the report
//! (property-tested in `tests/checkpoint_validate.rs`).

use std::collections::BTreeSet;
use std::fs;
use std::path::Path;

use gridwatch_detect::invariants::{verify_model, DEFAULT_ROW_SAMPLE};
use gridwatch_detect::{AlarmPolicy, EngineSnapshot};
use gridwatch_serve::checkpoint::MANIFEST_FILE;
use gridwatch_serve::CheckpointManifest;

/// The manifest layout version this validator understands.
pub const SUPPORTED_VERSION: u32 = 1;

/// Top-level manifest keys; anything else is a typo or tampering.
const MANIFEST_KEYS: &[&str] = &[
    "version",
    "shards",
    "cut_seq",
    "config",
    "tracker",
    "shard_files",
    "sources",
    "fabric_epoch",
    "remote",
    "candidate_pairs",
    "sketch_promotions",
    "sketch_demotions",
];

/// The outcome of validating one checkpoint directory.
#[derive(Debug, Default)]
pub struct CheckpointReport {
    /// Every problem found, in discovery order. Empty means valid.
    pub problems: Vec<String>,
    /// Shard files successfully opened and parsed.
    pub shards_checked: usize,
    /// Models whose invariants were verified.
    pub models_checked: usize,
}

impl CheckpointReport {
    /// Whether the checkpoint passed every check.
    pub fn is_valid(&self) -> bool {
        self.problems.is_empty()
    }

    fn problem(&mut self, msg: impl Into<String>) {
        self.problems.push(msg.into());
    }
}

/// Validates the checkpoint directory at `dir`. Never panics; every
/// failure mode — missing files, corrupt JSON, semantic violations —
/// lands in [`CheckpointReport::problems`].
pub fn validate_checkpoint(dir: &Path) -> CheckpointReport {
    let mut report = CheckpointReport::default();

    let manifest_path = dir.join(MANIFEST_FILE);
    let text = match fs::read_to_string(&manifest_path) {
        Ok(text) => text,
        Err(e) => {
            report.problem(format!("cannot read {}: {e}", manifest_path.display()));
            return report;
        }
    };

    // Schema pass over the raw JSON first: serde ignores unknown keys,
    // so a typo'd field (`cut_sq`) would silently deserialize to the
    // default and `--resume` would replay from the wrong offset. (The
    // vendored serde_json stand-in has no `Value`, so a minimal
    // top-level scanner does the job.)
    match top_level_entries(&text) {
        Some(entries) => {
            for (key, _) in &entries {
                if !MANIFEST_KEYS.contains(&key.as_str()) {
                    report.problem(format!("manifest has unknown key {key:?}"));
                }
            }
            let version = entries
                .iter()
                .find(|(key, _)| key == "version")
                .and_then(|(_, raw)| raw.trim().parse::<u64>().ok());
            match version {
                Some(v) if v == u64::from(SUPPORTED_VERSION) => {}
                Some(v) => report.problem(format!(
                    "manifest version {v} is not supported (expected {SUPPORTED_VERSION})"
                )),
                None => report.problem("manifest version is missing or not an integer"),
            }
        }
        None => {
            report.problem("manifest is not a JSON object");
            return report;
        }
    }

    let manifest: CheckpointManifest = match serde_json::from_str(&text) {
        Ok(m) => m,
        Err(e) => {
            report.problem(format!("manifest does not match the expected schema: {e}"));
            return report;
        }
    };

    validate_manifest_semantics(&manifest, &mut report);
    validate_shards(dir, &manifest, &mut report);
    report
}

/// Scans the top level of a JSON object, returning each key with the
/// raw text of its value. Returns `None` when `text` is not a JSON
/// object. Total on any input: garbage never panics, it just fails to
/// scan (and the typed parse afterwards reports the real error).
fn top_level_entries(text: &str) -> Option<Vec<(String, String)>> {
    let chars: Vec<char> = text.chars().collect();
    let mut i = 0usize;
    let skip_ws = |i: &mut usize| {
        while *i < chars.len() && chars[*i].is_whitespace() {
            *i += 1;
        }
    };
    skip_ws(&mut i);
    if chars.get(i) != Some(&'{') {
        return None;
    }
    i += 1;
    let mut entries = Vec::new();
    loop {
        skip_ws(&mut i);
        match chars.get(i) {
            Some('}') => return Some(entries),
            Some('"') => {}
            _ => return None,
        }
        // Key string, honoring escapes.
        i += 1;
        let mut key = String::new();
        loop {
            match chars.get(i) {
                Some('\\') => {
                    if let Some(&c) = chars.get(i + 1) {
                        key.push(c);
                    }
                    i += 2;
                }
                Some('"') => {
                    i += 1;
                    break;
                }
                Some(&c) => {
                    key.push(c);
                    i += 1;
                }
                None => return None,
            }
        }
        skip_ws(&mut i);
        if chars.get(i) != Some(&':') {
            return None;
        }
        i += 1;
        // Raw value: everything up to the comma or brace that closes it
        // at nesting depth zero.
        let start = i;
        let mut depth = 0i64;
        let mut in_string = false;
        loop {
            let &c = chars.get(i)?;
            if in_string {
                match c {
                    '\\' => i += 1,
                    '"' => in_string = false,
                    _ => {}
                }
            } else {
                match c {
                    '"' => in_string = true,
                    '{' | '[' => depth += 1,
                    '}' | ']' if depth > 0 => depth -= 1,
                    ',' if depth == 0 => break,
                    '}' if depth == 0 => break,
                    _ => {}
                }
            }
            i += 1;
        }
        let value: String = chars[start..i].iter().collect();
        entries.push((key, value.trim().to_string()));
        if chars.get(i) == Some(&',') {
            i += 1;
        }
    }
}

/// Checks that need only the manifest.
fn validate_manifest_semantics(manifest: &CheckpointManifest, report: &mut CheckpointReport) {
    if manifest.shard_files.len() != manifest.shards {
        report.problem(format!(
            "manifest names {} shard files but claims {} shards",
            manifest.shard_files.len(),
            manifest.shards
        ));
    }

    let mut seen = BTreeSet::new();
    for name in &manifest.shard_files {
        if name.contains('/') || name.contains('\\') || name.contains("..") {
            report.problem(format!(
                "shard file name {name:?} contains a path separator or `..` \
                 (checkpoint files must live flat inside the directory)"
            ));
        }
        if !seen.insert(name) {
            report.problem(format!("shard file {name:?} is listed more than once"));
        }
    }

    validate_alarm_policy(&manifest.config.alarm, report);
    validate_remote_ownership(manifest, report);

    // A checkpoint cut at `cut_seq` reflects that many accepted frames;
    // the recorded source watermarks must account for at least as many
    // deliveries, or resume would re-admit frames the models already saw.
    if !manifest.sources.is_empty() {
        let delivered: u64 = manifest
            .sources
            .values()
            .fold(0u64, |acc, &v| acc.saturating_add(v));
        if delivered < manifest.cut_seq {
            report.problem(format!(
                "cut_seq {} exceeds the {} frames accounted for by source watermarks",
                manifest.cut_seq, delivered
            ));
        }
    }
}

/// Checks the remote shard ownership table written by a fabric
/// coordinator. Empty tables (single-process checkpoints) are always
/// fine; a non-empty table must name every shard exactly once, under a
/// coherent epoch, so `coordinator --resume` can fence every pre-crash
/// assignment and re-dial the recorded workers.
fn validate_remote_ownership(manifest: &CheckpointManifest, report: &mut CheckpointReport) {
    if manifest.remote.is_empty() {
        return;
    }
    if manifest.remote.len() != manifest.shards {
        report.problem(format!(
            "remote table records {} shard owners but the manifest claims {} shards",
            manifest.remote.len(),
            manifest.shards
        ));
    }
    let mut owned = BTreeSet::new();
    for entry in &manifest.remote {
        if entry.shard >= manifest.shards {
            report.problem(format!(
                "remote table assigns worker {:?} to shard {} but the manifest \
                 has only {} shards (orphaned worker)",
                entry.source, entry.shard, manifest.shards
            ));
        } else if !owned.insert(entry.shard) {
            report.problem(format!(
                "shard {} has more than one remote owner (duplicate ownership \
                 would double-score every snapshot on resume)",
                entry.shard
            ));
        }
        if entry.epoch == 0 {
            report.problem(format!(
                "remote shard {} records epoch 0, which is reserved for \
                 \"never owned remotely\" — the table is incoherent",
                entry.shard
            ));
        } else if entry.epoch > manifest.fabric_epoch {
            report.problem(format!(
                "remote shard {} was admitted under epoch {} but the manifest's \
                 fabric epoch is only {} (stale or tampered epoch: resume would \
                 fail to fence this worker's pre-crash boards)",
                entry.shard, entry.epoch, manifest.fabric_epoch
            ));
        }
        if entry.source.is_empty() {
            report.problem(format!(
                "remote shard {} records an empty worker address",
                entry.shard
            ));
        }
    }
    for shard in 0..manifest.shards {
        if !owned.contains(&shard) {
            report.problem(format!(
                "shard {shard} has no remote owner in a non-empty remote table \
                 (resume could not place it)"
            ));
        }
    }
}

fn validate_alarm_policy(alarm: &AlarmPolicy, report: &mut CheckpointReport) {
    for (name, value) in [
        ("system_threshold", alarm.system_threshold),
        ("measurement_threshold", alarm.measurement_threshold),
    ] {
        if !value.is_finite() || !(0.0..=1.0).contains(&value) {
            report.problem(format!(
                "alarm {name} must be a finite score in [0, 1], got {value}"
            ));
        }
    }
    if alarm.min_consecutive == 0 {
        report.problem("alarm min_consecutive must be >= 1 (0 can never fire)");
    }
}

/// Opens every shard file, checks config coherence, pair ownership, and
/// per-model invariants.
fn validate_shards(dir: &Path, manifest: &CheckpointManifest, report: &mut CheckpointReport) {
    let mut owners = BTreeSet::new();
    for name in &manifest.shard_files {
        // Don't follow hostile names out of the directory; the naming
        // problem was already reported above.
        if name.contains('/') || name.contains('\\') || name.contains("..") {
            continue;
        }
        let path = dir.join(name);
        let text = match fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) => {
                report.problem(format!("cannot read shard file {name}: {e}"));
                continue;
            }
        };
        let snapshot: EngineSnapshot = match serde_json::from_str(&text) {
            Ok(s) => s,
            Err(e) => {
                report.problem(format!("shard file {name} does not parse: {e}"));
                continue;
            }
        };
        report.shards_checked += 1;

        if snapshot.config != manifest.config {
            report.problem(format!(
                "shard file {name} was written under a different engine config \
                 than the manifest records"
            ));
        }

        for (pair, model) in &snapshot.models {
            if !owners.insert(*pair) {
                report.problem(format!(
                    "pair {pair} is owned by more than one shard ({name})"
                ));
            }
            if let Err(why) = verify_model(model, DEFAULT_ROW_SAMPLE) {
                report.problem(format!("model for {pair} in {name}: {why}"));
            }
            report.models_checked += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn missing_directory_is_a_problem_not_a_panic() {
        let report = validate_checkpoint(Path::new("/nonexistent/gridwatch-audit-test"));
        assert!(!report.is_valid());
        assert_eq!(report.problems.len(), 1);
    }

    #[test]
    fn alarm_policy_bounds() {
        let mut report = CheckpointReport::default();
        validate_alarm_policy(&AlarmPolicy::default(), &mut report);
        assert!(report.is_valid(), "{:?}", report.problems);

        let mut report = CheckpointReport::default();
        validate_alarm_policy(
            &AlarmPolicy {
                system_threshold: 1.5,
                measurement_threshold: -0.1,
                min_consecutive: 0,
            },
            &mut report,
        );
        assert_eq!(report.problems.len(), 3, "{:?}", report.problems);
    }
}
