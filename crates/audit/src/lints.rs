//! The project lint rules, applied to lexed token streams.
//!
//! Four rules, each tied to a failure mode this codebase has actually
//! hit or must never hit:
//!
//! * [`Rule::NoPanic`] — `unwrap()`, `expect()`, and `panic!` in
//!   non-test library code can crash a listener thread and drop every
//!   client's stream; recoveries must be typed errors or logged skips.
//! * [`Rule::FloatCmp`] — naked `==`/`!=` against float literals or
//!   score/fitness/probability values; tolerance must go through
//!   `gridwatch_grid::float`.
//! * [`Rule::UnboundedChannel`] — unbounded channel constructors defeat
//!   the serving tier's backpressure design; every queue must be
//!   bounded.
//! * [`Rule::SerdeDefault`] — fields of checkpointed structs must carry
//!   `#[serde(default)]` (or `#[serde(skip)]`), so yesterday's
//!   checkpoint still deserializes after a field is added.

use crate::lexer::{lex, strip_test_code, Tok, TokKind};

/// Structs persisted inside checkpoints (manifest + shard snapshots).
/// A new field on any of these without `#[serde(default)]` breaks
/// `--resume` from every checkpoint taken before the field existed.
pub const CHECKPOINTED_STRUCTS: &[&str] = &[
    "CheckpointManifest",
    "RemoteShard",
    "EngineSnapshot",
    "AlarmTracker",
    "EngineConfig",
    "AlarmPolicy",
    // Nested inside EngineConfig: a pre-drift engine snapshot must
    // still resume after the drift knobs were added (and vice versa).
    "DriftConfig",
    // Nested inside EngineConfig as `Option<SketchConfig>`: pre-sketch
    // snapshots must resume with the gate off, and partially written
    // sketch blocks must degrade to an inert gate, never a crash.
    "SketchConfig",
    "ModelConfig",
    "TransitionModel",
    "TransitionMatrix",
    "GridStructure",
    "DimensionPartition",
    "Interval",
    "GrowthPolicy",
    // Serving stats land in `--stats` files and checkpoint directories;
    // the flight-recorder events land in dumped `flight.jsonl` rings
    // and persisted incident reports. Same compatibility contract.
    "ServeStats",
    "ShardStats",
    "NetStats",
    "ConnStats",
    "LogHistogram",
    "FlightEvent",
    // The history store's manifest is its only serde-persisted file
    // (everything else is hand-framed binary with its own versioning).
    "StoreManifest",
    // Trace exemplars persist as JSON payloads inside the history
    // store's trace records, and ride the fabric wire inside board
    // frames; old stores and old workers must both keep decoding after
    // a span field is added. The health report is a pinned operator
    // API (`/healthz`) with the same additive-only contract.
    "SpanSlice",
    "TraceExemplar",
    "HealthReport",
    "ShardHealth",
];

/// Identifier fragments that mark a value as a score or probability for
/// [`Rule::FloatCmp`]. Deliberately narrow: interval-bound comparisons
/// (`upper() == lower()`) encode exact tiling invariants and stay legal.
const FLOATY_NAME_FRAGMENTS: &[&str] = &["score", "fitness", "prob"];

/// One project lint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// `unwrap()`/`expect()`/`panic!` in non-test library code.
    NoPanic,
    /// Naked `==`/`!=` on scores, fitness values, or float literals.
    FloatCmp,
    /// Unbounded channel constructor.
    UnboundedChannel,
    /// Checkpointed-struct field without `#[serde(default)]`.
    SerdeDefault,
    /// Lock acquisition that closes a cycle in the global lock-order
    /// graph (potential deadlock). Produced by the cross-file
    /// concurrency pass ([`crate::concurrency`]), not `lint_source`.
    LockCycle,
    /// Blocking operation (channel send/recv, socket I/O, `join()`,
    /// fsync, condvar wait) executed while a lock guard is held.
    BlockingUnderLock,
    /// `Condvar::wait` outside a predicate loop: wakeups are spurious,
    /// so a bare `if`-guarded wait proceeds on a false predicate.
    CondvarNoLoop,
}

impl Rule {
    /// The rule's stable name, used in reports and the allowlist file.
    pub fn name(self) -> &'static str {
        match self {
            Rule::NoPanic => "no-panic",
            Rule::FloatCmp => "float-cmp",
            Rule::UnboundedChannel => "unbounded-channel",
            Rule::SerdeDefault => "serde-default",
            Rule::LockCycle => "lock-cycle",
            Rule::BlockingUnderLock => "blocking-under-lock",
            Rule::CondvarNoLoop => "condvar-no-loop",
        }
    }

    /// Parses a rule from its stable name.
    pub fn from_name(name: &str) -> Option<Rule> {
        match name {
            "no-panic" => Some(Rule::NoPanic),
            "float-cmp" => Some(Rule::FloatCmp),
            "unbounded-channel" => Some(Rule::UnboundedChannel),
            "serde-default" => Some(Rule::SerdeDefault),
            "lock-cycle" => Some(Rule::LockCycle),
            "blocking-under-lock" => Some(Rule::BlockingUnderLock),
            "condvar-no-loop" => Some(Rule::CondvarNoLoop),
            _ => None,
        }
    }

    /// Every per-file rule (the ones `lint_source` can produce). The
    /// concurrency rules are cross-file — they come from
    /// [`crate::concurrency::scan_concurrency`] instead.
    pub const ALL: &'static [Rule] = &[
        Rule::NoPanic,
        Rule::FloatCmp,
        Rule::UnboundedChannel,
        Rule::SerdeDefault,
    ];

    /// The rules produced by the concurrency pass.
    pub const CONCURRENCY: &'static [Rule] = &[
        Rule::LockCycle,
        Rule::BlockingUnderLock,
        Rule::CondvarNoLoop,
    ];

    /// Whether this rule comes from the concurrency pass (and therefore
    /// reconciles in `--concurrency` runs, not the per-file lint pass).
    pub fn is_concurrency(self) -> bool {
        Rule::CONCURRENCY.contains(&self)
    }
}

/// One lint violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which rule fired.
    pub rule: Rule,
    /// Repo-relative path (forward slashes) of the offending file.
    pub file: String,
    /// 1-based line of the offending token.
    pub line: u32,
    /// The trimmed source line — doubles as the allowlist fingerprint,
    /// so allowlist entries survive unrelated edits above them.
    pub excerpt: String,
    /// Human-readable explanation.
    pub message: String,
}

/// Lints one file's source text under the given rules, excluding
/// `#[cfg(test)]` / `#[test]` code.
pub fn lint_source(file: &str, source: &str, rules: &[Rule]) -> Vec<Violation> {
    let toks = strip_test_code(&lex(source));
    let lines: Vec<&str> = source.lines().collect();
    let excerpt_at = |line: u32| -> String {
        lines
            .get(line.saturating_sub(1) as usize)
            .map(|l| l.trim().to_string())
            .unwrap_or_default()
    };
    let mut out = Vec::new();
    for &rule in rules {
        let hits: Vec<(u32, String)> = match rule {
            Rule::NoPanic => no_panic(&toks),
            Rule::FloatCmp => float_cmp(&toks),
            Rule::UnboundedChannel => unbounded_channel(&toks),
            Rule::SerdeDefault => serde_default(&toks),
            // Concurrency rules need the cross-file lock-order graph;
            // see `crate::concurrency`.
            Rule::LockCycle | Rule::BlockingUnderLock | Rule::CondvarNoLoop => Vec::new(),
        };
        for (line, message) in hits {
            out.push(Violation {
                rule,
                file: file.to_string(),
                line,
                excerpt: excerpt_at(line),
                message,
            });
        }
    }
    out.sort_by_key(|a| (a.line, a.rule));
    out
}

/// `.unwrap(` / `.expect(` method calls and `panic!` invocations.
fn no_panic(toks: &[Tok]) -> Vec<(u32, String)> {
    let mut hits = Vec::new();
    for (k, tok) in toks.iter().enumerate() {
        if tok.kind != TokKind::Ident {
            continue;
        }
        let prev_is_dot = k > 0 && toks[k - 1].is_punct(".");
        let next_is_call = toks.get(k + 1).is_some_and(|t| t.is_punct("("));
        match tok.text.as_str() {
            "unwrap" | "expect" if prev_is_dot && next_is_call => {
                hits.push((
                    tok.line,
                    format!(
                        "`.{}()` in non-test library code can take down a \
                         serving thread; return a typed error or log and recover",
                        tok.text
                    ),
                ));
            }
            "panic" if toks.get(k + 1).is_some_and(|t| t.is_punct("!")) => {
                hits.push((
                    tok.line,
                    "`panic!` in non-test library code can take down a serving \
                     thread; return a typed error or log and recover"
                        .to_string(),
                ));
            }
            _ => {}
        }
    }
    hits
}

/// Whether a token looks like a float-typed score in a comparison.
fn is_floaty(tok: &Tok) -> bool {
    match tok.kind {
        TokKind::Float => true,
        TokKind::Ident => {
            let lower = tok.text.to_lowercase();
            FLOATY_NAME_FRAGMENTS.iter().any(|f| lower.contains(f))
        }
        _ => false,
    }
}

/// `==`/`!=` with a float literal or score-named operand on either side.
fn float_cmp(toks: &[Tok]) -> Vec<(u32, String)> {
    let mut hits = Vec::new();
    for (k, tok) in toks.iter().enumerate() {
        if !(tok.is_punct("==") || tok.is_punct("!=")) {
            continue;
        }
        let prev = k.checked_sub(1).and_then(|p| toks.get(p));
        let next = toks.get(k + 1);
        if prev.is_some_and(is_floaty) || next.is_some_and(is_floaty) {
            hits.push((
                tok.line,
                format!(
                    "naked `{}` on a float score or probability; use the \
                     epsilon helpers in `gridwatch_grid::float`",
                    tok.text
                ),
            ));
        }
    }
    hits
}

/// Whether the identifier at `k` is invoked: followed by `(` directly
/// or through a turbofish `::<…>(`.
fn is_called(toks: &[Tok], k: usize) -> bool {
    if toks.get(k + 1).is_some_and(|t| t.is_punct("(")) {
        return true;
    }
    if toks.get(k + 1).is_some_and(|t| t.is_punct("::"))
        && toks.get(k + 2).is_some_and(|t| t.is_punct("<"))
    {
        let mut depth = 0i64;
        for (i, t) in toks.iter().enumerate().skip(k + 2) {
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "<" | "<<" => depth += if t.text.len() == 2 { 2 } else { 1 },
                    ">" => depth -= 1,
                    ">>" => depth -= 2,
                    _ => {}
                }
            }
            if depth <= 0 {
                return toks.get(i + 1).is_some_and(|t| t.is_punct("("));
            }
        }
    }
    false
}

/// `unbounded(…)`, `unbounded_channel(…)`, and `mpsc::channel(…)`.
fn unbounded_channel(toks: &[Tok]) -> Vec<(u32, String)> {
    let mut hits = Vec::new();
    for (k, tok) in toks.iter().enumerate() {
        if tok.kind != TokKind::Ident {
            continue;
        }
        let next_is_call = is_called(toks, k);
        let flagged = match tok.text.as_str() {
            "unbounded" | "unbounded_channel" => next_is_call,
            // `std::sync::mpsc::channel()` is unbounded, unlike
            // crossbeam's `channel::bounded`.
            "channel" => {
                next_is_call && k >= 2 && toks[k - 1].is_punct("::") && toks[k - 2].is_ident("mpsc")
            }
            _ => false,
        };
        if flagged {
            hits.push((
                tok.line,
                "unbounded channel defeats the backpressure design; use a \
                 bounded constructor and pick a policy for the full case"
                    .to_string(),
            ));
        }
    }
    hits
}

/// Fields of [`CHECKPOINTED_STRUCTS`] lacking `#[serde(default)]` (or
/// `#[serde(skip)]`, which implies a default on deserialize).
fn serde_default(toks: &[Tok]) -> Vec<(u32, String)> {
    let mut hits = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if !toks[i].is_ident("struct") {
            i += 1;
            continue;
        }
        let Some(name_tok) = toks.get(i + 1) else {
            break;
        };
        if !CHECKPOINTED_STRUCTS.contains(&name_tok.text.as_str()) {
            i += 1;
            continue;
        }
        let struct_name = name_tok.text.clone();
        // Find the opening brace (or bail on tuple/unit structs — serde
        // field attributes are not the convention there).
        let mut k = i + 2;
        while k < toks.len()
            && !toks[k].is_punct("{")
            && !toks[k].is_punct("(")
            && !toks[k].is_punct(";")
        {
            k += 1;
        }
        if k >= toks.len() || !toks[k].is_punct("{") {
            i = k + 1;
            continue;
        }
        // Walk the fields at depth 1.
        k += 1;
        let mut field_attrs_satisfied = false;
        let mut depth = 1usize;
        while k < toks.len() && depth > 0 {
            let tok = &toks[k];
            if tok.is_punct("{") {
                depth += 1;
                k += 1;
                continue;
            }
            if tok.is_punct("}") {
                depth -= 1;
                k += 1;
                continue;
            }
            if depth != 1 {
                k += 1;
                continue;
            }
            // Attribute on the upcoming field?
            if tok.is_punct("#") && toks.get(k + 1).is_some_and(|t| t.is_punct("[")) {
                let mut a = k + 2;
                let mut adepth = 1usize;
                let mut attr_toks: Vec<&Tok> = Vec::new();
                while a < toks.len() && adepth > 0 {
                    if toks[a].is_punct("[") {
                        adepth += 1;
                    } else if toks[a].is_punct("]") {
                        adepth -= 1;
                    }
                    if adepth > 0 {
                        attr_toks.push(&toks[a]);
                    }
                    a += 1;
                }
                let is_serde = attr_toks.iter().any(|t| t.is_ident("serde"));
                let has_default = attr_toks
                    .iter()
                    .any(|t| t.is_ident("default") || t.is_ident("skip"));
                if is_serde && has_default {
                    field_attrs_satisfied = true;
                }
                k = a;
                continue;
            }
            // A field: [pub [(…)]] name ':' type … ','
            if tok.kind == TokKind::Ident && toks.get(k + 1).is_some_and(|t| t.is_punct(":")) {
                if !field_attrs_satisfied {
                    hits.push((
                        tok.line,
                        format!(
                            "field `{}` of checkpointed struct `{struct_name}` \
                             lacks `#[serde(default)]`; old checkpoints will \
                             fail to deserialize once this field ships",
                            tok.text
                        ),
                    ));
                }
                field_attrs_satisfied = false;
                // Consume the type up to the field-separating comma,
                // tracking nesting so `Vec<(A, B)>` commas don't end the
                // field early.
                k += 2;
                let mut angle = 0i64;
                let mut paren = 0i64;
                let mut bracket = 0i64;
                while k < toks.len() {
                    let t = &toks[k];
                    if t.kind == TokKind::Punct {
                        match t.text.as_str() {
                            "<" => angle += 1,
                            ">" => angle -= 1,
                            ">>" => angle -= 2,
                            "(" => paren += 1,
                            ")" => paren -= 1,
                            "[" => bracket += 1,
                            "]" => bracket -= 1,
                            "," if angle <= 0 && paren == 0 && bracket == 0 => {
                                k += 1;
                                break;
                            }
                            "}" if paren == 0 && bracket == 0 => break,
                            _ => {}
                        }
                    }
                    k += 1;
                }
                continue;
            }
            k += 1;
        }
        i = k;
    }
    hits
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(source: &str, rule: Rule) -> Vec<Violation> {
        lint_source("test.rs", source, &[rule])
    }

    #[test]
    fn no_panic_flags_all_three_forms() {
        let v = lint(
            r#"
            fn f(x: Option<u32>) -> u32 {
                let a = x.unwrap();
                let b = x.expect("present");
                if a + b == 0 { panic!("zero"); }
                a
            }
            "#,
            Rule::NoPanic,
        );
        assert_eq!(v.len(), 3, "{v:?}");
    }

    #[test]
    fn no_panic_ignores_tests_comments_and_similar_names() {
        let v = lint(
            r#"
            // a comment may say unwrap() freely
            fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) }
            fn g(x: Option<u32>) -> u32 { x.unwrap_or_default() }
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { Some(1).unwrap(); panic!("fine"); }
            }
            "#,
            Rule::NoPanic,
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn float_cmp_flags_literals_and_scores() {
        let v = lint(
            r#"
            fn f(q: f64, score: f64, other_score: f64) -> bool {
                let a = q == 1.0;
                let b = score != other_score;
                a && b
            }
            "#,
            Rule::FloatCmp,
        );
        assert_eq!(v.len(), 2, "{v:?}");
    }

    #[test]
    fn float_cmp_permits_integer_and_bound_comparisons() {
        let v = lint(
            r#"
            fn f(n: usize, a: &Interval, b: &Interval) -> bool {
                n == 3 && a.upper() == b.lower()
            }
            "#,
            Rule::FloatCmp,
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn unbounded_channel_flags_constructors() {
        let v = lint(
            r#"
            fn f() {
                let (a, _) = channel::unbounded::<u32>();
                let (b, _) = tokio::sync::mpsc::unbounded_channel::<u32>();
                let (c, _) = std::sync::mpsc::channel::<u32>();
            }
            "#,
            Rule::UnboundedChannel,
        );
        assert_eq!(v.len(), 3, "{v:?}");
    }

    #[test]
    fn bounded_channels_pass() {
        let v = lint(
            r#"
            fn f() {
                let (a, _) = channel::bounded::<u32>(64);
                let (b, _) = std::sync::mpsc::sync_channel::<u32>(64);
            }
            "#,
            Rule::UnboundedChannel,
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn serde_default_flags_missing_attribute() {
        let v = lint(
            r#"
            #[derive(Serialize, Deserialize)]
            pub struct CheckpointManifest {
                pub version: u32,
                #[serde(default)]
                pub sources: BTreeMap<String, u64>,
            }
            "#,
            Rule::SerdeDefault,
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("version"));
    }

    #[test]
    fn serde_default_accepts_skip_and_ignores_other_structs() {
        let v = lint(
            r#"
            #[derive(Serialize, Deserialize)]
            pub struct TransitionMatrix {
                #[serde(default)]
                counts: BTreeMap<usize, u64>,
                #[serde(skip)]
                row_cache: HashMap<usize, Vec<f64>>,
            }
            pub struct Unrelated {
                pub anything: u32,
            }
            "#,
            Rule::SerdeDefault,
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn serde_default_handles_nested_generic_types() {
        let v = lint(
            r#"
            pub struct EngineSnapshot {
                pub models: Vec<(MeasurementPair, TransitionModel)>,
                #[serde(default)]
                pub tracker: AlarmTracker,
            }
            "#,
            Rule::SerdeDefault,
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("models"));
    }

    #[test]
    fn excerpt_is_the_trimmed_offending_line() {
        let v = lint(
            "fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n",
            Rule::NoPanic,
        );
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].excerpt, "x.unwrap()");
        assert_eq!(v[0].line, 2);
    }
}
