//! gridwatch-audit: in-repo static analysis for the gridwatch workspace.
//!
//! Three pieces, all exercised by the `gridwatch-audit` binary and the
//! top-level `gridwatch audit` subcommand:
//!
//! * a **lint pass** ([`lints`]) over workspace sources using a
//!   self-contained lexer ([`lexer`]) — no rustc or syn dependency, so
//!   it runs anywhere the repo checks out;
//! * an **allowlist** ledger ([`allowlist`]) that makes existing
//!   violations visible and burn-downable while failing CI on new ones;
//! * an offline **checkpoint validator** ([`checkpoint`]) that checks a
//!   checkpoint directory's semantic invariants more deeply than
//!   `--resume` itself does;
//! * a cross-file **concurrency pass** ([`concurrency`]) that builds a
//!   global lock-order graph and reports deadlock cycles, blocking
//!   calls under held guards, and loopless condvar waits
//!   (`gridwatch audit --concurrency`).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod allowlist;
pub mod checkpoint;
pub mod concurrency;
pub mod lexer;
pub mod lints;

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use lints::{Rule, Violation};

/// Crates whose library sources are linted for panics, float
/// comparisons, and unbounded channels: the serving path, where a panic
/// kills client streams and an unbounded queue defeats backpressure.
pub const RUNTIME_LINT_CRATES: &[&str] = &[
    "serve",
    "grid",
    "detect",
    "timeseries",
    "obs",
    "store",
    "sync",
];

/// Crates additionally scanned for the `serde-default` rule — anywhere
/// a checkpointed struct is defined.
pub const SERDE_LINT_CRATES: &[&str] = &[
    "serve",
    "grid",
    "detect",
    "timeseries",
    "core",
    "obs",
    "store",
    "sync",
];

/// Finds the workspace root by walking up from `start` looking for a
/// `Cargo.toml` containing `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = if start.is_dir() {
        start.to_path_buf()
    } else {
        start.parent()?.to_path_buf()
    };
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Recursively collects `.rs` files under `dir`, sorted for stable
/// output; `tests/`, `benches/`, and `examples/` directories are skipped
/// (the lints target library code reachable in production).
fn rust_sources(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(std::fs::DirEntry::file_name);
    for entry in entries {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if matches!(name.as_ref(), "tests" | "benches" | "examples" | "target") {
                continue;
            }
            rust_sources(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// The repo-relative, forward-slash form of `path` under `root` (used in
/// reports and allowlist entries so they are stable across machines).
fn relative_name(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.to_string_lossy().replace('\\', "/")
}

/// Lints the gridwatch workspace rooted at `root`. Returns violations
/// sorted by file and line.
pub fn scan_workspace(root: &Path) -> io::Result<Vec<Violation>> {
    let mut violations = Vec::new();
    for krate in SERDE_LINT_CRATES {
        let src = root.join("crates").join(krate).join("src");
        if !src.is_dir() {
            continue;
        }
        let runtime_rules = RUNTIME_LINT_CRATES.contains(krate);
        let rules: &[Rule] = if runtime_rules {
            Rule::ALL
        } else {
            &[Rule::SerdeDefault]
        };
        let mut files = Vec::new();
        rust_sources(&src, &mut files)?;
        for path in files {
            let source = fs::read_to_string(&path)?;
            let name = relative_name(root, &path);
            violations.extend(lints::lint_source(&name, &source, rules));
        }
    }
    violations.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(violations)
}

/// Lints every `.rs` file under `dir` with **all** rules — fixture mode,
/// used by the self-tests and CI to prove the rules fire.
pub fn scan_paths(dir: &Path) -> io::Result<Vec<Violation>> {
    let mut files = Vec::new();
    if dir.is_dir() {
        rust_sources(dir, &mut files)?;
    } else {
        files.push(dir.to_path_buf());
    }
    let mut violations = Vec::new();
    for path in files {
        let source = fs::read_to_string(&path)?;
        let name = relative_name(dir, &path);
        violations.extend(lints::lint_source(&name, &source, Rule::ALL));
    }
    violations.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(violations)
}

/// Renders one violation as a `file:line: [rule] message: excerpt` line.
pub fn render_violation(v: &Violation) -> String {
    format!(
        "{}:{}: [{}] {}\n    {}",
        v.file,
        v.line,
        v.rule.name(),
        v.message,
        v.excerpt
    )
}

/// Renders the allowlist burn-down trend line CI prints on every run.
///
/// `serde-default` entries are reported separately: they freeze the
/// *existing* checkpoint schema (so only newly added fields without
/// `#[serde(default)]` fail the audit) and are not technical debt to
/// burn down, unlike the panic/float/channel sites.
pub fn render_trend(entries: &[allowlist::Entry]) -> String {
    let (schema, debt): (Vec<_>, Vec<_>) = entries
        .iter()
        // Concurrency entries have their own trend line
        // ([`render_concurrency_trend`]); keep them out of this one.
        .filter(|e| !e.rule.is_concurrency())
        .partition(|e| e.rule == Rule::SerdeDefault);
    let sites: usize = debt.iter().map(|e| e.count).sum();
    let mut files: Vec<&str> = debt.iter().map(|e| e.file.as_str()).collect();
    files.sort_unstable();
    files.dedup();
    let frozen_fields: usize = schema.iter().map(|e| e.count).sum();
    let mut line = String::new();
    let _ = write!(
        line,
        "allowlist burn-down: {sites} allowlisted sites across {} files (goal: 0); \
         checkpoint schema baseline: {frozen_fields} frozen fields",
        files.len()
    );
    line
}

/// Renders the concurrency trend line CI prints alongside the lint
/// trend: graph size plus how many concurrency findings are currently
/// justified in the ledger.
pub fn render_concurrency_trend(
    report: &concurrency::ConcurrencyReport,
    entries: &[allowlist::Entry],
) -> String {
    let allowlisted: usize = entries
        .iter()
        .filter(|e| e.rule.is_concurrency())
        .map(|e| e.count)
        .sum();
    format!(
        "concurrency: {} lock acquisition sites across {} classes, {} order edges; \
         {allowlisted} allowlisted concurrency site(s) (goal: 0)",
        report.lock_sites, report.classes, report.edges
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_root_found_from_nested_dir() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("workspace root");
        assert!(root.join("Cargo.toml").is_file());
        assert!(root.join("crates/serve/src/net.rs").is_file());
    }

    #[test]
    fn scan_workspace_runs_clean_rule_set() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("workspace root");
        let violations = scan_workspace(&root).expect("scan");
        // The workspace may carry allowlisted sites, but scanning itself
        // must succeed and produce stable, sorted output.
        for pair in violations.windows(2) {
            assert!((&pair[0].file, pair[0].line) <= (&pair[1].file, pair[1].line));
        }
    }

    #[test]
    fn trend_line_counts_sites_and_files() {
        let entries = allowlist::parse(
            "no-panic\ta.rs\t3\tx.unwrap()\nno-panic\tb.rs\t1\ty.unwrap()\nfloat-cmp\ta.rs\t1\tq == 1.0\n",
        )
        .unwrap();
        assert_eq!(
            render_trend(&entries),
            "allowlist burn-down: 5 allowlisted sites across 2 files (goal: 0); \
             checkpoint schema baseline: 0 frozen fields"
        );
    }
}
