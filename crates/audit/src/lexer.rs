//! A minimal self-contained Rust lexer, sufficient for the project
//! lints.
//!
//! The workspace builds offline (no registry access), so vendoring
//! `proc-macro2`/`syn` is off the table; the lints only need a token
//! stream that is faithful about the things that trip naive `grep`-style
//! checks:
//!
//! * comments (line, doc, and nested block comments) produce no tokens —
//!   a `panic!` in a doc example is not a violation;
//! * string, raw-string, byte-string, and char literals are single
//!   tokens — `"unwrap()"` inside a message string is not a call;
//! * lifetimes are distinguished from char literals;
//! * multi-character operators (`==`, `!=`, `::`, …) are single tokens,
//!   so `!=` is never misread as `!` plus `=`;
//! * float literals are distinguished from integers, field access, and
//!   ranges (`1.0` vs `x.0` vs `0..1`).
//!
//! [`strip_test_code`] then removes `#[cfg(test)]` / `#[test]` items so
//! the lints only see non-test library code.

/// The kind of one token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword.
    Ident,
    /// A lifetime (`'a`), including the quote.
    Lifetime,
    /// An integer literal.
    Int,
    /// A floating-point literal.
    Float,
    /// A string, raw string, byte string, or char literal.
    Literal,
    /// An operator or delimiter, possibly multi-character.
    Punct,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone, PartialEq)]
pub struct Tok {
    /// What kind of token this is.
    pub kind: TokKind,
    /// The token's text, verbatim (literals are truncated to their
    /// opening delimiter — the lints never look inside them).
    pub text: String,
    /// 1-based line number where the token starts.
    pub line: u32,
}

impl Tok {
    fn new(kind: TokKind, text: impl Into<String>, line: u32) -> Self {
        Tok {
            kind,
            text: text.into(),
            line,
        }
    }

    /// Whether this is a punct token with exactly this text.
    pub fn is_punct(&self, text: &str) -> bool {
        self.kind == TokKind::Punct && self.text == text
    }

    /// Whether this is an identifier with exactly this text.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokKind::Ident && self.text == text
    }
}

/// Multi-character operators, longest first so maximal munch works.
const MULTI_PUNCT: &[&str] = &[
    "<<=", ">>=", "..=", "...", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "+=", "-=",
    "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>", "..",
];

/// Lexes `source` into tokens, discarding comments and whitespace.
///
/// The lexer is total: any byte sequence produces *some* token stream
/// (unterminated literals run to end of input). That keeps the lint pass
/// robust on fixture files and mid-edit source.
pub fn lex(source: &str) -> Vec<Tok> {
    let chars: Vec<char> = source.chars().collect();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    let n = chars.len();

    // Advances past `count` chars, bumping the line counter on newlines.
    macro_rules! advance {
        ($i:expr, $count:expr) => {{
            for k in 0..$count {
                if chars.get($i + k) == Some(&'\n') {
                    line += 1;
                }
            }
            $i += $count;
        }};
    }

    while i < n {
        let c = chars[i];

        if c.is_whitespace() {
            advance!(i, 1);
            continue;
        }

        // Line comments (incl. doc comments).
        if c == '/' && chars.get(i + 1) == Some(&'/') {
            while i < n && chars[i] != '\n' {
                i += 1;
            }
            continue;
        }

        // Block comments, nested.
        if c == '/' && chars.get(i + 1) == Some(&'*') {
            let mut depth = 1usize;
            advance!(i, 2);
            while i < n && depth > 0 {
                if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    depth += 1;
                    advance!(i, 2);
                } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    advance!(i, 2);
                } else {
                    advance!(i, 1);
                }
            }
            continue;
        }

        // Identifiers, keywords, and prefixed literals (r"", b"", br#""#).
        if c.is_alphabetic() || c == '_' {
            let start = i;
            while i < n && (chars[i].is_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            let word: String = chars[start..i].iter().collect();
            // Raw/byte string prefixes: the ident runs straight into a
            // quote or `#"` run.
            let is_literal_prefix = matches!(word.as_str(), "r" | "b" | "br" | "rb" | "c" | "cr");
            if is_literal_prefix && matches!(chars.get(i), Some('"') | Some('#')) {
                let tok_line = line;
                if word.contains('r') {
                    // Raw form (no escapes): count hashes, then scan for
                    // `"` followed by the same number of hashes.
                    let mut hashes = 0usize;
                    while chars.get(i) == Some(&'#') {
                        hashes += 1;
                        i += 1;
                    }
                    if chars.get(i) == Some(&'"') {
                        advance!(i, 1);
                        'raw: while i < n {
                            if chars[i] == '"' {
                                let mut ok = true;
                                for k in 0..hashes {
                                    if chars.get(i + 1 + k) != Some(&'#') {
                                        ok = false;
                                        break;
                                    }
                                }
                                if ok {
                                    advance!(i, 1 + hashes);
                                    break 'raw;
                                }
                            }
                            advance!(i, 1);
                        }
                    }
                    toks.push(Tok::new(TokKind::Literal, format!("{word}\"…\""), tok_line));
                    continue;
                }
                // Non-raw byte string: ordinary escape rules.
                advance!(i, 1); // opening quote
                while i < n {
                    if chars[i] == '\\' {
                        advance!(i, 2);
                    } else if chars[i] == '"' {
                        advance!(i, 1);
                        break;
                    } else {
                        advance!(i, 1);
                    }
                }
                toks.push(Tok::new(TokKind::Literal, format!("{word}\"…\""), tok_line));
                continue;
            }
            toks.push(Tok::new(TokKind::Ident, word, line));
            continue;
        }

        // String literals.
        if c == '"' {
            let tok_line = line;
            advance!(i, 1);
            while i < n {
                if chars[i] == '\\' {
                    advance!(i, 2);
                } else if chars[i] == '"' {
                    advance!(i, 1);
                    break;
                } else {
                    advance!(i, 1);
                }
            }
            toks.push(Tok::new(TokKind::Literal, "\"…\"", tok_line));
            continue;
        }

        // Lifetime or char literal.
        if c == '\'' {
            let next = chars.get(i + 1).copied();
            let after = chars.get(i + 2).copied();
            let is_lifetime =
                matches!(next, Some(ch) if ch.is_alphabetic() || ch == '_') && after != Some('\'');
            if is_lifetime {
                let start = i;
                i += 1;
                while i < n && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                toks.push(Tok::new(TokKind::Lifetime, text, line));
                continue;
            }
            // Char literal: consume to the closing quote.
            let tok_line = line;
            advance!(i, 1);
            if chars.get(i) == Some(&'\\') {
                advance!(i, 2);
            } else if i < n {
                advance!(i, 1);
            }
            // Unicode escapes (`'\u{1F600}'`) leave residue before the
            // closing quote; scan to it defensively.
            while i < n && chars[i] != '\'' {
                advance!(i, 1);
            }
            if i < n {
                advance!(i, 1);
            }
            toks.push(Tok::new(TokKind::Literal, "'…'", tok_line));
            continue;
        }

        // Numbers.
        if c.is_ascii_digit() {
            let start = i;
            let tok_line = line;
            let mut is_float = false;
            if c == '0' && matches!(chars.get(i + 1), Some('x') | Some('o') | Some('b')) {
                i += 2;
                while i < n && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
            } else {
                while i < n && (chars[i].is_ascii_digit() || chars[i] == '_') {
                    i += 1;
                }
                // A fractional part only if `.` is followed by a digit —
                // `0..1` is a range and `1.max(2)` a method call.
                if chars.get(i) == Some(&'.')
                    && matches!(chars.get(i + 1), Some(d) if d.is_ascii_digit())
                {
                    is_float = true;
                    i += 1;
                    while i < n && (chars[i].is_ascii_digit() || chars[i] == '_') {
                        i += 1;
                    }
                }
                // Exponent.
                if matches!(chars.get(i), Some('e') | Some('E')) {
                    let mut k = i + 1;
                    if matches!(chars.get(k), Some('+') | Some('-')) {
                        k += 1;
                    }
                    if matches!(chars.get(k), Some(d) if d.is_ascii_digit()) {
                        is_float = true;
                        i = k;
                        while i < n && (chars[i].is_ascii_digit() || chars[i] == '_') {
                            i += 1;
                        }
                    }
                }
                // Type suffix (`1.0f64`, `1u32`).
                if matches!(chars.get(i), Some(ch) if ch.is_ascii_alphabetic()) {
                    let suffix_start = i;
                    while i < n && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                        i += 1;
                    }
                    let suffix: String = chars[suffix_start..i].iter().collect();
                    if suffix.starts_with('f') {
                        is_float = true;
                    }
                }
            }
            let text: String = chars[start..i].iter().collect();
            let kind = if is_float {
                TokKind::Float
            } else {
                TokKind::Int
            };
            toks.push(Tok::new(kind, text, tok_line));
            continue;
        }

        // Multi-character operators, longest first.
        let mut matched = false;
        for op in MULTI_PUNCT {
            let len = op.len();
            if i + len <= n && chars[i..i + len].iter().collect::<String>() == **op {
                toks.push(Tok::new(TokKind::Punct, *op, line));
                i += len;
                matched = true;
                break;
            }
        }
        if matched {
            continue;
        }

        toks.push(Tok::new(TokKind::Punct, c.to_string(), line));
        advance!(i, 1);
    }
    toks
}

/// Removes test-only items from a token stream: any item annotated
/// `#[cfg(test)]` or `#[test]` (including whole `mod tests { … }`
/// blocks) disappears, so the lints only judge non-test library code.
///
/// Attributes mentioning `test` under a `not(…)` (e.g.
/// `#[cfg(not(test))]`) are kept — that code *is* the production build.
pub fn strip_test_code(toks: &[Tok]) -> Vec<Tok> {
    let mut out = Vec::with_capacity(toks.len());
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].is_punct("#") && toks.get(i + 1).is_some_and(|t| t.is_punct("[")) {
            // Collect the attribute's tokens, bracket-balanced.
            let attr_start = i;
            let mut k = i + 2;
            let mut depth = 1usize;
            while k < toks.len() && depth > 0 {
                if toks[k].is_punct("[") {
                    depth += 1;
                } else if toks[k].is_punct("]") {
                    depth -= 1;
                }
                k += 1;
            }
            let attr = &toks[attr_start + 2..k.saturating_sub(1)];
            let mentions_test = attr.iter().any(|t| t.is_ident("test"));
            let negated = attr.iter().any(|t| t.is_ident("not"));
            if mentions_test && !negated {
                // Skip this attribute, any further attributes, and the
                // item they annotate.
                i = k;
                while i < toks.len()
                    && toks[i].is_punct("#")
                    && toks.get(i + 1).is_some_and(|t| t.is_punct("["))
                {
                    let mut depth = 1usize;
                    i += 2;
                    while i < toks.len() && depth > 0 {
                        if toks[i].is_punct("[") {
                            depth += 1;
                        } else if toks[i].is_punct("]") {
                            depth -= 1;
                        }
                        i += 1;
                    }
                }
                i = skip_item(toks, i);
                continue;
            }
            // A non-test attribute: keep it verbatim.
            out.extend_from_slice(&toks[attr_start..k]);
            i = k;
            continue;
        }
        out.push(toks[i].clone());
        i += 1;
    }
    out
}

/// Skips one item starting at `i`: to the matching `}` of its first
/// brace block, or through a terminating `;` for brace-less items
/// (`use`, type aliases, extern fns).
fn skip_item(toks: &[Tok], mut i: usize) -> usize {
    while i < toks.len() {
        if toks[i].is_punct(";") {
            return i + 1;
        }
        if toks[i].is_punct("{") {
            let mut depth = 1usize;
            i += 1;
            while i < toks.len() && depth > 0 {
                if toks[i].is_punct("{") {
                    depth += 1;
                } else if toks[i].is_punct("}") {
                    depth -= 1;
                }
                i += 1;
            }
            return i;
        }
        i += 1;
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(toks: &[Tok]) -> Vec<&str> {
        toks.iter().map(|t| t.text.as_str()).collect()
    }

    #[test]
    fn comments_and_strings_produce_no_calls() {
        let toks = lex(r#"
            // a comment mentioning unwrap()
            /* block /* nested */ still comment panic! */
            let msg = "do not unwrap() this";
        "#);
        assert!(!toks.iter().any(|t| t.is_ident("unwrap")));
        assert!(!toks.iter().any(|t| t.is_ident("panic")));
        assert!(toks.iter().any(|t| t.is_ident("msg")));
    }

    #[test]
    fn multi_char_operators_are_single_tokens() {
        let toks = lex("a == b != c <= d => e :: f");
        let puncts: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Punct)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(puncts, vec!["==", "!=", "<=", "=>", "::"]);
    }

    #[test]
    fn floats_vs_ints_vs_ranges() {
        let toks = lex("1.0 2 0..3 x.0 4e-2 5f64 6u32");
        let kinds: Vec<TokKind> = toks
            .iter()
            .filter(|t| matches!(t.kind, TokKind::Float | TokKind::Int))
            .map(|t| t.kind)
            .collect();
        assert_eq!(
            kinds,
            vec![
                TokKind::Float, // 1.0
                TokKind::Int,   // 2
                TokKind::Int,   // 0
                TokKind::Int,   // 3
                TokKind::Int,   // 0 (tuple access)
                TokKind::Float, // 4e-2
                TokKind::Float, // 5f64
                TokKind::Int,   // 6u32
            ]
        );
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) { let c = 'x'; }");
        assert!(toks.iter().any(|t| t.kind == TokKind::Lifetime));
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokKind::Literal).count(),
            1
        );
    }

    #[test]
    fn raw_strings_swallow_their_content() {
        let toks = lex(r##"let s = r#"panic! inside "quotes" here"#; let t = 1;"##);
        assert!(!toks.iter().any(|t| t.is_ident("panic")));
        assert!(toks.iter().any(|t| t.is_ident("t")));
    }

    #[test]
    fn cfg_test_modules_are_stripped() {
        let toks = lex(r#"
            pub fn lib_code() { helper(); }
            #[cfg(test)]
            mod tests {
                #[test]
                fn boom() { panic!("fine in tests"); }
            }
            pub fn more_lib() {}
        "#);
        let stripped = strip_test_code(&toks);
        assert!(!stripped.iter().any(|t| t.is_ident("panic")));
        assert!(stripped.iter().any(|t| t.is_ident("lib_code")));
        assert!(stripped.iter().any(|t| t.is_ident("more_lib")));
    }

    #[test]
    fn cfg_not_test_is_kept() {
        let toks = lex(r#"
            #[cfg(not(test))]
            fn production_only() { work(); }
        "#);
        let stripped = strip_test_code(&toks);
        assert!(stripped.iter().any(|t| t.is_ident("production_only")));
    }

    #[test]
    fn test_fn_with_extra_attributes_is_stripped() {
        let toks = lex(r#"
            #[test]
            #[should_panic(expected = "boom")]
            fn explodes() { body(); }
            fn kept() {}
        "#);
        let stripped = strip_test_code(&toks);
        assert!(!stripped.iter().any(|t| t.is_ident("explodes")));
        assert!(stripped.iter().any(|t| t.is_ident("kept")));
    }

    #[test]
    fn lexer_is_total_on_garbage() {
        let _ = lex("\"unterminated");
        let _ = lex("r#\"unterminated raw");
        let _ = lex("'");
        let _ = lex("/* unterminated block");
        let _ = lex("\u{0}\u{1}\u{7f}");
    }

    #[test]
    fn line_numbers_survive_multiline_tokens() {
        let toks = lex("let a = \"two\nlines\";\nlet b = 1;");
        let b = toks.iter().find(|t| t.is_ident("b")).unwrap();
        assert_eq!(b.line, 3);
        assert_eq!(texts(&toks[..2]), vec!["let", "a"]);
    }
}
