//! The cross-file concurrency analysis pass (`gridwatch audit
//! --concurrency`).
//!
//! Built on the same self-contained lexer as the per-file lints, this
//! pass walks every function in the concurrency-scanned crates and:
//!
//! 1. extracts **nested lock-acquisition chains** — which lock classes
//!    a function acquires while already holding others — and merges
//!    them into a global [`LockGraph`] keyed by lock identity (the
//!    receiver's field path plus the declared inner type, e.g.
//!    `stats<FabricStats>`);
//! 2. reports every edge that participates in a **cycle** of that graph
//!    as a potential deadlock ([`Rule::LockCycle`]);
//! 3. flags **blocking operations under a held guard** — channel
//!    `send`/`recv`, socket reads/writes, `join()`, `sync_all`/
//!    `sync_data`, sleeps, and the project's frame I/O helpers
//!    ([`Rule::BlockingUnderLock`]);
//! 4. flags **`Condvar` waits outside a predicate loop**
//!    ([`Rule::CondvarNoLoop`]).
//!
//! Being lexical, the pass is deliberately conservative in both
//! directions (see DESIGN.md §13 for the caveat list):
//!
//! * guard lifetimes are inferred syntactically: a `let`-bound guard is
//!   held until its enclosing block closes or an explicit `drop(g)`;
//!   any other acquisition is a temporary released at the end of its
//!   statement;
//! * calls are not followed across functions, so a lock taken inside a
//!   callee is invisible at the call site (the runtime lockdep in
//!   `gridwatch-sync` covers exactly that gap);
//! * a `match` scrutinee guard (`match m.lock() { … }`) is treated as a
//!   temporary even though the guard lives for the whole match.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fs;
use std::io;
use std::path::Path;

use crate::lexer::{lex, strip_test_code, Tok, TokKind};
use crate::lints::{Rule, Violation};

/// Crates scanned by the concurrency pass: everything that owns a lock
/// or runs on the serving path.
pub const CONCURRENCY_LINT_CRATES: &[&str] = &["serve", "obs", "detect", "store", "sync"];

/// Method names that block: channels, sockets, files, threads,
/// condvars. Checked when invoked as `.name(…)` or `Path::name(…)`.
const BLOCKING_METHODS: &[&str] = &[
    "send",
    "recv",
    "recv_timeout",
    "sync_all",
    "sync_data",
    "flush",
    "wait",
    "wait_timeout",
    "write_all",
    "read_exact",
    "read_to_end",
    "accept",
    "connect",
    "join",
];

/// Blocking methods that only count with an *empty* argument list —
/// their arg-taking namesakes (`Path::join`, `str::join`) don't block.
const EMPTY_ARGS_ONLY: &[&str] = &["join"];

/// Free functions and project helpers that block in any call form.
const BLOCKING_FREE_FNS: &[&str] = &["sleep", "write_frame", "read_frame"];

/// Identifiers that declare a mutex-flavored lock type.
const MUTEX_TYPES: &[&str] = &["Mutex", "OrderedMutex"];
/// Identifiers that declare an rwlock-flavored lock type.
const RWLOCK_TYPES: &[&str] = &["RwLock", "OrderedRwLock"];

/// One recorded acquisition site for a lock-order edge.
#[derive(Debug, Clone, Default)]
pub struct EdgeSite {
    /// Repo-relative path of the acquiring file.
    pub file: String,
    /// 1-based line of the inner (second) acquisition.
    pub line: u32,
    /// Trimmed source line at `line` (the allowlist fingerprint).
    pub excerpt: String,
    /// 1-based line where the already-held guard was acquired.
    pub held_line: u32,
}

/// The global lock-order graph: a directed edge `A → B` means some
/// function acquired lock class `B` while holding `A`.
#[derive(Debug, Default)]
pub struct LockGraph {
    edges: BTreeMap<(String, String), Vec<EdgeSite>>,
    classes: BTreeSet<String>,
}

impl LockGraph {
    /// An empty graph.
    pub fn new() -> LockGraph {
        LockGraph::default()
    }

    /// Registers a lock class (a graph node), with or without edges.
    pub fn add_class(&mut self, class: &str) {
        self.classes.insert(class.to_string());
    }

    /// Records that `to` was acquired while `from` was held, at `site`.
    pub fn add_edge(&mut self, from: &str, to: &str, site: EdgeSite) {
        self.add_class(from);
        self.add_class(to);
        self.edges
            .entry((from.to_string(), to.to_string()))
            .or_default()
            .push(site);
    }

    /// Number of distinct lock classes seen.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// Number of distinct order edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Whether `to` is reachable from `from` along edges (true when
    /// `from == to`).
    fn reaches(&self, from: &str, to: &str) -> bool {
        if from == to {
            return true;
        }
        let mut seen = BTreeSet::new();
        let mut queue = VecDeque::from([from]);
        while let Some(node) = queue.pop_front() {
            for (u, v) in self.edges.keys() {
                if u == node && seen.insert(v.as_str()) {
                    if v == to {
                        return true;
                    }
                    queue.push_back(v);
                }
            }
        }
        false
    }

    /// Shortest edge path `from → … → to` (BFS), as the visited class
    /// sequence including both endpoints. `None` when unreachable.
    fn path(&self, from: &str, to: &str) -> Option<Vec<String>> {
        if from == to {
            return Some(vec![from.to_string()]);
        }
        let mut parent: BTreeMap<&str, &str> = BTreeMap::new();
        let mut queue = VecDeque::from([from]);
        while let Some(node) = queue.pop_front() {
            for (u, v) in self.edges.keys() {
                if u == node && v != from && !parent.contains_key(v.as_str()) {
                    parent.insert(v, node);
                    if v == to {
                        let mut path = vec![v.as_str()];
                        let mut cur = v.as_str();
                        while let Some(&p) = parent.get(cur) {
                            path.push(p);
                            cur = p;
                        }
                        path.reverse();
                        return Some(path.into_iter().map(str::to_string).collect());
                    }
                    queue.push_back(v);
                }
            }
        }
        None
    }

    /// Edges that sit on a directed cycle: `(from, to)` where `from` is
    /// reachable back from `to` (self-edges included), with their sites.
    pub fn cyclic_edges(&self) -> Vec<(&str, &str, &[EdgeSite])> {
        self.edges
            .iter()
            .filter(|((from, to), _)| self.reaches(to, from))
            .map(|((from, to), sites)| (from.as_str(), to.as_str(), sites.as_slice()))
            .collect()
    }

    /// Renders each cyclic edge as a [`Rule::LockCycle`] violation at
    /// its acquisition site(s), naming the conflicting return path.
    pub fn cycle_violations(&self) -> Vec<Violation> {
        let mut out = Vec::new();
        for (from, to, sites) in self.cyclic_edges() {
            let message = if from == to {
                format!(
                    "nested acquisition of lock class `{from}`: taking a second \
                     lock of the same class while one is held can self-deadlock"
                )
            } else {
                let back = self
                    .path(to, from)
                    .map(|p| p.join(" → "))
                    .unwrap_or_else(|| format!("{to} → {from}"));
                format!(
                    "acquiring `{to}` while holding `{from}` closes a lock-order \
                     cycle (reverse path {back} also occurs); one side must \
                     release first or the order must be made consistent"
                )
            };
            for site in sites {
                out.push(Violation {
                    rule: Rule::LockCycle,
                    file: site.file.clone(),
                    line: site.line,
                    excerpt: site.excerpt.clone(),
                    message: message.clone(),
                });
            }
        }
        out
    }
}

/// What the concurrency pass found, plus the graph-size numbers the CI
/// trend line reports.
#[derive(Debug)]
pub struct ConcurrencyReport {
    /// All violations (cycles, blocking-under-lock, condvar), sorted.
    pub violations: Vec<Violation>,
    /// Total lock acquisition sites seen.
    pub lock_sites: usize,
    /// Distinct lock classes (graph nodes).
    pub classes: usize,
    /// Distinct lock-order edges.
    pub edges: usize,
}

/// Per-file lock declarations: receiver name → class identity.
#[derive(Debug, Default)]
struct FileDecls {
    /// Any lock-typed declaration: field, let ascription, fn param,
    /// or static. Name → `name<InnerType>` class string.
    locks: BTreeMap<String, String>,
    /// Names declared with an rwlock type (whose bare `.read()` /
    /// `.write()` calls are lock acquisitions, not socket I/O).
    rwlocks: BTreeSet<String>,
    /// Names declared as `Condvar`.
    condvars: BTreeSet<String>,
}

/// Collects `name: … Mutex<Inner> …` style declarations from a token
/// stream. Walks back from each lock-type identifier through type-ish
/// tokens to the `:` that names the declaration.
fn collect_decls(toks: &[Tok]) -> FileDecls {
    let mut decls = FileDecls::default();
    for (k, tok) in toks.iter().enumerate() {
        if tok.kind != TokKind::Ident {
            continue;
        }
        let is_mutex = MUTEX_TYPES.contains(&tok.text.as_str());
        let is_rwlock = RWLOCK_TYPES.contains(&tok.text.as_str());
        let is_condvar = tok.text == "Condvar";
        if !is_mutex && !is_rwlock && !is_condvar {
            continue;
        }
        // A lock *type* is followed by `<`; `Mutex::new` and friends are
        // expressions, not declarations. Condvar has no type parameter.
        if (is_mutex || is_rwlock) && !toks.get(k + 1).is_some_and(|t| t.is_punct("<")) {
            continue;
        }
        if is_condvar && toks.get(k + 1).is_some_and(|t| t.is_punct("::")) {
            continue;
        }
        // Walk back through wrapper-type tokens (`Arc<`, `Vec<`, `&`,
        // paths) to the `:` of the declaration.
        let Some(name) = declared_name(toks, k) else {
            continue;
        };
        if is_condvar {
            decls.condvars.insert(name);
            continue;
        }
        let inner = inner_type(toks, k + 1);
        let class = match inner {
            Some(t) => format!("{name}<{t}>"),
            None => name.clone(),
        };
        if is_rwlock {
            decls.rwlocks.insert(name.clone());
        }
        decls.locks.insert(name, class);
    }
    decls
}

/// From the index of a lock-type identifier, walks left through
/// type-position tokens until the declaration's `:` and returns the
/// declared name before it.
fn declared_name(toks: &[Tok], type_ident: usize) -> Option<String> {
    let mut j = type_ident.checked_sub(1)?;
    loop {
        let t = &toks[j];
        let type_ish = t.kind == TokKind::Ident
            || t.kind == TokKind::Lifetime
            || t.is_punct("<")
            || t.is_punct("::")
            || t.is_punct("&")
            || t.is_punct("'");
        if t.is_punct(":") {
            let name_tok = toks.get(j.checked_sub(1)?)?;
            if name_tok.kind == TokKind::Ident {
                return Some(name_tok.text.clone());
            }
            return None;
        }
        if !type_ish {
            return None;
        }
        j = j.checked_sub(1)?;
    }
}

/// The first identifier inside the `<…>` following a lock type: its
/// inner type's head (e.g. `ShardSlot` for `Mutex<ShardSlot>`, `Option`
/// for `Mutex<Option<TcpStream>>`).
fn inner_type(toks: &[Tok], open_angle: usize) -> Option<String> {
    let mut depth = 0i64;
    for t in toks.iter().skip(open_angle) {
        if t.is_punct("<") {
            depth += 1;
        } else if t.is_punct(">") {
            depth -= 1;
            if depth <= 0 {
                return None;
            }
        } else if t.is_punct(">>") {
            depth -= 2;
            if depth <= 0 {
                return None;
            }
        } else if t.kind == TokKind::Ident && depth >= 1 {
            return Some(t.text.clone());
        }
    }
    None
}

/// Walks a postfix receiver chain backwards from `end` (the token just
/// before the `.` of the method call) and returns the chain's last
/// *field or base* identifier — the lock's name — plus the index where
/// the chain starts. Method names along the chain (idents owning a
/// `(...)` group) are skipped; `self` never names a lock.
fn receiver_base(toks: &[Tok], end: usize) -> Option<(String, usize)> {
    let mut j = end as i64;
    let mut name: Option<String> = None;
    while j >= 0 {
        let t = &toks[j as usize];
        if t.is_punct(")") || t.is_punct("]") {
            let (open, close) = if t.is_punct(")") {
                ("(", ")")
            } else {
                ("[", "]")
            };
            let was_args = t.is_punct(")");
            let mut depth = 1i64;
            j -= 1;
            while j >= 0 && depth > 0 {
                let u = &toks[j as usize];
                if u.is_punct(close) {
                    depth += 1;
                } else if u.is_punct(open) {
                    depth -= 1;
                }
                j -= 1;
            }
            if depth > 0 {
                return None;
            }
            if was_args {
                // `(args)` groups belong to a method or function name:
                // consume it without taking it as the lock name.
                if j >= 0 && toks[j as usize].kind == TokKind::Ident {
                    j -= 1;
                    if j >= 0 && (toks[j as usize].is_punct(".") || toks[j as usize].is_punct("::"))
                    {
                        j -= 1;
                        continue;
                    }
                    break;
                }
                // A parenthesized expression receiver: unresolvable.
                return None;
            }
            // `[index]`: the collection ident is next on the left.
            continue;
        }
        if t.kind == TokKind::Ident {
            if name.is_none() && t.text != "self" {
                name = Some(t.text.clone());
            }
            if j >= 1
                && (toks[(j - 1) as usize].is_punct(".") || toks[(j - 1) as usize].is_punct("::"))
            {
                j -= 2;
                continue;
            }
            j -= 1;
            break;
        }
        break;
    }
    let start = (j + 1) as usize;
    name.map(|n| (n, start))
}

/// A guard the walk currently considers held.
#[derive(Debug)]
struct HeldGuard {
    class: String,
    /// The `let`-bound variable name, for `drop(var)` releases.
    var: Option<String>,
    line: u32,
    /// Brace depth at acquisition; released when the block closes.
    depth: usize,
    /// Temporary (not `let`-bound): released at end of statement.
    temp: bool,
}

/// Whether the receiver name looks like a condition variable.
fn condvar_ish(decls: &FileDecls, name: &str) -> bool {
    if decls.condvars.contains(name) || name == "Condvar" {
        return true;
    }
    let lower = name.to_lowercase();
    lower.contains("cond") || lower.contains("cvar")
}

/// Analyzes one file's token stream, adding edges to `graph` and
/// blocking/condvar violations to `out`. Returns the number of lock
/// acquisition sites seen.
fn analyze_source(
    file: &str,
    source: &str,
    graph: &mut LockGraph,
    out: &mut Vec<Violation>,
) -> usize {
    let toks = strip_test_code(&lex(source));
    let decls = collect_decls(&toks);
    let lines: Vec<&str> = source.lines().collect();
    let excerpt_at = |line: u32| -> String {
        lines
            .get(line.saturating_sub(1) as usize)
            .map(|l| l.trim().to_string())
            .unwrap_or_default()
    };
    let mut sites = 0usize;

    // Resolve a receiver name to its lock class, via declarations or
    // the per-function alias map.
    let resolve = |decls: &FileDecls, aliases: &BTreeMap<String, String>, name: &str| {
        decls.locks.get(name).or_else(|| aliases.get(name)).cloned()
    };

    let mut k = 0usize;
    while k < toks.len() {
        // Find the next function and the span of its body.
        if !(toks[k].is_ident("fn") && toks.get(k + 1).is_some_and(|t| t.kind == TokKind::Ident)) {
            k += 1;
            continue;
        }
        // Scan the signature for the body's opening brace; a `;` at
        // paren depth 0 first means a bodyless trait method.
        let mut b = k + 2;
        let mut paren = 0i64;
        let body_open = loop {
            match toks.get(b) {
                None => break None,
                Some(t) if t.is_punct("(") => paren += 1,
                Some(t) if t.is_punct(")") => paren -= 1,
                Some(t) if t.is_punct(";") && paren == 0 => break None,
                Some(t) if t.is_punct("{") && paren == 0 => break Some(b),
                _ => {}
            }
            b += 1;
        };
        let Some(open) = body_open else {
            k += 2;
            continue;
        };
        // Find the matching close brace.
        let mut depth = 1usize;
        let mut close = open + 1;
        while close < toks.len() && depth > 0 {
            if toks[close].is_punct("{") {
                depth += 1;
            } else if toks[close].is_punct("}") {
                depth -= 1;
            }
            close += 1;
        }
        let body = &toks[open..close.saturating_sub(1).max(open)];

        // Alias pre-pass: `if let Some(N) = P.get(…)` and
        // `P.get(i).map(|N| …)` bind N to P's lock class.
        let mut aliases: BTreeMap<String, String> = BTreeMap::new();
        for (i, t) in body.iter().enumerate() {
            if t.is_ident("get") || t.is_ident("get_mut") {
                if !(i >= 2 && body[i - 1].is_punct(".")) {
                    continue;
                }
                let Some((base, start)) = receiver_base(body, i - 2) else {
                    continue;
                };
                let Some(class) = resolve(&decls, &aliases, &base) else {
                    continue;
                };
                // `if let Some(N) = P.get(…)` — N aliases P's class.
                if start >= 5
                    && body[start - 1].is_punct("=")
                    && body[start - 2].is_punct(")")
                    && body[start - 3].kind == TokKind::Ident
                    && body[start - 4].is_punct("(")
                    && body[start - 5].is_ident("Some")
                {
                    aliases.insert(body[start - 3].text.clone(), class.clone());
                }
                // `P.get(i).map(|N| …)` — the closure param aliases P.
                let mut a = i + 1;
                if body.get(a).is_some_and(|t| t.is_punct("(")) {
                    let mut d = 1i64;
                    a += 1;
                    while a < body.len() && d > 0 {
                        if body[a].is_punct("(") {
                            d += 1;
                        } else if body[a].is_punct(")") {
                            d -= 1;
                        }
                        a += 1;
                    }
                    let closure_param = body.get(a).is_some_and(|t| t.is_punct("."))
                        && body.get(a + 1).is_some_and(|t| t.kind == TokKind::Ident)
                        && body.get(a + 2).is_some_and(|t| t.is_punct("("))
                        && body.get(a + 3).is_some_and(|t| t.is_punct("|"))
                        && body.get(a + 4).is_some_and(|t| t.kind == TokKind::Ident)
                        && body.get(a + 5).is_some_and(|t| t.is_punct("|"));
                    if closure_param {
                        aliases.insert(body[a + 4].text.clone(), class.clone());
                    }
                }
            }
        }

        // Main walk: block structure, guard lifetimes, acquisitions.
        let mut held: Vec<HeldGuard> = Vec::new();
        // Each entry: is this block a `while`/`loop`/`for` body?
        let mut blocks: Vec<bool> = Vec::new();
        let mut i = 0usize;
        while i < body.len() {
            let t = &body[i];
            if t.is_punct("{") {
                // Look back to the previous statement boundary for a
                // loop keyword introducing this block.
                let mut is_loop = false;
                let mut back = i;
                while back > 0 {
                    back -= 1;
                    let u = &body[back];
                    if u.is_punct(";") || u.is_punct("{") || u.is_punct("}") || i - back > 64 {
                        break;
                    }
                    if u.is_ident("while") || u.is_ident("loop") || u.is_ident("for") {
                        is_loop = true;
                        break;
                    }
                }
                blocks.push(is_loop);
                i += 1;
                continue;
            }
            if t.is_punct("}") {
                let d = blocks.len();
                held.retain(|g| g.depth < d);
                blocks.pop();
                i += 1;
                continue;
            }
            // Temporaries die at statement boundaries. `,` and `=>`
            // count too: a brace-less match arm (`… => expr,`) has no
            // `;`, and a temporary must not leak into the next arm.
            if t.is_punct(";") || t.is_punct(",") || t.is_punct("=>") {
                held.retain(|g| !g.temp);
                i += 1;
                continue;
            }
            // Explicit `drop(var)` releases that guard.
            if t.is_ident("drop")
                && body.get(i + 1).is_some_and(|u| u.is_punct("("))
                && body.get(i + 2).is_some_and(|u| u.kind == TokKind::Ident)
                && body.get(i + 3).is_some_and(|u| u.is_punct(")"))
            {
                let var = &body[i + 2].text;
                if let Some(pos) = held
                    .iter()
                    .rposition(|g| g.var.as_deref() == Some(var.as_str()))
                {
                    held.remove(pos);
                }
                i += 4;
                continue;
            }
            if t.kind != TokKind::Ident {
                i += 1;
                continue;
            }
            let dotted = i >= 1 && (body[i - 1].is_punct(".") || body[i - 1].is_punct("::"));
            let called = body.get(i + 1).is_some_and(|u| u.is_punct("("));
            let empty_args = called && body.get(i + 2).is_some_and(|u| u.is_punct(")"));

            // Lock acquisition: `.lock()`, or `.read()`/`.write()` on a
            // declared rwlock.
            let is_lock_call = dotted
                && empty_args
                && (t.text == "lock"
                    || ((t.text == "read" || t.text == "write") && i >= 2 && {
                        receiver_base(body, i - 2)
                            .is_some_and(|(name, _)| decls.rwlocks.contains(&name))
                    }));
            if is_lock_call {
                sites += 1;
                let receiver = if i >= 2 {
                    receiver_base(body, i - 2)
                } else {
                    None
                };
                if let Some((name, start)) = receiver {
                    let class = resolve(&decls, &aliases, &name).unwrap_or(name);
                    graph.add_class(&class);
                    for g in &held {
                        graph.add_edge(
                            &g.class,
                            &class,
                            EdgeSite {
                                file: file.to_string(),
                                line: t.line,
                                excerpt: excerpt_at(t.line),
                                held_line: g.line,
                            },
                        );
                    }
                    // `let [mut] g = <recv>.lock()` holds to block end;
                    // anything else is a temporary. The binding only
                    // counts when the acquisition is the *whole* RHS
                    // (modulo `.expect(…)`/`.unwrap()`): in
                    // `let x = m.lock()[i].clone();` the guard is a
                    // temporary and `x` is plain data.
                    let mut var = None;
                    let mut temp = true;
                    let guard_is_rhs = {
                        let mut e = i + 3; // past `name ( )`
                        if body.get(e).is_some_and(|u| u.is_punct("."))
                            && body
                                .get(e + 1)
                                .is_some_and(|u| u.is_ident("expect") || u.is_ident("unwrap"))
                            && body.get(e + 2).is_some_and(|u| u.is_punct("("))
                        {
                            let mut d = 1i64;
                            e += 3;
                            while e < body.len() && d > 0 {
                                if body[e].is_punct("(") {
                                    d += 1;
                                } else if body[e].is_punct(")") {
                                    d -= 1;
                                }
                                e += 1;
                            }
                        }
                        body.get(e).is_some_and(|u| u.is_punct(";"))
                    };
                    if guard_is_rhs && start >= 1 && body[start - 1].is_punct("=") {
                        let p = start.wrapping_sub(2);
                        if let Some(v) = body.get(p) {
                            if v.kind == TokKind::Ident {
                                let before = p.checked_sub(1).map(|q| &body[q]);
                                let let_bound = match before {
                                    Some(b) if b.is_ident("let") => true,
                                    Some(b) if b.is_ident("mut") => {
                                        p.checked_sub(2).is_some_and(|q| body[q].is_ident("let"))
                                    }
                                    _ => false,
                                };
                                if let_bound {
                                    var = Some(v.text.clone());
                                    temp = false;
                                }
                            }
                        }
                    }
                    held.push(HeldGuard {
                        class,
                        var,
                        line: t.line,
                        depth: blocks.len(),
                        temp,
                    });
                }
                i += 1;
                continue;
            }

            // Blocking operations under a held guard.
            let blocking_method = dotted
                && called
                && BLOCKING_METHODS.contains(&t.text.as_str())
                && (!EMPTY_ARGS_ONLY.contains(&t.text.as_str()) || empty_args);
            let blocking_free = called && BLOCKING_FREE_FNS.contains(&t.text.as_str());
            if blocking_method || blocking_free {
                let receiver_name = if dotted && i >= 2 {
                    receiver_base(body, i - 2).map(|(n, _)| n)
                } else {
                    None
                };
                let is_condvar_wait = (t.text == "wait" || t.text == "wait_timeout")
                    && receiver_name
                        .as_deref()
                        .is_some_and(|n| condvar_ish(&decls, n));
                if is_condvar_wait {
                    if !blocks.iter().any(|&l| l) {
                        out.push(Violation {
                            rule: Rule::CondvarNoLoop,
                            file: file.to_string(),
                            line: t.line,
                            excerpt: excerpt_at(t.line),
                            message: format!(
                                "`.{}()` outside a predicate loop: condvar wakeups \
                                 are spurious, so the wait must re-check its \
                                 predicate in a `while` (or use `wait_while`)",
                                t.text
                            ),
                        });
                    }
                    // The wait releases its own mutex; only flag it as
                    // blocking when *another* guard is also held.
                    if held.len() >= 2 {
                        let outer = &held[0];
                        out.push(Violation {
                            rule: Rule::BlockingUnderLock,
                            file: file.to_string(),
                            line: t.line,
                            excerpt: excerpt_at(t.line),
                            message: format!(
                                "condvar wait while also holding `{}` (locked at \
                                 line {}): the wait only releases its own mutex",
                                outer.class, outer.line
                            ),
                        });
                    }
                } else if let Some(g) = held.first() {
                    let held_classes: Vec<&str> = held.iter().map(|h| h.class.as_str()).collect();
                    out.push(Violation {
                        rule: Rule::BlockingUnderLock,
                        file: file.to_string(),
                        line: t.line,
                        excerpt: excerpt_at(t.line),
                        message: format!(
                            "blocking `{}` while holding `{}` (locked at line {}): \
                             release the guard before blocking, or the lock stalls \
                             every other thread for the full wait [held: {}]",
                            t.text,
                            g.class,
                            g.line,
                            held_classes.join(", ")
                        ),
                    });
                }
            }
            i += 1;
        }
        k = close;
    }
    sites
}

/// Runs the concurrency pass over in-memory `(name, source)` pairs —
/// the core of [`scan_concurrency`], exposed for tests.
pub fn scan_sources<'a>(files: impl IntoIterator<Item = (&'a str, &'a str)>) -> ConcurrencyReport {
    let mut graph = LockGraph::new();
    let mut violations = Vec::new();
    let mut lock_sites = 0usize;
    for (name, source) in files {
        lock_sites += analyze_source(name, source, &mut graph, &mut violations);
    }
    violations.extend(graph.cycle_violations());
    violations.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    ConcurrencyReport {
        violations,
        lock_sites,
        classes: graph.class_count(),
        edges: graph.edge_count(),
    }
}

/// Runs the concurrency pass over [`CONCURRENCY_LINT_CRATES`] in the
/// workspace rooted at `root`.
pub fn scan_concurrency(root: &Path) -> io::Result<ConcurrencyReport> {
    let mut files = Vec::new();
    for krate in CONCURRENCY_LINT_CRATES {
        let src = root.join("crates").join(krate).join("src");
        if src.is_dir() {
            crate::rust_sources(&src, &mut files)?;
        }
    }
    scan_file_list(root, &files)
}

/// Fixture mode: runs the concurrency pass over every `.rs` file under
/// `dir` (mirrors [`crate::scan_paths`]).
pub fn scan_concurrency_paths(dir: &Path) -> io::Result<ConcurrencyReport> {
    let mut files = Vec::new();
    if dir.is_dir() {
        crate::rust_sources(dir, &mut files)?;
    } else {
        files.push(dir.to_path_buf());
    }
    scan_file_list(dir, &files)
}

fn scan_file_list(root: &Path, files: &[std::path::PathBuf]) -> io::Result<ConcurrencyReport> {
    let mut sources = Vec::new();
    for path in files {
        let text = fs::read_to_string(path)?;
        sources.push((crate::relative_name(root, path), text));
    }
    Ok(scan_sources(
        sources.iter().map(|(n, s)| (n.as_str(), s.as_str())),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn site(line: u32) -> EdgeSite {
        EdgeSite {
            file: "test.rs".to_string(),
            line,
            excerpt: format!("line {line}"),
            held_line: line.saturating_sub(1),
        }
    }

    #[test]
    fn two_node_cycle_is_detected() {
        let mut g = LockGraph::new();
        g.add_edge("a", "b", site(10));
        g.add_edge("b", "a", site(20));
        let cyclic = g.cyclic_edges();
        assert_eq!(cyclic.len(), 2, "{cyclic:?}");
        let v = g.cycle_violations();
        assert_eq!(v.len(), 2);
        assert!(v.iter().all(|v| v.rule == Rule::LockCycle));
    }

    #[test]
    fn chain_without_cycle_is_clean() {
        let mut g = LockGraph::new();
        g.add_edge("a", "b", site(1));
        g.add_edge("b", "c", site(2));
        g.add_edge("a", "c", site(3));
        assert!(g.cyclic_edges().is_empty());
        assert_eq!(g.class_count(), 3);
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn three_node_cycle_flags_every_edge_on_it() {
        let mut g = LockGraph::new();
        g.add_edge("a", "b", site(1));
        g.add_edge("b", "c", site(2));
        g.add_edge("c", "a", site(3));
        g.add_edge("a", "d", site(4)); // off-cycle spur stays clean
        let cyclic = g.cyclic_edges();
        assert_eq!(cyclic.len(), 3, "{cyclic:?}");
        assert!(cyclic.iter().all(|(_, to, _)| *to != "d"));
        // The message names the conflicting return path.
        let v = g.cycle_violations();
        assert!(v[0].message.contains("→"), "{}", v[0].message);
    }

    #[test]
    fn self_edge_is_a_cycle() {
        let mut g = LockGraph::new();
        g.add_edge("a", "a", site(5));
        assert_eq!(g.cyclic_edges().len(), 1);
        let v = g.cycle_violations();
        assert!(v[0].message.contains("same class"), "{}", v[0].message);
    }

    #[test]
    fn decls_key_classes_by_field_path_and_type() {
        let toks = strip_test_code(&lex(
            "struct A { stats: Arc<Mutex<FabricStats>>, slots: Arc<Vec<Mutex<ShardSlot>>>, \
             table: RwLock<Vec<u32>>, cond: Condvar }",
        ));
        let decls = collect_decls(&toks);
        assert_eq!(
            decls.locks.get("stats").map(String::as_str),
            Some("stats<FabricStats>")
        );
        assert_eq!(
            decls.locks.get("slots").map(String::as_str),
            Some("slots<ShardSlot>")
        );
        assert!(decls.rwlocks.contains("table"));
        assert!(decls.condvars.contains("cond"));
        // `Mutex::new(...)` is an expression, not a declaration.
        let toks = strip_test_code(&lex("fn f() { let x = Mutex::new(0); }"));
        assert!(collect_decls(&toks).locks.is_empty());
    }

    #[test]
    fn inversion_across_two_functions_is_flagged() {
        let src = r"
            struct P { alpha: Mutex<State>, beta: Mutex<State> }
            impl P {
                fn forward(&self) {
                    let a = self.alpha.lock();
                    let b = self.beta.lock();
                }
                fn backward(&self) {
                    let b = self.beta.lock();
                    let a = self.alpha.lock();
                }
            }
        ";
        let report = scan_sources([("inv.rs", src)]);
        let cycles: Vec<_> = report
            .violations
            .iter()
            .filter(|v| v.rule == Rule::LockCycle)
            .collect();
        assert_eq!(cycles.len(), 2, "{:#?}", report.violations);
        assert_eq!(report.lock_sites, 4);
        assert_eq!(report.classes, 2);
        assert_eq!(report.edges, 2);
    }

    #[test]
    fn consistent_order_across_functions_is_clean() {
        let src = r"
            struct P { alpha: Mutex<State>, beta: Mutex<State> }
            impl P {
                fn forward(&self) {
                    let a = self.alpha.lock();
                    let b = self.beta.lock();
                }
                fn also_forward(&self) {
                    let a = self.alpha.lock();
                    let b = self.beta.lock();
                }
            }
        ";
        let report = scan_sources([("ok.rs", src)]);
        assert!(report.violations.is_empty(), "{:#?}", report.violations);
        assert_eq!(report.edges, 1);
    }

    #[test]
    fn scoped_guard_releases_at_block_end() {
        // The alpha guard dies with its block, so beta-then-alpha in
        // the second function is NOT an inversion.
        let src = r"
            struct P { alpha: Mutex<State>, beta: Mutex<State> }
            impl P {
                fn forward(&self) {
                    { let a = self.alpha.lock(); }
                    let b = self.beta.lock();
                }
                fn backward(&self) {
                    let b = self.beta.lock();
                    let a = self.alpha.lock();
                }
            }
        ";
        let report = scan_sources([("scoped.rs", src)]);
        assert!(report.violations.is_empty(), "{:#?}", report.violations);
    }

    #[test]
    fn drop_releases_the_guard() {
        let src = r"
            struct P { stats: Mutex<Stats>, tx: Sender<u64> }
            impl P {
                fn publish(&self) {
                    let mut acc = self.stats.lock();
                    acc.count += 1;
                    drop(acc);
                    self.tx.send(1);
                }
            }
        ";
        let report = scan_sources([("drop.rs", src)]);
        assert!(report.violations.is_empty(), "{:#?}", report.violations);
    }

    #[test]
    fn temporary_guard_does_not_span_statements() {
        let src = r"
            struct P { stats: Mutex<Stats>, tx: Sender<u64> }
            impl P {
                fn publish(&self) {
                    self.stats.lock().count += 1;
                    self.tx.send(1);
                }
            }
        ";
        let report = scan_sources([("temp.rs", src)]);
        assert!(report.violations.is_empty(), "{:#?}", report.violations);
    }

    #[test]
    fn blocking_send_under_guard_is_flagged() {
        let src = r"
            struct P { stats: Mutex<Stats>, tx: Sender<u64> }
            impl P {
                fn publish(&self) {
                    let mut acc = self.stats.lock();
                    acc.count += 1;
                    self.tx.send(1);
                }
            }
        ";
        let report = scan_sources([("send.rs", src)]);
        assert_eq!(report.violations.len(), 1, "{:#?}", report.violations);
        assert_eq!(report.violations[0].rule, Rule::BlockingUnderLock);
        assert!(report.violations[0].message.contains("stats<Stats>"));
    }

    #[test]
    fn join_requires_empty_args_to_count() {
        let src = r#"
            struct P { stats: Mutex<Stats> }
            impl P {
                fn ok_path_join(&self, root: &Path) {
                    let g = self.stats.lock();
                    let p = root.join("file.txt");
                }
                fn bad_thread_join(&self, h: JoinHandle<()>) {
                    let g = self.stats.lock();
                    let r = h.join();
                }
            }
        "#;
        let report = scan_sources([("join.rs", src)]);
        assert_eq!(report.violations.len(), 1, "{:#?}", report.violations);
        assert!(report.violations[0].message.contains("join"));
    }

    #[test]
    fn condvar_wait_without_loop_is_flagged() {
        let src = r"
            struct G { ready: Mutex<bool>, cond: Condvar }
            impl G {
                fn bad(&self) {
                    let mut g = self.ready.lock();
                    if !*g {
                        self.cond.wait(&mut g);
                    }
                }
                fn good(&self) {
                    let mut g = self.ready.lock();
                    while !*g {
                        self.cond.wait(&mut g);
                    }
                }
            }
        ";
        let report = scan_sources([("cv.rs", src)]);
        assert_eq!(report.violations.len(), 1, "{:#?}", report.violations);
        assert_eq!(report.violations[0].rule, Rule::CondvarNoLoop);
    }

    #[test]
    fn alias_through_get_resolves_to_the_collection_class() {
        // `slots.get(i)` then locking the alias must be the same class
        // as locking `slots[i]` directly — otherwise the AB edge from
        // one function and the BA edge from the other would use
        // different node names and the cycle would go unseen.
        let src = r"
            struct C { slots: Vec<Mutex<Slot>>, stats: Mutex<Stats> }
            impl C {
                fn direct(&self, i: usize) {
                    let s = self.slots[i].lock();
                    let t = self.stats.lock();
                }
                fn via_get(&self, i: usize) {
                    if let Some(slot) = self.slots.get(i) {
                        let t = self.stats.lock();
                        let s = slot.lock();
                    }
                }
            }
        ";
        let report = scan_sources([("alias.rs", src)]);
        let cycles: Vec<_> = report
            .violations
            .iter()
            .filter(|v| v.rule == Rule::LockCycle)
            .collect();
        assert_eq!(cycles.len(), 2, "{:#?}", report.violations);
    }

    #[test]
    fn rwlock_read_write_are_acquisitions_but_socket_io_is_not() {
        let src = r"
            struct S { table: RwLock<Vec<u32>>, stats: Mutex<Stats> }
            impl S {
                fn inverted(&self) {
                    let t = self.table.read();
                    let s = self.stats.lock();
                }
                fn reversed(&self) {
                    let s = self.stats.lock();
                    let t = self.table.write();
                }
                fn socket(&self, stream: &mut TcpStream, buf: &mut [u8]) {
                    stream.read(buf);
                }
            }
        ";
        let report = scan_sources([("rw.rs", src)]);
        let cycles: Vec<_> = report
            .violations
            .iter()
            .filter(|v| v.rule == Rule::LockCycle)
            .collect();
        assert_eq!(cycles.len(), 2, "{:#?}", report.violations);
        // stream.read(buf) is not an acquisition: args are non-empty
        // and `stream` is not a declared rwlock.
        assert_eq!(report.lock_sites, 4);
    }
}
