//! The `gridwatch-audit` binary.
//!
//! ```text
//! gridwatch-audit [lint] [--concurrency] [--root DIR] [--allowlist FILE]
//!     Lint the workspace, reconcile against the allowlist. With
//!     --concurrency, also run the cross-file lock-order pass and
//!     reconcile its findings (and print the concurrency trend line).
//!     Exit 0 when clean, 1 on new violations or stale entries.
//!
//! gridwatch-audit --paths DIR
//!     Lint a directory with every rule including the concurrency
//!     pass, no allowlist (fixture mode).
//!     Exit 0 when no violations, 1 otherwise.
//!
//! gridwatch-audit checkpoint DIR   (or: --checkpoint DIR)
//!     Validate a checkpoint directory offline.
//!     Exit 0 when valid, 1 when problems are found.
//!
//! Exit code 2 on usage or I/O errors.
//! ```

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use gridwatch_audit::{
    allowlist, checkpoint, concurrency, find_workspace_root, render_concurrency_trend,
    render_trend, render_violation, scan_paths, scan_workspace,
};

const USAGE: &str = "usage: gridwatch-audit [lint] [--concurrency] [--root DIR] [--allowlist FILE]
       gridwatch-audit --paths DIR
       gridwatch-audit checkpoint DIR";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(clean) => {
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(msg) => {
            eprintln!("gridwatch-audit: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<bool, String> {
    let mut root: Option<PathBuf> = None;
    let mut allowlist_file: Option<PathBuf> = None;
    let mut paths: Option<PathBuf> = None;
    let mut ckpt: Option<PathBuf> = None;
    let mut with_concurrency = false;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "lint" => {}
            "--concurrency" => with_concurrency = true,
            "checkpoint" | "--checkpoint" => {
                let dir = it
                    .next()
                    .ok_or(format!("{arg} requires a directory\n{USAGE}"))?;
                ckpt = Some(PathBuf::from(dir));
            }
            "--root" => {
                let dir = it
                    .next()
                    .ok_or(format!("--root requires a directory\n{USAGE}"))?;
                root = Some(PathBuf::from(dir));
            }
            "--allowlist" => {
                let file = it
                    .next()
                    .ok_or(format!("--allowlist requires a file\n{USAGE}"))?;
                allowlist_file = Some(PathBuf::from(file));
            }
            "--paths" => {
                let dir = it
                    .next()
                    .ok_or(format!("--paths requires a directory\n{USAGE}"))?;
                paths = Some(PathBuf::from(dir));
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(true);
            }
            other => return Err(format!("unknown argument {other:?}\n{USAGE}")),
        }
    }

    if let Some(dir) = ckpt {
        return Ok(run_checkpoint(&dir));
    }
    if let Some(dir) = paths {
        return run_paths(&dir);
    }
    run_lint(root, allowlist_file, with_concurrency)
}

fn run_checkpoint(dir: &Path) -> bool {
    let report = checkpoint::validate_checkpoint(dir);
    for problem in &report.problems {
        println!("checkpoint: {problem}");
    }
    println!(
        "checkpoint {}: {} shard files, {} models checked, {} problems",
        dir.display(),
        report.shards_checked,
        report.models_checked,
        report.problems.len()
    );
    report.is_valid()
}

fn run_paths(dir: &Path) -> Result<bool, String> {
    let mut violations = scan_paths(dir).map_err(|e| format!("scanning {}: {e}", dir.display()))?;
    let conc = concurrency::scan_concurrency_paths(dir)
        .map_err(|e| format!("scanning {}: {e}", dir.display()))?;
    violations.extend(conc.violations);
    violations.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    for v in &violations {
        println!("{}", render_violation(v));
    }
    println!("{} violation(s) in {}", violations.len(), dir.display());
    Ok(violations.is_empty())
}

fn run_lint(
    root: Option<PathBuf>,
    allowlist_file: Option<PathBuf>,
    with_concurrency: bool,
) -> Result<bool, String> {
    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().map_err(|e| format!("getting cwd: {e}"))?;
            find_workspace_root(&cwd)
                .ok_or("no workspace Cargo.toml above the current directory; pass --root")?
        }
    };
    let allowlist_path = allowlist_file.unwrap_or_else(|| root.join("audit/allowlist.txt"));

    let mut violations =
        scan_workspace(&root).map_err(|e| format!("scanning {}: {e}", root.display()))?;
    let conc = if with_concurrency {
        let report = concurrency::scan_concurrency(&root)
            .map_err(|e| format!("scanning {}: {e}", root.display()))?;
        violations.extend(report.violations.iter().cloned());
        violations.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
        Some(report)
    } else {
        None
    };

    let mut entries = match std::fs::read_to_string(&allowlist_path) {
        Ok(text) => allowlist::parse(&text).map_err(|e| e.to_string())?,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(format!("reading {}: {e}", allowlist_path.display())),
    };
    // Without the concurrency pass, its ledger entries have no
    // violations to match — keep them out of the two-sided check so
    // they are not reported stale.
    if conc.is_none() {
        entries.retain(|e| !e.rule.is_concurrency());
    }

    let rec = allowlist::reconcile(&violations, &entries);
    for v in &rec.new_violations {
        println!("{}", render_violation(v));
    }
    for (entry, surplus) in &rec.stale_entries {
        println!(
            "stale allowlist entry (line {}): [{}] {} x{} {:?} — {} site(s) no longer \
             found; fix the ledger",
            entry.source_line,
            entry.rule.name(),
            entry.file,
            entry.count,
            entry.fingerprint,
            surplus
        );
    }
    println!("{}", render_trend(&entries));
    if let Some(report) = &conc {
        println!("{}", render_concurrency_trend(report, &entries));
    }
    if !rec.is_clean() {
        println!(
            "audit FAILED: {} new violation(s), {} stale allowlist entr(ies)",
            rec.new_violations.len(),
            rec.stale_entries.len()
        );
    }
    Ok(rec.is_clean())
}
