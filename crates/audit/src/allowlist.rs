//! The violation allowlist: a burn-down ledger, not an escape hatch.
//!
//! Format (tab-separated, `#` comments, blank lines ignored):
//!
//! ```text
//! rule<TAB>file<TAB>count<TAB>fingerprint
//! ```
//!
//! `fingerprint` is the trimmed source line of the violation, so
//! entries survive edits elsewhere in the file but go stale the moment
//! the offending line itself changes — forcing whoever touches it to
//! either fix the site or consciously re-justify it. Reconciliation
//! fails on **both** directions: new violations (not covered) and stale
//! entries (covered sites that no longer exist), so the ledger can only
//! shrink through deliberate edits.

use std::collections::HashMap;
use std::fmt;

use crate::lints::{Rule, Violation};

/// One allowlist entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// The rule this entry silences.
    pub rule: Rule,
    /// Repo-relative path with forward slashes.
    pub file: String,
    /// How many sites in `file` share this fingerprint.
    pub count: usize,
    /// Trimmed source line of the allowlisted site(s).
    pub fingerprint: String,
    /// 1-based line in the allowlist file (for error messages).
    pub source_line: u32,
}

/// A parse problem in the allowlist file itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line in the allowlist file.
    pub line: u32,
    /// What was wrong with it.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "allowlist line {}: {}", self.line, self.message)
    }
}

/// Parses allowlist text. Malformed lines are hard errors — a silently
/// skipped entry would un-allowlist a site and fail CI confusingly.
pub fn parse(text: &str) -> Result<Vec<Entry>, ParseError> {
    let mut entries = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx as u32 + 1;
        let line = raw.trim_end();
        if line.trim().is_empty() || line.trim_start().starts_with('#') {
            continue;
        }
        let mut parts = line.splitn(4, '\t');
        let (Some(rule), Some(file), Some(count), Some(fingerprint)) =
            (parts.next(), parts.next(), parts.next(), parts.next())
        else {
            return Err(ParseError {
                line: line_no,
                message: format!(
                    "expected 4 tab-separated fields `rule\\tfile\\tcount\\tfingerprint`, got: {line:?}"
                ),
            });
        };
        let Some(rule) = Rule::from_name(rule) else {
            return Err(ParseError {
                line: line_no,
                message: format!("unknown rule name {rule:?}"),
            });
        };
        let Ok(count) = count.parse::<usize>() else {
            return Err(ParseError {
                line: line_no,
                message: format!("count field is not a number: {count:?}"),
            });
        };
        if count == 0 {
            return Err(ParseError {
                line: line_no,
                message: "count must be >= 1; delete the entry instead".to_string(),
            });
        }
        entries.push(Entry {
            rule,
            file: file.to_string(),
            count,
            fingerprint: fingerprint.to_string(),
            source_line: line_no,
        });
    }
    Ok(entries)
}

/// The outcome of reconciling live violations against the allowlist.
#[derive(Debug, Default)]
pub struct Reconciliation {
    /// Violations not covered by any entry — fail the run.
    pub new_violations: Vec<Violation>,
    /// Entries whose sites no longer exist (or exist fewer times than
    /// `count` claims) — also fail the run, with the surplus noted.
    pub stale_entries: Vec<(Entry, usize)>,
    /// How many live violations were absorbed by the allowlist.
    pub allowlisted: usize,
}

impl Reconciliation {
    /// Whether the audit passes.
    pub fn is_clean(&self) -> bool {
        self.new_violations.is_empty() && self.stale_entries.is_empty()
    }
}

/// Matches live violations against allowlist entries by
/// `(rule, file, fingerprint)`, consuming up to `count` matches per
/// entry.
pub fn reconcile(violations: &[Violation], entries: &[Entry]) -> Reconciliation {
    let mut budget: HashMap<(Rule, &str, &str), usize> = HashMap::new();
    for e in entries {
        *budget
            .entry((e.rule, e.file.as_str(), e.fingerprint.as_str()))
            .or_insert(0) += e.count;
    }
    let mut rec = Reconciliation::default();
    for v in violations {
        let key = (v.rule, v.file.as_str(), v.excerpt.as_str());
        match budget.get_mut(&key) {
            Some(remaining) if *remaining > 0 => {
                *remaining -= 1;
                rec.allowlisted += 1;
            }
            _ => rec.new_violations.push(v.clone()),
        }
    }
    for e in entries {
        let key = (e.rule, e.file.as_str(), e.fingerprint.as_str());
        if let Some(remaining) = budget.remove(&key) {
            if remaining > 0 {
                rec.stale_entries.push((e.clone(), remaining));
            }
        }
        // Duplicate keys: first entry reports the surplus, later
        // duplicates see the key already removed and stay silent.
    }
    rec
}

/// Renders violations in allowlist format, for bootstrapping the ledger.
pub fn render(violations: &[Violation]) -> String {
    let mut counts: HashMap<(Rule, &str, &str), usize> = HashMap::new();
    let mut order: Vec<(Rule, &str, &str)> = Vec::new();
    for v in violations {
        let key = (v.rule, v.file.as_str(), v.excerpt.as_str());
        let slot = counts.entry(key).or_insert(0);
        if *slot == 0 {
            order.push(key);
        }
        *slot += 1;
    }
    let mut out = String::new();
    for key in order {
        let (rule, file, fingerprint) = key;
        let count = counts[&key];
        out.push_str(&format!(
            "{}\t{file}\t{count}\t{fingerprint}\n",
            rule.name()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn viol(rule: Rule, file: &str, line: u32, excerpt: &str) -> Violation {
        Violation {
            rule,
            file: file.to_string(),
            line,
            excerpt: excerpt.to_string(),
            message: String::new(),
        }
    }

    #[test]
    fn parse_roundtrip() {
        let text = "# comment\n\nno-panic\tcrates/a/src/x.rs\t2\tfoo.unwrap()\n";
        let entries = parse(text).unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].rule, Rule::NoPanic);
        assert_eq!(entries[0].count, 2);
        assert_eq!(entries[0].fingerprint, "foo.unwrap()");
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(parse("no-panic\tonly-two-fields\t1\n").is_err());
        assert!(parse("bogus-rule\tf.rs\t1\tx\n").is_err());
        assert!(parse("no-panic\tf.rs\tzero\tx\n").is_err());
        assert!(parse("no-panic\tf.rs\t0\tx\n").is_err());
    }

    #[test]
    fn reconcile_consumes_budget() {
        let violations = vec![
            viol(Rule::NoPanic, "f.rs", 10, "a.unwrap()"),
            viol(Rule::NoPanic, "f.rs", 20, "a.unwrap()"),
            viol(Rule::NoPanic, "f.rs", 30, "b.unwrap()"),
        ];
        let entries = parse("no-panic\tf.rs\t2\ta.unwrap()\n").unwrap();
        let rec = reconcile(&violations, &entries);
        assert_eq!(rec.allowlisted, 2);
        assert_eq!(rec.new_violations.len(), 1);
        assert_eq!(rec.new_violations[0].line, 30);
        assert!(rec.stale_entries.is_empty());
        assert!(!rec.is_clean());
    }

    #[test]
    fn reconcile_reports_stale_entries() {
        let entries = parse("float-cmp\tgone.rs\t1\tscore == 1.0\n").unwrap();
        let rec = reconcile(&[], &entries);
        assert!(rec.new_violations.is_empty());
        assert_eq!(rec.stale_entries.len(), 1);
        assert_eq!(rec.stale_entries[0].1, 1);
        assert!(!rec.is_clean());
    }

    #[test]
    fn reconcile_clean_when_exact() {
        let violations = vec![viol(Rule::UnboundedChannel, "f.rs", 5, "mpsc::channel()")];
        let entries = parse("unbounded-channel\tf.rs\t1\tmpsc::channel()\n").unwrap();
        let rec = reconcile(&violations, &entries);
        assert!(rec.is_clean());
        assert_eq!(rec.allowlisted, 1);
    }

    #[test]
    fn render_groups_by_fingerprint() {
        let violations = vec![
            viol(Rule::NoPanic, "f.rs", 1, "x.unwrap()"),
            viol(Rule::NoPanic, "f.rs", 9, "x.unwrap()"),
            viol(Rule::FloatCmp, "g.rs", 2, "score == 1.0"),
        ];
        let rendered = render(&violations);
        assert_eq!(
            rendered,
            "no-panic\tf.rs\t2\tx.unwrap()\nfloat-cmp\tg.rs\t1\tscore == 1.0\n"
        );
        // And the rendered form reconciles cleanly against its input.
        let rec = reconcile(&violations, &parse(&rendered).unwrap());
        assert!(rec.is_clean());
    }
}
