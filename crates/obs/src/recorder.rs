//! The flight recorder: a bounded ring of recent pipeline events.
//!
//! Counters say *how much*; the flight recorder says *what, in what
//! order* — the last few hundred notable events (connections, decode
//! failures, checkpoints, migrations, alarms) with monotonic
//! timestamps. It is always on: events are rare compared to
//! snapshots, the ring is fixed-size, and recording is one short
//! mutex-protected push. The ring is dumped to disk on alarm, panic,
//! or shutdown, and attached to incident reports so an operator sees
//! what the pipeline did in the run-up.

use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

use gridwatch_sync::{classes, OrderedMutex};
use serde::{Deserialize, Serialize};

/// Default ring capacity.
pub const DEFAULT_CAPACITY: usize = 256;

/// One recorded event. All fields default so the struct can ride
/// inside persisted reports without breaking older readers.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlightEvent {
    /// Monotonic nanoseconds since the recorder was created.
    #[serde(default)]
    pub at_ns: u64,
    /// Event class (`conn-open`, `decode-error`, `checkpoint`,
    /// `migration`, `alarm`, ...).
    #[serde(default)]
    pub kind: String,
    /// Free-form detail.
    #[serde(default)]
    pub detail: String,
}

struct Ring {
    events: std::collections::VecDeque<FlightEvent>,
    capacity: usize,
    dropped: u64,
}

/// A shareable, bounded event recorder. Clones share the same ring.
#[derive(Clone)]
pub struct FlightRecorder {
    ring: Arc<OrderedMutex<Ring>>,
    start: Instant,
}

impl Default for FlightRecorder {
    fn default() -> FlightRecorder {
        FlightRecorder::new(DEFAULT_CAPACITY)
    }
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let ring = self.ring.lock();
        write!(
            f,
            "FlightRecorder({}/{} events, {} dropped)",
            ring.events.len(),
            ring.capacity,
            ring.dropped
        )
    }
}

impl FlightRecorder {
    /// A recorder keeping the most recent `capacity` events (at least
    /// one).
    pub fn new(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            ring: Arc::new(OrderedMutex::new(
                classes::FLIGHT_RING,
                Ring {
                    events: std::collections::VecDeque::with_capacity(capacity.max(1)),
                    capacity: capacity.max(1),
                    dropped: 0,
                },
            )),
            start: Instant::now(),
        }
    }

    /// Records one event, evicting the oldest when full.
    pub fn record(&self, kind: &str, detail: impl std::fmt::Display) {
        let event = FlightEvent {
            at_ns: self.start.elapsed().as_nanos() as u64,
            kind: kind.to_string(),
            detail: detail.to_string(),
        };
        let mut ring = self.ring.lock();
        if ring.events.len() >= ring.capacity {
            ring.events.pop_front();
            ring.dropped += 1;
        }
        ring.events.push_back(event);
    }

    /// The recorded events, oldest first.
    pub fn snapshot(&self) -> Vec<FlightEvent> {
        self.ring.lock().events.iter().cloned().collect()
    }

    /// The recorded events plus the global index of the first one,
    /// read under one lock. Every event ever recorded has a stable
    /// global index (evictions advance the base); incremental sinks use
    /// it to ship each event exactly once across repeated snapshots.
    pub fn snapshot_indexed(&self) -> (u64, Vec<FlightEvent>) {
        let ring = self.ring.lock();
        (ring.dropped, ring.events.iter().cloned().collect())
    }

    /// Events evicted from the ring so far.
    pub fn dropped(&self) -> u64 {
        self.ring.lock().dropped
    }

    /// The ring as JSON lines (one event per line, oldest first).
    pub fn to_json_lines(&self) -> String {
        let mut out = String::new();
        for event in self.snapshot() {
            match serde_json::to_string(&event) {
                Ok(line) => {
                    out.push_str(&line);
                    out.push('\n');
                }
                // Plain-old-data cannot fail to serialize; a dump is
                // never worth a panic regardless.
                Err(_) => out.push_str("{}\n"),
            }
        }
        out
    }

    /// Dumps the ring to `path` as JSON lines, creating parent
    /// directories as needed. Best-effort durability: this runs on
    /// alarms, panics, and shutdown, where a torn dump beats no dump.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation and write failures.
    pub fn dump(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, self.to_json_lines())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_the_most_recent_events() {
        let recorder = FlightRecorder::new(3);
        for k in 0..5 {
            recorder.record("tick", format_args!("event {k}"));
        }
        let events: Vec<String> = recorder.snapshot().into_iter().map(|e| e.detail).collect();
        assert_eq!(events, ["event 2", "event 3", "event 4"]);
        assert_eq!(recorder.dropped(), 2);
    }

    #[test]
    fn timestamps_are_monotonic() {
        let recorder = FlightRecorder::new(8);
        recorder.record("a", "first");
        recorder.record("b", "second");
        let events = recorder.snapshot();
        assert!(events[0].at_ns <= events[1].at_ns);
        assert_eq!(events[0].kind, "a");
    }

    #[test]
    fn clones_share_one_ring() {
        let recorder = FlightRecorder::new(4);
        recorder.clone().record("x", "from the clone");
        assert_eq!(recorder.snapshot().len(), 1);
    }

    #[test]
    fn dump_writes_parseable_json_lines() {
        let recorder = FlightRecorder::new(4);
        recorder.record("conn-open", "peer 127.0.0.1:9 conn 0");
        recorder.record("alarm", "system alarm at t=12");
        let dir = std::env::temp_dir().join(format!("gw-obs-rec-{}", std::process::id()));
        let path = dir.join("nested").join("flight.jsonl");
        recorder.dump(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let back: FlightEvent = serde_json::from_str(lines[1]).unwrap();
        assert_eq!(back.kind, "alarm");
        assert_eq!(back.detail, "system alarm at t=12");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn events_roundtrip_and_default() {
        let event = FlightEvent {
            at_ns: 7,
            kind: "migration".to_string(),
            detail: "shard 2".to_string(),
        };
        let json = serde_json::to_string(&event).unwrap();
        let back: FlightEvent = serde_json::from_str(&json).unwrap();
        assert_eq!(back, event);
        // Older payloads without the fields parse to defaults.
        let empty: FlightEvent = serde_json::from_str("{}").unwrap();
        assert_eq!(empty, FlightEvent::default());
    }
}
