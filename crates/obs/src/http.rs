//! A minimal self-contained HTTP/1.1 responder for `GET /metrics` and
//! the health introspection plane (`/healthz`, `/readyz`).
//!
//! This is deliberately not a web server: one accept loop on its own
//! thread, connections handled serially, request bodies ignored, every
//! response `Connection: close`. That is all a Prometheus scraper (or
//! `curl`, or a load balancer probe) needs, and it keeps the
//! dependency count at zero — the container is offline. The render
//! closures are called once per request, so the endpoints always serve
//! live state. `HEAD` is answered with headers only (probes use it),
//! and every connection carries both a read and a write deadline so
//! one stalled scraper cannot wedge the serial loop.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Cap on request head size; anything longer is answered 400.
const MAX_REQUEST_BYTES: usize = 8 * 1024;

/// How long a scraper may dawdle sending its request.
const READ_TIMEOUT: Duration = Duration::from_secs(5);

/// How long a scraper may dawdle draining the response before the
/// connection is dropped (slow-loris guard for the serial loop).
const WRITE_TIMEOUT: Duration = Duration::from_secs(5);

/// What a request may ask the server: page content plus, when a
/// health closure is attached, liveness and readiness documents.
struct Routes {
    render: Box<dyn Fn() -> String + Send>,
    /// Returns `(ready, healthz_json)`; `/readyz` answers 503 when
    /// not ready, `/healthz` always answers 200 with the document.
    health: Option<Box<dyn Fn() -> (bool, String) + Send>>,
    write_timeout: Duration,
}

/// A live metrics endpoint. Shuts down on [`MetricsServer::shutdown`]
/// or drop.
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for MetricsServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MetricsServer({})", self.addr)
    }
}

impl MetricsServer {
    /// Binds `addr` (e.g. `127.0.0.1:0`) and serves `GET /metrics`
    /// with whatever `render` returns, until shutdown.
    ///
    /// # Errors
    ///
    /// Fails when the address cannot be bound.
    pub fn bind<F>(addr: &str, render: F) -> std::io::Result<MetricsServer>
    where
        F: Fn() -> String + Send + 'static,
    {
        MetricsServer::bind_routes(
            addr,
            Routes {
                render: Box::new(render),
                health: None,
                write_timeout: WRITE_TIMEOUT,
            },
        )
    }

    /// Like [`MetricsServer::bind`], but additionally serves the
    /// health plane: `GET /healthz` answers 200 with `health()`'s JSON
    /// document, and `GET /readyz` answers the same document with 503
    /// when `health()` reports not ready.
    ///
    /// # Errors
    ///
    /// Fails when the address cannot be bound.
    pub fn bind_with_health<F, H>(
        addr: &str,
        render: F,
        health: H,
    ) -> std::io::Result<MetricsServer>
    where
        F: Fn() -> String + Send + 'static,
        H: Fn() -> (bool, String) + Send + 'static,
    {
        MetricsServer::bind_routes(
            addr,
            Routes {
                render: Box::new(render),
                health: Some(Box::new(health)),
                write_timeout: WRITE_TIMEOUT,
            },
        )
    }

    fn bind_routes(addr: &str, routes: Routes) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let loop_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("gw-metrics".to_string())
            .spawn(move || accept_loop(listener, loop_stop, routes))?;
        Ok(MetricsServer {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (with the OS-assigned port resolved).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the endpoint and joins its thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        if self.handle.is_some() {
            self.stop_and_join();
        }
    }
}

fn accept_loop(listener: TcpListener, stop: Arc<AtomicBool>, routes: Routes) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if stop.load(Ordering::SeqCst) {
            return;
        }
        // Serial handling: a scrape is one small read and one write,
        // both under deadlines; a misbehaving scraper only stalls the
        // metrics port briefly, never the pipeline.
        let _ = handle_connection(stream, &routes);
    }
}

/// Reads the request head and answers it. Errors are per-connection
/// and simply close the socket.
fn handle_connection(mut stream: TcpStream, routes: &Routes) -> std::io::Result<()> {
    stream.set_read_timeout(Some(READ_TIMEOUT))?;
    stream.set_write_timeout(Some(routes.write_timeout))?;
    let mut head = Vec::new();
    let mut buf = [0u8; 1024];
    loop {
        if head.windows(4).any(|w| w == b"\r\n\r\n") || head.windows(2).any(|w| w == b"\n\n") {
            break;
        }
        if head.len() >= MAX_REQUEST_BYTES {
            return respond(&mut stream, "400 Bad Request", "request too large\n");
        }
        let n = stream.read(&mut buf)?;
        if n == 0 {
            return Ok(());
        }
        head.extend_from_slice(&buf[..n]);
    }
    let head = String::from_utf8_lossy(&head);
    let mut parts = head.lines().next().unwrap_or("").split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    let head_only = method == "HEAD";
    match (method, path) {
        ("GET" | "HEAD", "/metrics") => {
            let body = (routes.render)();
            page(
                &mut stream,
                "200 OK",
                "text/plain; version=0.0.4",
                &body,
                head_only,
            )
        }
        ("GET" | "HEAD", "/healthz" | "/readyz") => match routes.health.as_ref() {
            None => page(
                &mut stream,
                "404 Not Found",
                "text/plain",
                "try /metrics\n",
                head_only,
            ),
            Some(health) => {
                let (ready, body) = health();
                // /healthz always answers 200 (the body carries the
                // verdict); /readyz flips to 503 for load balancers.
                let status = if path == "/healthz" || ready {
                    "200 OK"
                } else {
                    "503 Service Unavailable"
                };
                page(&mut stream, status, "application/json", &body, head_only)
            }
        },
        ("GET" | "HEAD", _) => page(
            &mut stream,
            "404 Not Found",
            "text/plain",
            "try /metrics\n",
            head_only,
        ),
        _ => respond(&mut stream, "405 Method Not Allowed", "GET only\n"),
    }
}

/// Writes one response; a `HEAD` request gets the same headers
/// (including the `Content-Length` the `GET` body would have) with
/// the body withheld.
fn page(
    stream: &mut TcpStream,
    status: &str,
    content_type: &str,
    body: &str,
    head_only: bool,
) -> std::io::Result<()> {
    let header = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(header.as_bytes())?;
    if !head_only {
        stream.write_all(body.as_bytes())?;
    }
    stream.flush()
}

fn respond(stream: &mut TcpStream, status: &str, body: &str) -> std::io::Result<()> {
    page(stream, status, "text/plain", body, false)
}

/// Fetches `path` from a [`MetricsServer`] and returns `(status_line,
/// body)`. A plain blocking client, exported for tests and the scrape
/// acceptance suite so they need no external HTTP tooling.
///
/// # Errors
///
/// Propagates connect/read/write failures and malformed responses as
/// `io::Error`.
pub fn scrape(addr: SocketAddr, path: &str) -> std::io::Result<(String, String)> {
    scrape_method(addr, "GET", path)
}

/// Like [`scrape`], with the request method chosen by the caller —
/// how tests probe `HEAD` handling. Returns `(status_line, body)`;
/// for `HEAD` the body is empty while the headers still carry the
/// `GET` content length.
///
/// # Errors
///
/// Propagates connect/read/write failures and malformed responses as
/// `io::Error`.
pub fn scrape_method(
    addr: SocketAddr,
    method: &str,
    path: &str,
) -> std::io::Result<(String, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(READ_TIMEOUT))?;
    let request =
        format!("{method} {path} HTTP/1.1\r\nHost: gridwatch\r\nConnection: close\r\n\r\n");
    stream.write_all(request.as_bytes())?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let (head, body) = response.split_once("\r\n\r\n").ok_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::InvalidData, "no header terminator")
    })?;
    let status = head.lines().next().unwrap_or("").to_string();
    Ok((status, body.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn serves_live_metrics_and_shuts_down() {
        let scrapes = Arc::new(AtomicU64::new(0));
        let counted = Arc::clone(&scrapes);
        let server = MetricsServer::bind("127.0.0.1:0", move || {
            let n = counted.fetch_add(1, Ordering::SeqCst) + 1;
            format!("gw_scrapes_total {n}\n")
        })
        .unwrap();
        let addr = server.local_addr();

        let (status, body) = scrape(addr, "/metrics").unwrap();
        assert_eq!(status, "HTTP/1.1 200 OK");
        assert_eq!(body, "gw_scrapes_total 1\n");
        // Live state: a second scrape sees the updated value.
        let (_, body) = scrape(addr, "/metrics").unwrap();
        assert_eq!(body, "gw_scrapes_total 2\n");

        server.shutdown();
        // The port is released: a fresh bind on the same address works.
        assert!(TcpListener::bind(addr).is_ok());
    }

    #[test]
    fn wrong_paths_and_methods_are_refused() {
        let server = MetricsServer::bind("127.0.0.1:0", || "x 1\n".to_string()).unwrap();
        let addr = server.local_addr();
        let (status, _) = scrape(addr, "/").unwrap();
        assert_eq!(status, "HTTP/1.1 404 Not Found");
        // Without a health closure, /healthz keeps the old 404.
        let (status, _) = scrape(addr, "/healthz").unwrap();
        assert_eq!(status, "HTTP/1.1 404 Not Found");

        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(b"POST /metrics HTTP/1.1\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 405"), "{response}");
    }

    #[test]
    fn garbage_request_does_not_kill_the_server() {
        let server = MetricsServer::bind("127.0.0.1:0", || "ok 1\n".to_string()).unwrap();
        let addr = server.local_addr();
        {
            let mut stream = TcpStream::connect(addr).unwrap();
            stream.write_all(b"\x00\x01\x02 garbage\r\n\r\n").unwrap();
        }
        // Still serving afterwards.
        let (status, body) = scrape(addr, "/metrics").unwrap();
        assert_eq!(status, "HTTP/1.1 200 OK");
        assert_eq!(body, "ok 1\n");
    }

    /// Load-balancer and Prometheus liveness probes send `HEAD`: the
    /// server must answer headers-only (with the `GET` content length)
    /// instead of 405.
    #[test]
    fn head_requests_get_headers_only() {
        let server = MetricsServer::bind_with_health(
            "127.0.0.1:0",
            || "gw_up 1\n".to_string(),
            || (true, "{\"status\":\"ok\"}".to_string()),
        )
        .unwrap();
        let addr = server.local_addr();

        let (status, body) = scrape_method(addr, "HEAD", "/metrics").unwrap();
        assert_eq!(status, "HTTP/1.1 200 OK");
        assert_eq!(body, "", "HEAD must not carry a body");
        let (status, body) = scrape_method(addr, "HEAD", "/healthz").unwrap();
        assert_eq!(status, "HTTP/1.1 200 OK");
        assert_eq!(body, "");

        // The advertised length matches what GET would serve.
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(b"HEAD /metrics HTTP/1.1\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(
            response.contains("Content-Length: 8"),
            "headers: {response}"
        );
        // And the server still answers a normal GET afterwards.
        let (_, body) = scrape(addr, "/metrics").unwrap();
        assert_eq!(body, "gw_up 1\n");
    }

    #[test]
    fn healthz_and_readyz_serve_the_health_document() {
        let degraded = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&degraded);
        let server = MetricsServer::bind_with_health(
            "127.0.0.1:0",
            || "gw_up 1\n".to_string(),
            move || {
                if flag.load(Ordering::SeqCst) {
                    (false, "{\"status\":\"degraded\"}".to_string())
                } else {
                    (true, "{\"status\":\"ok\"}".to_string())
                }
            },
        )
        .unwrap();
        let addr = server.local_addr();

        let (status, body) = scrape(addr, "/healthz").unwrap();
        assert_eq!(status, "HTTP/1.1 200 OK");
        assert_eq!(body, "{\"status\":\"ok\"}");
        let (status, _) = scrape(addr, "/readyz").unwrap();
        assert_eq!(status, "HTTP/1.1 200 OK");

        degraded.store(true, Ordering::SeqCst);
        // healthz stays 200 (the document carries the verdict) while
        // readyz flips to 503 for dumb load balancers.
        let (status, body) = scrape(addr, "/healthz").unwrap();
        assert_eq!(status, "HTTP/1.1 200 OK");
        assert_eq!(body, "{\"status\":\"degraded\"}");
        let (status, body) = scrape(addr, "/readyz").unwrap();
        assert_eq!(status, "HTTP/1.1 503 Service Unavailable");
        assert_eq!(body, "{\"status\":\"degraded\"}");
    }

    /// A scraper that connects, sends a request, and never reads the
    /// response must not wedge the serial accept loop: the write
    /// deadline drops it and the next scraper is served.
    #[test]
    fn stalled_reader_cannot_wedge_the_accept_loop() {
        // A response far larger than the kernel socket buffers, so the
        // server's write genuinely blocks on the stalled peer.
        let big = "gw_filler_total 1\n".repeat(400_000);
        let server = MetricsServer::bind_routes(
            "127.0.0.1:0",
            Routes {
                render: Box::new(move || big.clone()),
                health: None,
                write_timeout: Duration::from_millis(200),
            },
        )
        .unwrap();
        let addr = server.local_addr();

        // The slow-loris: request sent, response never read. Keep the
        // socket alive so the server is genuinely blocked on us.
        let mut loris = TcpStream::connect(addr).unwrap();
        loris
            .write_all(b"GET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap();

        // A well-behaved scrape right behind it must still complete.
        let start = std::time::Instant::now();
        let (status, _) = scrape(addr, "/metrics").unwrap();
        assert_eq!(status, "HTTP/1.1 200 OK");
        assert!(
            start.elapsed() < Duration::from_secs(3),
            "accept loop stalled {}ms behind a slow-loris reader",
            start.elapsed().as_millis()
        );
        drop(loris);
    }
}
