//! A minimal self-contained HTTP/1.1 responder for `GET /metrics`.
//!
//! This is deliberately not a web server: one accept loop on its own
//! thread, connections handled serially, request bodies ignored, every
//! response `Connection: close`. That is all a Prometheus scraper (or
//! `curl`) needs, and it keeps the dependency count at zero — the
//! container is offline. The render closure is called once per scrape,
//! so the endpoint always serves live state.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Cap on request head size; anything longer is answered 400.
const MAX_REQUEST_BYTES: usize = 8 * 1024;

/// How long a scraper may dawdle sending its request.
const READ_TIMEOUT: Duration = Duration::from_secs(5);

/// A live metrics endpoint. Shuts down on [`MetricsServer::shutdown`]
/// or drop.
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for MetricsServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MetricsServer({})", self.addr)
    }
}

impl MetricsServer {
    /// Binds `addr` (e.g. `127.0.0.1:0`) and serves `GET /metrics`
    /// with whatever `render` returns, until shutdown.
    ///
    /// # Errors
    ///
    /// Fails when the address cannot be bound.
    pub fn bind<F>(addr: &str, render: F) -> std::io::Result<MetricsServer>
    where
        F: Fn() -> String + Send + 'static,
    {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let loop_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("gw-metrics".to_string())
            .spawn(move || accept_loop(listener, loop_stop, render))?;
        Ok(MetricsServer {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (with the OS-assigned port resolved).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the endpoint and joins its thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        if self.handle.is_some() {
            self.stop_and_join();
        }
    }
}

fn accept_loop<F: Fn() -> String>(listener: TcpListener, stop: Arc<AtomicBool>, render: F) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if stop.load(Ordering::SeqCst) {
            return;
        }
        // Serial handling: a scrape is one small read and one write;
        // a misbehaving scraper only stalls the metrics port, never
        // the pipeline.
        let _ = handle_connection(stream, &render);
    }
}

/// Reads the request head and answers it. Errors are per-connection
/// and simply close the socket.
fn handle_connection<F: Fn() -> String>(mut stream: TcpStream, render: &F) -> std::io::Result<()> {
    stream.set_read_timeout(Some(READ_TIMEOUT))?;
    let mut head = Vec::new();
    let mut buf = [0u8; 1024];
    loop {
        if head.windows(4).any(|w| w == b"\r\n\r\n") || head.windows(2).any(|w| w == b"\n\n") {
            break;
        }
        if head.len() >= MAX_REQUEST_BYTES {
            return respond(&mut stream, "400 Bad Request", "request too large\n");
        }
        let n = stream.read(&mut buf)?;
        if n == 0 {
            return Ok(());
        }
        head.extend_from_slice(&buf[..n]);
    }
    let head = String::from_utf8_lossy(&head);
    let mut parts = head.lines().next().unwrap_or("").split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    match (method, path) {
        ("GET", "/metrics") => {
            let body = render();
            let header = format!(
                "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
                body.len()
            );
            stream.write_all(header.as_bytes())?;
            stream.write_all(body.as_bytes())?;
            stream.flush()
        }
        ("GET", _) => respond(&mut stream, "404 Not Found", "try /metrics\n"),
        _ => respond(&mut stream, "405 Method Not Allowed", "GET only\n"),
    }
}

fn respond(stream: &mut TcpStream, status: &str, body: &str) -> std::io::Result<()> {
    let header = format!(
        "HTTP/1.1 {status}\r\nContent-Type: text/plain\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(header.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Fetches `path` from a [`MetricsServer`] and returns `(status_line,
/// body)`. A plain blocking client, exported for tests and the scrape
/// acceptance suite so they need no external HTTP tooling.
///
/// # Errors
///
/// Propagates connect/read/write failures and malformed responses as
/// `io::Error`.
pub fn scrape(addr: SocketAddr, path: &str) -> std::io::Result<(String, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(READ_TIMEOUT))?;
    let request = format!("GET {path} HTTP/1.1\r\nHost: gridwatch\r\nConnection: close\r\n\r\n");
    stream.write_all(request.as_bytes())?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let (head, body) = response.split_once("\r\n\r\n").ok_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::InvalidData, "no header terminator")
    })?;
    let status = head.lines().next().unwrap_or("").to_string();
    Ok((status, body.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn serves_live_metrics_and_shuts_down() {
        let scrapes = Arc::new(AtomicU64::new(0));
        let counted = Arc::clone(&scrapes);
        let server = MetricsServer::bind("127.0.0.1:0", move || {
            let n = counted.fetch_add(1, Ordering::SeqCst) + 1;
            format!("gw_scrapes_total {n}\n")
        })
        .unwrap();
        let addr = server.local_addr();

        let (status, body) = scrape(addr, "/metrics").unwrap();
        assert_eq!(status, "HTTP/1.1 200 OK");
        assert_eq!(body, "gw_scrapes_total 1\n");
        // Live state: a second scrape sees the updated value.
        let (_, body) = scrape(addr, "/metrics").unwrap();
        assert_eq!(body, "gw_scrapes_total 2\n");

        server.shutdown();
        // The port is released: a fresh bind on the same address works.
        assert!(TcpListener::bind(addr).is_ok());
    }

    #[test]
    fn wrong_paths_and_methods_are_refused() {
        let server = MetricsServer::bind("127.0.0.1:0", || "x 1\n".to_string()).unwrap();
        let addr = server.local_addr();
        let (status, _) = scrape(addr, "/").unwrap();
        assert_eq!(status, "HTTP/1.1 404 Not Found");

        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(b"POST /metrics HTTP/1.1\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 405"), "{response}");
    }

    #[test]
    fn garbage_request_does_not_kill_the_server() {
        let server = MetricsServer::bind("127.0.0.1:0", || "ok 1\n".to_string()).unwrap();
        let addr = server.local_addr();
        {
            let mut stream = TcpStream::connect(addr).unwrap();
            stream.write_all(b"\x00\x01\x02 garbage\r\n\r\n").unwrap();
        }
        // Still serving afterwards.
        let (status, body) = scrape(addr, "/metrics").unwrap();
        assert_eq!(status, "HTTP/1.1 200 OK");
        assert_eq!(body, "ok 1\n");
    }
}
