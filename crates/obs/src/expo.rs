//! Prometheus text exposition (version 0.0.4) rendering.
//!
//! A tiny builder for the subset of the format gridwatch exposes:
//! `counter` and `gauge` samples with optional labels, plus
//! `histogram` families rendered from a [`LogHistogram`] — cumulative
//! `_bucket{le="..."}` lines over the power-of-two bucket bounds, then
//! `_sum` and `_count`. Everything is plain `u64` arithmetic; the
//! output is deterministic for a given input, which is what lets a
//! golden test pin the format.

use crate::hist::{bucket_upper_bound, LogHistogram};

/// An exposition document under construction.
#[derive(Debug, Default)]
pub struct Exposition {
    out: String,
}

/// Escapes a label value: backslash, double quote, and newline.
fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

fn render_labels(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let body: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    format!("{{{}}}", body.join(","))
}

/// Joins a base label set with the `le` label of a histogram bucket.
fn bucket_labels(labels: &[(&str, &str)], le: &str) -> String {
    let mut body: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    body.push(format!("le=\"{le}\""));
    format!("{{{}}}", body.join(","))
}

impl Exposition {
    /// An empty document.
    pub fn new() -> Exposition {
        Exposition::default()
    }

    /// Writes the `# HELP` / `# TYPE` header for a metric family.
    /// `kind` is one of `counter`, `gauge`, or `histogram`.
    pub fn header(&mut self, name: &str, kind: &str, help: &str) {
        self.out.push_str(&format!("# HELP {name} {help}\n"));
        self.out.push_str(&format!("# TYPE {name} {kind}\n"));
    }

    /// Writes one sample line.
    pub fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: u64) {
        self.out
            .push_str(&format!("{name}{} {value}\n", render_labels(labels)));
    }

    /// Renders a [`LogHistogram`] as a Prometheus histogram: one
    /// cumulative `_bucket` line per stored bucket bound, a closing
    /// `+Inf` bucket, then `_sum` and `_count`.
    pub fn histogram(&mut self, name: &str, labels: &[(&str, &str)], hist: &LogHistogram) {
        let mut cumulative = 0u64;
        for (idx, n) in hist.buckets.iter().enumerate() {
            cumulative += n;
            let le = bucket_upper_bound(idx).to_string();
            self.out.push_str(&format!(
                "{name}_bucket{} {cumulative}\n",
                bucket_labels(labels, &le)
            ));
        }
        self.out.push_str(&format!(
            "{name}_bucket{} {}\n",
            bucket_labels(labels, "+Inf"),
            hist.count
        ));
        let suffix = render_labels(labels);
        self.out
            .push_str(&format!("{name}_sum{suffix} {}\n", hist.sum));
        self.out
            .push_str(&format!("{name}_count{suffix} {}\n", hist.count));
    }

    /// The finished document.
    pub fn finish(self) -> String {
        self.out
    }
}

/// A parsed exposition sample, for tests and scrape validation.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedSample {
    /// Metric name (including any `_bucket`/`_sum`/`_count` suffix).
    pub name: String,
    /// Label pairs in document order.
    pub labels: Vec<(String, String)>,
    /// The sample value.
    pub value: f64,
}

/// Parses exposition text back into samples, skipping comments.
/// Returns `None` if any non-comment line is malformed — the
/// validation half of the scrape acceptance test.
pub fn parse(text: &str) -> Option<Vec<ParsedSample>> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (series, value) = line.rsplit_once(' ')?;
        let value: f64 = value.parse().ok()?;
        let (name, labels) = match series.split_once('{') {
            None => (series.to_string(), Vec::new()),
            Some((name, rest)) => {
                let body = rest.strip_suffix('}')?;
                let mut labels = Vec::new();
                for piece in body.split(',') {
                    let (k, v) = piece.split_once('=')?;
                    let v = v.strip_prefix('"')?.strip_suffix('"')?;
                    labels.push((k.to_string(), v.replace("\\\"", "\"").replace("\\\\", "\\")));
                }
                (name.to_string(), labels)
            }
        };
        out.push(ParsedSample {
            name,
            labels,
            value,
        });
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_render_plainly() {
        let mut expo = Exposition::new();
        expo.header(
            "gw_reports_total",
            "counter",
            "Merged step reports emitted.",
        );
        expo.sample("gw_reports_total", &[], 42);
        expo.sample("gw_queue_depth", &[("shard", "1")], 7);
        let text = expo.finish();
        assert!(text.contains("# HELP gw_reports_total Merged step reports emitted.\n"));
        assert!(text.contains("# TYPE gw_reports_total counter\n"));
        assert!(text.contains("gw_reports_total 42\n"));
        assert!(text.contains("gw_queue_depth{shard=\"1\"} 7\n"));
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_closed() {
        let mut hist = LogHistogram::new();
        for v in [0u64, 1, 2, 3, 900] {
            hist.record(v);
        }
        let mut expo = Exposition::new();
        expo.histogram("gw_lat", &[("shard", "0")], &hist);
        let text = expo.finish();
        let expected = "\
gw_lat_bucket{shard=\"0\",le=\"0\"} 1
gw_lat_bucket{shard=\"0\",le=\"1\"} 2
gw_lat_bucket{shard=\"0\",le=\"3\"} 4
gw_lat_bucket{shard=\"0\",le=\"7\"} 4
gw_lat_bucket{shard=\"0\",le=\"15\"} 4
gw_lat_bucket{shard=\"0\",le=\"31\"} 4
gw_lat_bucket{shard=\"0\",le=\"63\"} 4
gw_lat_bucket{shard=\"0\",le=\"127\"} 4
gw_lat_bucket{shard=\"0\",le=\"255\"} 4
gw_lat_bucket{shard=\"0\",le=\"511\"} 4
gw_lat_bucket{shard=\"0\",le=\"1023\"} 5
gw_lat_bucket{shard=\"0\",le=\"+Inf\"} 5
gw_lat_sum{shard=\"0\"} 906
gw_lat_count{shard=\"0\"} 5
";
        assert_eq!(text, expected);
    }

    #[test]
    fn label_values_are_escaped() {
        let mut expo = Exposition::new();
        expo.sample("gw_conn", &[("peer", "a\"b\\c")], 1);
        assert_eq!(expo.finish(), "gw_conn{peer=\"a\\\"b\\\\c\"} 1\n");
    }

    #[test]
    fn rendered_text_parses_back() {
        let mut hist = LogHistogram::new();
        hist.record(5);
        hist.record(1000);
        let mut expo = Exposition::new();
        expo.header("gw_lat", "histogram", "latency");
        expo.histogram("gw_lat", &[("shard", "2")], &hist);
        expo.sample("gw_up", &[], 1);
        let text = expo.finish();
        let samples = parse(&text).expect("well-formed exposition");
        let count = samples
            .iter()
            .find(|s| s.name == "gw_lat_count")
            .expect("count sample");
        assert_eq!(count.value, 2.0);
        assert_eq!(count.labels, vec![("shard".to_string(), "2".to_string())]);
        let inf = samples
            .iter()
            .find(|s| {
                s.name == "gw_lat_bucket" && s.labels.iter().any(|(k, v)| k == "le" && v == "+Inf")
            })
            .expect("+Inf bucket");
        assert_eq!(inf.value, 2.0);
        assert!(samples.iter().any(|s| s.name == "gw_up" && s.value == 1.0));
    }

    #[test]
    fn malformed_lines_fail_parsing() {
        assert!(parse("gw_x{broken 1").is_none());
        assert!(parse("gw_x notanumber").is_none());
        assert!(parse("# just a comment\n")
            .map(|s| s.is_empty())
            .unwrap_or(false));
    }
}
