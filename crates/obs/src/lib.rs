//! gridwatch-obs: self-contained observability for the serving
//! pipeline.
//!
//! The paper's thesis is that operators diagnose distributed systems
//! by watching measurement streams; this crate gives gridwatch's own
//! pipeline the same treatment, with zero external dependencies:
//!
//! * [`trace`] — span tracing over the snapshot lifecycle
//!   (`ingest → decode → sequence → route → score → merge → report`)
//!   with a branch-only disabled path;
//! * [`hist`] — log-bucketed, exactly-mergeable latency histograms
//!   (p50/p90/p99/p99.9) for per-shard and cross-process roll-ups;
//! * [`expo`] + [`http`] — Prometheus text exposition served live
//!   over a minimal `GET /metrics` responder;
//! * [`recorder`] — a flight recorder ring of recent pipeline events,
//!   dumped on alarm, panic, or shutdown;
//! * [`exemplar`] — tail-based trace exemplars: full per-snapshot span
//!   trees retained only for alarmed/slow/head-sampled snapshots;
//! * [`health`] — the pinned `/healthz` report schema and rolling
//!   burn-rate gauges;
//! * [`log`] — the leveled, rate-limited structured logger behind the
//!   [`error!`], [`warn!`], [`info!`], and [`debug!`] macros
//!   (filtered by `GRIDWATCH_LOG`).

pub mod exemplar;
pub mod expo;
pub mod health;
pub mod hist;
pub mod http;
pub mod log;
pub mod recorder;
pub mod trace;

pub use exemplar::{
    ExemplarConfig, ExemplarPosture, ExemplarTracer, SpanSlice, TraceExemplar, MAX_SPANS_PER_TRACE,
};
pub use expo::{parse as parse_exposition, Exposition, ParsedSample};
pub use health::{BurnGauges, BurnSample, HealthReport, ShardHealth, BURN_WINDOWS_SECS};
pub use hist::{bucket_index, bucket_upper_bound, LogHistogram, MAX_BUCKETS};
pub use http::{scrape, scrape_method, MetricsServer};
pub use log::Level;
pub use recorder::{FlightEvent, FlightRecorder};
pub use trace::{Span, Stage, Tracer};

/// The observability handles one pipeline component carries: a tracer
/// (disabled by default), a tail-sampling exemplar collector (also
/// disabled by default), and a flight recorder (always on — events
/// are rare and the ring is bounded). Cloning shares all three.
#[derive(Debug, Clone, Default)]
pub struct PipelineObs {
    /// Span tracing over the pipeline stages.
    pub tracer: Tracer,
    /// Tail-based per-snapshot trace exemplars.
    pub exemplar: ExemplarTracer,
    /// The recent-event ring.
    pub recorder: FlightRecorder,
}

impl PipelineObs {
    /// Tracing disabled, recorder on. Identical to `default()`.
    pub fn disabled() -> PipelineObs {
        PipelineObs::default()
    }

    /// Tracing enabled from the start (exemplar capture stays off
    /// until explicitly enabled with a config).
    pub fn enabled() -> PipelineObs {
        PipelineObs {
            tracer: Tracer::enabled(),
            exemplar: ExemplarTracer::disabled(),
            recorder: FlightRecorder::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_obs_traces_nothing_but_records_events() {
        let obs = PipelineObs::default();
        assert!(!obs.tracer.is_enabled());
        drop(obs.tracer.span(Stage::Score));
        assert_eq!(obs.tracer.stage(Stage::Score).count, 0);
        obs.recorder.record("checkpoint", "id 0");
        assert_eq!(obs.recorder.snapshot().len(), 1);
    }

    #[test]
    fn enabled_obs_shares_state_across_clones() {
        let obs = PipelineObs::enabled();
        let clone = obs.clone();
        drop(clone.tracer.span(Stage::Merge));
        assert_eq!(obs.tracer.stage(Stage::Merge).count, 1);
        clone.recorder.record("conn-open", "peer x");
        assert_eq!(obs.recorder.snapshot().len(), 1);
    }
}
