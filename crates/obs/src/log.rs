//! A leveled, rate-limited stderr logger.
//!
//! The serving tier used to report faults through bare `eprintln!`,
//! which has two operational problems: nothing can silence it, and a
//! flood of identical faults (a client stuck in a reconnect loop, a
//! partitioned worker) turns stderr into the bottleneck. This module
//! replaces those sites with leveled macros
//! ([`error!`](crate::error), [`warn!`](crate::warn),
//! [`info!`](crate::info), [`debug!`](crate::debug)) that:
//!
//! * filter by the `GRIDWATCH_LOG` environment variable
//!   (`off`/`error`/`warn`/`info`/`debug`, default `info`), read once;
//! * rate-limit **per call site**: each site emits at most one line
//!   per 100ms window, counts what it swallowed, and reports the
//!   suppressed total on its next emitted line.
//!
//! Lines look like `[warn net] message (12 similar suppressed)` —
//! message content is unchanged from the `eprintln!` era, so tests
//! asserting on stderr content keep working.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Log severity, most severe first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// A fault that degrades service (a dead worker, a failed write).
    Error,
    /// A fault the server absorbed (a bad frame, a slow client).
    Warn,
    /// Lifecycle events (connections, checkpoints, migrations).
    Info,
    /// Per-frame chatter, off by default.
    Debug,
}

impl Level {
    /// The level's lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }
}

/// Parses a `GRIDWATCH_LOG` value: the maximum level to emit, or
/// `None` for `off`. Unrecognized values keep the default (`Info`) so
/// a typo never silences fault reporting.
pub fn parse_filter(raw: &str) -> Option<Level> {
    match raw.trim().to_ascii_lowercase().as_str() {
        "off" | "none" => None,
        "error" => Some(Level::Error),
        "warn" | "warning" => Some(Level::Warn),
        "debug" | "trace" => Some(Level::Debug),
        _ => Some(Level::Info),
    }
}

fn max_level() -> Option<Level> {
    static FILTER: OnceLock<Option<Level>> = OnceLock::new();
    *FILTER.get_or_init(|| match std::env::var("GRIDWATCH_LOG") {
        Ok(raw) => parse_filter(&raw),
        Err(_) => Some(Level::Info),
    })
}

/// Whether a record at `level` would be emitted (rate limits aside).
pub fn enabled(level: Level) -> bool {
    max_level().is_some_and(|max| level <= max)
}

/// Monotonic nanoseconds since the first call (never returns 0, which
/// [`Site`] uses as its "never emitted" sentinel).
fn now_ns() -> u64 {
    static START: OnceLock<Instant> = OnceLock::new();
    START.get_or_init(Instant::now).elapsed().as_nanos() as u64 + 1
}

/// Minimum spacing between emitted lines from one call site.
const MIN_INTERVAL_NS: u64 = 100_000_000;

/// Per-call-site rate-limiter state; the macros embed one `static`
/// `Site` per expansion.
pub struct Site {
    last_emit_ns: AtomicU64,
    suppressed: AtomicU64,
}

impl Site {
    /// A fresh site that has never emitted.
    pub const fn new() -> Site {
        Site {
            last_emit_ns: AtomicU64::new(0),
            suppressed: AtomicU64::new(0),
        }
    }
}

impl Default for Site {
    fn default() -> Site {
        Site::new()
    }
}

/// Emits one record, honouring the level filter and the site's rate
/// limit. Called through the macros, not directly.
pub fn log(site: &Site, level: Level, target: &str, args: std::fmt::Arguments<'_>) {
    if !enabled(level) {
        return;
    }
    let now = now_ns();
    let last = site.last_emit_ns.load(Ordering::Relaxed);
    if last != 0 && now.saturating_sub(last) < MIN_INTERVAL_NS {
        site.suppressed.fetch_add(1, Ordering::Relaxed);
        return;
    }
    site.last_emit_ns.store(now, Ordering::Relaxed);
    let suppressed = site.suppressed.swap(0, Ordering::Relaxed);
    if suppressed > 0 {
        eprintln!(
            "[{} {target}] {args} ({suppressed} similar suppressed)",
            level.name()
        );
    } else {
        eprintln!("[{} {target}] {args}", level.name());
    }
}

/// Logs a service-degrading fault.
#[macro_export]
macro_rules! error {
    ($target:expr, $($arg:tt)+) => {{
        static SITE: $crate::log::Site = $crate::log::Site::new();
        $crate::log::log(&SITE, $crate::log::Level::Error, $target, format_args!($($arg)+));
    }};
}

/// Logs an absorbed fault.
#[macro_export]
macro_rules! warn {
    ($target:expr, $($arg:tt)+) => {{
        static SITE: $crate::log::Site = $crate::log::Site::new();
        $crate::log::log(&SITE, $crate::log::Level::Warn, $target, format_args!($($arg)+));
    }};
}

/// Logs a lifecycle event.
#[macro_export]
macro_rules! info {
    ($target:expr, $($arg:tt)+) => {{
        static SITE: $crate::log::Site = $crate::log::Site::new();
        $crate::log::log(&SITE, $crate::log::Level::Info, $target, format_args!($($arg)+));
    }};
}

/// Logs per-frame chatter (hidden unless `GRIDWATCH_LOG=debug`).
#[macro_export]
macro_rules! debug {
    ($target:expr, $($arg:tt)+) => {{
        static SITE: $crate::log::Site = $crate::log::Site::new();
        $crate::log::log(&SITE, $crate::log::Level::Debug, $target, format_args!($($arg)+));
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filter_parsing_is_forgiving() {
        assert_eq!(parse_filter("off"), None);
        assert_eq!(parse_filter("ERROR"), Some(Level::Error));
        assert_eq!(parse_filter(" warn "), Some(Level::Warn));
        assert_eq!(parse_filter("info"), Some(Level::Info));
        assert_eq!(parse_filter("debug"), Some(Level::Debug));
        assert_eq!(
            parse_filter("typo"),
            Some(Level::Info),
            "typos keep the default"
        );
    }

    #[test]
    fn levels_order_most_severe_first() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Warn < Level::Info);
        assert!(Level::Info < Level::Debug);
    }

    #[test]
    fn site_rate_limit_counts_suppressions() {
        let site = Site::new();
        // First emit goes through (stderr side effect; content is
        // asserted by the CLI fault tests, here we check the counters).
        log(&site, Level::Error, "test", format_args!("one"));
        let first = site.last_emit_ns.load(Ordering::Relaxed);
        assert_ne!(first, 0, "first record emits");
        log(&site, Level::Error, "test", format_args!("two"));
        assert_eq!(
            site.suppressed.load(Ordering::Relaxed),
            1,
            "burst suppressed"
        );
        assert_eq!(site.last_emit_ns.load(Ordering::Relaxed), first);
    }

    #[test]
    fn filtered_levels_touch_nothing() {
        // Default filter is info (tests do not set GRIDWATCH_LOG).
        let site = Site::new();
        log(&site, Level::Debug, "test", format_args!("hidden"));
        assert_eq!(site.last_emit_ns.load(Ordering::Relaxed), 0);
        assert_eq!(site.suppressed.load(Ordering::Relaxed), 0);
    }
}
