//! Tail-based trace exemplars: full per-snapshot span trees for the
//! interesting tail of the pipeline.
//!
//! The [`crate::trace::Tracer`] aggregates stage latencies into
//! histograms, which answers "how slow is the merge stage" but not
//! "why was *this* alarmed snapshot slow". An [`ExemplarTracer`] keeps
//! the causal record for exactly the snapshots worth keeping: a trace
//! context keyed by `(source, seq)` is opened at admission, stage
//! [`SpanSlice`]s accumulate as the snapshot crosses the pipeline
//! (including slices that rode home on a fabric board frame), and
//! `finalize` retains the assembled [`TraceExemplar`] in a bounded
//! ring only when the snapshot alarmed, breached a per-stage latency
//! budget, or matched a 1-in-N head sample — Dapper-style tail
//! sampling, sized for drill-down rather than statistics.
//!
//! The disabled path follows the same hard-gated discipline as the
//! tracer: one relaxed load and a branch, no clock read, no lock, no
//! allocation (`obs_overhead` bench-gates it at ≤15ns/step).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use gridwatch_sync::{classes, OrderedMutex};
use serde::{Deserialize, Serialize};

use crate::trace::Stage;

/// Spans kept per trace, bounding the memory of one pending entry.
pub const MAX_SPANS_PER_TRACE: usize = 64;

/// One stage span inside an exemplar trace. All fields default so the
/// struct can ride fabric frames and persisted records without
/// breaking older readers.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpanSlice {
    /// Stage name (`ingest` ... `report`).
    #[serde(default)]
    pub stage: String,
    /// Span start, in nanoseconds from the recording process's trace
    /// epoch. Offsets are per-process: slices recorded by a remote
    /// worker keep the worker's own timeline.
    #[serde(default)]
    pub start_ns: u64,
    /// Span duration in nanoseconds.
    #[serde(default)]
    pub dur_ns: u64,
    /// Owning shard; `None` when the stage is not shard-bound.
    #[serde(default)]
    pub shard: Option<u64>,
    /// Thread/process attribution (`aggregator`, `worker-2`, ...).
    #[serde(default)]
    pub worker: String,
}

impl SpanSlice {
    /// A slice for `stage` with no shard attribution.
    pub fn new(stage: Stage, start_ns: u64, dur_ns: u64, worker: &str) -> SpanSlice {
        SpanSlice {
            stage: stage.name().to_string(),
            start_ns,
            dur_ns,
            shard: None,
            worker: worker.to_string(),
        }
    }

    /// A slice attributed to one shard.
    pub fn sharded(
        stage: Stage,
        start_ns: u64,
        dur_ns: u64,
        shard: u64,
        worker: &str,
    ) -> SpanSlice {
        SpanSlice {
            shard: Some(shard),
            ..SpanSlice::new(stage, start_ns, dur_ns, worker)
        }
    }
}

/// One retained trace: the full causal record of one snapshot's trip
/// through the pipeline. All fields default (persisted as a history
/// store record; older readers must keep parsing).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceExemplar {
    /// The snapshot's origin (`local`, `coordinator`, or a wire source).
    #[serde(default)]
    pub source: String,
    /// The snapshot's sequence number at the merge point.
    #[serde(default)]
    pub seq: u64,
    /// The snapshot's trace instant, in seconds.
    #[serde(default)]
    pub at: u64,
    /// Whether this snapshot raised at least one alarm.
    #[serde(default)]
    pub alarmed: bool,
    /// Whether any stage exceeded the per-stage latency budget.
    #[serde(default)]
    pub breached: bool,
    /// Whether the 1-in-N head sample selected this snapshot.
    #[serde(default)]
    pub head_sampled: bool,
    /// Sum of all span durations, in nanoseconds.
    #[serde(default)]
    pub total_ns: u64,
    /// The stage spans, in recording order.
    #[serde(default)]
    pub spans: Vec<SpanSlice>,
}

impl TraceExemplar {
    /// Approximate heap + inline footprint, for the posture gauge.
    pub fn approx_bytes(&self) -> u64 {
        let fixed = std::mem::size_of::<TraceExemplar>() as u64;
        let spans: u64 = self
            .spans
            .iter()
            .map(|s| {
                std::mem::size_of::<SpanSlice>() as u64
                    + s.stage.len() as u64
                    + s.worker.len() as u64
            })
            .sum();
        fixed + self.source.len() as u64 + spans
    }
}

/// Tail-sampling knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExemplarConfig {
    /// Retain every `head_sample_every`-th sequence regardless of
    /// outcome; 0 disables head sampling.
    pub head_sample_every: u64,
    /// Retain any trace with a stage span longer than this; 0 disables
    /// the budget rule.
    pub stage_budget_ns: u64,
    /// Retained-exemplar ring capacity.
    pub ring_capacity: usize,
    /// In-flight trace table capacity; admissions past it evict the
    /// oldest pending trace.
    pub pending_capacity: usize,
}

impl Default for ExemplarConfig {
    fn default() -> ExemplarConfig {
        ExemplarConfig {
            head_sample_every: 0,
            stage_budget_ns: 0,
            ring_capacity: 64,
            pending_capacity: 256,
        }
    }
}

/// Capture counters for the CI posture trend line.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExemplarPosture {
    /// Traces ever retained into the ring.
    pub retained: u64,
    /// Retained traces since evicted by ring overflow.
    pub dropped: u64,
    /// Approximate bytes currently held by the ring.
    pub bytes: u64,
}

#[derive(Debug)]
struct PendingTrace {
    source: String,
    at: u64,
    spans: Vec<SpanSlice>,
}

#[derive(Debug, Default)]
struct Ring {
    entries: std::collections::VecDeque<TraceExemplar>,
    /// Global index of `entries[0]`; advances on eviction so every
    /// retained trace keeps a stable index for incremental drains.
    base: u64,
    bytes: u64,
}

#[derive(Debug)]
struct Core {
    enabled: AtomicBool,
    head_sample_every: AtomicU64,
    stage_budget_ns: AtomicU64,
    ring_capacity: usize,
    pending_capacity: usize,
    epoch: Instant,
    /// Traces opened but not yet finalized, keyed by sequence number.
    pending: OrderedMutex<BTreeMap<u64, PendingTrace>>,
    ring: OrderedMutex<Ring>,
    /// Pending traces evicted before finalize (admission outran the
    /// table) — visible so silent capture loss never looks like "no
    /// interesting traces".
    pending_evicted: AtomicU64,
}

/// A shareable tail-sampling trace collector. Clones share one core;
/// the default handle is disabled and stays free.
#[derive(Clone)]
pub struct ExemplarTracer {
    core: Arc<Core>,
}

impl Default for ExemplarTracer {
    fn default() -> ExemplarTracer {
        ExemplarTracer::disabled()
    }
}

impl std::fmt::Debug for ExemplarTracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ExemplarTracer({})",
            if self.is_enabled() {
                "enabled"
            } else {
                "disabled"
            }
        )
    }
}

impl ExemplarTracer {
    fn with_enabled(enabled: bool, config: ExemplarConfig) -> ExemplarTracer {
        ExemplarTracer {
            core: Arc::new(Core {
                enabled: AtomicBool::new(enabled),
                head_sample_every: AtomicU64::new(config.head_sample_every),
                stage_budget_ns: AtomicU64::new(config.stage_budget_ns),
                ring_capacity: config.ring_capacity.max(1),
                pending_capacity: config.pending_capacity.max(1),
                epoch: Instant::now(),
                pending: OrderedMutex::new(classes::EXEMPLAR_PENDING, BTreeMap::new()),
                ring: OrderedMutex::new(classes::EXEMPLAR_RING, Ring::default()),
                pending_evicted: AtomicU64::new(0),
            }),
        }
    }

    /// A disabled collector: every call is one relaxed load + branch.
    pub fn disabled() -> ExemplarTracer {
        ExemplarTracer::with_enabled(false, ExemplarConfig::default())
    }

    /// An enabled collector with the given tail-sampling rules.
    pub fn enabled(config: ExemplarConfig) -> ExemplarTracer {
        ExemplarTracer::with_enabled(true, config)
    }

    /// Whether capture is on.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.core.enabled.load(Ordering::Relaxed)
    }

    /// Turns capture on for every clone, adopting `config`'s sampling
    /// rules (ring/pending capacities stay as constructed) — how a
    /// `shard-worker` lights up when the coordinator's `Hello` asks.
    pub fn enable(&self, config: ExemplarConfig) {
        self.core
            .head_sample_every
            .store(config.head_sample_every, Ordering::Relaxed);
        self.core
            .stage_budget_ns
            .store(config.stage_budget_ns, Ordering::Relaxed);
        self.core.enabled.store(true, Ordering::Relaxed);
    }

    /// Nanoseconds since this collector's trace epoch — the timeline
    /// `SpanSlice::start_ns` offsets are measured on.
    pub fn now_ns(&self) -> u64 {
        self.core.epoch.elapsed().as_nanos() as u64
    }

    /// Opens the trace context for sequence `seq` from `source`, filed
    /// at trace-second `at`. When the pending table is full, the
    /// oldest in-flight trace is evicted (and counted) — admission
    /// must never block on capture.
    pub fn open(&self, seq: u64, source: &str, at: u64) {
        if !self.is_enabled() {
            return;
        }
        let mut pending = self.core.pending.lock();
        if pending.len() >= self.core.pending_capacity {
            let oldest = pending.keys().next().copied();
            if let Some(oldest) = oldest {
                pending.remove(&oldest);
                self.core.pending_evicted.fetch_add(1, Ordering::Relaxed);
            }
        }
        pending.insert(
            seq,
            PendingTrace {
                source: source.to_string(),
                at,
                spans: Vec::new(),
            },
        );
    }

    /// Appends one span to sequence `seq`'s trace. A miss (never
    /// opened, already finalized, or evicted) is a silent no-op.
    pub fn record(&self, seq: u64, slice: SpanSlice) {
        if !self.is_enabled() {
            return;
        }
        let mut pending = self.core.pending.lock();
        if let Some(trace) = pending.get_mut(&seq) {
            if trace.spans.len() < MAX_SPANS_PER_TRACE {
                trace.spans.push(slice);
            }
        }
    }

    /// Appends several spans at once — the propagation path for slices
    /// that crossed the fabric wire on a board frame.
    pub fn record_slices(&self, seq: u64, slices: &[SpanSlice]) {
        if !self.is_enabled() || slices.is_empty() {
            return;
        }
        let mut pending = self.core.pending.lock();
        if let Some(trace) = pending.get_mut(&seq) {
            for slice in slices {
                if trace.spans.len() >= MAX_SPANS_PER_TRACE {
                    break;
                }
                trace.spans.push(slice.clone());
            }
        }
    }

    /// Closes sequence `seq`'s trace and applies the tail-sampling
    /// decision: the trace is retained iff it alarmed, any span
    /// breached the stage budget, or the head sample selected it.
    /// Returns whether it was retained.
    pub fn finalize(&self, seq: u64, alarmed: bool) -> bool {
        if !self.is_enabled() {
            return false;
        }
        let trace = self.core.pending.lock().remove(&seq);
        let Some(trace) = trace else { return false };
        let budget = self.core.stage_budget_ns.load(Ordering::Relaxed);
        let head_every = self.core.head_sample_every.load(Ordering::Relaxed);
        let breached = budget > 0 && trace.spans.iter().any(|s| s.dur_ns > budget);
        let head_sampled = head_every > 0 && seq.is_multiple_of(head_every);
        if !(alarmed || breached || head_sampled) {
            return false;
        }
        let exemplar = TraceExemplar {
            source: trace.source,
            seq,
            at: trace.at,
            alarmed,
            breached,
            head_sampled,
            total_ns: trace.spans.iter().map(|s| s.dur_ns).sum(),
            spans: trace.spans,
        };
        let bytes = exemplar.approx_bytes();
        let mut ring = self.core.ring.lock();
        if ring.entries.len() >= self.core.ring_capacity {
            if let Some(evicted) = ring.entries.pop_front() {
                ring.bytes = ring.bytes.saturating_sub(evicted.approx_bytes());
                ring.base += 1;
            }
        }
        ring.bytes += bytes;
        ring.entries.push_back(exemplar);
        true
    }

    /// The retained traces plus the global index of the first one,
    /// read under one lock — the incremental-drain contract mirrors
    /// [`crate::recorder::FlightRecorder::snapshot_indexed`].
    pub fn snapshot_indexed(&self) -> (u64, Vec<TraceExemplar>) {
        let ring = self.core.ring.lock();
        (ring.base, ring.entries.iter().cloned().collect())
    }

    /// Capture counters: traces retained, traces evicted from the
    /// ring, and the ring's approximate byte footprint.
    pub fn posture(&self) -> ExemplarPosture {
        let ring = self.core.ring.lock();
        ExemplarPosture {
            retained: ring.base + ring.entries.len() as u64,
            dropped: ring.base,
            bytes: ring.bytes,
        }
    }

    /// In-flight traces evicted before finalize (admission outran the
    /// pending table).
    pub fn pending_evicted(&self) -> u64 {
        self.core.pending_evicted.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> ExemplarConfig {
        ExemplarConfig {
            head_sample_every: 0,
            stage_budget_ns: 0,
            ring_capacity: 4,
            pending_capacity: 8,
        }
    }

    #[test]
    fn disabled_collector_captures_nothing() {
        let tracer = ExemplarTracer::disabled();
        tracer.open(1, "local", 360);
        tracer.record(1, SpanSlice::new(Stage::Route, 0, 10, "submit"));
        assert!(!tracer.finalize(1, true));
        assert_eq!(tracer.snapshot_indexed(), (0, Vec::new()));
        assert_eq!(tracer.posture(), ExemplarPosture::default());
    }

    #[test]
    fn alarmed_traces_are_retained_quiet_ones_are_not() {
        let tracer = ExemplarTracer::enabled(config());
        for seq in 0..4u64 {
            tracer.open(seq, "local", 360 * seq);
            tracer.record(seq, SpanSlice::sharded(Stage::Score, 5, 100, seq, "shard"));
            assert_eq!(tracer.finalize(seq, seq == 2), seq == 2);
        }
        let (base, traces) = tracer.snapshot_indexed();
        assert_eq!(base, 0);
        assert_eq!(traces.len(), 1);
        assert_eq!(traces[0].seq, 2);
        assert!(traces[0].alarmed);
        assert!(!traces[0].breached);
        assert_eq!(traces[0].total_ns, 100);
        assert_eq!(traces[0].spans[0].shard, Some(2));
    }

    #[test]
    fn budget_breaches_and_head_samples_are_retained() {
        let tracer = ExemplarTracer::enabled(ExemplarConfig {
            head_sample_every: 10,
            stage_budget_ns: 1_000,
            ..config()
        });
        // seq 1: under budget, off the head stride — dropped.
        tracer.open(1, "local", 0);
        tracer.record(1, SpanSlice::new(Stage::Merge, 0, 999, "agg"));
        assert!(!tracer.finalize(1, false));
        // seq 2: one span over budget — retained as a breach.
        tracer.open(2, "local", 0);
        tracer.record(2, SpanSlice::new(Stage::Merge, 0, 1_001, "agg"));
        assert!(tracer.finalize(2, false));
        // seq 10: head sample (1-in-10) — retained.
        tracer.open(10, "local", 0);
        assert!(tracer.finalize(10, false));
        let (_, traces) = tracer.snapshot_indexed();
        assert_eq!(traces.len(), 2);
        assert!(traces[0].breached && !traces[0].head_sampled);
        assert!(traces[1].head_sampled && !traces[1].breached);
    }

    #[test]
    fn ring_bound_evicts_oldest_and_advances_the_base() {
        let tracer = ExemplarTracer::enabled(config());
        for seq in 0..6u64 {
            tracer.open(seq, "local", seq);
            tracer.finalize(seq, true);
        }
        let (base, traces) = tracer.snapshot_indexed();
        assert_eq!(base, 2);
        assert_eq!(
            traces.iter().map(|t| t.seq).collect::<Vec<_>>(),
            vec![2, 3, 4, 5]
        );
        let posture = tracer.posture();
        assert_eq!(posture.retained, 6);
        assert_eq!(posture.dropped, 2);
        assert!(posture.bytes > 0);
    }

    #[test]
    fn pending_table_is_bounded_and_eviction_is_counted() {
        let tracer = ExemplarTracer::enabled(config());
        for seq in 0..10u64 {
            tracer.open(seq, "local", seq);
        }
        assert_eq!(tracer.pending_evicted(), 2);
        // The evicted traces (0 and 1) are gone: finalizing them
        // retains nothing even though they would have alarmed.
        assert!(!tracer.finalize(0, true));
        assert!(tracer.finalize(2, true));
    }

    #[test]
    fn span_count_per_trace_is_bounded() {
        let tracer = ExemplarTracer::enabled(config());
        tracer.open(1, "local", 0);
        for k in 0..(MAX_SPANS_PER_TRACE as u64 + 10) {
            tracer.record(1, SpanSlice::new(Stage::Score, k, 1, "w"));
        }
        assert!(tracer.finalize(1, true));
        let (_, traces) = tracer.snapshot_indexed();
        assert_eq!(traces[0].spans.len(), MAX_SPANS_PER_TRACE);
    }

    #[test]
    fn late_enable_lights_up_every_clone() {
        let tracer = ExemplarTracer::disabled();
        let clone = tracer.clone();
        clone.open(1, "local", 0);
        assert!(!clone.finalize(1, true));
        tracer.enable(ExemplarConfig {
            head_sample_every: 1,
            ..ExemplarConfig::default()
        });
        assert!(clone.is_enabled());
        clone.open(2, "local", 0);
        assert!(clone.finalize(2, false), "head stride 1 keeps everything");
    }

    /// The persisted exemplar schema is pinned: this exact JSON is what
    /// `gridwatch trace` reads back out of the history store, so field
    /// names and order only change deliberately.
    #[test]
    fn exemplar_json_schema_is_pinned() {
        let exemplar = TraceExemplar {
            source: "local".to_string(),
            seq: 42,
            at: 5_184_000,
            alarmed: true,
            breached: false,
            head_sampled: false,
            total_ns: 1_500,
            spans: vec![SpanSlice {
                stage: "score".to_string(),
                start_ns: 10,
                dur_ns: 1_500,
                shard: Some(1),
                worker: "shard-1".to_string(),
            }],
        };
        let json = serde_json::to_string(&exemplar).unwrap();
        assert_eq!(
            json,
            concat!(
                "{\"source\":\"local\",\"seq\":42,\"at\":5184000,",
                "\"alarmed\":true,\"breached\":false,\"head_sampled\":false,",
                "\"total_ns\":1500,\"spans\":[{\"stage\":\"score\",",
                "\"start_ns\":10,\"dur_ns\":1500,\"shard\":1,",
                "\"worker\":\"shard-1\"}]}"
            )
        );
        let back: TraceExemplar = serde_json::from_str(&json).unwrap();
        assert_eq!(back, exemplar);
        // Older payloads parse to defaults; a missing shard is None.
        let empty: TraceExemplar = serde_json::from_str("{}").unwrap();
        assert_eq!(empty, TraceExemplar::default());
        let bare: SpanSlice = serde_json::from_str("{\"stage\":\"merge\"}").unwrap();
        assert_eq!(bare.shard, None);
    }
}
