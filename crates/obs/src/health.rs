//! Health/SLO introspection: the pinned `/healthz` report schema and
//! rolling multi-window burn-rate gauges.
//!
//! The paper's operators ask two questions of a serving node before
//! drilling into correlations: "is it healthy right now" and "is it
//! burning its error budget". The first is answered by
//! [`HealthReport`] — a pinned-schema JSON document served on
//! `GET /healthz` that machine probes (and the fault-injection suites)
//! can assert against. The second is answered by [`BurnGauges`]:
//! cumulative pipeline counters and stage histograms are sampled at
//! each scrape, and deltas over rolling 60s/300s windows turn them
//! into rate gauges (decode/sequence error ppm, sampling coverage ppm,
//! windowed per-stage p99) in the Prometheus exposition — the
//! two-window burn-rate idiom from SLO alerting practice.
//!
//! Everything here takes explicit timestamps so tests are
//! deterministic; callers feed wall-clock (or trace-clock) seconds.

use std::collections::VecDeque;
use std::sync::Arc;

use gridwatch_sync::{classes, OrderedMutex};
use serde::{Deserialize, Serialize};

use crate::expo::Exposition;
use crate::hist::{bucket_upper_bound, LogHistogram};
use crate::trace::Stage;

/// The rolling burn-rate windows, in seconds (short for paging, long
/// for trend confirmation).
pub const BURN_WINDOWS_SECS: [u64; 2] = [60, 300];

/// Retained scrape samples; at one sample per scrape this covers the
/// long window many times over.
const MAX_SAMPLES: usize = 1024;

/// One shard's liveness and queue pressure inside a [`HealthReport`].
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardHealth {
    /// Shard index.
    #[serde(default)]
    pub shard: u64,
    /// Whether the shard's worker is alive (thread running or fabric
    /// session attached).
    #[serde(default)]
    pub live: bool,
    /// Queued snapshots awaiting scoring.
    #[serde(default)]
    pub queue_depth: u64,
    /// The queue's capacity.
    #[serde(default)]
    pub queue_capacity: u64,
}

/// The `/healthz` document. Every field defaults so older probes keep
/// parsing newer reports and vice versa; the serialized field order is
/// pinned by a golden test.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HealthReport {
    /// `ok` or `degraded`.
    #[serde(default)]
    pub status: String,
    /// Per-shard liveness and queue depth vs capacity.
    #[serde(default)]
    pub shards: Vec<ShardHealth>,
    /// Sampling coverage in parts-per-million (1_000_000 = nothing
    /// shed).
    #[serde(default)]
    pub coverage_ppm: u64,
    /// Seconds since the last checkpoint; `None` when no checkpoint
    /// has happened (or no store is attached).
    #[serde(default)]
    pub checkpoint_age_secs: Option<i64>,
    /// Records sitting in the history store's WAL, not yet sealed into
    /// a block.
    #[serde(default)]
    pub store_wal_lag: u64,
    /// Alarms raised so far.
    #[serde(default)]
    pub alarms: u64,
    /// Why the report is degraded; empty when `ok`.
    #[serde(default)]
    pub reasons: Vec<String>,
}

impl Default for HealthReport {
    fn default() -> HealthReport {
        HealthReport {
            status: "ok".to_string(),
            shards: Vec::new(),
            coverage_ppm: 1_000_000,
            checkpoint_age_secs: None,
            store_wal_lag: 0,
            alarms: 0,
            reasons: Vec::new(),
        }
    }
}

impl HealthReport {
    /// Marks the report degraded with a reason. Idempotent on status;
    /// reasons accumulate.
    pub fn degrade(&mut self, reason: impl Into<String>) {
        self.status = "degraded".to_string();
        self.reasons.push(reason.into());
    }

    /// Whether the report is healthy.
    pub fn is_ok(&self) -> bool {
        self.status == "ok"
    }

    /// The JSON served on `/healthz` (single line, pinned field
    /// order).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).unwrap_or_else(|_| "{\"status\":\"degraded\"}".to_string())
    }
}

/// One scrape-time snapshot of the cumulative pipeline counters the
/// burn gauges are computed from. All counters are running totals;
/// [`BurnGauges`] turns them into rates by differencing.
#[derive(Debug, Clone, Default)]
pub struct BurnSample {
    /// Frames that failed to decode, cumulative.
    pub decode_errors: u64,
    /// Sequencing rejections (stale/duplicate/gap skips), cumulative.
    pub sequence_errors: u64,
    /// Snapshots admitted into the pipeline, cumulative.
    pub submitted: u64,
    /// Snapshots shed by adaptive sampling, cumulative.
    pub sampled_out: u64,
    /// Per-stage latency histograms, indexed like [`Stage::ALL`].
    pub stages: Vec<LogHistogram>,
}

struct WindowState {
    samples: VecDeque<(u64, BurnSample)>,
}

/// Rolling burn-rate gauges over the pipeline counters. Cloning
/// shares the window; one `observe` + `render_into` pair per scrape.
#[derive(Clone)]
pub struct BurnGauges {
    window: Arc<OrderedMutex<WindowState>>,
}

impl Default for BurnGauges {
    fn default() -> BurnGauges {
        BurnGauges::new()
    }
}

impl std::fmt::Debug for BurnGauges {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "BurnGauges({} samples)",
            self.window.lock().samples.len()
        )
    }
}

/// `num / den` in parts-per-million, 0 when the denominator is 0.
fn ppm(num: u64, den: u64) -> u64 {
    if den == 0 {
        0
    } else {
        ((num as u128 * 1_000_000) / den as u128) as u64
    }
}

/// The histogram of samples recorded between `old` and `new`:
/// bucket-count differences, with extrema widened so `quantile` reads
/// straight off the bucket walk.
fn delta_histogram(new: &LogHistogram, old: &LogHistogram) -> LogHistogram {
    let mut delta = LogHistogram::new();
    delta.count = new.count.saturating_sub(old.count);
    delta.sum = new.sum.saturating_sub(old.sum);
    delta.buckets = new
        .buckets
        .iter()
        .enumerate()
        .map(|(idx, n)| n.saturating_sub(old.buckets.get(idx).copied().unwrap_or(0)))
        .collect();
    let top = delta
        .buckets
        .iter()
        .rposition(|&n| n > 0)
        .map(bucket_upper_bound)
        .unwrap_or(0);
    delta.min = 0;
    delta.max = top;
    delta
}

impl BurnGauges {
    /// An empty window.
    pub fn new() -> BurnGauges {
        BurnGauges {
            window: Arc::new(OrderedMutex::new(
                classes::HEALTH_WINDOW,
                WindowState {
                    samples: VecDeque::new(),
                },
            )),
        }
    }

    /// Files a scrape-time sample at `now_secs`. Samples older than
    /// the longest window are trimmed, keeping one sample beyond the
    /// boundary so the delta always spans the full window.
    pub fn observe(&self, now_secs: u64, sample: BurnSample) {
        let horizon = BURN_WINDOWS_SECS[BURN_WINDOWS_SECS.len() - 1];
        let mut state = self.window.lock();
        state.samples.push_back((now_secs, sample));
        while state.samples.len() > 2 {
            let second_ts = state.samples[1].0;
            if second_ts + horizon <= now_secs {
                state.samples.pop_front();
            } else {
                break;
            }
        }
        while state.samples.len() > MAX_SAMPLES {
            state.samples.pop_front();
        }
    }

    /// Renders the burn-rate gauges into `expo`. For each window, the
    /// baseline is the newest sample at least that old (falling back
    /// to the oldest available — at cold start the "window" is however
    /// much history exists). No samples → all gauges read 0 with full
    /// coverage.
    pub fn render_into(&self, now_secs: u64, expo: &mut Exposition) {
        let state = self.window.lock();
        expo.header(
            "gridwatch_burn_decode_error_ppm",
            "gauge",
            "Decode failures per million frames over the window.",
        );
        expo.header(
            "gridwatch_burn_sequence_error_ppm",
            "gauge",
            "Sequencing rejections per million frames over the window.",
        );
        expo.header(
            "gridwatch_burn_coverage_ppm",
            "gauge",
            "Sampling coverage per million submissions over the window.",
        );
        expo.header(
            "gridwatch_burn_stage_p99_ns",
            "gauge",
            "Windowed p99 stage latency in nanoseconds.",
        );
        let mut lines: Vec<(&'static str, String, u64)> = Vec::new();
        for window_secs in BURN_WINDOWS_SECS {
            let label = format!("{window_secs}s");
            let (decode, sequence, coverage, stage_p99) = match state.samples.back() {
                None => (0, 0, 1_000_000, vec![0u64; Stage::ALL.len()]),
                Some((_, newest)) => {
                    let cutoff = now_secs.saturating_sub(window_secs);
                    let baseline = state
                        .samples
                        .iter()
                        .rev()
                        .find(|(ts, _)| *ts <= cutoff)
                        .or_else(|| state.samples.front())
                        .map_or(newest, |(_, s)| s);
                    let decode_d = newest.decode_errors.saturating_sub(baseline.decode_errors);
                    let seq_d = newest
                        .sequence_errors
                        .saturating_sub(baseline.sequence_errors);
                    let submitted_d = newest.submitted.saturating_sub(baseline.submitted);
                    let sampled_d = newest.sampled_out.saturating_sub(baseline.sampled_out);
                    let frames = decode_d + seq_d + submitted_d + sampled_d;
                    let offered = submitted_d + sampled_d;
                    let coverage = if offered == 0 {
                        1_000_000
                    } else {
                        ppm(submitted_d, offered)
                    };
                    let empty = LogHistogram::new();
                    let p99s: Vec<u64> = (0..Stage::ALL.len())
                        .map(|idx| {
                            let new = newest.stages.get(idx).unwrap_or(&empty);
                            let old = baseline.stages.get(idx).unwrap_or(&empty);
                            delta_histogram(new, old).p99()
                        })
                        .collect();
                    (ppm(decode_d, frames), ppm(seq_d, frames), coverage, p99s)
                }
            };
            lines.push(("gridwatch_burn_decode_error_ppm", label.clone(), decode));
            lines.push(("gridwatch_burn_sequence_error_ppm", label.clone(), sequence));
            lines.push(("gridwatch_burn_coverage_ppm", label.clone(), coverage));
            for (stage, p99) in Stage::ALL.iter().zip(stage_p99) {
                expo.sample(
                    "gridwatch_burn_stage_p99_ns",
                    &[("stage", stage.name()), ("window", &label)],
                    p99,
                );
            }
        }
        for (name, label, value) in lines {
            expo.sample(name, &[("window", &label)], value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expo::parse as parse_exposition;

    fn sample(
        decode: u64,
        sequence: u64,
        submitted: u64,
        sampled: u64,
        score_ns: &[u64],
    ) -> BurnSample {
        let mut stages = vec![LogHistogram::new(); Stage::ALL.len()];
        for &ns in score_ns {
            stages[4].record(ns); // Stage::Score
        }
        BurnSample {
            decode_errors: decode,
            sequence_errors: sequence,
            submitted,
            sampled_out: sampled,
            stages,
        }
    }

    fn gauge(text: &str, name: &str, labels: &[(&str, &str)]) -> u64 {
        let samples = parse_exposition(text).expect("well-formed");
        samples
            .iter()
            .find(|s| {
                s.name == name
                    && labels
                        .iter()
                        .all(|(k, v)| s.labels.iter().any(|(lk, lv)| lk == k && lv == v))
            })
            .unwrap_or_else(|| panic!("missing {name} {labels:?}"))
            .value as u64
    }

    /// The serialized `/healthz` schema is pinned: probes and the
    /// fault-injection suites assert against these exact field names.
    #[test]
    fn healthz_json_schema_is_pinned() {
        let mut report = HealthReport::default();
        report.shards.push(ShardHealth {
            shard: 0,
            live: true,
            queue_depth: 1,
            queue_capacity: 64,
        });
        assert_eq!(
            report.to_json(),
            concat!(
                "{\"status\":\"ok\",",
                "\"shards\":[{\"shard\":0,\"live\":true,",
                "\"queue_depth\":1,\"queue_capacity\":64}],",
                "\"coverage_ppm\":1000000,",
                "\"checkpoint_age_secs\":null,",
                "\"store_wal_lag\":0,",
                "\"alarms\":0,",
                "\"reasons\":[]}"
            )
        );
        report.degrade("queue 3 full");
        assert!(!report.is_ok());
        assert!(report.to_json().contains("\"status\":\"degraded\""));
        assert!(report.to_json().contains("\"reasons\":[\"queue 3 full\"]"));
        // Forward/backward compat: an empty object parses to defaults.
        let bare: HealthReport = serde_json::from_str("{}").unwrap();
        assert_eq!(bare.status, "");
        assert_eq!(bare.checkpoint_age_secs, None);
    }

    #[test]
    fn empty_window_reads_zero_errors_full_coverage() {
        let gauges = BurnGauges::new();
        let mut expo = Exposition::new();
        gauges.render_into(1_000, &mut expo);
        let text = expo.finish();
        for window in ["60s", "300s"] {
            assert_eq!(
                gauge(
                    &text,
                    "gridwatch_burn_decode_error_ppm",
                    &[("window", window)]
                ),
                0
            );
            assert_eq!(
                gauge(&text, "gridwatch_burn_coverage_ppm", &[("window", window)]),
                1_000_000
            );
        }
        assert_eq!(
            gauge(
                &text,
                "gridwatch_burn_stage_p99_ns",
                &[("stage", "score"), ("window", "60s")]
            ),
            0
        );
    }

    #[test]
    fn windows_pick_their_own_baselines() {
        let gauges = BurnGauges::new();
        // t=0: clean history. t=250: 100 decode errors have happened.
        // t=300: 10 more. The 60s window sees only the last 10; the
        // 300s window sees all 110.
        gauges.observe(0, sample(0, 0, 0, 0, &[]));
        gauges.observe(250, sample(100, 0, 900, 0, &[]));
        gauges.observe(300, sample(110, 0, 990, 0, &[]));
        let mut expo = Exposition::new();
        gauges.render_into(300, &mut expo);
        let text = expo.finish();
        // 60s window: baseline t=250 ⇒ 10 errors / 100 frames.
        assert_eq!(
            gauge(
                &text,
                "gridwatch_burn_decode_error_ppm",
                &[("window", "60s")]
            ),
            100_000
        );
        // 300s window: baseline t=0 ⇒ 110 errors / 1100 frames.
        assert_eq!(
            gauge(
                &text,
                "gridwatch_burn_decode_error_ppm",
                &[("window", "300s")]
            ),
            100_000
        );
        // Coverage: nothing shed, both windows full.
        assert_eq!(
            gauge(&text, "gridwatch_burn_coverage_ppm", &[("window", "300s")]),
            1_000_000
        );
    }

    #[test]
    fn coverage_and_stage_p99_are_windowed() {
        let gauges = BurnGauges::new();
        let mut early = sample(0, 0, 1_000, 0, &[100, 100, 100]);
        gauges.observe(0, early.clone());
        // Between t=0 and t=290: sheds half, and the score stage slows
        // from ~100ns to ~8000ns.
        early.submitted = 1_500;
        early.sampled_out = 500;
        for _ in 0..100 {
            early.stages[4].record(8_000);
        }
        gauges.observe(290, early);
        let mut expo = Exposition::new();
        gauges.render_into(290, &mut expo);
        let text = expo.finish();
        assert_eq!(
            gauge(&text, "gridwatch_burn_coverage_ppm", &[("window", "300s")]),
            500_000
        );
        let p99 = gauge(
            &text,
            "gridwatch_burn_stage_p99_ns",
            &[("stage", "score"), ("window", "300s")],
        );
        assert!((8_000..=16_383).contains(&p99), "windowed p99 = {p99}");
        // A stage with no samples in the window reads 0.
        assert_eq!(
            gauge(
                &text,
                "gridwatch_burn_stage_p99_ns",
                &[("stage", "merge"), ("window", "300s")]
            ),
            0
        );
    }

    #[test]
    fn old_samples_are_trimmed_but_the_window_stays_spanned() {
        let gauges = BurnGauges::new();
        for t in 0..50u64 {
            gauges.observe(t * 100, sample(t, 0, t * 10, 0, &[]));
        }
        let len = gauges.window.lock().samples.len();
        // 300s horizon at 100s cadence keeps only a handful.
        assert!(len <= 6, "retained {len} samples");
        let oldest = gauges.window.lock().samples[0].0;
        assert!(oldest + 300 <= 4_900, "oldest sample spans the window");
    }
}
