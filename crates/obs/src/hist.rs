//! Log-bucketed histograms for latency and depth distributions.
//!
//! Values land in power-of-two buckets (`bucket k` holds
//! `2^(k-1) ..= 2^k - 1`, with bucket 0 reserved for zero), so a
//! histogram covering the full `u64` range needs at most
//! [`MAX_BUCKETS`] counters and recording is a shift plus an
//! increment. Histograms merge exactly across shards and processes —
//! bucket counts, totals, and extrema are all sums or min/max — which
//! is what lets per-shard and per-worker distributions roll up into
//! one fabric-wide view.
//!
//! Quantiles are read off the cumulative bucket walk and clamped to
//! the observed `[min, max]`, so they are upper bounds with at most a
//! 2x relative error — the usual trade of log-bucketed histograms.

use serde::{Deserialize, Serialize};

/// One more than the highest bucket index: bucket 0 for zero plus one
/// bucket per bit position of a `u64`.
pub const MAX_BUCKETS: usize = 65;

/// The bucket a value lands in: 0 for zero, else `64 - leading_zeros`.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// The largest value bucket `index` can hold.
pub fn bucket_upper_bound(index: usize) -> u64 {
    match index {
        0 => 0,
        1..=63 => (1u64 << index) - 1,
        _ => u64::MAX,
    }
}

/// A mergeable log-bucketed histogram of `u64` samples.
///
/// Every field carries `#[serde(default)]`: the struct appears inside
/// persisted stats dumps, and older dumps (which carried a
/// `{min_ns, mean_ns, max_ns}` summary object under the same key) must
/// keep deserializing — unknown keys are ignored and missing ones
/// default, so an old dump parses as an empty histogram.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LogHistogram {
    /// Samples recorded.
    #[serde(default)]
    pub count: u64,
    /// Sum of all samples (saturating).
    #[serde(default)]
    pub sum: u64,
    /// Smallest sample (0 until the first record).
    #[serde(default)]
    pub min: u64,
    /// Largest sample.
    #[serde(default)]
    pub max: u64,
    /// Per-bucket counts; trailing empty buckets are not stored.
    #[serde(default)]
    pub buckets: Vec<u64>,
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> LogHistogram {
        LogHistogram::default()
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        if self.count == 1 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        let idx = bucket_index(value);
        if self.buckets.len() <= idx {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
    }

    /// Folds another histogram into this one. Merging is exact: the
    /// result is identical to having recorded both sample streams into
    /// a single histogram.
    pub fn merge(&mut self, other: &LogHistogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (slot, n) in self.buckets.iter_mut().zip(&other.buckets) {
            *slot += n;
        }
    }

    /// The mean sample, rounded down (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// An upper bound on the `q`-quantile (`q` in `[0, 1]`), clamped
    /// to the observed range. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (idx, n) in self.buckets.iter().enumerate() {
            cumulative += n;
            if cumulative >= target {
                return bucket_upper_bound(idx).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// The median (p50).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// The 90th percentile.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// The 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// The 99.9th percentile.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_indexing_covers_the_range() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert!(bucket_index(u64::MAX) < MAX_BUCKETS);
        // Each bucket's upper bound lands back in that bucket.
        for idx in 0..MAX_BUCKETS {
            assert_eq!(bucket_index(bucket_upper_bound(idx)), idx, "bucket {idx}");
        }
    }

    #[test]
    fn records_track_count_sum_extrema() {
        let mut h = LogHistogram::new();
        for v in [300u64, 100, 200, 0] {
            h.record(v);
        }
        assert_eq!(h.count, 4);
        assert_eq!(h.sum, 600);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 300);
        assert_eq!(h.mean(), 150);
        assert_eq!(h.buckets.iter().sum::<u64>(), 4);
    }

    #[test]
    fn quantiles_bound_the_true_values() {
        let mut h = LogHistogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        // Log buckets give at most 2x overshoot, clamped to max.
        let p50 = h.p50();
        assert!((500..=1000).contains(&p50), "p50 = {p50}");
        assert!(h.p90() >= 900);
        assert!(h.p99() >= 990);
        assert!(h.p999() <= h.max);
        assert_eq!(h.quantile(0.0), 1, "p0 is the min's bucket bound");
        assert_eq!(h.quantile(1.0), 1000, "p100 clamps to the observed max");
    }

    #[test]
    fn empty_histogram_is_inert() {
        let h = LogHistogram::new();
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.mean(), 0);
        let mut other = LogHistogram::new();
        other.record(7);
        let mut merged = h.clone();
        merged.merge(&other);
        assert_eq!(merged, other);
        let mut back = other.clone();
        back.merge(&h);
        assert_eq!(back, other);
    }

    #[test]
    fn merge_equals_single_stream() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut whole = LogHistogram::new();
        for v in 0..200u64 {
            let sample = v * v % 4099;
            if v % 2 == 0 {
                a.record(sample);
            } else {
                b.record(sample);
            }
            whole.record(sample);
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    fn json_roundtrips_and_old_summary_objects_parse_empty() {
        let mut h = LogHistogram::new();
        h.record(12);
        h.record(99999);
        let json = serde_json::to_string(&h).unwrap();
        let back: LogHistogram = serde_json::from_str(&json).unwrap();
        assert_eq!(back, h);

        // A pre-histogram LatencySummary object under the same key:
        // unknown fields ignored, everything defaults.
        let old: LogHistogram =
            serde_json::from_str("{\"min_ns\":5,\"mean_ns\":6,\"max_ns\":7}").unwrap();
        assert_eq!(old, LogHistogram::new());
    }

    #[test]
    fn saturating_sum_never_wraps() {
        let mut h = LogHistogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.sum, u64::MAX);
        assert_eq!(h.count, 2);
    }
}
