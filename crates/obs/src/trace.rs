//! Span tracing of the snapshot pipeline.
//!
//! The lifecycle of one snapshot crosses seven stages —
//! `ingest → decode → sequence → route → score → merge → report` —
//! spread over several threads and, in a fabric, several processes. A
//! [`Tracer`] collects one lock-free [`LogHistogram`] per stage;
//! [`Tracer::span`] returns a guard that records the elapsed
//! monotonic time into the stage's histogram when dropped.
//!
//! The disabled path is built to vanish: a disabled tracer's `span`
//! does one relaxed atomic load and returns a guard holding `None` —
//! no allocation, no clock read, no lock. Handles are cheap clones of
//! one shared core and can be enabled after the fact
//! ([`Tracer::enable`]), which is how a `shard-worker` turns tracing
//! on when the coordinator's `Hello` asks for it.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::hist::{bucket_index, LogHistogram, MAX_BUCKETS};

/// One stage of the snapshot pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Stage {
    /// Bytes read off a client socket.
    Ingest,
    /// Wire frames decoded into snapshots.
    Decode,
    /// Per-source sequencing (dedup, reorder, gap handling).
    Sequence,
    /// Fan-out of one snapshot to every shard queue.
    Route,
    /// One shard scoring one snapshot against its pair models.
    Score,
    /// Partial boards merged into one full board.
    Merge,
    /// Alarm evaluation and report emission.
    Report,
}

impl Stage {
    /// Every stage, in pipeline order.
    pub const ALL: [Stage; 7] = [
        Stage::Ingest,
        Stage::Decode,
        Stage::Sequence,
        Stage::Route,
        Stage::Score,
        Stage::Merge,
        Stage::Report,
    ];

    /// The stage's stable name (used as a metric label).
    pub fn name(self) -> &'static str {
        match self {
            Stage::Ingest => "ingest",
            Stage::Decode => "decode",
            Stage::Sequence => "sequence",
            Stage::Route => "route",
            Stage::Score => "score",
            Stage::Merge => "merge",
            Stage::Report => "report",
        }
    }

    fn index(self) -> usize {
        self as usize
    }
}

/// A lock-free histogram: the recording side of [`LogHistogram`], safe
/// to hammer from many threads with relaxed atomics (per-stage totals
/// need no cross-field consistency).
struct AtomicHistogram {
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; MAX_BUCKETS],
}

impl AtomicHistogram {
    fn new() -> AtomicHistogram {
        AtomicHistogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    fn record(&self, value: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
    }

    fn snapshot(&self) -> LogHistogram {
        let count = self.count.load(Ordering::Relaxed);
        let mut buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        while buckets.last() == Some(&0) {
            buckets.pop();
        }
        LogHistogram {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

struct TracerCore {
    enabled: AtomicBool,
    stages: [AtomicHistogram; 7],
}

/// A handle onto one process's pipeline-stage histograms. Clones share
/// the same core; the default handle is disabled.
#[derive(Clone)]
pub struct Tracer {
    core: Arc<TracerCore>,
}

impl Default for Tracer {
    fn default() -> Tracer {
        Tracer::disabled()
    }
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Tracer({})",
            if self.is_enabled() {
                "enabled"
            } else {
                "disabled"
            }
        )
    }
}

impl Tracer {
    fn with_enabled(enabled: bool) -> Tracer {
        Tracer {
            core: Arc::new(TracerCore {
                enabled: AtomicBool::new(enabled),
                stages: std::array::from_fn(|_| AtomicHistogram::new()),
            }),
        }
    }

    /// A disabled tracer: spans cost one load and a branch.
    pub fn disabled() -> Tracer {
        Tracer::with_enabled(false)
    }

    /// An enabled tracer.
    pub fn enabled() -> Tracer {
        Tracer::with_enabled(true)
    }

    /// Whether spans currently record.
    pub fn is_enabled(&self) -> bool {
        self.core.enabled.load(Ordering::Relaxed)
    }

    /// Turns recording on for every clone of this handle.
    pub fn enable(&self) {
        self.core.enabled.store(true, Ordering::Relaxed);
    }

    /// Starts a span over `stage`; the elapsed monotonic time is
    /// recorded (in nanoseconds) when the returned guard drops. When
    /// disabled this reads no clock and allocates nothing.
    #[inline]
    pub fn span(&self, stage: Stage) -> Span<'_> {
        Span {
            timed: if self.is_enabled() {
                Some((&self.core, Instant::now()))
            } else {
                None
            },
            stage,
        }
    }

    /// Records an externally-measured duration against `stage` —
    /// the propagation path for timings that crossed the wire (a
    /// worker's `score_ns` riding home on its board frame).
    pub fn record_ns(&self, stage: Stage, ns: u64) {
        if self.is_enabled() {
            self.core.stages[stage.index()].record(ns);
        }
    }

    /// A snapshot of one stage's histogram.
    pub fn stage(&self, stage: Stage) -> LogHistogram {
        self.core.stages[stage.index()].snapshot()
    }

    /// Snapshots of every stage histogram, in pipeline order.
    pub fn snapshot(&self) -> Vec<(Stage, LogHistogram)> {
        Stage::ALL.iter().map(|&s| (s, self.stage(s))).collect()
    }
}

/// A live span: records its stage's elapsed time on drop.
pub struct Span<'a> {
    timed: Option<(&'a Arc<TracerCore>, Instant)>,
    stage: Stage,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some((core, start)) = self.timed.take() {
            core.stages[self.stage.index()].record(start.elapsed().as_nanos() as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_spans_record_nothing() {
        let tracer = Tracer::disabled();
        for stage in Stage::ALL {
            drop(tracer.span(stage));
            tracer.record_ns(stage, 123);
        }
        for (_, hist) in tracer.snapshot() {
            assert_eq!(hist, LogHistogram::new());
        }
    }

    #[test]
    fn enabled_spans_land_in_their_stage() {
        let tracer = Tracer::enabled();
        drop(tracer.span(Stage::Score));
        drop(tracer.span(Stage::Score));
        tracer.record_ns(Stage::Merge, 512);
        assert_eq!(tracer.stage(Stage::Score).count, 2);
        let merge = tracer.stage(Stage::Merge);
        assert_eq!(merge.count, 1);
        assert_eq!(merge.sum, 512);
        assert_eq!(tracer.stage(Stage::Ingest).count, 0);
    }

    #[test]
    fn clones_share_state_and_late_enable_works() {
        let tracer = Tracer::disabled();
        let clone = tracer.clone();
        drop(clone.span(Stage::Route));
        assert_eq!(tracer.stage(Stage::Route).count, 0);
        tracer.enable();
        assert!(clone.is_enabled());
        drop(clone.span(Stage::Route));
        assert_eq!(tracer.stage(Stage::Route).count, 1);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let tracer = Tracer::enabled();
        std::thread::scope(|scope| {
            for t in 0..4 {
                let tracer = tracer.clone();
                scope.spawn(move || {
                    for k in 0..1000u64 {
                        tracer.record_ns(Stage::Score, t * 1000 + k);
                    }
                });
            }
        });
        let hist = tracer.stage(Stage::Score);
        assert_eq!(hist.count, 4000);
        assert_eq!(hist.buckets.iter().sum::<u64>(), 4000);
    }

    #[test]
    fn stage_names_are_stable_and_ordered() {
        let names: Vec<&str> = Stage::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            ["ingest", "decode", "sequence", "route", "score", "merge", "report"]
        );
        for (k, stage) in Stage::ALL.iter().enumerate() {
            assert_eq!(stage.index(), k);
        }
    }
}
